//! The Keylime verifier: polls agents and issues trust verdicts.

use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Instant;

use cia_crypto::{Digest, HashAlgorithm, Sha256};
use cia_ima::{ImaLogEntry, MeasurementLog, BOOT_AGGREGATE_NAME};
use cia_tpm::pcr::extend_digest;
use serde::{Deserialize, Serialize};

use crate::agent::{Agent, AgentRequest, AgentResponse, QuoteResponse};
use crate::backend::{BackendIdentity, BackendKind, BackendSet, CVM_LAUNCH_REGISTER};
use crate::error::KeylimeError;
use crate::ids::AgentId;
use crate::policy::{PolicyCheck, PolicyDelta, RuntimePolicy};
use crate::store::{PolicyEpoch, PolicyStore, SharedPolicy};
use crate::transport::Transport;

pub use crate::config::VerifierConfig;

/// Why an attestation failed.
#[non_exhaustive]
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum FailureKind {
    /// Quote signature or nonce check failed.
    QuoteInvalid,
    /// The measurement list does not replay to the quoted evidence
    /// register (PCR 10 on the TPM+IMA backend).
    PcrMismatch,
    /// The log shrank without a TPM reset — rewind tampering.
    LogRewound,
    /// `boot_aggregate` does not match the quoted PCRs 0–9.
    BootAggregateMismatch,
    /// The log excerpt could not be parsed.
    LogParse {
        /// Parser diagnostics.
        reason: String,
    },
    /// A measured file hashed to a value not in the policy
    /// (§III-B "hash mismatch").
    HashMismatch {
        /// The measured path.
        path: String,
        /// The measured digest (hex).
        digest: String,
    },
    /// A measured file is absent from the policy
    /// (§III-B "missing file in the policy").
    NotInPolicy {
        /// The measured path.
        path: String,
        /// The measured digest (hex).
        digest: String,
    },
    /// Evidence arrived from a backend outside
    /// [`VerifierConfig::allowed_backends`].
    BackendNotAllowed {
        /// The enrolled backend the config rejects.
        backend: BackendKind,
    },
    /// The evidence claims a different backend than the agent enrolled
    /// with — a cross-backend substitution attempt.
    BackendMismatch {
        /// The backend the registrar record proves.
        expected: BackendKind,
        /// The backend the evidence claims.
        reported: BackendKind,
    },
    /// The quoted launch register diverges from the platform-certified
    /// launch measurement the agent enrolled with (confidential-VM
    /// backends only) — the guest was relaunched from a different image.
    LaunchMeasurementMismatch,
}

/// One attestation failure event.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Alert {
    /// The agent that failed.
    pub agent: AgentId,
    /// Simulation day of the failure.
    pub day: u32,
    /// What went wrong.
    pub kind: FailureKind,
}

/// Verifier-side state of one agent.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AgentStatus {
    /// Attesting cleanly; polling continues.
    Trusted,
    /// A failure occurred and (under stop-on-failure) polling is paused
    /// until the operator resolves it.
    Paused,
}

/// Reachability health of one agent, as tracked by the verifier.
///
/// Orthogonal to [`AgentStatus`] (which is about *attestation verdicts*):
/// health is about whether the evidence channel works at all. The legal
/// transitions form a small machine:
///
/// ```text
///  Healthy ──unreachable×degraded_after──▶ Degraded
///  Degraded ─unreachable×quarantine_after─▶ Quarantined
///  Quarantined ──successful re-probe──▶ Recovering
///  Recovering ──verified round──▶ Healthy
///  Recovering ──unreachable again──▶ Quarantined
///  Degraded/Recovering ──any reachable round──▶ (towards) Healthy
/// ```
///
/// With [`VerifierConfig::quarantine_enabled`] the scheduler skips
/// Quarantined agents on a decaying re-probe backoff instead of burning
/// the full retry budget every round.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum AgentHealth {
    /// Reachable and attesting.
    Healthy,
    /// Some consecutive unreachable rounds; still polled normally.
    Degraded,
    /// Persistently unreachable; polled only on the re-probe schedule.
    Quarantined,
    /// A probe got through; full trust requires a verified attestation
    /// (policy re-validation) to complete the recovery.
    Recovering,
}

/// Per-state agent counts for one point in time (or one round).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct HealthCounts {
    /// Agents in [`AgentHealth::Healthy`].
    pub healthy: usize,
    /// Agents in [`AgentHealth::Degraded`].
    pub degraded: usize,
    /// Agents in [`AgentHealth::Quarantined`].
    pub quarantined: usize,
    /// Agents in [`AgentHealth::Recovering`].
    pub recovering: usize,
}

impl HealthCounts {
    /// Total agents across all states.
    pub fn total(&self) -> usize {
        self.healthy + self.degraded + self.quarantined + self.recovering
    }

    /// Registers one agent's state.
    pub fn count(&mut self, health: AgentHealth) {
        match health {
            AgentHealth::Healthy => self.healthy += 1,
            AgentHealth::Degraded => self.degraded += 1,
            AgentHealth::Quarantined => self.quarantined += 1,
            AgentHealth::Recovering => self.recovering += 1,
        }
    }
}

/// How a round ended for one agent, from the health machine's viewpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ReachClass {
    /// The agent was reached and the attestation verified.
    Verified,
    /// The agent was reached but attestation failed or was skipped while
    /// paused — the channel works, the verdict does not recover trust.
    ReachedNotVerified,
    /// The agent could not be reached (retries exhausted or a
    /// non-retryable transport error).
    Unreachable,
}

/// Hot-path throughput counters for one or more attestation rounds:
/// what the fold-and-check loop actually did, as opposed to the
/// scheduler's call accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub(crate) struct HotStats {
    /// Log entries evaluated against the policy (including entries that
    /// failed and, under stop-on-failure, the failing entry itself).
    pub entries_evaluated: u64,
    /// Wall-clock nanoseconds spent in the policy-evaluation loop.
    pub policy_check_ns: u64,
}

/// Result of one poll.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AttestationOutcome {
    /// All new entries verified.
    Verified {
        /// Entries processed this round.
        new_entries: usize,
    },
    /// One or more failures (see the alerts).
    Failed {
        /// The failures raised this round.
        alerts: Vec<Alert>,
    },
    /// Polling is paused on an unresolved failure (P2); nothing was
    /// requested from the agent.
    SkippedPaused,
}

impl AttestationOutcome {
    /// True for [`AttestationOutcome::Verified`].
    pub fn is_verified(&self) -> bool {
        matches!(self, AttestationOutcome::Verified { .. })
    }
}

/// Evidence pulled from one agent by [`Verifier::fetch_evidence`],
/// before appraisal has touched it — the unit that crosses a pipelined
/// round's evidence channel.
#[derive(Debug, Clone)]
pub(crate) enum FetchedEvidence {
    /// The agent is paused under stop-on-failure; no quote was
    /// requested.
    Paused,
    /// A quote response, plus the nonce it must bind (the re-quote
    /// nonce if reboot detection triggered a second fetch).
    Quote {
        /// The agent's quote response, boxed so the paused variant is
        /// not penalised with the quote's full inline size.
        resp: Box<QuoteResponse>,
        /// The nonce the quote signature must cover.
        nonce: Vec<u8>,
    },
}

/// The mutable, serializable core of one [`AgentRecord`]: everything a
/// round can change, and nothing a round cannot. The enrolment-time
/// constants (AK, backend identity) and the policy handle live outside
/// the snapshot — the journal persists those separately (enrolment
/// records and policy epochs), so a snapshot plus the enrolment record
/// plus the epoch map reconstructs the full record bit-for-bit.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AgentStateSnapshot {
    /// The store epoch the agent last acknowledged.
    pub policy_epoch: PolicyEpoch,
    /// Whether the agent follows the shared store.
    pub shared_policy: bool,
    /// Index of the first unprocessed log entry.
    pub next_entry: usize,
    /// Fold of the template hashes of all processed entries.
    pub replayed_pcr: Digest,
    /// TPM boot counter at last contact.
    pub last_boot_count: Option<u64>,
    /// Trusted/Paused verdict state.
    pub status: AgentStatus,
    /// Every alert raised so far.
    pub alerts: Vec<Alert>,
    /// Successful attestation count.
    pub attestations: u64,
    /// Next nonce sequence number.
    pub nonce_counter: u64,
    /// Reachability health.
    pub health: AgentHealth,
    /// Current unreachable streak.
    pub consecutive_unreachable: u32,
    /// Rounds until the next quarantine probe.
    pub reprobe_in: u32,
    /// Current re-probe interval.
    pub reprobe_backoff: u32,
}

impl AgentStateSnapshot {
    /// The state of a just-enrolled agent at `policy_epoch`: nothing
    /// attested, nothing alerted, fully healthy. Recovery uses this for
    /// agents that enrolled but never completed a round before the
    /// crash (they have an enrolment record in the journal but no ack).
    pub fn fresh(policy_epoch: PolicyEpoch, shared_policy: bool) -> Self {
        AgentStateSnapshot {
            policy_epoch,
            shared_policy,
            next_entry: 0,
            replayed_pcr: HashAlgorithm::Sha256.zero_digest(),
            last_boot_count: None,
            status: AgentStatus::Trusted,
            alerts: Vec::new(),
            attestations: 0,
            nonce_counter: 0,
            health: AgentHealth::Healthy,
            consecutive_unreachable: 0,
            reprobe_in: 0,
            reprobe_backoff: 0,
        }
    }
}

#[derive(Debug)]
pub(crate) struct AgentRecord {
    ak: cia_crypto::VerifyingKey,
    /// The backend identity the registrar proved at enrolment — the
    /// appraisal ground truth (never the evidence's own claim).
    backend: BackendIdentity,
    /// Handle to the policy this agent appraises against. Shared agents
    /// hold an `Arc` clone of a [`PolicyStore`] snapshot (a fleet-wide
    /// push is a handle swap, never a deep copy); override agents hold
    /// their own privately published snapshot.
    policy: Arc<RuntimePolicy>,
    /// The store epoch this agent last acknowledged (adopted). A
    /// quarantined agent keeps appraising against this epoch until it
    /// recovers, which is exactly the skew the chaos tests exercise.
    policy_epoch: PolicyEpoch,
    /// False for agents enrolled with a per-agent override policy (the
    /// heterogeneous-fleet case, e.g. the snap-scrubbed subset); such
    /// agents never adopt store snapshots.
    shared_policy: bool,
    /// Index of the first unprocessed log entry.
    next_entry: usize,
    /// Fold of the template hashes of all *processed* entries.
    replayed_pcr: Digest,
    last_boot_count: Option<u64>,
    status: AgentStatus,
    alerts: Vec<Alert>,
    attestations: u64,
    nonce_counter: u64,
    health: AgentHealth,
    consecutive_unreachable: u32,
    /// Rounds to skip before the next quarantine probe.
    reprobe_in: u32,
    /// Current re-probe interval (doubles per failed probe, capped).
    reprobe_backoff: u32,
}

impl AgentRecord {
    /// The agent's current reachability health.
    pub(crate) fn health(&self) -> AgentHealth {
        self.health
    }

    /// The enrolled backend identity.
    pub(crate) fn backend_identity(&self) -> BackendIdentity {
        self.backend
    }

    /// The enrolled backend kind.
    pub(crate) fn backend_kind(&self) -> BackendKind {
        self.backend.kind()
    }

    /// The store epoch the agent last acknowledged.
    pub(crate) fn policy_epoch(&self) -> PolicyEpoch {
        self.policy_epoch
    }

    /// True when the agent follows the shared store (false for per-agent
    /// overrides, which never adopt store snapshots).
    pub(crate) fn follows_shared_store(&self) -> bool {
        self.shared_policy
    }

    /// Swaps in the published snapshot — one `Arc` clone, zero policy
    /// copies — if this agent follows the shared store, is behind, and is
    /// not quarantined (a quarantined agent cannot acknowledge a push; it
    /// keeps appraising against the epoch it last adopted until its
    /// recovery round).
    pub(crate) fn adopt_shared(&mut self, shared: &SharedPolicy) {
        if self.shared_policy
            && self.policy_epoch != shared.epoch
            && self.health != AgentHealth::Quarantined
        {
            self.policy = Arc::clone(&shared.snapshot);
            self.policy_epoch = shared.epoch;
        }
    }

    /// Quarantine scheduling: decides whether this round probes the
    /// agent. Returns `Some(rounds_until_probe)` when the round should be
    /// skipped (the counter has been decremented), `None` when a probe is
    /// due now. Only meaningful while Quarantined.
    pub(crate) fn tick_reprobe(&mut self) -> Option<u32> {
        if self.reprobe_in == 0 {
            return None;
        }
        self.reprobe_in -= 1;
        Some(self.reprobe_in)
    }

    /// Advances the health machine after a round's terminal outcome.
    /// Returns the new health.
    pub(crate) fn apply_health(
        &mut self,
        class: ReachClass,
        config: &VerifierConfig,
    ) -> AgentHealth {
        match class {
            ReachClass::Verified => {
                self.consecutive_unreachable = 0;
                self.health = match self.health {
                    // A verified *probe* starts recovery; a verified round
                    // while Recovering completes it. Full trust is never
                    // restored in one step from Quarantined.
                    AgentHealth::Quarantined => {
                        self.reprobe_in = 0;
                        self.reprobe_backoff = 0;
                        AgentHealth::Recovering
                    }
                    AgentHealth::Recovering => AgentHealth::Healthy,
                    _ => AgentHealth::Healthy,
                };
            }
            ReachClass::ReachedNotVerified => {
                // The channel works, so unreachable streaks reset, but an
                // unverified verdict cannot progress recovery.
                self.consecutive_unreachable = 0;
                match self.health {
                    AgentHealth::Degraded => self.health = AgentHealth::Healthy,
                    AgentHealth::Quarantined => self.escalate_reprobe(config),
                    AgentHealth::Healthy | AgentHealth::Recovering => {}
                }
            }
            ReachClass::Unreachable => {
                self.consecutive_unreachable = self.consecutive_unreachable.saturating_add(1);
                match self.health {
                    AgentHealth::Healthy | AgentHealth::Degraded => {
                        if self.consecutive_unreachable >= config.quarantine_after {
                            self.enter_quarantine(config);
                        } else if self.consecutive_unreachable >= config.degraded_after {
                            self.health = AgentHealth::Degraded;
                        }
                    }
                    AgentHealth::Recovering => self.enter_quarantine(config),
                    AgentHealth::Quarantined => self.escalate_reprobe(config),
                }
            }
        }
        self.health
    }

    /// Copies out the mutable state for journaling.
    pub(crate) fn snapshot_state(&self) -> AgentStateSnapshot {
        AgentStateSnapshot {
            policy_epoch: self.policy_epoch,
            shared_policy: self.shared_policy,
            next_entry: self.next_entry,
            replayed_pcr: self.replayed_pcr,
            last_boot_count: self.last_boot_count,
            status: self.status,
            alerts: self.alerts.clone(),
            attestations: self.attestations,
            nonce_counter: self.nonce_counter,
            health: self.health,
            consecutive_unreachable: self.consecutive_unreachable,
            reprobe_in: self.reprobe_in,
            reprobe_backoff: self.reprobe_backoff,
        }
    }

    /// Overwrites the mutable state from a journaled snapshot. The
    /// policy handle is set separately (it is resolved from the
    /// journal's policy-epoch records, not stored per agent).
    pub(crate) fn restore_state(&mut self, state: AgentStateSnapshot) {
        self.policy_epoch = state.policy_epoch;
        self.shared_policy = state.shared_policy;
        self.next_entry = state.next_entry;
        self.replayed_pcr = state.replayed_pcr;
        self.last_boot_count = state.last_boot_count;
        self.status = state.status;
        self.alerts = state.alerts;
        self.attestations = state.attestations;
        self.nonce_counter = state.nonce_counter;
        self.health = state.health;
        self.consecutive_unreachable = state.consecutive_unreachable;
        self.reprobe_in = state.reprobe_in;
        self.reprobe_backoff = state.reprobe_backoff;
    }

    /// The enrolled AK public key.
    pub(crate) fn ak(&self) -> &cia_crypto::VerifyingKey {
        &self.ak
    }

    /// The current policy handle.
    pub(crate) fn policy_handle(&self) -> &Arc<RuntimePolicy> {
        &self.policy
    }

    fn enter_quarantine(&mut self, config: &VerifierConfig) {
        self.health = AgentHealth::Quarantined;
        self.reprobe_backoff = config.reprobe_backoff_rounds.max(1);
        self.reprobe_in = self.reprobe_backoff;
    }

    fn escalate_reprobe(&mut self, config: &VerifierConfig) {
        self.reprobe_backoff = self
            .reprobe_backoff
            .max(1)
            .saturating_mul(2)
            .min(config.reprobe_backoff_max_rounds.max(1));
        self.reprobe_in = self.reprobe_backoff;
    }
}

/// The verifier service.
#[derive(Debug)]
pub struct Verifier {
    config: VerifierConfig,
    agents: BTreeMap<AgentId, AgentRecord>,
    /// The shared policy store: one epoch-tagged snapshot all shared
    /// agents appraise against.
    store: PolicyStore,
}

impl Verifier {
    /// Creates a verifier.
    pub fn new(config: VerifierConfig) -> Self {
        Verifier {
            config,
            agents: BTreeMap::new(),
            store: PolicyStore::new(),
        }
    }

    /// The active configuration.
    pub fn config(&self) -> VerifierConfig {
        self.config
    }

    /// Replaces the active configuration (e.g. to widen the retry budget
    /// when the transport degrades). Takes effect from the next round.
    pub fn set_config(&mut self, config: VerifierConfig) {
        self.config = config;
    }

    /// Enrols an agent with a per-agent *override* policy: its AK public
    /// key (from the registrar) and its own runtime policy. Override
    /// agents never adopt shared-store snapshots — the heterogeneous
    /// fleet case. For homogeneous fleets prefer
    /// [`Verifier::add_agent_shared`].
    pub fn add_agent(
        &mut self,
        id: impl Into<AgentId>,
        ak: cia_crypto::VerifyingKey,
        policy: RuntimePolicy,
    ) {
        self.add_agent_with_identity(id, ak, BackendIdentity::tpm_ima(), policy);
    }

    /// [`Verifier::add_agent`] with an explicit backend identity (from the
    /// registrar record) — required for non-TPM backends.
    pub fn add_agent_with_identity(
        &mut self,
        id: impl Into<AgentId>,
        ak: cia_crypto::VerifyingKey,
        identity: BackendIdentity,
        policy: RuntimePolicy,
    ) {
        let epoch = self.store.epoch();
        self.agents.insert(
            id.into(),
            Self::fresh_record(ak, identity, Arc::new(policy), epoch, false),
        );
    }

    /// Enrols an agent that follows the shared policy store: it starts on
    /// the current snapshot (one `Arc` clone) and adopts every future
    /// published epoch.
    pub fn add_agent_shared(&mut self, id: impl Into<AgentId>, ak: cia_crypto::VerifyingKey) {
        self.add_agent_shared_with_identity(id, ak, BackendIdentity::tpm_ima());
    }

    /// [`Verifier::add_agent_shared`] with an explicit backend identity
    /// (from the registrar record) — required for non-TPM backends.
    pub fn add_agent_shared_with_identity(
        &mut self,
        id: impl Into<AgentId>,
        ak: cia_crypto::VerifyingKey,
        identity: BackendIdentity,
    ) {
        let snapshot = Arc::clone(self.store.snapshot());
        let epoch = self.store.epoch();
        self.agents.insert(
            id.into(),
            Self::fresh_record(ak, identity, snapshot, epoch, true),
        );
    }

    fn fresh_record(
        ak: cia_crypto::VerifyingKey,
        backend: BackendIdentity,
        policy: Arc<RuntimePolicy>,
        policy_epoch: PolicyEpoch,
        shared_policy: bool,
    ) -> AgentRecord {
        AgentRecord {
            ak,
            backend,
            policy,
            policy_epoch,
            shared_policy,
            next_entry: 0,
            replayed_pcr: HashAlgorithm::Sha256.zero_digest(),
            last_boot_count: None,
            status: AgentStatus::Trusted,
            alerts: Vec::new(),
            attestations: 0,
            nonce_counter: 0,
            health: AgentHealth::Healthy,
            consecutive_unreachable: 0,
            reprobe_in: 0,
            reprobe_backoff: 0,
        }
    }

    /// The enrolled agent ids, in order.
    pub fn agent_ids(&self) -> Vec<AgentId> {
        self.agents.keys().cloned().collect()
    }

    /// Replaces one agent's policy with a per-agent *override* (a
    /// targeted dynamic policy push). The agent stops following the
    /// shared store until [`Verifier::use_shared_policy`] re-attaches it.
    ///
    /// # Errors
    ///
    /// [`KeylimeError::UnknownAgent`].
    pub fn update_policy(
        &mut self,
        id: &AgentId,
        policy: RuntimePolicy,
    ) -> Result<(), KeylimeError> {
        let epoch = self.store.epoch();
        let record = self.record_mut(id)?;
        record.policy = Arc::new(policy);
        record.policy_epoch = epoch;
        record.shared_policy = false;
        Ok(())
    }

    /// Re-attaches an agent to the shared store, adopting the current
    /// snapshot unless the agent is quarantined (it will converge on
    /// recovery).
    ///
    /// # Errors
    ///
    /// [`KeylimeError::UnknownAgent`].
    pub fn use_shared_policy(&mut self, id: &AgentId) -> Result<(), KeylimeError> {
        let shared = self.store.shared();
        let record = self.record_mut(id)?;
        record.shared_policy = true;
        record.adopt_shared(&shared);
        Ok(())
    }

    /// Publishes a full policy as a new shared-store epoch and hands the
    /// snapshot to every non-quarantined shared agent (one `Arc` clone
    /// each — zero policy deep-copies regardless of fleet size).
    pub fn publish_policy(&mut self, policy: RuntimePolicy) -> PolicyEpoch {
        self.publish_policy_arc(Arc::new(policy))
    }

    /// [`Verifier::publish_policy`] for an already-shared snapshot —
    /// no copy at all, not even at publish.
    pub fn publish_policy_arc(&mut self, policy: Arc<RuntimePolicy>) -> PolicyEpoch {
        let epoch = self.store.publish_arc(policy);
        self.adopt_all();
        epoch
    }

    /// Applies a generator delta to the shared snapshot copy-on-write and
    /// distributes the new epoch ([`PolicyStore::publish_delta`]: at most
    /// one policy copy total, independent of fleet size). Returns the new
    /// epoch and the number of entry operations applied.
    pub fn publish_delta(&mut self, delta: &PolicyDelta) -> (PolicyEpoch, usize) {
        let (epoch, applied) = self.store.publish_delta(delta);
        self.adopt_all();
        (epoch, applied)
    }

    fn adopt_all(&mut self) {
        let shared = self.store.shared();
        for record in self.agents.values_mut() {
            record.adopt_shared(&shared);
        }
    }

    /// The shared policy store.
    pub fn policy_store(&self) -> &PolicyStore {
        &self.store
    }

    /// The active shared-store epoch.
    pub fn current_epoch(&self) -> PolicyEpoch {
        self.store.epoch()
    }

    /// The store epoch `id` last acknowledged (adopted). For override
    /// agents this is the epoch current when their override was set.
    ///
    /// # Errors
    ///
    /// [`KeylimeError::UnknownAgent`].
    pub fn agent_policy_epoch(&self, id: &AgentId) -> Result<PolicyEpoch, KeylimeError> {
        Ok(self.record(id)?.policy_epoch)
    }

    /// The agent's current policy.
    ///
    /// # Errors
    ///
    /// [`KeylimeError::UnknownAgent`].
    pub fn policy(&self, id: &AgentId) -> Result<&RuntimePolicy, KeylimeError> {
        Ok(self.record(id)?.policy.as_ref())
    }

    /// The agent's status.
    ///
    /// # Errors
    ///
    /// [`KeylimeError::UnknownAgent`].
    pub fn status(&self, id: &AgentId) -> Result<AgentStatus, KeylimeError> {
        Ok(self.record(id)?.status)
    }

    /// All alerts raised for an agent so far.
    ///
    /// # Errors
    ///
    /// [`KeylimeError::UnknownAgent`].
    pub fn alerts(&self, id: &AgentId) -> Result<&[Alert], KeylimeError> {
        Ok(&self.record(id)?.alerts)
    }

    /// Number of successful attestations for an agent.
    ///
    /// # Errors
    ///
    /// [`KeylimeError::UnknownAgent`].
    pub fn attestation_count(&self, id: &AgentId) -> Result<u64, KeylimeError> {
        Ok(self.record(id)?.attestations)
    }

    /// The agent's reachability health.
    ///
    /// # Errors
    ///
    /// [`KeylimeError::UnknownAgent`].
    pub fn health(&self, id: &AgentId) -> Result<AgentHealth, KeylimeError> {
        Ok(self.record(id)?.health)
    }

    /// The backend identity the agent enrolled with.
    ///
    /// # Errors
    ///
    /// [`KeylimeError::UnknownAgent`].
    pub fn backend_identity(&self, id: &AgentId) -> Result<BackendIdentity, KeylimeError> {
        Ok(self.record(id)?.backend_identity())
    }

    /// The PCR 10 value replayed from every entry processed so far — the
    /// verifier's ground truth for the agent's measurement history.
    ///
    /// # Errors
    ///
    /// [`KeylimeError::UnknownAgent`].
    pub fn replayed_pcr(&self, id: &AgentId) -> Result<Digest, KeylimeError> {
        Ok(self.record(id)?.replayed_pcr)
    }

    /// Per-state counts over every enrolled agent.
    pub fn health_counts(&self) -> HealthCounts {
        let mut counts = HealthCounts::default();
        for record in self.agents.values() {
            counts.count(record.health);
        }
        counts
    }

    /// Operator action: resume polling after investigating a failure.
    /// Does not advance past the failing entry — if the cause is still
    /// present (e.g. the policy was not fixed), the next poll fails again,
    /// exactly as the paper describes for P2.
    ///
    /// # Errors
    ///
    /// [`KeylimeError::UnknownAgent`].
    pub fn resume(&mut self, id: &AgentId) -> Result<(), KeylimeError> {
        self.record_mut(id)?.status = AgentStatus::Trusted;
        Ok(())
    }

    /// Operator action: resolve a failure by *skipping* the offending
    /// entries — advances past everything currently in the agent's log
    /// without evaluating it, then resumes. This models the manual
    /// clean-up the paper warns takes time (the attacker's window).
    ///
    /// # Errors
    ///
    /// [`KeylimeError::UnknownAgent`] / transport errors.
    pub fn resolve_by_skipping<T: Transport>(
        &mut self,
        transport: &mut T,
        agent: &mut Agent,
    ) -> Result<(), KeylimeError> {
        let id = agent.id().clone();
        let config = self.config;
        let record = self.record_mut(&id)?;
        // Same three-way negotiation as the attestation path: config,
        // transport capability, and the enrolled backend's capability.
        let structured = config.structured_excerpt
            && transport.supports_structured_excerpt()
            && record.backend.kind().capabilities().structured_excerpt;
        let nonce = Self::make_nonce(&id, record.nonce_counter);
        record.nonce_counter += 1;
        let request = AgentRequest::Quote {
            nonce,
            from_entry: record.next_entry,
            structured,
        };
        let response: AgentResponse = transport.call(&request, |req| agent.handle(req))?;
        if let AgentResponse::Quote(q) = response {
            let parsed;
            let entries: Option<&[ImaLogEntry]> = match &q.entries {
                Some(typed) => Some(typed),
                None => match MeasurementLog::parse(&q.log_excerpt) {
                    Ok(log) => {
                        parsed = log;
                        Some(parsed.entries())
                    }
                    Err(_) => None,
                },
            };
            if let Some(entries) = entries {
                for entry in entries {
                    record.replayed_pcr = extend_digest(
                        HashAlgorithm::Sha256,
                        record.replayed_pcr,
                        entry.template_hash(HashAlgorithm::Sha256),
                    );
                }
                record.next_entry = q.total_entries;
                record.last_boot_count = Some(q.boot_count);
            }
        }
        record.status = AgentStatus::Trusted;
        Ok(())
    }

    /// Polls `agent` once: quote, incremental log, policy evaluation.
    ///
    /// # Errors
    ///
    /// [`KeylimeError::UnknownAgent`] or transport failures. Attestation
    /// *failures* are not `Err`s — they come back as
    /// [`AttestationOutcome::Failed`].
    pub fn attest<T: Transport>(
        &mut self,
        transport: &mut T,
        agent: &mut Agent,
        day: u32,
    ) -> Result<AttestationOutcome, KeylimeError> {
        let id = agent.id().clone();
        let config = self.config;
        let shared = self.store.shared();
        let record = self.record_mut(&id)?;
        let mut stats = HotStats::default();
        Self::attest_record(
            &config, &shared, record, &id, transport, agent, day, &mut stats,
        )
    }

    /// The per-record attestation flow, factored out so the fleet
    /// [`scheduler`](crate::scheduler) can drive many records in
    /// parallel, each worker holding one `&mut AgentRecord`. Composed
    /// from [`Verifier::fetch_evidence`] (the transport half) and
    /// [`Verifier::appraise_evidence`] (the CPU half) — the pipelined
    /// round runs the same two halves on different workers, so inline
    /// and pipelined verdicts agree by construction.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn attest_record<T: Transport>(
        config: &VerifierConfig,
        shared: &SharedPolicy,
        record: &mut AgentRecord,
        id: &AgentId,
        transport: &mut T,
        agent: &mut Agent,
        day: u32,
        stats: &mut HotStats,
    ) -> Result<AttestationOutcome, KeylimeError> {
        match Self::fetch_evidence(config, shared, record, id, transport, agent)? {
            FetchedEvidence::Paused => Ok(AttestationOutcome::SkippedPaused),
            FetchedEvidence::Quote { resp, nonce } => Ok(Self::appraise_evidence(
                config, record, id, *resp, &nonce, day, stats,
            )),
        }
    }

    /// The transport half of one attestation: shared-policy adoption,
    /// wire-format negotiation, the quote request, and the post-reboot
    /// re-quote. Returns the evidence still unappraised so a pipelined
    /// round can hand it to a separate appraisal worker while this lane
    /// fetches the next agent's quote.
    pub(crate) fn fetch_evidence<T: Transport>(
        config: &VerifierConfig,
        shared: &SharedPolicy,
        record: &mut AgentRecord,
        id: &AgentId,
        transport: &mut T,
        agent: &mut Agent,
    ) -> Result<FetchedEvidence, KeylimeError> {
        // Lazy adoption backstop: a shared agent that missed the eager
        // push (enrolled later, or just recovered from quarantine) picks
        // up the current epoch here. No-op for overrides and while
        // quarantined.
        record.adopt_shared(shared);

        // Wire-format negotiation is three-way: the verifier's config,
        // the transport's capability, *and* the enrolled backend's
        // capability. A backend that only speaks the legacy text list
        // (e.g. secure-world) must never be asked for the v2 excerpt —
        // it would refuse the request outright.
        let structured = config.structured_excerpt
            && transport.supports_structured_excerpt()
            && record.backend.kind().capabilities().structured_excerpt;

        if record.status == AgentStatus::Paused && !config.continue_on_failure {
            return Ok(FetchedEvidence::Paused);
        }

        let nonce = Self::make_nonce(id, record.nonce_counter);
        record.nonce_counter += 1;
        let request = AgentRequest::Quote {
            nonce: nonce.clone(),
            from_entry: record.next_entry,
            structured,
        };
        let response: AgentResponse = transport.call(&request, |req| agent.handle(req))?;
        let quote_resp = match response {
            AgentResponse::Quote(q) => q,
            AgentResponse::Error { reason } => return Err(KeylimeError::Agent { reason }),
            other => {
                return Err(KeylimeError::Agent {
                    reason: format!("unexpected response {other:?}"),
                })
            }
        };

        // Reboot detection: TPM reset counter changed (or first contact
        // after enrolment mid-boot) — restart from a fresh log.
        let rebooted = record.last_boot_count != Some(quote_resp.boot_count);
        if rebooted && record.last_boot_count.is_some() {
            record.next_entry = 0;
            record.replayed_pcr = HashAlgorithm::Sha256.zero_digest();
            let nonce2 = Self::make_nonce(id, record.nonce_counter);
            record.nonce_counter += 1;
            let request = AgentRequest::Quote {
                nonce: nonce2.clone(),
                from_entry: 0,
                structured,
            };
            let response: AgentResponse = transport.call(&request, |req| agent.handle(req))?;
            let quote_resp = match response {
                AgentResponse::Quote(q) => q,
                other => {
                    return Err(KeylimeError::Agent {
                        reason: format!("unexpected response {other:?}"),
                    })
                }
            };
            return Ok(FetchedEvidence::Quote {
                resp: Box::new(quote_resp),
                nonce: nonce2,
            });
        }

        Ok(FetchedEvidence::Quote {
            resp: Box::new(quote_resp),
            nonce,
        })
    }

    /// The CPU half of one attestation: appraises fetched evidence
    /// against the record's policy. Pure of transport — safe to run on
    /// an appraisal worker while the fetching lane moves on.
    pub(crate) fn appraise_evidence(
        config: &VerifierConfig,
        record: &mut AgentRecord,
        id: &AgentId,
        resp: QuoteResponse,
        nonce: &[u8],
        day: u32,
        stats: &mut HotStats,
    ) -> AttestationOutcome {
        Self::finish_attestation(
            record,
            id,
            resp,
            nonce,
            day,
            config.continue_on_failure,
            config.allowed_backends,
            stats,
        )
    }

    /// Core verification once a quote response is in hand.
    #[allow(clippy::too_many_arguments)]
    fn finish_attestation(
        record: &mut AgentRecord,
        id: &AgentId,
        resp: QuoteResponse,
        nonce: &[u8],
        day: u32,
        continue_on_failure: bool,
        allowed: BackendSet,
        stats: &mut HotStats,
    ) -> AttestationOutcome {
        let mut alerts: Vec<Alert> = Vec::new();
        let fail = |record: &mut AgentRecord, alerts: Vec<Alert>| {
            record.status = AgentStatus::Paused;
            record.alerts.extend(alerts.iter().cloned());
            AttestationOutcome::Failed { alerts }
        };

        // ⓪ Backend gating. The enrolled identity — not the evidence's
        // own tag — decides how this agent is appraised; a tag that
        // disagrees with the record is a substitution attempt.
        let identity = record.backend;
        if !allowed.contains(identity.kind()) {
            alerts.push(Alert {
                agent: id.clone(),
                day,
                kind: FailureKind::BackendNotAllowed {
                    backend: identity.kind(),
                },
            });
            return fail(record, alerts);
        }
        if resp.backend != identity.kind() {
            alerts.push(Alert {
                agent: id.clone(),
                day,
                kind: FailureKind::BackendMismatch {
                    expected: identity.kind(),
                    reported: resp.backend,
                },
            });
            return fail(record, alerts);
        }

        // ① Quote authenticity and freshness.
        if !resp.quote.verify(&record.ak, nonce) {
            alerts.push(Alert {
                agent: id.clone(),
                day,
                kind: FailureKind::QuoteInvalid,
            });
            return fail(record, alerts);
        }

        // Log cannot rewind within one boot.
        if resp.total_entries < record.next_entry {
            alerts.push(Alert {
                agent: id.clone(),
                day,
                kind: FailureKind::LogRewound,
            });
            return fail(record, alerts);
        }

        // Launch-rooted identity (confidential VMs): the quoted launch
        // register must equal the platform-certified measurement the
        // agent enrolled with. Checked after ① so only a signed register
        // is trusted.
        if let Some(enrolled_launch) = identity.launch_measurement() {
            if resp.quote.pcr_value(CVM_LAUNCH_REGISTER) != Some(enrolled_launch) {
                alerts.push(Alert {
                    agent: id.clone(),
                    day,
                    kind: FailureKind::LaunchMeasurementMismatch,
                });
                return fail(record, alerts);
            }
        }

        // ② The excerpt must replay to the quoted evidence register
        // (PCR 10 on TPM+IMA). A structured
        // (v2) excerpt is used as-is — its template-hash caches never
        // travel, so the fold below recomputes them from the entry fields
        // and any tampering lands here as a PCR mismatch. A text excerpt
        // must parse first (which also validates each recorded SHA-1
        // template hash).
        let parsed_text;
        let entries: &[ImaLogEntry] = match &resp.entries {
            Some(typed) => typed,
            None => match MeasurementLog::parse(&resp.log_excerpt) {
                Ok(log) => {
                    parsed_text = log;
                    parsed_text.entries()
                }
                Err(e) => {
                    alerts.push(Alert {
                        agent: id.clone(),
                        day,
                        kind: FailureKind::LogParse {
                            reason: e.to_string(),
                        },
                    });
                    return fail(record, alerts);
                }
            },
        };
        let mut full_fold = record.replayed_pcr;
        for entry in entries {
            full_fold = extend_digest(
                HashAlgorithm::Sha256,
                full_fold,
                entry.template_hash(HashAlgorithm::Sha256),
            );
        }
        let quoted_evidence = resp.quote.pcr_value(identity.kind().evidence_register());
        if quoted_evidence != Some(full_fold) {
            alerts.push(Alert {
                agent: id.clone(),
                day,
                kind: FailureKind::PcrMismatch,
            });
            return fail(record, alerts);
        }

        // ③ Policy evaluation, entry by entry. The fast paths (allowed /
        // excluded) run entirely on borrowed data — no per-entry heap
        // allocation; hex rendering happens only when building an alert.
        // Each entry extends the fold exactly once: the full fold was
        // already computed in ②, so the happy path adopts it wholesale
        // and only a stop-on-failure exit re-folds the accepted prefix.
        // lint:allow(determinism): policy-check latency metering only —
        // feeds HotStats::policy_check_ns, never an appraisal verdict.
        let check_started = Instant::now();
        let has_boot_aggregate = identity.kind().capabilities().boot_aggregate;
        let mut processed = 0usize;
        for (offset, entry) in entries.iter().enumerate() {
            let absolute_index = record.next_entry + offset;
            let verdict =
                if has_boot_aggregate && absolute_index == 0 && entry.path == BOOT_AGGREGATE_NAME {
                    // boot_aggregate must match the quoted PCRs 0–9.
                    let mut h = Sha256::new();
                    for pcr in 0..=9u8 {
                        if let Some(v) = resp.quote.pcr_value(pcr) {
                            h.update(v.as_bytes());
                        }
                    }
                    if h.finalize() == entry.filedata_hash {
                        None
                    } else {
                        Some(FailureKind::BootAggregateMismatch)
                    }
                } else {
                    match record
                        .policy
                        .check_digest(&entry.path, &entry.filedata_hash)
                    {
                        PolicyCheck::Allowed | PolicyCheck::Excluded => None,
                        PolicyCheck::HashMismatch { .. } => Some(FailureKind::HashMismatch {
                            path: entry.path.clone(),
                            digest: entry.filedata_hash.to_hex(),
                        }),
                        PolicyCheck::NotInPolicy => Some(FailureKind::NotInPolicy {
                            path: entry.path.clone(),
                            digest: entry.filedata_hash.to_hex(),
                        }),
                    }
                };

            if let Some(kind) = verdict {
                alerts.push(Alert {
                    agent: id.clone(),
                    day,
                    kind,
                });
                if !continue_on_failure {
                    // P2: stop here. `next_entry` stays at the failing
                    // entry; everything after it goes unevaluated. Only
                    // the accepted prefix enters the replayed fold.
                    for accepted in &entries[..processed] {
                        record.replayed_pcr = extend_digest(
                            HashAlgorithm::Sha256,
                            record.replayed_pcr,
                            accepted.template_hash(HashAlgorithm::Sha256),
                        );
                    }
                    record.next_entry += processed;
                    record.last_boot_count = Some(resp.boot_count);
                    stats.entries_evaluated += processed as u64 + 1;
                    stats.policy_check_ns += check_started.elapsed().as_nanos() as u64;
                    return fail(record, alerts);
                }
                // Continue-on-failure: evaluate everything; the entry
                // still advances the fold so later PCR checks align.
            }
            processed += 1;
        }

        stats.entries_evaluated += processed as u64;
        stats.policy_check_ns += check_started.elapsed().as_nanos() as u64;
        // Every entry was processed, so the replayed fold is exactly the
        // full fold verified against the quote in ②.
        record.replayed_pcr = full_fold;
        record.next_entry += processed;
        record.last_boot_count = Some(resp.boot_count);
        record.attestations += 1;

        if alerts.is_empty() {
            record.status = AgentStatus::Trusted;
            AttestationOutcome::Verified {
                new_entries: processed,
            }
        } else {
            // continue_on_failure: alerts recorded, polling continues.
            record.alerts.extend(alerts.iter().cloned());
            AttestationOutcome::Failed { alerts }
        }
    }

    /// Hands the scheduler the per-agent records alongside the config and
    /// shared-policy snapshots, so each worker can own one
    /// `&mut AgentRecord` while all of them read the same epoch.
    pub(crate) fn scheduler_view(
        &mut self,
    ) -> (
        VerifierConfig,
        SharedPolicy,
        &mut BTreeMap<AgentId, AgentRecord>,
    ) {
        (self.config, self.store.shared(), &mut self.agents)
    }

    /// Copies out one agent's mutable state for journaling.
    ///
    /// # Errors
    ///
    /// [`KeylimeError::UnknownAgent`].
    pub fn export_agent_state(&self, id: &AgentId) -> Result<AgentStateSnapshot, KeylimeError> {
        Ok(self.record(id)?.snapshot_state())
    }

    /// Recovery path: re-creates one agent record from its journaled
    /// enrolment constants, resolved policy handle, and mutable state
    /// snapshot. The result is bit-identical to the record the crashed
    /// verifier held.
    pub fn restore_agent(
        &mut self,
        id: impl Into<AgentId>,
        ak: cia_crypto::VerifyingKey,
        identity: BackendIdentity,
        policy: Arc<RuntimePolicy>,
        state: AgentStateSnapshot,
    ) {
        let mut record = Self::fresh_record(
            ak,
            identity,
            policy,
            state.policy_epoch,
            state.shared_policy,
        );
        record.restore_state(state);
        self.agents.insert(id.into(), record);
    }

    /// Recovery path: resets the shared store to a journaled snapshot
    /// and epoch (see [`PolicyStore::restore`]).
    pub fn restore_store(&mut self, snapshot: Arc<RuntimePolicy>, epoch: PolicyEpoch) {
        self.store = PolicyStore::restore(snapshot, epoch);
    }

    /// Withdraws one agent's record — the outward half of a federation
    /// re-balancing migration ([`export_agent_state`] +
    /// [`restore_agent`] on the target shard are the other half).
    /// Returns `true` when the agent was enrolled here.
    ///
    /// [`export_agent_state`]: Verifier::export_agent_state
    /// [`restore_agent`]: Verifier::restore_agent
    pub fn remove_agent(&mut self, id: &AgentId) -> bool {
        self.agents.remove(id).is_some()
    }

    /// Per-agent enrolment constants, for journaling: id, AK, backend
    /// identity, shared-store membership, and the current policy handle
    /// (only meaningful for override agents — shared agents resolve
    /// their policy from the store's epoch history instead).
    pub(crate) fn enrolment_view(
        &self,
    ) -> impl Iterator<
        Item = (
            &AgentId,
            &cia_crypto::VerifyingKey,
            BackendIdentity,
            bool,
            &Arc<RuntimePolicy>,
        ),
    > {
        self.agents.iter().map(|(id, r)| {
            (
                id,
                r.ak(),
                r.backend_identity(),
                r.follows_shared_store(),
                r.policy_handle(),
            )
        })
    }

    fn make_nonce(id: &AgentId, counter: u64) -> Vec<u8> {
        let mut h = Sha256::new();
        h.update(id.as_str().as_bytes());
        h.update(&counter.to_be_bytes());
        h.finalize().as_bytes().to_vec()
    }

    fn record(&self, id: &AgentId) -> Result<&AgentRecord, KeylimeError> {
        self.agents
            .get(id)
            .ok_or_else(|| KeylimeError::UnknownAgent { id: id.clone() })
    }

    fn record_mut(&mut self, id: &AgentId) -> Result<&mut AgentRecord, KeylimeError> {
        self.agents
            .get_mut(id)
            .ok_or_else(|| KeylimeError::UnknownAgent { id: id.clone() })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn record() -> AgentRecord {
        let mut rng = StdRng::seed_from_u64(11);
        Verifier::fresh_record(
            cia_crypto::KeyPair::generate(&mut rng).verifying,
            BackendIdentity::tpm_ima(),
            Arc::new(RuntimePolicy::new()),
            PolicyEpoch::ZERO,
            true,
        )
    }

    fn config() -> VerifierConfig {
        VerifierConfig::builder()
            .degraded_after(2)
            .quarantine_after(4)
            .reprobe_backoff_rounds(2)
            .reprobe_backoff_max_rounds(8)
            .build()
            .unwrap()
    }

    #[test]
    fn unreachable_streak_degrades_then_quarantines() {
        let c = config();
        let mut r = record();
        assert_eq!(
            r.apply_health(ReachClass::Unreachable, &c),
            AgentHealth::Healthy
        );
        assert_eq!(
            r.apply_health(ReachClass::Unreachable, &c),
            AgentHealth::Degraded
        );
        assert_eq!(
            r.apply_health(ReachClass::Unreachable, &c),
            AgentHealth::Degraded
        );
        assert_eq!(
            r.apply_health(ReachClass::Unreachable, &c),
            AgentHealth::Quarantined
        );
        assert_eq!(r.consecutive_unreachable, 4);
        assert_eq!(r.reprobe_backoff, 2, "enters at the base interval");
    }

    #[test]
    fn recovery_needs_two_verified_rounds() {
        let c = config();
        let mut r = record();
        for _ in 0..4 {
            r.apply_health(ReachClass::Unreachable, &c);
        }
        assert_eq!(r.health(), AgentHealth::Quarantined);
        assert_eq!(
            r.apply_health(ReachClass::Verified, &c),
            AgentHealth::Recovering,
            "a verified probe starts recovery, not full trust"
        );
        assert_eq!(
            r.apply_health(ReachClass::Verified, &c),
            AgentHealth::Healthy
        );
        assert_eq!(r.consecutive_unreachable, 0);
    }

    #[test]
    fn recovering_relapse_requarantines() {
        let c = config();
        let mut r = record();
        for _ in 0..4 {
            r.apply_health(ReachClass::Unreachable, &c);
        }
        r.apply_health(ReachClass::Verified, &c);
        assert_eq!(r.health(), AgentHealth::Recovering);
        assert_eq!(
            r.apply_health(ReachClass::Unreachable, &c),
            AgentHealth::Quarantined,
            "one more miss while recovering goes straight back"
        );
    }

    #[test]
    fn reached_but_failed_resets_streak_without_recovery() {
        let c = config();
        let mut r = record();
        r.apply_health(ReachClass::Unreachable, &c);
        r.apply_health(ReachClass::Unreachable, &c);
        assert_eq!(r.health(), AgentHealth::Degraded);
        assert_eq!(
            r.apply_health(ReachClass::ReachedNotVerified, &c),
            AgentHealth::Healthy,
            "the channel works again"
        );
        assert_eq!(r.consecutive_unreachable, 0);

        // But while Quarantined, a failing (reachable) agent stays put.
        for _ in 0..4 {
            r.apply_health(ReachClass::Unreachable, &c);
        }
        assert_eq!(
            r.apply_health(ReachClass::ReachedNotVerified, &c),
            AgentHealth::Quarantined,
            "recovery demands a verified attestation"
        );
    }

    #[test]
    fn reprobe_backoff_decays_and_caps() {
        let c = config();
        let mut r = record();
        for _ in 0..4 {
            r.apply_health(ReachClass::Unreachable, &c);
        }
        // Entered with backoff 2: skip, skip, probe.
        assert_eq!(r.tick_reprobe(), Some(1));
        assert_eq!(r.tick_reprobe(), Some(0));
        assert_eq!(r.tick_reprobe(), None, "probe due");
        // The probe fails: backoff doubles (2 → 4).
        r.apply_health(ReachClass::Unreachable, &c);
        assert_eq!(r.reprobe_backoff, 4);
        for expected in [3, 2, 1, 0] {
            assert_eq!(r.tick_reprobe(), Some(expected));
        }
        assert_eq!(r.tick_reprobe(), None);
        // Failed probes keep doubling but cap at 8.
        r.apply_health(ReachClass::Unreachable, &c);
        assert_eq!(r.reprobe_backoff, 8);
        r.apply_health(ReachClass::Unreachable, &c);
        assert_eq!(r.reprobe_backoff, 8, "capped");
    }

    #[test]
    fn verifier_health_accessors() {
        let mut rng = StdRng::seed_from_u64(12);
        let mut verifier = Verifier::new(VerifierConfig::default());
        let ak = cia_crypto::KeyPair::generate(&mut rng).verifying;
        verifier.add_agent("node-a", ak.clone(), RuntimePolicy::new());
        verifier.add_agent("node-b", ak, RuntimePolicy::new());
        assert_eq!(
            verifier.health(&AgentId::from("node-a")).unwrap(),
            AgentHealth::Healthy
        );
        assert!(verifier.health(&AgentId::from("ghost")).is_err());
        let counts = verifier.health_counts();
        assert_eq!(counts.healthy, 2);
        assert_eq!(counts.total(), 2);
    }

    fn test_ak(seed: u64) -> cia_crypto::VerifyingKey {
        let mut rng = StdRng::seed_from_u64(seed);
        cia_crypto::KeyPair::generate(&mut rng).verifying
    }

    fn policy_with(paths: &[&str]) -> RuntimePolicy {
        let mut p = RuntimePolicy::new();
        for path in paths {
            p.allow(*path, "aa");
        }
        p
    }

    #[test]
    fn publish_swaps_handles_for_shared_agents_only() {
        let mut verifier = Verifier::new(VerifierConfig::default());
        verifier.add_agent_shared("shared-a", test_ak(1));
        verifier.add_agent_shared("shared-b", test_ak(2));
        verifier.add_agent("override", test_ak(3), policy_with(&["/snap-scrubbed"]));

        let epoch = verifier.publish_policy(policy_with(&["/a", "/b"]));
        assert_eq!(epoch, verifier.current_epoch());
        let a = AgentId::from("shared-a");
        let b = AgentId::from("shared-b");
        let o = AgentId::from("override");
        assert_eq!(verifier.agent_policy_epoch(&a).unwrap(), epoch);
        assert_eq!(verifier.agent_policy_epoch(&b).unwrap(), epoch);
        assert_eq!(verifier.policy(&a).unwrap().path_count(), 2);
        // Both shared agents hold the *same* snapshot.
        assert!(Arc::ptr_eq(
            &verifier.record(&a).unwrap().policy,
            &verifier.record(&b).unwrap().policy
        ));
        // The override agent keeps its own policy and stale epoch.
        assert_eq!(verifier.policy(&o).unwrap().path_count(), 1);
        assert!(verifier.agent_policy_epoch(&o).unwrap() < epoch);
    }

    #[test]
    fn publish_delta_distributes_incrementally() {
        let mut verifier = Verifier::new(VerifierConfig::default());
        verifier.add_agent_shared("node", test_ak(4));
        verifier.publish_policy(policy_with(&["/a"]));
        let (epoch, applied) = verifier.publish_delta(&PolicyDelta {
            added: vec![("/b".into(), "bb".into())],
            ..PolicyDelta::default()
        });
        assert_eq!(applied, 1);
        let id = AgentId::from("node");
        assert_eq!(verifier.agent_policy_epoch(&id).unwrap(), epoch);
        assert_eq!(verifier.policy(&id).unwrap().path_count(), 2);
    }

    #[test]
    fn quarantined_agent_keeps_acknowledged_epoch_until_recovery() {
        let config = config();
        let mut verifier = Verifier::new(config);
        verifier.add_agent_shared("node", test_ak(5));
        let old_epoch = verifier.publish_policy(policy_with(&["/old"]));
        let id = AgentId::from("node");

        // Drive the agent into quarantine.
        for _ in 0..4 {
            verifier
                .record_mut(&id)
                .unwrap()
                .apply_health(ReachClass::Unreachable, &config);
        }
        assert_eq!(verifier.health(&id).unwrap(), AgentHealth::Quarantined);

        // A push lands while the agent is partitioned: the fleet moves
        // on, the quarantined agent still holds what it acknowledged.
        let new_epoch = verifier.publish_policy(policy_with(&["/old", "/new"]));
        assert_eq!(verifier.agent_policy_epoch(&id).unwrap(), old_epoch);
        assert_eq!(verifier.policy(&id).unwrap().path_count(), 1);

        // A successful probe moves it to Recovering; the next adoption
        // pass (eager or lazy) converges it to the latest epoch.
        verifier
            .record_mut(&id)
            .unwrap()
            .apply_health(ReachClass::Verified, &config);
        assert_eq!(verifier.health(&id).unwrap(), AgentHealth::Recovering);
        let shared = verifier.store.shared();
        verifier.record_mut(&id).unwrap().adopt_shared(&shared);
        assert_eq!(verifier.agent_policy_epoch(&id).unwrap(), new_epoch);
        assert_eq!(verifier.policy(&id).unwrap().path_count(), 2);
    }

    #[test]
    fn use_shared_policy_reattaches_an_override() {
        let mut verifier = Verifier::new(VerifierConfig::default());
        verifier.add_agent_shared("node", test_ak(6));
        let epoch = verifier.publish_policy(policy_with(&["/a"]));
        let id = AgentId::from("node");

        verifier
            .update_policy(&id, policy_with(&["/mine"]))
            .unwrap();
        assert_eq!(verifier.policy(&id).unwrap().path_count(), 1);
        // Publishing now skips the override...
        verifier.publish_policy(policy_with(&["/a", "/b"]));
        assert!(verifier.policy(&id).unwrap().digests_for("/mine").is_some());
        let _ = epoch;
        // ...until the agent is re-attached.
        verifier.use_shared_policy(&id).unwrap();
        assert_eq!(
            verifier.agent_policy_epoch(&id).unwrap(),
            verifier.current_epoch()
        );
        assert_eq!(verifier.policy(&id).unwrap().path_count(), 2);
    }
}
