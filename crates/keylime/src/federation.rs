//! Sharded verifier federation: many verifier instances, one fleet.
//!
//! The paper's scaling wall is a single verifier appraising an
//! ever-growing fleet on a fixed cadence. [`Federation`] splits the
//! fleet across N shards — each a full [`Verifier`] + [`FleetScheduler`]
//! pair with its own worker pool — placed by a consistent-hash
//! [`HashRing`] over [`AgentId`]s, and merges per-shard
//! [`RoundReport`]s and [`MetricsSnapshot`]s back into one fleet-level
//! view with conserved counters.
//!
//! **One store, many verifiers.** All shards share a single
//! [`ConcurrentPolicyStore`]: a policy (or delta) is published exactly
//! once fleet-wide, then every shard adopts the *same*
//! `Arc<RuntimePolicy>` snapshot via [`Verifier::publish_policy_arc`] —
//! zero per-shard copies, and every shard's internal epoch advances in
//! lockstep with the store's (each publish bumps both by exactly one).
//! After each publish or round the coordinator syncs the store's pin
//! map from the shards, so [`ConcurrentPolicyStore::converged`] and
//! [`ConcurrentPolicyStore::laggards`] describe the whole fleet.
//!
//! **Replay independence.** Transport lanes are assigned from the
//! *fleet-wide* sorted enrolment order and passed to each shard as a
//! lane-override map, so the fault stream an agent sees under a
//! [`crate::chaos::FaultPlan`] is a pure function of (plan, fleet
//! membership) — not of how many shards the fleet happens to be split
//! into. A one-shard federation produces bit-identical traces to a
//! plain [`Cluster`](crate::Cluster) round, and any shard count
//! produces bit-identical traces to any other.
//!
//! **Shard failure.** [`Federation::run_round_with_kill`] models a
//! shard dying at the start of a round: survivors complete their rounds
//! untouched, the coordinator removes the dead shard from the ring
//! (moving *only* its agents — consistent hashing), migrates each
//! orphaned record (enrolment constants + full
//! [`AgentStateSnapshot`](crate::AgentStateSnapshot) + the exact policy
//! `Arc` it held) onto its new shard, and runs a catch-up sub-round
//! over exactly the migrated agents at the *same* round number and
//! lanes. The merged fleet report still carries one result per
//! enrolled agent — nobody silently skipped — and equals the no-kill
//! trace bit for bit, because fault decisions depend only on (round,
//! lane, attempt) and each agent is still fetched exactly once on its
//! own lane.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

use cia_wire::{DuplexShardTransport, ShardTransport, TcpShardTransport};
use parking_lot::RaceCell;

use crate::agent::Agent;
use crate::config::VerifierConfig;
use crate::ids::AgentId;
use crate::policy::{PolicyDelta, RuntimePolicy};
use crate::remote::{self, DrivenRound};
use crate::ring::HashRing;
use crate::scheduler::{AgentRoundResult, FleetScheduler, MetricsSnapshot, RoundReport};
use crate::store::{ConcurrentPolicyStore, PolicyEpoch};
use crate::transport::Transport;
use crate::verifier::{HealthCounts, Verifier};

/// Which transport a [`Federation`] drives its shard rounds over.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ShardTransportKind {
    /// Direct in-process calls into each shard's scheduler — the
    /// identity transport, no wire boundary.
    #[default]
    InProc,
    /// In-memory duplex channels carrying fully-framed binary RPC (see
    /// [`crate::remote`]): the whole codec path without a socket.
    Duplex,
    /// TCP loopback sockets, one connection per shard.
    Tcp,
}

/// How a [`Federation`] is laid out.
#[derive(Debug, Clone)]
pub struct FederationConfig {
    /// Number of verifier shards (minimum 1).
    pub shards: u32,
    /// Virtual points per shard on the consistent-hash ring.
    pub replicas: u32,
    /// The per-shard verifier/scheduler configuration.
    pub verifier: VerifierConfig,
    /// The coordinator↔shard transport for federated rounds.
    pub transport: ShardTransportKind,
    /// Command batches kept in flight per shard on a wire transport
    /// (see [`crate::remote::drive_round`]); ignored in-process.
    pub wire_window: usize,
}

impl FederationConfig {
    /// `shards` shards with default ring replicas and `verifier` config,
    /// driven in-process.
    pub fn new(shards: u32, verifier: VerifierConfig) -> Self {
        FederationConfig {
            shards: shards.max(1),
            replicas: crate::ring::DEFAULT_REPLICAS,
            verifier,
            transport: ShardTransportKind::InProc,
            wire_window: remote::DEFAULT_WIRE_WINDOW,
        }
    }

    /// Same layout, driven over `transport`.
    pub fn with_transport(mut self, transport: ShardTransportKind) -> Self {
        self.transport = transport;
        self
    }

    /// Sets the per-shard in-flight command-batch window for wire
    /// transports (floored to 1 at use).
    pub fn with_wire_window(mut self, window: usize) -> Self {
        self.wire_window = window;
        self
    }
}

/// One shard: a verifier and the scheduler that drives it.
struct Shard {
    verifier: Verifier,
    scheduler: FleetScheduler,
}

impl Shard {
    fn new(config: VerifierConfig) -> Self {
        Shard {
            verifier: Verifier::new(config),
            scheduler: FleetScheduler::new(),
        }
    }
}

/// The outcome of one federated round: the merged fleet-level report
/// plus each live shard's own slice of it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FederatedRoundReport {
    /// One result per enrolled agent, fleet-wide, sorted by id.
    pub fleet: RoundReport,
    /// Per-shard reports (shard index ascending): each shard's results
    /// sorted by id, with health counts over the records that shard
    /// holds *after* the round (including any just-migrated agents).
    pub per_shard: Vec<(u32, RoundReport)>,
}

impl FederatedRoundReport {
    /// Number of live shards that contributed.
    pub fn shard_count(&self) -> usize {
        self.per_shard.len()
    }
}

/// The coordinator: owns the shards, the ring, and the shared store.
/// See the module docs.
pub struct Federation {
    ring: HashRing,
    shards: BTreeMap<u32, Shard>,
    store: Arc<ConcurrentPolicyStore>,
    /// Metrics folded out of killed shards, so the fleet-level snapshot
    /// never loses the work a dead shard already did. Audited by the
    /// race detector: the accumulator may only be touched by the
    /// coordinator, ordered against shard-thread work through the
    /// scoped-round join edges.
    retired: RaceCell<MetricsSnapshot>,
    /// The layout this federation was built with — kept so joining
    /// shards ([`Federation::add_shard`]) and wire rounds reuse it.
    config: FederationConfig,
}

impl Federation {
    /// A federation of `config.shards` empty shards.
    pub fn new(config: FederationConfig) -> Self {
        let mut ring = HashRing::with_replicas(config.replicas);
        let mut shards = BTreeMap::new();
        for sid in 0..config.shards.max(1) {
            ring.add_shard(sid);
            shards.insert(sid, Shard::new(config.verifier));
        }
        Federation {
            ring,
            shards,
            store: Arc::new(ConcurrentPolicyStore::new()),
            retired: RaceCell::new(MetricsSnapshot::default()).named("retired-metrics"),
            config,
        }
    }

    /// Re-shards an existing single verifier into a federation: the
    /// source's store snapshot/epoch seed the shared store, and every
    /// enrolment (constants + mutable state + the exact policy handle
    /// the record held) is placed onto its ring shard. The source is
    /// not consumed — the caller decides when to stop driving it.
    pub fn from_verifier(source: &Verifier, config: FederationConfig) -> Self {
        let shared = source.policy_store().shared();
        let mut fed = Federation::new(config);
        fed.store = Arc::new(ConcurrentPolicyStore::restore(
            Arc::clone(&shared.snapshot),
            shared.epoch,
        ));
        for shard in fed.shards.values_mut() {
            shard
                .verifier
                .restore_store(Arc::clone(&shared.snapshot), shared.epoch);
        }
        for (id, ak, identity, shared_policy, policy) in source.enrolment_view() {
            let Ok(state) = source.export_agent_state(id) else {
                debug_assert!(false, "enrolment_view yields enrolled ids");
                continue;
            };
            let acked_epoch = state.policy_epoch;
            let Some(shard) = fed.ring.place(id).and_then(|sid| fed.shards.get_mut(&sid)) else {
                debug_assert!(false, "a federation ring is never empty");
                continue;
            };
            shard.verifier.restore_agent(
                id.clone(),
                ak.clone(),
                identity,
                Arc::clone(policy),
                state,
            );
            if shared_policy {
                fed.store.record_pin(id, acked_epoch);
            }
        }
        fed
    }

    /// Number of live shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Live shard indices, ascending.
    pub fn shard_ids(&self) -> Vec<u32> {
        self.shards.keys().copied().collect()
    }

    /// The shard `id` is placed on.
    pub fn placement(&self, id: &AgentId) -> Option<u32> {
        self.ring.place(id)
    }

    /// The fleet-wide shared policy store.
    pub fn store(&self) -> &ConcurrentPolicyStore {
        &self.store
    }

    /// Every enrolled agent id, fleet-wide, sorted.
    pub fn agent_ids(&self) -> Vec<AgentId> {
        let mut ids: Vec<AgentId> = self
            .shards
            .values()
            .flat_map(|s| s.verifier.agent_ids())
            .collect();
        ids.sort();
        ids
    }

    /// Total enrolled agents across all shards.
    pub fn agent_count(&self) -> usize {
        self.shards
            .values()
            .map(|s| s.verifier.agent_ids().len())
            .sum()
    }

    /// Enrols a shared-store agent on its ring shard and pins it in the
    /// fleet store. Returns the shard index the agent landed on.
    pub fn enroll_shared(
        &mut self,
        id: impl Into<AgentId>,
        ak: cia_crypto::VerifyingKey,
        identity: crate::backend::BackendIdentity,
    ) -> u32 {
        let id = id.into();
        // A federation always keeps >= 1 shard (construction floors the
        // count; kill_shard refuses to remove the last), so placement
        // cannot miss.
        let sid = self.ring.place(&id).unwrap_or_default();
        if let Some(shard) = self.shards.get_mut(&sid) {
            shard
                .verifier
                .add_agent_shared_with_identity(id.clone(), ak, identity);
            self.store.adopt(&id);
        } else {
            debug_assert!(false, "ring places on live shards");
        }
        sid
    }

    /// Publishes a full policy once fleet-wide: one new store epoch,
    /// then every shard adopts the same snapshot `Arc` (zero copies).
    pub fn publish_policy(&mut self, policy: RuntimePolicy) -> PolicyEpoch {
        let epoch = self.store.publish(policy);
        self.distribute(epoch);
        epoch
    }

    /// Publishes a delta once fleet-wide (the store's copy-on-write /
    /// zero-copy path), then every shard adopts the resulting snapshot
    /// `Arc`. The delta is applied exactly once no matter how many
    /// shards exist.
    pub fn publish_delta(&mut self, delta: &PolicyDelta) -> (PolicyEpoch, usize) {
        let (epoch, applied) = self.store.publish_delta(delta);
        self.distribute(epoch);
        (epoch, applied)
    }

    fn distribute(&mut self, epoch: PolicyEpoch) {
        let snapshot = Arc::clone(&self.store.shared().snapshot);
        for shard in self.shards.values_mut() {
            let shard_epoch = shard.verifier.publish_policy_arc(Arc::clone(&snapshot));
            debug_assert_eq!(
                shard_epoch, epoch,
                "shard epochs advance in lockstep with the store"
            );
        }
        self.sync_pins();
    }

    /// Copies every shared agent's acknowledged epoch into the store's
    /// pin map, so fleet-wide convergence queries see what the shards
    /// actually hold (quarantined laggards included).
    fn sync_pins(&self) {
        for shard in self.shards.values() {
            for (id, _ak, _identity, shared_policy, _policy) in shard.verifier.enrolment_view() {
                if shared_policy {
                    if let Ok(epoch) = shard.verifier.agent_policy_epoch(id) {
                        self.store.record_pin(id, epoch);
                    }
                }
            }
        }
    }

    /// Fleet-wide transport lanes: every enrolled agent's position in
    /// the *fleet* sorted enrolment order — exactly the lane a single
    /// un-sharded verifier would assign it, which is what makes traces
    /// shard-count independent.
    fn global_lanes(&self) -> BTreeMap<AgentId, u64> {
        let mut ids: BTreeSet<AgentId> = BTreeSet::new();
        for shard in self.shards.values() {
            ids.extend(shard.verifier.agent_ids());
        }
        ids.into_iter()
            .enumerate()
            .map(|(lane, id)| (id, lane as u64))
            .collect()
    }

    /// Runs one federated round: every shard's round runs concurrently
    /// (each with its own worker pool), then the per-shard reports merge
    /// into the fleet-level report.
    ///
    /// The coordinator↔shard path is chosen by
    /// [`FederationConfig::transport`]: direct in-process dispatch, or
    /// the binary wire protocol of [`crate::remote`] over in-memory
    /// duplex channels or TCP loopback sockets. All three produce
    /// bit-identical reports — the wire boundary changes mechanics, not
    /// outcomes.
    pub fn run_round<T>(&mut self, agents: &mut [Agent], transport: &T) -> FederatedRoundReport
    where
        T: Transport + Sync,
    {
        match self.config.transport {
            ShardTransportKind::InProc => self.run_round_inproc(agents, transport),
            ShardTransportKind::Duplex => {
                let conns: BTreeMap<u32, _> = self
                    .shards
                    .keys()
                    .map(|&sid| (sid, DuplexShardTransport::pair()))
                    .collect();
                self.run_round_wire(agents, transport, conns)
            }
            ShardTransportKind::Tcp => {
                let conns: BTreeMap<u32, _> = self
                    .shards
                    .keys()
                    .map(|&sid| {
                        let pair =
                            remote::require(TcpShardTransport::loopback_pair(), "tcp loopback");
                        (sid, pair)
                    })
                    .collect();
                self.run_round_wire(agents, transport, conns)
            }
        }
    }

    /// The in-process round: scoped threads calling straight into each
    /// shard's scheduler — the identity transport.
    fn run_round_inproc<T>(&mut self, agents: &mut [Agent], transport: &T) -> FederatedRoundReport
    where
        T: Transport + Sync,
    {
        let lanes = self.global_lanes();
        let mut pools: BTreeMap<u32, Vec<&mut Agent>> = BTreeMap::new();
        for agent in agents.iter_mut() {
            if let Some(sid) = self.ring.place(agent.id()) {
                pools.entry(sid).or_default().push(agent);
            }
        }
        let mut results: BTreeMap<u32, Vec<AgentRoundResult>> = BTreeMap::new();
        crossbeam::thread::scope(|scope| {
            let mut handles = Vec::new();
            for (&sid, shard) in self.shards.iter_mut() {
                let pool = pools.remove(&sid).unwrap_or_default();
                let lanes = &lanes;
                handles.push((
                    sid,
                    scope.spawn(move || {
                        shard.scheduler.run_round_core(
                            &mut shard.verifier,
                            pool.into_iter(),
                            transport,
                            None,
                            Some(lanes),
                            |_, _| {},
                        )
                    }),
                ));
            }
            for (sid, handle) in handles {
                let report = match handle.join() {
                    Ok(report) => report,
                    Err(payload) => std::panic::resume_unwind(payload),
                };
                results.insert(sid, report.results);
            }
        });
        self.sync_pins();
        self.finish_report(results)
    }

    /// The wire round: each shard runs behind one connection of the
    /// binary RPC protocol. Per shard, a *server* thread runs the shard
    /// event loop ([`remote::serve_round`] — reader, streamed
    /// dispatcher, batching writer) and a *driver* thread plays the
    /// coordinator ([`remote::drive_round`] — batched, windowed
    /// commands). The merged report is built **from the driver side's
    /// decoded rows**, so everything in it round-tripped the codec;
    /// equivalence with the server's own report is debug-asserted.
    fn run_round_wire<T, C>(
        &mut self,
        agents: &mut [Agent],
        transport: &T,
        mut conns: BTreeMap<u32, (C, C)>,
    ) -> FederatedRoundReport
    where
        T: Transport + Sync,
        C: ShardTransport + Send,
    {
        let lanes = self.global_lanes();
        let mut pools: BTreeMap<u32, Vec<&mut Agent>> = BTreeMap::new();
        for agent in agents.iter_mut() {
            if let Some(sid) = self.ring.place(agent.id()) {
                pools.entry(sid).or_default().push(agent);
            }
        }
        // The command list per shard: its enrolled agents (sorted) with
        // their fleet-wide lanes — exactly what run_round_core would
        // build locally.
        let mut commands_by_sid: BTreeMap<u32, Vec<(AgentId, u64)>> = BTreeMap::new();
        for (&sid, shard) in &self.shards {
            let commands = shard
                .verifier
                .agent_ids()
                .into_iter()
                .map(|id| {
                    let lane = lanes.get(&id).copied().unwrap_or_default();
                    (id, lane)
                })
                .collect();
            commands_by_sid.insert(sid, commands);
        }
        let wire_batch = self.config.verifier.wire_batch;
        let window = self.config.wire_window;

        let mut results: BTreeMap<u32, Vec<AgentRoundResult>> = BTreeMap::new();
        let mut server_reports: BTreeMap<u32, RoundReport> = BTreeMap::new();
        let mut driven_rounds: BTreeMap<u32, DrivenRound> = BTreeMap::new();
        crossbeam::thread::scope(|scope| {
            let mut servers = Vec::new();
            let mut drivers = Vec::new();
            for (&sid, shard) in self.shards.iter_mut() {
                let pool = pools.remove(&sid).unwrap_or_default();
                let Some((server_conn, driver_conn)) = conns.remove(&sid) else {
                    debug_assert!(false, "one connection pair per shard");
                    continue;
                };
                let commands = commands_by_sid.remove(&sid).unwrap_or_default();
                let verifier = &mut shard.verifier;
                let scheduler = &shard.scheduler;
                servers.push((
                    sid,
                    scope.spawn(move || {
                        remote::serve_round(
                            scheduler,
                            verifier,
                            pool.into_iter(),
                            transport,
                            server_conn,
                        )
                    }),
                ));
                drivers.push((
                    sid,
                    scope.spawn(move || {
                        remote::drive_round(driver_conn, &commands, wire_batch, window)
                    }),
                ));
            }
            for (sid, handle) in drivers {
                let driven = match handle.join() {
                    Ok(res) => remote::require(res, "shard wire driver"),
                    Err(payload) => std::panic::resume_unwind(payload),
                };
                driven_rounds.insert(sid, driven);
            }
            for (sid, handle) in servers {
                let report = match handle.join() {
                    Ok(res) => remote::require(res, "shard wire server"),
                    Err(payload) => std::panic::resume_unwind(payload),
                };
                server_reports.insert(sid, report);
            }
        });
        for (sid, driven) in driven_rounds {
            if let Some(server) = server_reports.get(&sid) {
                debug_assert_eq!(driven.health, server.health, "shard {sid} health drifted");
                debug_assert_eq!(
                    driven.epoch, server.policy_epoch,
                    "shard {sid} epoch drifted"
                );
                debug_assert_eq!(
                    {
                        let mut sorted = driven.rows.clone();
                        sorted.sort_by(|a, b| a.id.cmp(&b.id));
                        sorted
                    },
                    server.results,
                    "shard {sid} rows lost in transit"
                );
            }
            results.insert(sid, driven.rows);
        }
        self.sync_pins();
        self.finish_report(results)
    }

    /// Adds an empty shard to a live federation: the new verifier
    /// adopts the store's current snapshot/epoch, joins the ring, and —
    /// consistent hashing's promise — *only* the agents whose placement
    /// now maps to the new shard migrate onto it (enrolment constants,
    /// full mutable state, and the exact policy `Arc` each record
    /// held); nobody else moves. Returns the migrated ids, sorted.
    /// No-op returning empty when `shard` is already live.
    pub fn add_shard(&mut self, shard: u32) -> Vec<AgentId> {
        if self.shards.contains_key(&shard) {
            return Vec::new();
        }
        let mut joined = Shard::new(self.config.verifier);
        let shared = self.store.shared();
        joined
            .verifier
            .restore_store(Arc::clone(&shared.snapshot), shared.epoch);
        self.ring.add_shard(shard);

        // Everything whose ring placement moved to the joining shard.
        let mut moves: Vec<(u32, AgentId)> = Vec::new();
        for (&sid, source) in &self.shards {
            for (id, ..) in source.verifier.enrolment_view() {
                if self.ring.place(id) == Some(shard) {
                    moves.push((sid, id.clone()));
                }
            }
        }
        let mut migrated = Vec::with_capacity(moves.len());
        for (sid, id) in moves {
            let Some(source) = self.shards.get_mut(&sid) else {
                debug_assert!(false, "move source is live");
                continue;
            };
            let Some((ak, identity, policy, state)) = source
                .verifier
                .enrolment_view()
                .find_map(|(eid, ak, identity, _shared, policy)| {
                    (eid == &id).then(|| (ak.clone(), identity, Arc::clone(policy)))
                })
                .and_then(|(ak, identity, policy)| {
                    let state = source.verifier.export_agent_state(&id).ok()?;
                    Some((ak, identity, policy, state))
                })
            else {
                debug_assert!(false, "moved id is enrolled on its source");
                continue;
            };
            source.verifier.remove_agent(&id);
            joined
                .verifier
                .restore_agent(id.clone(), ak, identity, policy, state);
            migrated.push(id);
        }
        self.shards.insert(shard, joined);
        migrated.sort();
        migrated
    }

    /// Runs one federated round during which shard `kill` dies at round
    /// start: it produces no results, survivors run untouched, then the
    /// coordinator rebalances the dead shard's agents onto survivors
    /// (consistent-hash ring remove — nobody else moves) and drives a
    /// catch-up sub-round over exactly the migrated agents at the same
    /// lanes. The merged report conserves every enrolled agent.
    ///
    /// Returns the report and the migrated agent ids (sorted).
    ///
    /// # Panics
    ///
    /// When `kill` is not a live shard, or is the only shard left.
    pub fn run_round_with_kill<T>(
        &mut self,
        agents: &mut [Agent],
        transport: &T,
        kill: u32,
    ) -> (FederatedRoundReport, Vec<AgentId>)
    where
        T: Transport + Sync,
    {
        assert!(self.shards.contains_key(&kill), "unknown shard {kill}");
        assert!(self.shards.len() > 1, "cannot kill the only shard");

        // Lanes are computed over the full fleet *before* the kill, so
        // every agent keeps the lane the no-kill round would use.
        let lanes = self.global_lanes();
        let mut pools: BTreeMap<u32, Vec<&mut Agent>> = BTreeMap::new();
        let mut dead_pool: Vec<&mut Agent> = Vec::new();
        for agent in agents.iter_mut() {
            match self.ring.place(agent.id()) {
                Some(sid) if sid == kill => dead_pool.push(agent),
                Some(sid) => pools.entry(sid).or_default().push(agent),
                None => {}
            }
        }

        // Survivors' main round — the dead shard contributes nothing.
        let mut results: BTreeMap<u32, Vec<AgentRoundResult>> = BTreeMap::new();
        crossbeam::thread::scope(|scope| {
            let mut handles = Vec::new();
            for (&sid, shard) in self.shards.iter_mut() {
                if sid == kill {
                    continue;
                }
                let pool = pools.remove(&sid).unwrap_or_default();
                let lanes = &lanes;
                handles.push((
                    sid,
                    scope.spawn(move || {
                        shard.scheduler.run_round_core(
                            &mut shard.verifier,
                            pool.into_iter(),
                            transport,
                            None,
                            Some(lanes),
                            |_, _| {},
                        )
                    }),
                ));
            }
            for (sid, handle) in handles {
                let report = match handle.join() {
                    Ok(report) => report,
                    Err(payload) => std::panic::resume_unwind(payload),
                };
                results.insert(sid, report.results);
            }
        });

        // Rebalance: ring-remove the dead shard and migrate its records.
        let migrated = self.kill_shard(kill);
        let migrated_set: BTreeSet<AgentId> = migrated.iter().cloned().collect();

        // Catch-up sub-round: each surviving shard polls only the agents
        // it just inherited (its pre-existing enrolments are skipped, so
        // nobody is attested twice). Same lanes, same chaos round — the
        // fault stream each migrated agent sees is exactly the one the
        // no-kill round would have dealt it.
        let mut catchup_pools: BTreeMap<u32, Vec<&mut Agent>> = BTreeMap::new();
        for agent in dead_pool {
            if let Some(sid) = self.ring.place(agent.id()) {
                catchup_pools.entry(sid).or_default().push(agent);
            }
        }
        crossbeam::thread::scope(|scope| {
            let mut handles = Vec::new();
            for (&sid, shard) in self.shards.iter_mut() {
                let Some(pool) = catchup_pools.remove(&sid) else {
                    continue;
                };
                let skip: BTreeSet<AgentId> = shard
                    .verifier
                    .agent_ids()
                    .into_iter()
                    .filter(|id| !migrated_set.contains(id))
                    .collect();
                let lanes = &lanes;
                handles.push((
                    sid,
                    scope.spawn(move || {
                        shard.scheduler.run_round_core(
                            &mut shard.verifier,
                            pool.into_iter(),
                            transport,
                            Some(&skip),
                            Some(lanes),
                            |_, _| {},
                        )
                    }),
                ));
            }
            for (sid, handle) in handles {
                let report = match handle.join() {
                    Ok(report) => report,
                    Err(payload) => std::panic::resume_unwind(payload),
                };
                results.entry(sid).or_default().extend(report.results);
            }
        });

        self.sync_pins();
        (self.finish_report(results), migrated)
    }

    /// Removes `shard` from the federation outside a round: its metrics
    /// fold into the retired accumulator and each of its records
    /// (constants, mutable state, and the exact policy `Arc` it held —
    /// quarantined agents stay pinned on their acknowledged snapshot)
    /// migrates to its new ring placement. Returns the migrated ids,
    /// sorted. No-op returning empty when `shard` is not live.
    ///
    /// # Panics
    ///
    /// When `shard` is the only shard left — a federation cannot place
    /// agents on an empty ring.
    pub fn kill_shard(&mut self, shard: u32) -> Vec<AgentId> {
        if !self.shards.contains_key(&shard) {
            return Vec::new();
        }
        assert!(self.shards.len() > 1, "cannot kill the only shard");
        let Some(dead) = self.shards.remove(&shard) else {
            return Vec::new();
        };
        self.ring.remove_shard(shard);
        let folded = self.retired.get().merged(&dead.scheduler.snapshot());
        self.retired.set(folded);

        let moves: Vec<_> = dead
            .verifier
            .enrolment_view()
            .filter_map(|(id, ak, identity, _shared, policy)| {
                let state = dead.verifier.export_agent_state(id).ok()?;
                Some((id.clone(), ak.clone(), identity, Arc::clone(policy), state))
            })
            .collect();
        let mut migrated = Vec::with_capacity(moves.len());
        for (id, ak, identity, policy, state) in moves {
            let Some(target) = self
                .ring
                .place(&id)
                .and_then(|sid| self.shards.get_mut(&sid))
            else {
                debug_assert!(false, "survivors remain on the ring");
                continue;
            };
            target
                .verifier
                .restore_agent(id.clone(), ak, identity, policy, state);
            migrated.push(id);
        }
        migrated.sort();
        migrated
    }

    /// Fleet-level health: each record lives on exactly one shard, so
    /// the sum counts every agent once.
    pub fn fleet_health(&self) -> HealthCounts {
        let mut health = HealthCounts::default();
        for shard in self.shards.values() {
            let counts = shard.verifier.health_counts();
            health.healthy += counts.healthy;
            health.degraded += counts.degraded;
            health.quarantined += counts.quarantined;
            health.recovering += counts.recovering;
        }
        health
    }

    /// The fleet-level metrics snapshot: the component-wise merge of
    /// every live shard's registry plus everything folded out of killed
    /// shards. Conserved whenever the shard snapshots are — the
    /// identity is linear (see [`MetricsSnapshot::merged`]).
    pub fn fleet_metrics(&self) -> MetricsSnapshot {
        let mut snap = self.retired.get().clone();
        for shard in self.shards.values() {
            snap = snap.merged(&shard.scheduler.snapshot());
        }
        snap
    }

    /// Each live shard's own metrics snapshot, shard index ascending.
    pub fn shard_metrics(&self) -> Vec<(u32, MetricsSnapshot)> {
        self.shards
            .iter()
            .map(|(&sid, shard)| (sid, shard.scheduler.snapshot()))
            .collect()
    }

    /// Assembles the fleet + per-shard reports from each shard's result
    /// rows. Health is read from the shard verifiers *after* the round
    /// (and after any migration), so every agent is counted exactly
    /// once.
    fn finish_report(
        &self,
        mut results: BTreeMap<u32, Vec<AgentRoundResult>>,
    ) -> FederatedRoundReport {
        let epoch = self.store.epoch();
        let mut fleet_results: Vec<AgentRoundResult> = Vec::new();
        let mut per_shard = Vec::with_capacity(self.shards.len());
        for (&sid, shard) in &self.shards {
            let mut shard_results = results.remove(&sid).unwrap_or_default();
            shard_results.sort_by(|a, b| a.id.cmp(&b.id));
            fleet_results.extend(shard_results.iter().cloned());
            per_shard.push((
                sid,
                RoundReport {
                    results: shard_results,
                    health: shard.verifier.health_counts(),
                    policy_epoch: epoch,
                },
            ));
        }
        fleet_results.sort_by(|a, b| a.id.cmp(&b.id));
        FederatedRoundReport {
            fleet: RoundReport {
                results: fleet_results,
                health: self.fleet_health(),
                policy_epoch: epoch,
            },
            per_shard,
        }
    }
}
