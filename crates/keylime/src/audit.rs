//! Durable attestation: a tamper-evident audit trail.
//!
//! Production Keylime deployments pair the verifier with *durable
//! attestation*: every attestation outcome is persisted to an append-only
//! store so that auditors can later prove what the verifier saw and when
//! — even if the verifier host is itself compromised afterwards. This
//! module provides the core of that feature: a hash-chained, signed
//! [`AuditLog`] whose integrity can be re-verified offline from the head
//! hash alone.

use cia_crypto::{Digest, KeyPair, Sha256, Signature, VerifyingKey};
use serde::{Deserialize, Serialize};

use crate::ids::AgentId;

/// The outcome class recorded for one attestation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AuditOutcome {
    /// The poll verified cleanly.
    Verified,
    /// The poll failed policy or quote checks.
    Failed,
    /// The poll was skipped (agent paused).
    Skipped,
    /// The fleet engine could not reach the agent within its retry
    /// budget; the absence itself is part of the durable record.
    Unreachable,
}

/// One link in the audit chain.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AuditRecord {
    /// Position in the chain (0-based).
    pub sequence: u64,
    /// Simulation day of the poll.
    pub day: u32,
    /// The attested agent.
    pub agent: AgentId,
    /// What happened.
    pub outcome: AuditOutcome,
    /// Hash of the previous record (zero digest for the first).
    pub prev_hash: Digest,
    /// Hash over this record's contents, chaining it to its predecessor.
    pub hash: Digest,
    /// Auditor-key signature over `hash`.
    pub signature: Signature,
}

impl AuditRecord {
    fn compute_hash(
        sequence: u64,
        day: u32,
        agent: &str,
        outcome: AuditOutcome,
        prev_hash: &Digest,
    ) -> Digest {
        let mut h = Sha256::new();
        h.update(b"AUDIT:");
        h.update(&sequence.to_be_bytes());
        h.update(&day.to_be_bytes());
        h.update(agent.as_bytes());
        h.update(format!("{outcome:?}").as_bytes());
        h.update(prev_hash.as_bytes());
        h.finalize()
    }
}

/// An append-only, hash-chained attestation history.
#[derive(Debug)]
pub struct AuditLog {
    records: Vec<AuditRecord>,
    keys: KeyPair,
}

impl AuditLog {
    /// Creates an empty log with a fresh auditor key.
    pub fn new<R: rand::RngCore + ?Sized>(rng: &mut R) -> Self {
        AuditLog {
            records: Vec::new(),
            keys: KeyPair::generate(rng),
        }
    }

    /// The key auditors use to verify the chain's signatures.
    pub fn public_key(&self) -> &VerifyingKey {
        &self.keys.verifying
    }

    /// Appends one outcome, returning the new head hash.
    pub fn record(&mut self, day: u32, agent: &AgentId, outcome: AuditOutcome) -> Digest {
        let sequence = self.records.len() as u64;
        let prev_hash = self
            .records
            .last()
            .map(|r| r.hash)
            .unwrap_or_else(|| cia_crypto::HashAlgorithm::Sha256.zero_digest());
        let hash = AuditRecord::compute_hash(sequence, day, agent.as_str(), outcome, &prev_hash);
        let signature = self.keys.signing.sign(hash.as_bytes());
        self.records.push(AuditRecord {
            sequence,
            day,
            agent: agent.clone(),
            outcome,
            prev_hash,
            hash,
            signature,
        });
        hash
    }

    /// All records in order.
    pub fn records(&self) -> &[AuditRecord] {
        &self.records
    }

    /// The chain head (None when empty).
    pub fn head(&self) -> Option<Digest> {
        self.records.last().map(|r| r.hash)
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Offline verification: checks the full chain (hashes, linkage,
    /// sequence numbers, signatures) against `auditor_key` and, if given,
    /// an externally-anchored `expected_head`. Returns the index of the
    /// first bad record, or `Ok(())`.
    ///
    /// # Errors
    ///
    /// The index of the first record that fails verification (or
    /// `records.len()` when only the head anchor mismatches).
    pub fn verify_chain(
        records: &[AuditRecord],
        auditor_key: &VerifyingKey,
        expected_head: Option<&Digest>,
    ) -> Result<(), usize> {
        let mut prev = cia_crypto::HashAlgorithm::Sha256.zero_digest();
        for (i, record) in records.iter().enumerate() {
            if record.sequence != i as u64 || record.prev_hash != prev {
                return Err(i);
            }
            let expected = AuditRecord::compute_hash(
                record.sequence,
                record.day,
                record.agent.as_str(),
                record.outcome,
                &record.prev_hash,
            );
            if record.hash != expected {
                return Err(i);
            }
            if !auditor_key.verify(record.hash.as_bytes(), &record.signature) {
                return Err(i);
            }
            prev = record.hash;
        }
        if let Some(head) = expected_head {
            if records.last().map(|r| &r.hash) != Some(head) {
                return Err(records.len());
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn log() -> AuditLog {
        let mut rng = StdRng::seed_from_u64(9);
        AuditLog::new(&mut rng)
    }

    #[test]
    fn chain_builds_and_verifies() {
        let mut log = log();
        log.record(1, &AgentId::from("node-0"), AuditOutcome::Verified);
        log.record(1, &AgentId::from("node-1"), AuditOutcome::Failed);
        log.record(2, &AgentId::from("node-0"), AuditOutcome::Verified);
        let head = log.head().unwrap();
        assert_eq!(log.len(), 3);
        AuditLog::verify_chain(log.records(), log.public_key(), Some(&head)).unwrap();
    }

    #[test]
    fn empty_chain_verifies() {
        let log = log();
        AuditLog::verify_chain(log.records(), log.public_key(), None).unwrap();
        assert!(log.is_empty());
    }

    #[test]
    fn record_tampering_detected() {
        let mut log = log();
        log.record(1, &AgentId::from("node-0"), AuditOutcome::Failed);
        log.record(2, &AgentId::from("node-0"), AuditOutcome::Verified);
        let head = log.head().unwrap();

        // An attacker who owns the verifier host rewrites history: the
        // failure becomes a success.
        let mut forged = log.records().to_vec();
        forged[0].outcome = AuditOutcome::Verified;
        assert_eq!(
            AuditLog::verify_chain(&forged, log.public_key(), Some(&head)),
            Err(0)
        );
    }

    #[test]
    fn truncation_detected_by_head_anchor() {
        let mut log = log();
        log.record(1, &AgentId::from("node-0"), AuditOutcome::Failed);
        log.record(2, &AgentId::from("node-0"), AuditOutcome::Verified);
        let head = log.head().unwrap();

        // Dropping the embarrassing tail still chains correctly...
        let truncated = &log.records()[..1];
        AuditLog::verify_chain(truncated, log.public_key(), None).unwrap();
        // ...but not against the externally-anchored head.
        assert_eq!(
            AuditLog::verify_chain(truncated, log.public_key(), Some(&head)),
            Err(1)
        );
    }

    #[test]
    fn reordering_detected() {
        let mut log = log();
        log.record(1, &AgentId::from("a"), AuditOutcome::Verified);
        log.record(2, &AgentId::from("b"), AuditOutcome::Verified);
        let mut swapped = log.records().to_vec();
        swapped.swap(0, 1);
        assert!(AuditLog::verify_chain(&swapped, log.public_key(), None).is_err());
    }

    #[test]
    fn foreign_signature_detected() {
        let mut log_a = log();
        log_a.record(1, &AgentId::from("a"), AuditOutcome::Verified);
        let mut rng = StdRng::seed_from_u64(10);
        let other = AuditLog::new(&mut rng);
        assert_eq!(
            AuditLog::verify_chain(log_a.records(), other.public_key(), None),
            Err(0)
        );
    }
}
