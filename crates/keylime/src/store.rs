//! The epoch-tagged shared policy store.
//!
//! Fleet-wide policy distribution used to be O(fleet × policy): every
//! agent record owned a full [`RuntimePolicy`] clone, each with its own
//! lazily rebuilt binary index. [`PolicyStore`] holds one
//! `Arc<RuntimePolicy>` snapshot tagged with a monotonically increasing
//! [`PolicyEpoch`]; a fleet-wide push is one `Arc` swap per agent and the
//! digest index is built exactly once per epoch (the store warms it at
//! publish time). Per-agent *overrides* remain possible for heterogeneous
//! fleets — e.g. the snap-scrubbed subset from §III-B keeps its own
//! policy and simply opts out of the shared snapshot.
//!
//! Deltas compose with the store: [`PolicyStore::publish_delta`] applies a
//! [`PolicyDelta`] to an owned buffer and swaps the published `Arc`, so a
//! daily update is O(delta) — independent of fleet size — and in steady
//! state performs **zero** policy deep copies: the previous epoch's
//! snapshot is *retired* at publish time and, once every agent has
//! adopted the newer epoch (dropping its handle), *reclaimed* as the
//! spare buffer the next epoch is built into. The spare sits some number
//! of recorded deltas behind the published snapshot (one per epoch it
//! missed), so a publish replays the catch-up deltas in order and then
//! the new one — O(delta) incremental index merges, no copy, no rebuild.
//! Only a cold start (first delta after a full publish) or a straggler
//! pinning the old snapshot across an epoch falls back to one
//! copy-on-write clone.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

use parking_lot::{Mutex, RaceCell, RwLock};
use serde::{Deserialize, Serialize};

use crate::ids::AgentId;
use crate::policy::{PolicyDelta, RuntimePolicy};

/// Monotonically increasing label for one published policy snapshot.
///
/// Epoch 0 is the store's empty founding policy; every publish bumps the
/// epoch by one. Agents record the epoch they last adopted, which is how
/// the scheduler proves fleet-wide convergence (and how a quarantined
/// agent's skew — it appraises against the epoch it last acknowledged —
/// stays observable).
#[derive(
    Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct PolicyEpoch(u64);

impl PolicyEpoch {
    /// The founding epoch (empty policy).
    pub const ZERO: PolicyEpoch = PolicyEpoch(0);

    /// The raw counter value.
    pub fn as_u64(self) -> u64 {
        self.0
    }

    /// The next epoch.
    pub fn next(self) -> PolicyEpoch {
        PolicyEpoch(self.0 + 1)
    }

    /// Rebuilds an epoch from its raw counter — the wire decoder's
    /// constructor. Kept crate-private so epochs still cannot be minted
    /// outside the store/wire machinery.
    pub(crate) fn from_raw(raw: u64) -> PolicyEpoch {
        PolicyEpoch(raw)
    }
}

impl fmt::Display for PolicyEpoch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// An immutable view of the store's current snapshot, cheap to clone and
/// hand to scheduler workers: the `Arc` handle plus its epoch.
#[derive(Debug, Clone)]
pub struct SharedPolicy {
    /// The published policy snapshot.
    pub snapshot: Arc<RuntimePolicy>,
    /// The epoch the snapshot was published as.
    pub epoch: PolicyEpoch,
}

/// The verifier-side shared policy store (see the module docs).
#[derive(Debug, Clone)]
pub struct PolicyStore {
    snapshot: Arc<RuntimePolicy>,
    epoch: PolicyEpoch,
    /// The previous retired snapshot plus the ordered deltas that
    /// superseded it (every epoch published since it was retired — the
    /// in-place fast path appends here too), held until every agent
    /// adopts a newer epoch and the handle becomes uniquely ours again
    /// ([`PolicyStore::reclaim`]).
    retiring: Option<(Arc<RuntimePolicy>, Vec<PolicyDelta>)>,
    /// An owned buffer sitting `lag.len()` recorded deltas behind
    /// `snapshot` — fuel for the zero-copy publish fast path.
    spare: Option<(RuntimePolicy, Vec<PolicyDelta>)>,
}

impl Default for PolicyStore {
    fn default() -> Self {
        PolicyStore::new()
    }
}

impl PolicyStore {
    /// A store holding the empty policy at epoch 0.
    pub fn new() -> Self {
        PolicyStore {
            snapshot: Arc::new(RuntimePolicy::new()),
            epoch: PolicyEpoch::ZERO,
            retiring: None,
            spare: None,
        }
    }

    /// Recovery path: a store holding a journaled snapshot at a
    /// journaled epoch. The retiring/spare buffers start empty — they
    /// are pure publish-time performance state, invisible to appraisal,
    /// so a restored store is observationally identical to the one that
    /// crashed.
    pub fn restore(snapshot: Arc<RuntimePolicy>, epoch: PolicyEpoch) -> Self {
        snapshot.warm_index();
        PolicyStore {
            snapshot,
            epoch,
            retiring: None,
            spare: None,
        }
    }

    /// The active epoch.
    pub fn epoch(&self) -> PolicyEpoch {
        self.epoch
    }

    /// The active snapshot handle (an `Arc` clone of this is what agent
    /// records hold).
    pub fn snapshot(&self) -> &Arc<RuntimePolicy> {
        &self.snapshot
    }

    /// The active policy.
    pub fn policy(&self) -> &RuntimePolicy {
        &self.snapshot
    }

    /// A cheap `(snapshot, epoch)` view for the scheduler.
    pub fn shared(&self) -> SharedPolicy {
        SharedPolicy {
            snapshot: Arc::clone(&self.snapshot),
            epoch: self.epoch,
        }
    }

    /// Publishes a full replacement policy as a new epoch, warming its
    /// binary index so the per-epoch build happens here, once, instead of
    /// on the first appraisal.
    pub fn publish(&mut self, policy: RuntimePolicy) -> PolicyEpoch {
        self.publish_arc(Arc::new(policy))
    }

    /// Publishes an already-shared snapshot as a new epoch without any
    /// policy copy at all. A full replacement invalidates the spare
    /// buffer (its catch-up delta no longer composes to the new content).
    pub fn publish_arc(&mut self, policy: Arc<RuntimePolicy>) -> PolicyEpoch {
        policy.warm_index();
        self.snapshot = policy;
        self.epoch = self.epoch.next();
        self.retiring = None;
        self.spare = None;
        self.epoch
    }

    /// Applies a generator delta and publishes the result as a new epoch.
    ///
    /// Steady state (spare buffer available): replay the spare's recorded
    /// catch-up deltas plus `delta` into the owned buffer and swap the
    /// published `Arc` — **zero** policy deep copies, incremental index
    /// merges only, no rebuild. Cold start or straggler-pinned: one
    /// copy-on-write clone. Returns the new epoch and the number of entry
    /// operations applied.
    pub fn publish_delta(&mut self, delta: &PolicyDelta) -> (PolicyEpoch, usize) {
        self.reclaim();
        let applied;
        if let Some((mut buf, lag)) = self.spare.take() {
            for catchup in &lag {
                buf.apply_delta(catchup);
            }
            applied = buf.apply_delta(delta);
            let old = std::mem::replace(&mut self.snapshot, Arc::new(buf));
            self.retiring = Some((old, vec![delta.clone()]));
        } else if let Some(sole) = Arc::get_mut(&mut self.snapshot) {
            // Sole current handle (nobody holds this epoch): mutate in
            // place. A straggler may still pin an *older* retired
            // snapshot, though — its catch-up lag must grow by this
            // delta or a later reclaim would replay a stale lag and
            // publish a policy missing these entries (or resurrecting
            // digests they revoked).
            applied = sole.apply_delta(delta);
            if let Some((_, lag)) = &mut self.retiring {
                lag.push(delta.clone());
            }
        } else {
            let old = Arc::clone(&self.snapshot);
            applied = Arc::make_mut(&mut self.snapshot).apply_delta(delta);
            self.retiring = Some((old, vec![delta.clone()]));
        }
        // Keep the publish-time guarantee that the snapshot's index is
        // ready before any appraisal: a no-op when the incremental merge
        // already primed it.
        self.snapshot.warm_index();
        self.epoch = self.epoch.next();
        (self.epoch, applied)
    }

    /// Harvests the retired snapshot as the spare buffer if the fleet has
    /// dropped every handle to it (runs automatically at the top of each
    /// [`PolicyStore::publish_delta`]; a still-pinned handle is simply
    /// kept for a later attempt).
    pub fn reclaim(&mut self) {
        if self.spare.is_some() {
            return;
        }
        if let Some((arc, lag)) = self.retiring.take() {
            match Arc::try_unwrap(arc) {
                Ok(policy) => self.spare = Some((policy, lag)),
                Err(arc) => self.retiring = Some((arc, lag)),
            }
        }
    }
}

/// A [`PolicyStore`] shared across scheduler threads, plus a *pin
/// ledger* recording the epoch each agent last adopted.
///
/// Two locks, with a declared total order (see `cia-lint.manifest`):
///
/// 1. `inner` — `RwLock` around the store. Publishes take the write
///    lock; adopt/convergence reads take the read lock.
/// 2. `pins`  — `Mutex` around the per-agent epoch ledger.
///
/// Every method acquires `inner` **before** `pins` (or only one of
/// them). [`ConcurrentPolicyStore::adopt`] deliberately stamps the pin
/// while still holding the `inner` read guard: releasing `inner` first
/// would let a publish slip between snapshot and stamp, recording an
/// adoption of an epoch the agent never saw. That nesting is exactly
/// what the lock order exists to make safe.
///
/// `cia-lint` enforces the order statically where its heuristics can
/// see; the `lock-sanitizer` feature records the runtime acquisition
/// graph and proves it cycle-free across real interleavings.
#[derive(Debug)]
pub struct ConcurrentPolicyStore {
    /// The shared store. Lock order: acquired first.
    inner: RwLock<PolicyStore>,
    /// Agent → last adopted epoch. Lock order: acquired second. The
    /// ledger itself is a [`RaceCell`] so the race detector audits that
    /// every access really is ordered through the `pins` mutex (or
    /// another instrumented edge) — a hand-rolled fast path that peeked
    /// at the map without the lock would be convicted, not missed.
    pins: Mutex<RaceCell<BTreeMap<AgentId, PolicyEpoch>>>,
}

impl Default for ConcurrentPolicyStore {
    fn default() -> Self {
        ConcurrentPolicyStore::new()
    }
}

impl ConcurrentPolicyStore {
    /// A store holding the empty policy at epoch 0, no agents pinned.
    pub fn new() -> Self {
        ConcurrentPolicyStore {
            inner: RwLock::new(PolicyStore::new()).named("inner"),
            pins: Mutex::new(RaceCell::new(BTreeMap::new()).named("pin-ledger")).named("pins"),
        }
    }

    /// A store seeded from an existing snapshot and epoch — how a
    /// federation adopts a single verifier's store as the fleet-wide
    /// one (see [`PolicyStore::restore`]). No agents pinned.
    pub fn restore(snapshot: Arc<RuntimePolicy>, epoch: PolicyEpoch) -> Self {
        ConcurrentPolicyStore {
            inner: RwLock::new(PolicyStore::restore(snapshot, epoch)).named("inner"),
            pins: Mutex::new(RaceCell::new(BTreeMap::new()).named("pin-ledger")).named("pins"),
        }
    }

    /// Publishes a full replacement policy as a new epoch.
    pub fn publish(&self, policy: RuntimePolicy) -> PolicyEpoch {
        self.inner.write().publish(policy)
    }

    /// Publishes a delta (copy-on-write / zero-copy fast path — see
    /// [`PolicyStore::publish_delta`]). Returns the new epoch and the
    /// number of delta entries applied.
    pub fn publish_delta(&self, delta: &PolicyDelta) -> (PolicyEpoch, usize) {
        self.inner.write().publish_delta(delta)
    }

    /// The currently published epoch.
    pub fn epoch(&self) -> PolicyEpoch {
        self.inner.read().epoch()
    }

    /// A cheap handle to the current snapshot (one `Arc` clone).
    pub fn shared(&self) -> SharedPolicy {
        self.inner.read().shared()
    }

    /// Adopts the current snapshot for `agent`: returns the shared
    /// handle and stamps the agent's pin with its epoch, atomically with
    /// respect to publishes (the `inner` read guard is held across the
    /// pin write, so no new epoch can be published in between).
    pub fn adopt(&self, agent: &AgentId) -> SharedPolicy {
        let inner = self.inner.read();
        let shared = inner.shared();
        self.pins
            .lock()
            .get_mut()
            .insert(agent.clone(), shared.epoch);
        shared
    }

    /// The epoch `agent` last adopted, if it ever adopted one.
    pub fn pin_of(&self, agent: &AgentId) -> Option<PolicyEpoch> {
        self.pins.lock().get().get(agent).copied()
    }

    /// Stamps `agent`'s pin at an *observed* epoch — the federation's
    /// post-round sync point, where each shard reports what its agents
    /// actually appraised against (a quarantined agent stays pinned on
    /// the older epoch it acknowledged, unlike [`adopt`], which always
    /// stamps the current one).
    ///
    /// [`adopt`]: ConcurrentPolicyStore::adopt
    pub fn record_pin(&self, agent: &AgentId, epoch: PolicyEpoch) {
        self.pins.lock().get_mut().insert(agent.clone(), epoch);
    }

    /// Removes `agent`'s pin (deregistration), returning it.
    pub fn unpin(&self, agent: &AgentId) -> Option<PolicyEpoch> {
        self.pins.lock().get_mut().remove(agent)
    }

    /// True when every pinned agent has adopted the current epoch.
    /// Both locks are held (in order) so the answer is a consistent cut:
    /// no publish or adoption can land between reading the epoch and
    /// reading the pins.
    pub fn converged(&self) -> bool {
        let inner = self.inner.read();
        let epoch = inner.epoch();
        let pins = self.pins.lock();
        pins.get().values().all(|&pinned| pinned == epoch)
    }

    /// Agents pinned strictly behind the current epoch, oldest first.
    pub fn laggards(&self) -> Vec<(AgentId, PolicyEpoch)> {
        let inner = self.inner.read();
        let epoch = inner.epoch();
        let pins = self.pins.lock();
        let mut out: Vec<(AgentId, PolicyEpoch)> = pins
            .get()
            .iter()
            .filter(|(_, &pinned)| pinned < epoch)
            .map(|(id, &pinned)| (id.clone(), pinned))
            .collect();
        out.sort_by(|a, b| a.1.cmp(&b.1).then_with(|| a.0.cmp(&b.0)));
        out
    }

    /// Attempts to reclaim the retired snapshot as the spare buffer
    /// (see [`PolicyStore::reclaim`]).
    pub fn reclaim(&self) {
        self.inner.write().reclaim();
    }

    /// **Deliberately wrong** adoption path: acquires `pins` *before*
    /// `inner`, inverting the declared lock order. Exists only to prove
    /// the `lock-sanitizer` detects inversions — compiled solely under
    /// that feature, and statically suppressed for the same reason.
    #[cfg(feature = "lock-sanitizer")]
    pub fn adopt_inverted(&self, agent: &AgentId) -> SharedPolicy {
        let mut pins = self.pins.lock();
        // lint:allow(lock-order): intentional inversion — this is the
        // seeded violation the sanitizer detection test must flag.
        let inner = self.inner.read();
        let shared = inner.shared();
        pins.get_mut().insert(agent.clone(), shared.epoch);
        shared
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy_with(paths: &[&str]) -> RuntimePolicy {
        let mut p = RuntimePolicy::new();
        for path in paths {
            p.allow(*path, "aa");
        }
        p
    }

    #[test]
    fn epochs_are_monotonic() {
        let mut store = PolicyStore::new();
        assert_eq!(store.epoch(), PolicyEpoch::ZERO);
        let e1 = store.publish(policy_with(&["/a"]));
        let e2 = store.publish(policy_with(&["/a", "/b"]));
        assert!(e1 < e2);
        assert_eq!(e2, store.epoch());
        assert_eq!(e1.next(), e2);
        assert_eq!(format!("{e2}"), "e2");
        assert_eq!(store.policy().path_count(), 2);
    }

    #[test]
    fn publish_arc_is_zero_copy() {
        let mut store = PolicyStore::new();
        let snapshot = Arc::new(policy_with(&["/a"]));
        store.publish_arc(Arc::clone(&snapshot));
        // Pointer identity proves no copy was taken (the exact deep-clone
        // counter is asserted single-threaded by the delta-push bench).
        assert!(Arc::ptr_eq(store.snapshot(), &snapshot));
    }

    #[test]
    fn publish_delta_is_copy_on_write() {
        let mut store = PolicyStore::new();
        store.publish(policy_with(&["/a"]));
        // Sole handle: the delta mutates the snapshot in place.
        let in_place = Arc::as_ptr(store.snapshot());
        let (epoch, applied) = store.publish_delta(&PolicyDelta {
            added: vec![("/b".into(), "bb".into())],
            ..PolicyDelta::default()
        });
        assert_eq!(Arc::as_ptr(store.snapshot()), in_place);
        assert_eq!(applied, 1);
        assert_eq!(epoch.as_u64(), 2);
        assert_eq!(store.policy().path_count(), 2);

        // A pinned old snapshot forces one copy-on-write clone — and the
        // pinned handle keeps observing the old epoch's content.
        let pinned = Arc::clone(store.snapshot());
        store.publish_delta(&PolicyDelta {
            added: vec![("/c".into(), "cc".into())],
            ..PolicyDelta::default()
        });
        assert!(!Arc::ptr_eq(&pinned, store.snapshot()));
        assert_eq!(pinned.path_count(), 2, "pinned snapshot is immutable");
        assert_eq!(store.policy().path_count(), 3);
    }

    fn delta_adding(path: &str) -> PolicyDelta {
        PolicyDelta {
            added: vec![(path.into(), "aa".into())],
            ..PolicyDelta::default()
        }
    }

    /// The spare-buffer fast path: once the fleet drops the retired
    /// snapshot, publishes reuse it via the recorded catch-up delta —
    /// and the content stays exactly what sequential application yields.
    #[test]
    fn reclaimed_spare_replays_the_catchup_delta_faithfully() {
        let mut store = PolicyStore::new();
        store.publish(policy_with(&["/a"]));

        // An enrolled fleet: external handles pin the snapshot.
        let fleet = Arc::clone(store.snapshot());
        store.publish_delta(&delta_adding("/b")); // cold: one CoW copy
        drop(fleet); // fleet adopts the new epoch

        // Fast path: the retired epoch-1 buffer ("/a") is reclaimed and
        // must be caught up with the "/b" delta before "/c" lands.
        let fleet = Arc::clone(store.snapshot());
        store.publish_delta(&delta_adding("/c"));
        drop(fleet);
        assert_eq!(store.policy().path_count(), 3);
        for p in ["/a", "/b", "/c"] {
            assert!(store.policy().digests_for(p).is_some(), "{p} missing");
        }

        // And again, one more generation deep.
        let fleet = Arc::clone(store.snapshot());
        store.publish_delta(&delta_adding("/d"));
        drop(fleet);
        assert_eq!(store.policy().path_count(), 4);
        assert_eq!(store.epoch().as_u64(), 4);

        // The merged index agrees with a from-scratch build every time.
        assert!(store.policy().index_is_consistent());
    }

    /// Regression (review finding): an in-place publish while a straggler
    /// pins an *older* retired snapshot must extend that snapshot's
    /// catch-up lag. Sequence: publish /a, pin straggler, delta +b (CoW
    /// retires /a), delta +c (current snapshot solely held → in-place),
    /// drop straggler, delta +d (reclaims /a as the spare and replays the
    /// lag). The stale-lag bug silently published a policy missing /c.
    #[test]
    fn in_place_publish_extends_the_pinned_stragglers_catchup_lag() {
        let mut store = PolicyStore::new();
        store.publish(policy_with(&["/a"]));
        let straggler = Arc::clone(store.snapshot());
        store.publish_delta(&delta_adding("/b")); // CoW; /a retires
        store.publish_delta(&delta_adding("/c")); // sole handle: in-place
        drop(straggler);
        store.publish_delta(&delta_adding("/d")); // spare replays lag
        assert_eq!(store.policy().path_count(), 4);
        for p in ["/a", "/b", "/c", "/d"] {
            assert!(store.policy().digests_for(p).is_some(), "{p} missing");
        }
        assert!(store.policy().index_is_consistent());
    }

    /// Same shape, but the in-place delta *revokes* a path: the replayed
    /// spare must not resurrect it.
    #[test]
    fn in_place_revocation_survives_spare_reclaim() {
        let mut store = PolicyStore::new();
        store.publish(policy_with(&["/a", "/evil"]));
        let straggler = Arc::clone(store.snapshot());
        store.publish_delta(&delta_adding("/b")); // CoW; old snapshot retires
        store.publish_delta(&PolicyDelta {
            removed_paths: vec!["/evil".into()],
            ..PolicyDelta::default()
        }); // in-place revocation
        drop(straggler);
        store.publish_delta(&delta_adding("/c")); // spare replays lag
        assert!(
            store.policy().digests_for("/evil").is_none(),
            "revoked path resurrected by a stale catch-up lag"
        );
        assert_eq!(store.policy().path_count(), 3);
        assert!(store.policy().index_is_consistent());
    }

    /// A straggler pinning the retired snapshot across an epoch degrades
    /// to copy-on-write — never blocks, never corrupts.
    #[test]
    fn straggler_pin_degrades_to_copy_on_write() {
        let mut store = PolicyStore::new();
        store.publish(policy_with(&["/a"]));
        let straggler = Arc::clone(store.snapshot());
        store.publish_delta(&delta_adding("/b"));
        store.publish_delta(&delta_adding("/c")); // straggler still pinned
        store.publish_delta(&delta_adding("/d"));
        assert_eq!(straggler.path_count(), 1, "straggler view frozen");
        assert_eq!(store.policy().path_count(), 4);
        assert!(store.policy().index_is_consistent());
    }
}

#[cfg(test)]
mod concurrent_tests {
    use super::*;
    use std::sync::Arc as StdArc;

    fn policy_with(paths: &[&str]) -> RuntimePolicy {
        let mut p = RuntimePolicy::new();
        for path in paths {
            p.allow(*path, "aa");
        }
        p
    }

    fn agent(n: u32) -> AgentId {
        AgentId::new(format!("agent-{n}"))
    }

    #[test]
    fn adopt_pins_the_adopted_epoch() {
        let store = ConcurrentPolicyStore::new();
        store.publish(policy_with(&["/a"]));
        let a = agent(1);
        let shared = store.adopt(&a);
        assert_eq!(shared.epoch, store.epoch());
        assert_eq!(store.pin_of(&a), Some(shared.epoch));
        assert!(store.converged());
    }

    #[test]
    fn publish_after_adopt_breaks_convergence() {
        let store = ConcurrentPolicyStore::new();
        store.publish(policy_with(&["/a"]));
        let (a, b) = (agent(1), agent(2));
        store.adopt(&a);
        store.adopt(&b);
        store.publish(policy_with(&["/a", "/b"]));
        assert!(!store.converged());
        let lag = store.laggards();
        assert_eq!(lag.len(), 2);
        store.adopt(&a);
        store.adopt(&b);
        assert!(store.converged());
        assert!(store.laggards().is_empty());
    }

    #[test]
    fn unpin_removes_the_agent_from_convergence() {
        let store = ConcurrentPolicyStore::new();
        store.publish(policy_with(&["/a"]));
        let a = agent(1);
        store.adopt(&a);
        store.publish(policy_with(&["/a", "/b"]));
        assert!(!store.converged());
        assert_eq!(store.unpin(&a), Some(PolicyEpoch::ZERO.next()));
        assert!(store.converged(), "no pins left, trivially converged");
    }

    #[test]
    fn concurrent_adopt_and_publish_never_skews_pins() {
        // Every recorded pin must be an epoch that was really published,
        // and adopt's snapshot/pin stamp must agree — under contention.
        let store = StdArc::new(ConcurrentPolicyStore::new());
        store.publish(policy_with(&["/seed"]));
        let publisher = {
            let store = StdArc::clone(&store);
            std::thread::spawn(move || {
                for i in 0..50u32 {
                    store.publish(policy_with(&["/seed", &format!("/p{i}")]));
                }
            })
        };
        let adopters: Vec<_> = (0..4)
            .map(|t| {
                let store = StdArc::clone(&store);
                std::thread::spawn(move || {
                    let id = agent(t);
                    for _ in 0..50 {
                        let shared = store.adopt(&id);
                        let pinned = store.pin_of(&id).expect("just adopted");
                        assert!(
                            pinned >= shared.epoch,
                            "pin {pinned} older than adopted {}",
                            shared.epoch
                        );
                    }
                })
            })
            .collect();
        publisher.join().expect("publisher");
        for t in adopters {
            t.join().expect("adopter");
        }
        // Final catch-up converges the fleet.
        for t in 0..4 {
            store.adopt(&agent(t));
        }
        assert!(store.converged());
        assert_eq!(store.epoch().as_u64(), 51);
    }
}
