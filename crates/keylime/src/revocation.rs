//! The revocation framework.
//!
//! Real Keylime does more than alert the operator: when a node fails
//! attestation the verifier publishes a *revocation notification* that
//! other systems subscribe to — peers can drop connections to the
//! compromised node, certificate authorities can revoke its credentials,
//! orchestrators can cordon it. This module reproduces that plumbing: the
//! verifier emits signed [`RevocationNotice`]s, and [`RevocationBus`]
//! fans them out to subscribers.

use cia_crypto::{KeyPair, Signature, VerifyingKey};
use serde::{Deserialize, Serialize};

use crate::ids::AgentId;
use crate::verifier::FailureKind;

/// A signed statement that an agent failed attestation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RevocationNotice {
    /// The failed agent.
    pub agent: AgentId,
    /// Day of the failure.
    pub day: u32,
    /// The first failure that triggered revocation.
    pub reason: FailureKind,
    /// Monotonic sequence number (per emitter).
    pub sequence: u64,
    /// Verifier signature over the notice.
    pub signature: Signature,
}

impl RevocationNotice {
    fn message_bytes(agent: &AgentId, day: u32, reason: &FailureKind, sequence: u64) -> Vec<u8> {
        let mut msg = Vec::new();
        msg.extend_from_slice(b"REVOCATION:");
        msg.extend_from_slice(agent.as_str().as_bytes());
        msg.push(0);
        msg.extend_from_slice(&day.to_be_bytes());
        msg.extend_from_slice(format!("{reason:?}").as_bytes());
        msg.extend_from_slice(&sequence.to_be_bytes());
        msg
    }

    /// Verifies the notice against the emitting verifier's key.
    pub fn verify(&self, verifier_key: &VerifyingKey) -> bool {
        let msg = Self::message_bytes(&self.agent, self.day, &self.reason, self.sequence);
        verifier_key.verify(&msg, &self.signature)
    }
}

/// Emits signed revocation notices (held by the verifier side).
#[derive(Debug)]
pub struct RevocationEmitter {
    keys: KeyPair,
    sequence: u64,
}

impl RevocationEmitter {
    /// Creates an emitter with a fresh signing key.
    pub fn new<R: rand::RngCore + ?Sized>(rng: &mut R) -> Self {
        RevocationEmitter {
            keys: KeyPair::generate(rng),
            sequence: 0,
        }
    }

    /// The key subscribers use to authenticate notices.
    pub fn public_key(&self) -> &VerifyingKey {
        &self.keys.verifying
    }

    /// Emits a signed notice for a failed agent.
    pub fn emit(&mut self, agent: &AgentId, day: u32, reason: FailureKind) -> RevocationNotice {
        self.sequence += 1;
        let msg = RevocationNotice::message_bytes(agent, day, &reason, self.sequence);
        RevocationNotice {
            agent: agent.clone(),
            day,
            reason,
            sequence: self.sequence,
            signature: self.keys.signing.sign(&msg),
        }
    }
}

/// A subscriber's view: authenticated notices received so far.
#[derive(Debug, Clone, Default)]
pub struct RevocationSubscriber {
    received: Vec<RevocationNotice>,
    rejected: usize,
}

impl RevocationSubscriber {
    /// A subscriber with an empty inbox.
    pub fn new() -> Self {
        Self::default()
    }

    /// Delivers a notice; it is stored only if authentic.
    pub fn deliver(&mut self, notice: RevocationNotice, verifier_key: &VerifyingKey) {
        if notice.verify(verifier_key) {
            self.received.push(notice);
        } else {
            self.rejected += 1;
        }
    }

    /// True when `agent` has been revoked.
    pub fn is_revoked(&self, agent: &AgentId) -> bool {
        self.received.iter().any(|n| &n.agent == agent)
    }

    /// All authenticated notices.
    pub fn notices(&self) -> &[RevocationNotice] {
        &self.received
    }

    /// Count of forged/unauthenticated notices dropped.
    pub fn rejected_count(&self) -> usize {
        self.rejected
    }
}

/// One subscriber endpoint on the bus: its inbox plus delivery state.
/// While offline (e.g. the subscribing system sits on a quarantined
/// node), published notices queue here instead of being lost, and flush
/// in publication order when the endpoint comes back online.
#[derive(Debug)]
struct Slot {
    subscriber: RevocationSubscriber,
    online: bool,
    pending: Vec<(RevocationNotice, VerifyingKey)>,
}

/// Fans notices out to every subscriber (the ZeroMQ bus analogue).
///
/// Subscribers start online. [`RevocationBus::set_online`] models the
/// endpoint dropping off (a partitioned or quarantined node) and coming
/// back: notices published meanwhile are **queued, not dropped**, and are
/// delivered on reconnect — a revocation raised while an agent was
/// quarantined still applies once it recovers.
#[derive(Debug, Default)]
pub struct RevocationBus {
    subscribers: Vec<Slot>,
}

impl RevocationBus {
    /// An empty bus.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a subscriber (initially online), returning its index.
    pub fn subscribe(&mut self) -> usize {
        self.subscribers.push(Slot {
            subscriber: RevocationSubscriber::new(),
            online: true,
            pending: Vec::new(),
        });
        self.subscribers.len() - 1
    }

    /// Publishes a notice: online subscribers receive it now, offline
    /// subscribers queue it for delivery on reconnect.
    pub fn publish(&mut self, notice: &RevocationNotice, verifier_key: &VerifyingKey) {
        for slot in &mut self.subscribers {
            if slot.online {
                slot.subscriber.deliver(notice.clone(), verifier_key);
            } else {
                slot.pending.push((notice.clone(), verifier_key.clone()));
            }
        }
    }

    /// Marks a subscriber online/offline. Transitioning offline → online
    /// flushes every queued notice in publication order. Returns `false`
    /// when the index does not exist.
    pub fn set_online(&mut self, index: usize, online: bool) -> bool {
        let Some(slot) = self.subscribers.get_mut(index) else {
            return false;
        };
        if online && !slot.online {
            for (notice, key) in slot.pending.drain(..) {
                slot.subscriber.deliver(notice, &key);
            }
        }
        slot.online = online;
        true
    }

    /// Whether a subscriber is currently online.
    pub fn is_online(&self, index: usize) -> Option<bool> {
        self.subscribers.get(index).map(|s| s.online)
    }

    /// Notices queued for an offline subscriber.
    pub fn pending_count(&self, index: usize) -> Option<usize> {
        self.subscribers.get(index).map(|s| s.pending.len())
    }

    /// A subscriber's view.
    pub fn subscriber(&self, index: usize) -> Option<&RevocationSubscriber> {
        self.subscribers.get(index).map(|s| &s.subscriber)
    }

    /// Number of subscribers.
    pub fn subscriber_count(&self) -> usize {
        self.subscribers.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn emitter(seed: u64) -> RevocationEmitter {
        let mut rng = StdRng::seed_from_u64(seed);
        RevocationEmitter::new(&mut rng)
    }

    fn failure() -> FailureKind {
        FailureKind::NotInPolicy {
            path: "/usr/bin/evil".into(),
            digest: "ab".repeat(32),
        }
    }

    #[test]
    fn emit_verify_roundtrip() {
        let mut e = emitter(1);
        let notice = e.emit(&AgentId::from("node-3"), 17, failure());
        assert!(notice.verify(e.public_key()));
        assert_eq!(notice.sequence, 1);
        assert_eq!(e.emit(&AgentId::from("node-3"), 18, failure()).sequence, 2);
    }

    #[test]
    fn forged_notice_rejected_by_subscribers() {
        let e_real = emitter(2);
        let mut e_forger = emitter(3);
        let mut sub = RevocationSubscriber::new();

        let forged = e_forger.emit(&AgentId::from("node-1"), 1, failure());
        sub.deliver(forged, e_real.public_key());
        assert!(!sub.is_revoked(&AgentId::from("node-1")));
        assert_eq!(sub.rejected_count(), 1);
    }

    #[test]
    fn bus_fans_out_to_all_subscribers() {
        let mut e = emitter(4);
        let mut bus = RevocationBus::new();
        let a = bus.subscribe();
        let b = bus.subscribe();
        let notice = e.emit(&AgentId::from("node-7"), 3, failure());
        bus.publish(&notice, e.public_key());
        assert!(bus
            .subscriber(a)
            .unwrap()
            .is_revoked(&AgentId::from("node-7")));
        assert!(bus
            .subscriber(b)
            .unwrap()
            .is_revoked(&AgentId::from("node-7")));
        assert!(!bus
            .subscriber(a)
            .unwrap()
            .is_revoked(&AgentId::from("node-8")));
        assert_eq!(bus.subscriber_count(), 2);
    }

    #[test]
    fn offline_subscriber_queues_then_flushes_in_order() {
        let mut e = emitter(6);
        let mut bus = RevocationBus::new();
        let idx = bus.subscribe();
        assert_eq!(bus.is_online(idx), Some(true));

        bus.set_online(idx, false);
        let key = e.public_key().clone();
        let n1 = e.emit(&AgentId::from("node-1"), 1, failure());
        let n2 = e.emit(&AgentId::from("node-2"), 2, failure());
        bus.publish(&n1, &key);
        bus.publish(&n2, &key);
        assert_eq!(bus.pending_count(idx), Some(2));
        assert!(
            !bus.subscriber(idx)
                .unwrap()
                .is_revoked(&AgentId::from("node-1")),
            "not delivered while offline"
        );

        assert!(bus.set_online(idx, true));
        assert_eq!(bus.pending_count(idx), Some(0));
        let sub = bus.subscriber(idx).unwrap();
        assert!(sub.is_revoked(&AgentId::from("node-1")));
        assert!(sub.is_revoked(&AgentId::from("node-2")));
        assert_eq!(
            sub.notices().iter().map(|n| n.sequence).collect::<Vec<_>>(),
            vec![1, 2],
            "flushed in publication order"
        );
    }

    #[test]
    fn offline_queue_is_per_subscriber() {
        let mut e = emitter(7);
        let mut bus = RevocationBus::new();
        let up = bus.subscribe();
        let down = bus.subscribe();
        bus.set_online(down, false);
        let key = e.public_key().clone();
        let notice = e.emit(&AgentId::from("node-5"), 9, failure());
        bus.publish(&notice, &key);
        assert!(bus
            .subscriber(up)
            .unwrap()
            .is_revoked(&AgentId::from("node-5")));
        assert!(!bus
            .subscriber(down)
            .unwrap()
            .is_revoked(&AgentId::from("node-5")));
        assert!(!bus.set_online(99, true), "unknown index is reported");
    }

    #[test]
    fn tampered_notice_fails_verification() {
        let mut e = emitter(5);
        let mut notice = e.emit(&AgentId::from("node-9"), 5, failure());
        notice.agent = AgentId::from("node-1"); // retarget the revocation
        assert!(!notice.verify(e.public_key()));
    }
}
