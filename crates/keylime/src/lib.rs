//! A reimplementation of Keylime's continuous integrity attestation.
//!
//! Mirrors the four components of Fig. 1 of the paper:
//!
//! - [`Agent`] — runs on the untrusted machine; answers identity and
//!   quote requests by reading the machine's TPM and IMA log.
//! - [`Registrar`] — validates the EK certificate chain and the AK
//!   binding, guarding against spoofed TPMs.
//! - [`Verifier`] — polls agents: checks quote signatures and nonces,
//!   replays the IMA log against quoted PCR 10, validates
//!   `boot_aggregate` against quoted PCRs 0–9, and evaluates every new
//!   log entry against the agent's [`RuntimePolicy`].
//! - [`Tenant`]/[`Cluster`] — the operator-facing orchestration layer
//!   (enroll machines, push policies, resolve failures).
//!
//! On top of the single-agent protocol sits the **fleet engine**
//! ([`FleetScheduler`], driven through [`Cluster::attest_fleet`]): a
//! worker pool that attests every enrolled agent concurrently, retries
//! dropped calls with bounded exponential backoff, reports unreachable
//! agents instead of skipping them, and accumulates counters and latency
//! histograms in a serializable [`MetricsSnapshot`].
//!
//! Two design points of the paper are first-class here:
//!
//! - **P2, stop-on-failure**: by default the verifier *stops processing at
//!   the first failing log entry and pauses polling*, exactly the
//!   behaviour adaptive attackers exploit. The
//!   [`VerifierConfig::continue_on_failure`] toggle implements the
//!   paper's recommended fix (always complete the full attestation), and
//!   [`VerifierConfig::engine_default`] turns it on as the fleet engine's
//!   default posture.
//! - **P1, excluded directories**: [`RuntimePolicy`] carries the exclude
//!   list (e.g. `/tmp`) that the studied policy shipped with.
//!
//! Requests and responses cross an explicit [`Transport`] — a trait over
//! JSON-serialized request/response calls. [`ReliableTransport`] always
//! delivers; [`LossyTransport`] drops calls with a seeded probability,
//! and [`Transport::fork`] derives independent deterministic lanes so
//! concurrent fleet rounds stay reproducible.
//!
//! Agents are named by the typed [`AgentId`] — no public API takes a
//! bare `&str` id, so mixing up hostnames and other strings is a compile
//! error, not an incident.
//!
//! For fault testing beyond a drop-rate scalar, [`ChaosTransport`]
//! applies a seeded [`FaultPlan`] — scripted partitions, loss windows,
//! response corruption, registrar outages, crash/restarts — decided
//! purely by `(round, lane, attempt)` so any failure trace replays
//! bit-identically from the plan alone. The verifier tracks a per-agent
//! health state machine ([`AgentHealth`]: Healthy → Degraded →
//! Quarantined → Recovering); with quarantine enabled the scheduler
//! skips quarantined agents cheaply on a decaying re-probe backoff
//! instead of burning full retry budgets every round.
//!
//! # Examples
//!
//! Single-agent flow:
//!
//! ```
//! use cia_keylime::{Cluster, RuntimePolicy, VerifierConfig};
//! use cia_os::{ExecMethod, MachineConfig};
//! use cia_vfs::VfsPath;
//!
//! let mut cluster = Cluster::new(42, VerifierConfig::default());
//! let policy = RuntimePolicy::new();
//! let id = cluster.add_machine(MachineConfig::default(), policy)?;
//!
//! // The enrolled agent attests cleanly while nothing unexpected runs.
//! let outcome = cluster.attest(&id)?;
//! assert!(outcome.is_verified());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! Validated configuration and a concurrent fleet round over a lossy
//! transport:
//!
//! ```
//! use cia_keylime::{Cluster, LossyTransport, RuntimePolicy, VerifierConfig};
//! use cia_os::MachineConfig;
//!
//! let config = VerifierConfig::builder()
//!     .continue_on_failure(true) // the paper's P2 fix
//!     .max_retries(8)
//!     .retry_backoff_ms(5)
//!     .worker_count(4)
//!     .build()?;
//!
//! let transport = LossyTransport::new(0.10, 7); // 10% loss, seeded
//! let mut cluster = Cluster::with_transport(42, config, transport);
//! for i in 0..8u64 {
//!     let machine = MachineConfig {
//!         hostname: format!("node-{i:02}"),
//!         seed: i,
//!         ..MachineConfig::default()
//!     };
//!     cluster.add_machine(machine, RuntimePolicy::new())?;
//! }
//!
//! let report = cluster.attest_fleet();
//! assert_eq!(report.results.len(), 8);
//! assert!(report.all_reached(), "nobody silently skipped");
//! let metrics = cluster.scheduler.snapshot();
//! assert_eq!(metrics.rounds, 1);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod agent;
pub mod audit;
pub mod backend;
pub mod chaos;
pub mod config;
pub mod durable;
pub mod error;
pub mod federation;
pub mod ids;
pub mod payload;
pub mod pipeline;
pub mod policy;
pub mod registrar;
pub mod remote;
pub mod revocation;
pub mod ring;
pub mod scheduler;
pub mod store;
pub mod tenant;
pub mod transport;
pub mod verifier;

pub use agent::{Agent, AgentRequest, AgentResponse, IdentityResponse, QuoteResponse};
pub use audit::{AuditLog, AuditOutcome, AuditRecord};
pub use backend::{
    AttestationBackend, Backend, BackendCapabilities, BackendCert, BackendError, BackendIdentity,
    BackendKind, BackendRoot, BackendSet, ChallengeBinding, ConfidentialVmBackend,
    ConfidentialVmConfig, EvidenceFormat, SecureWorldBackend, SecureWorldConfig, TpmImaBackend,
};
pub use chaos::{ChaosTransport, FaultDecision, FaultEvent, FaultKind, FaultPlan, FaultTarget};
pub use config::{ConfigError, VerifierConfigBuilder, MAX_RETRIES_LIMIT};
pub use durable::{Recovered, ResumePlan, VerifierJournal, DEFAULT_JOURNAL_DIR};
pub use error::KeylimeError;
pub use federation::{FederatedRoundReport, Federation, FederationConfig, ShardTransportKind};
pub use ids::AgentId;
pub use payload::{EncryptedPayload, KeyShare, PayloadBundle};
pub use policy::{PolicyCheck, PolicyDelta, PolicyDiff, PolicyMeta, RuntimePolicy};
pub use registrar::{Registrar, RegistrationRecord};
pub use remote::{drive_round, serve_round, DrivenRound, DEFAULT_WIRE_BATCH, DEFAULT_WIRE_WINDOW};
pub use revocation::{RevocationBus, RevocationEmitter, RevocationNotice, RevocationSubscriber};
pub use ring::HashRing;
pub use scheduler::{
    AgentRoundResult, BackendCounts, FleetScheduler, MetricsSnapshot, PerBackendCounts,
    RoundOutcome, RoundReport, SchedulerMetrics,
};
pub use store::{ConcurrentPolicyStore, PolicyEpoch, PolicyStore, SharedPolicy};
pub use tenant::{Cluster, Tenant};
pub use transport::{LossyTransport, ReliableTransport, Transport, TransportError};
pub use verifier::{
    AgentHealth, AgentStateSnapshot, AgentStatus, Alert, AttestationOutcome, FailureKind,
    HealthCounts, Verifier, VerifierConfig,
};

/// The runtime lock-order recorder from the instrumented `parking_lot`
/// shim: `sanitizer::cycles()` must stay empty across every corpus run.
#[cfg(feature = "lock-sanitizer")]
pub use parking_lot::sanitizer;

/// The vector-clock happens-before race detector from the same shim:
/// `racecheck::races()` must stay empty across every corpus run —
/// every audited access to `RaceCell`-wrapped shared state (the store's
/// pin ledger, the federation's merge accumulators) must be ordered by
/// instrumented synchronization.
#[cfg(feature = "lock-sanitizer")]
pub use parking_lot::racecheck;
