//! A reimplementation of Keylime's continuous integrity attestation.
//!
//! Mirrors the four components of Fig. 1 of the paper:
//!
//! - [`Agent`] — runs on the untrusted machine; answers identity and
//!   quote requests by reading the machine's TPM and IMA log.
//! - [`Registrar`] — validates the EK certificate chain and the AK
//!   binding, guarding against spoofed TPMs.
//! - [`Verifier`] — polls agents: checks quote signatures and nonces,
//!   replays the IMA log against quoted PCR 10, validates
//!   `boot_aggregate` against quoted PCRs 0–9, and evaluates every new
//!   log entry against the agent's [`RuntimePolicy`].
//! - [`Tenant`]/[`Cluster`] — the operator-facing orchestration layer
//!   (enroll machines, push policies, resolve failures).
//!
//! Two design points of the paper are first-class here:
//!
//! - **P2, stop-on-failure**: by default the verifier *stops processing at
//!   the first failing log entry and pauses polling*, exactly the
//!   behaviour adaptive attackers exploit. The
//!   [`VerifierConfig::continue_on_failure`] toggle implements the
//!   paper's recommended fix (always complete the full attestation).
//! - **P1, excluded directories**: [`RuntimePolicy`] carries the exclude
//!   list (e.g. `/tmp`) that the studied policy shipped with.
//!
//! Requests and responses cross an explicit [`Transport`] that serializes
//! every message to JSON and can inject message loss, keeping the
//! components as separable as the real, networked implementation.
//!
//! # Examples
//!
//! ```
//! use cia_keylime::{Cluster, RuntimePolicy, VerifierConfig};
//! use cia_os::{ExecMethod, MachineConfig};
//! use cia_vfs::VfsPath;
//!
//! let mut cluster = Cluster::new(42, VerifierConfig::default());
//! let policy = RuntimePolicy::new();
//! let id = cluster.add_machine(MachineConfig::default(), policy)?;
//!
//! // The enrolled agent attests cleanly while nothing unexpected runs.
//! let outcome = cluster.attest(&id)?;
//! assert!(outcome.is_verified());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod agent;
pub mod audit;
pub mod error;
pub mod payload;
pub mod policy;
pub mod registrar;
pub mod revocation;
pub mod tenant;
pub mod transport;
pub mod verifier;

pub use agent::{Agent, AgentRequest, AgentResponse, IdentityResponse, QuoteResponse};
pub use audit::{AuditLog, AuditOutcome, AuditRecord};
pub use error::KeylimeError;
pub use payload::{EncryptedPayload, KeyShare, PayloadBundle};
pub use policy::{PolicyCheck, PolicyDiff, PolicyMeta, RuntimePolicy};
pub use registrar::Registrar;
pub use revocation::{RevocationBus, RevocationEmitter, RevocationNotice, RevocationSubscriber};
pub use tenant::{Cluster, Tenant};
pub use transport::{Transport, TransportError};
pub use verifier::{
    AgentStatus, Alert, AttestationOutcome, FailureKind, Verifier, VerifierConfig,
};
