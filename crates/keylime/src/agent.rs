//! The Keylime agent: the only component on the untrusted machine.

use cia_crypto::HashAlgorithm;
use cia_ima::ImaLogEntry;
use cia_os::Machine;
use cia_tpm::{AkBinding, EkCertificate, PcrSelection, Quote};
use serde::{Deserialize, Serialize};

use crate::error::KeylimeError;
use crate::ids::AgentId;

/// Requests an agent answers.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum AgentRequest {
    /// Prove TPM identity (registration protocol).
    Identity {
        /// Registrar challenge for the AK binding.
        challenge: Vec<u8>,
    },
    /// Produce a quote plus the IMA log tail.
    Quote {
        /// Verifier anti-replay nonce.
        nonce: Vec<u8>,
        /// Send measurement-list entries starting at this index.
        from_entry: usize,
        /// When `true`, reply with the typed entry list
        /// ([`QuoteResponse::entries`]) instead of the ASCII rendering —
        /// the v2 wire format the verifier requests when both its config
        /// and the transport capability allow it.
        structured: bool,
    },
}

/// Identity material returned during registration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IdentityResponse {
    /// The manufacturer-signed EK certificate.
    pub ek_certificate: EkCertificate,
    /// Proof the AK lives beside the endorsed EK.
    pub binding: AkBinding,
}

/// Quote plus incremental measurement list.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuoteResponse {
    /// Signed quote over PCRs 0–10 (SHA-256 bank).
    pub quote: Quote,
    /// Canonical ASCII measurement-list lines from `from_entry` on.
    /// Empty when [`QuoteResponse::entries`] carries the excerpt instead
    /// — the agent never sends both renderings of the same data.
    pub log_excerpt: String,
    /// Structured (v2) excerpt: the typed entries from `from_entry` on.
    /// `None` on the legacy text path. Memoized template hashes never
    /// travel inside the entries; the verifier recomputes them, so a
    /// tampered entry is caught by the PCR replay exactly as on the text
    /// path.
    pub entries: Option<Vec<ImaLogEntry>>,
    /// Total entries currently in the measurement list.
    pub total_entries: usize,
    /// TPM reset counter, so the verifier can detect reboots.
    pub boot_count: u64,
}

/// Responses an agent produces.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum AgentResponse {
    /// Answer to [`AgentRequest::Identity`].
    Identity(IdentityResponse),
    /// Answer to [`AgentRequest::Quote`].
    Quote(QuoteResponse),
    /// The agent could not fulfil the request.
    Error {
        /// Description of the failure.
        reason: String,
    },
}

/// The agent process wrapping one [`Machine`].
#[derive(Debug)]
pub struct Agent {
    id: AgentId,
    machine: Machine,
}

impl Agent {
    /// Wraps a machine.
    pub fn new(machine: Machine) -> Self {
        Agent {
            id: AgentId::new(machine.hostname()),
            machine,
        }
    }

    /// The agent identity (the machine's host name).
    pub fn id(&self) -> &AgentId {
        &self.id
    }

    /// Read access to the underlying machine.
    pub fn machine(&self) -> &Machine {
        &self.machine
    }

    /// Mutable access — used by experiments (and attackers) to act on the
    /// host.
    pub fn machine_mut(&mut self) -> &mut Machine {
        &mut self.machine
    }

    /// Consumes the agent, returning the machine.
    pub fn into_machine(self) -> Machine {
        self.machine
    }

    /// Serves one request.
    pub fn handle(&mut self, request: AgentRequest) -> AgentResponse {
        match request {
            AgentRequest::Identity { challenge } => match self.machine.tpm.certify_ak(&challenge) {
                Ok(binding) => AgentResponse::Identity(IdentityResponse {
                    ek_certificate: self.machine.tpm.ek_certificate().clone(),
                    binding,
                }),
                Err(e) => AgentResponse::Error {
                    reason: e.to_string(),
                },
            },
            AgentRequest::Quote {
                nonce,
                from_entry,
                structured,
            } => {
                let selection = PcrSelection::of(&[0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10]);
                match self
                    .machine
                    .tpm
                    .quote(&nonce, &selection, HashAlgorithm::Sha256)
                {
                    Ok(quote) => {
                        let all = self.machine.ima.log().entries();
                        let from = from_entry.min(all.len());
                        let (log_excerpt, entries) = if structured {
                            (String::new(), Some(all[from..].to_vec()))
                        } else {
                            let mut text = String::new();
                            for e in &all[from..] {
                                text.push_str(&e.render());
                                text.push('\n');
                            }
                            (text, None)
                        };
                        AgentResponse::Quote(QuoteResponse {
                            boot_count: quote.boot_count,
                            quote,
                            log_excerpt,
                            entries,
                            total_entries: all.len(),
                        })
                    }
                    Err(e) => AgentResponse::Error {
                        reason: e.to_string(),
                    },
                }
            }
        }
    }

    /// Convenience wrapper returning a typed error for `Error` responses.
    pub fn handle_checked(&mut self, request: AgentRequest) -> Result<AgentResponse, KeylimeError> {
        match self.handle(request) {
            AgentResponse::Error { reason } => Err(KeylimeError::Agent { reason }),
            ok => Ok(ok),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cia_os::MachineConfig;
    use cia_tpm::Manufacturer;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn agent() -> Agent {
        let mut rng = StdRng::seed_from_u64(5);
        let m = Manufacturer::generate(&mut rng);
        Agent::new(Machine::new(&m, MachineConfig::default()))
    }

    #[test]
    fn identity_response_is_bound() {
        let mut a = agent();
        match a.handle(AgentRequest::Identity {
            challenge: b"c1".to_vec(),
        }) {
            AgentResponse::Identity(id) => {
                assert!(id.binding.verify(&id.ek_certificate.ek_public, b"c1"));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn quote_covers_log() {
        let mut a = agent();
        let resp = a.handle(AgentRequest::Quote {
            nonce: b"n1".to_vec(),
            from_entry: 0,
            structured: false,
        });
        match resp {
            AgentResponse::Quote(q) => {
                assert_eq!(q.total_entries, 1, "boot_aggregate only");
                assert!(q.log_excerpt.contains("boot_aggregate"));
                assert_eq!(q.entries, None, "text path carries no typed list");
                let ak = a.machine().tpm.ak_public().unwrap();
                assert!(q.quote.verify(ak, b"n1"));
                assert!(q.quote.pcr_value(10).is_some());
                assert!(q.quote.pcr_value(0).is_some());
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn incremental_excerpt() {
        let mut a = agent();
        let resp = a.handle(AgentRequest::Quote {
            nonce: b"n".to_vec(),
            from_entry: 1,
            structured: false,
        });
        match resp {
            AgentResponse::Quote(q) => {
                assert!(q.log_excerpt.is_empty());
                assert_eq!(q.total_entries, 1);
            }
            other => panic!("unexpected {other:?}"),
        }
        // Out-of-range offsets clamp instead of panicking.
        let resp = a.handle(AgentRequest::Quote {
            nonce: b"n".to_vec(),
            from_entry: 99,
            structured: false,
        });
        assert!(matches!(resp, AgentResponse::Quote(_)));
    }

    #[test]
    fn structured_excerpt_matches_text_rendering() {
        let mut a = agent();
        let text = match a.handle(AgentRequest::Quote {
            nonce: b"n".to_vec(),
            from_entry: 0,
            structured: false,
        }) {
            AgentResponse::Quote(q) => q,
            other => panic!("unexpected {other:?}"),
        };
        let typed = match a.handle(AgentRequest::Quote {
            nonce: b"n".to_vec(),
            from_entry: 0,
            structured: true,
        }) {
            AgentResponse::Quote(q) => q,
            other => panic!("unexpected {other:?}"),
        };
        assert!(typed.log_excerpt.is_empty(), "never both renderings");
        let entries = typed.entries.expect("structured path sends entries");
        assert_eq!(entries.len(), typed.total_entries);
        let rendered: String = entries.iter().map(|e| e.render() + "\n").collect();
        assert_eq!(rendered, text.log_excerpt, "same excerpt, two encodings");
    }
}
