//! The Keylime agent: the only component on the untrusted machine.
//!
//! The agent is a thin protocol adapter: requests arrive over the
//! transport, evidence production is delegated to the agent's
//! [`AttestationBackend`]. Which backend an agent runs is fixed at
//! provisioning time; the verifier learns it from the registrar record
//! and appraises accordingly.

use cia_ima::ImaLogEntry;
use cia_os::Machine;
use cia_tpm::{AkBinding, EkCertificate, Quote};
use serde::{Deserialize, Serialize};

use crate::backend::{
    AttestationBackend, Backend, BackendCapabilities, BackendCert, BackendKind, ChallengeBinding,
    EvidenceFormat,
};
use crate::error::KeylimeError;
use crate::ids::AgentId;

/// Requests an agent answers.
#[non_exhaustive]
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum AgentRequest {
    /// Prove platform identity (registration protocol).
    Identity {
        /// Registrar challenge for the identity binding.
        challenge: Vec<u8>,
    },
    /// Produce a quote plus the measurement-list tail.
    Quote {
        /// Verifier anti-replay nonce.
        nonce: Vec<u8>,
        /// Send measurement-list entries starting at this index.
        from_entry: usize,
        /// When `true`, reply with the typed entry list
        /// ([`QuoteResponse::entries`]) instead of the ASCII rendering —
        /// the v2 wire format the verifier requests when its config, the
        /// transport capability, and the backend capability all allow it.
        structured: bool,
    },
}

/// Identity material returned during registration — shaped by the
/// backend's root of trust.
#[non_exhaustive]
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum IdentityResponse {
    /// TPM identity: manufacturer-endorsed EK plus AK binding.
    TpmEk {
        /// The manufacturer-signed EK certificate.
        ek_certificate: EkCertificate,
        /// Proof the AK lives beside the endorsed EK.
        binding: AkBinding,
    },
    /// Secure-world identity: TEE-vendor device certificate plus proof of
    /// possession.
    SecureWorld {
        /// Vendor certificate over the device attestation key (context:
        /// the measurement-policy digest).
        certificate: BackendCert,
        /// Proof of possession bound to the registrar challenge.
        binding: ChallengeBinding,
    },
    /// Confidential-VM identity: platform certificate rooted in the
    /// launch measurement plus proof of possession.
    ConfidentialVm {
        /// Platform certificate over the guest attestation key (context:
        /// the launch measurement).
        certificate: BackendCert,
        /// The launch measurement the certificate attests.
        launch_measurement: cia_crypto::Digest,
        /// Proof of possession bound to the registrar challenge.
        binding: ChallengeBinding,
    },
}

impl IdentityResponse {
    /// Which backend family produced this identity material.
    pub fn backend(&self) -> BackendKind {
        match self {
            IdentityResponse::TpmEk { .. } => BackendKind::TpmIma,
            IdentityResponse::SecureWorld { .. } => BackendKind::SecureWorld,
            IdentityResponse::ConfidentialVm { .. } => BackendKind::ConfidentialVm,
        }
    }
}

/// Quote plus incremental measurement list.
///
/// Fields are private so new backends can reshape the payload without a
/// breaking change; read access goes through the accessors.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuoteResponse {
    /// Which backend produced this evidence. Unsigned wire metadata: the
    /// verifier trusts its own enrolment record, not this tag, and
    /// rejects evidence whose tag disagrees with the record.
    #[serde(default)]
    pub(crate) backend: BackendKind,
    /// Signed quote over the backend's registers.
    pub(crate) quote: Quote,
    /// Canonical ASCII measurement-list lines from `from_entry` on.
    /// Empty when `entries` carries the excerpt instead — the agent
    /// never sends both renderings of the same data.
    pub(crate) log_excerpt: String,
    /// Structured (v2) excerpt: the typed entries from `from_entry` on.
    /// `None` on the legacy text path. Memoized template hashes never
    /// travel inside the entries; the verifier recomputes them, so a
    /// tampered entry is caught by the register replay exactly as on the
    /// text path.
    pub(crate) entries: Option<Vec<ImaLogEntry>>,
    /// Total entries currently in the measurement list.
    pub(crate) total_entries: usize,
    /// Platform reset counter, so the verifier can detect reboots.
    pub(crate) boot_count: u64,
}

impl QuoteResponse {
    /// Assembles a response; the boot counter is taken from the quote so
    /// the two can never disagree.
    pub fn new(
        backend: BackendKind,
        quote: Quote,
        log_excerpt: String,
        entries: Option<Vec<ImaLogEntry>>,
        total_entries: usize,
    ) -> Self {
        QuoteResponse {
            backend,
            boot_count: quote.boot_count,
            quote,
            log_excerpt,
            entries,
            total_entries,
        }
    }

    /// Which backend claims to have produced this evidence (unsigned —
    /// see the field docs).
    pub fn backend(&self) -> BackendKind {
        self.backend
    }

    /// The signed quote.
    pub fn quote(&self) -> &Quote {
        &self.quote
    }

    /// The ASCII excerpt (empty on the structured path).
    pub fn log_excerpt(&self) -> &str {
        &self.log_excerpt
    }

    /// The typed (v2) excerpt, when the structured path was negotiated.
    pub fn entries(&self) -> Option<&[ImaLogEntry]> {
        self.entries.as_deref()
    }

    /// Total entries in the agent's measurement list.
    pub fn total_entries(&self) -> usize {
        self.total_entries
    }

    /// Platform reset counter.
    pub fn boot_count(&self) -> u64 {
        self.boot_count
    }
}

/// Responses an agent produces.
#[non_exhaustive]
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum AgentResponse {
    /// Answer to [`AgentRequest::Identity`].
    Identity(IdentityResponse),
    /// Answer to [`AgentRequest::Quote`].
    Quote(QuoteResponse),
    /// The agent could not fulfil the request.
    Error {
        /// Description of the failure.
        reason: String,
    },
}

/// The agent process wrapping one attestation backend.
#[derive(Debug)]
pub struct Agent {
    id: AgentId,
    backend: Backend,
}

impl Agent {
    /// Wraps a machine in the classic TPM+IMA backend.
    pub fn new(machine: Machine) -> Self {
        Agent::with_backend(Backend::from(machine))
    }

    /// Wraps an arbitrary backend; the agent identity derives from the
    /// backend's host name.
    pub fn with_backend(backend: impl Into<Backend>) -> Self {
        let backend = backend.into();
        Agent {
            id: AgentId::new(backend.hostname()),
            backend,
        }
    }

    /// The agent identity (the platform's host name).
    pub fn id(&self) -> &AgentId {
        &self.id
    }

    /// Which backend this agent runs.
    pub fn backend_kind(&self) -> BackendKind {
        self.backend.kind()
    }

    /// The backend's capability flags.
    pub fn capabilities(&self) -> BackendCapabilities {
        self.backend.capabilities()
    }

    /// Read access to the backend.
    pub fn backend(&self) -> &Backend {
        &self.backend
    }

    /// Mutable access to the backend — used by experiments (and
    /// attackers) to act on the platform.
    pub fn backend_mut(&mut self) -> &mut Backend {
        &mut self.backend
    }

    /// The platform's notion of the current simulated day.
    pub fn day(&self) -> u32 {
        self.backend.day()
    }

    /// Crash/restarts the platform, whatever the backend: TPM machines
    /// reboot (reset counter bumps, IMA log clears), secure worlds and
    /// confidential VMs reset their measurement state.
    ///
    /// # Errors
    ///
    /// [`crate::BackendError::Platform`] when the platform refuses.
    pub fn restart(&mut self) -> Result<(), crate::backend::BackendError> {
        self.backend.restart()
    }

    /// Read access to the underlying machine.
    ///
    /// # Panics
    ///
    /// When the agent does not run the TPM+IMA backend; heterogeneous
    /// call sites should use [`Agent::try_machine`].
    pub fn machine(&self) -> &Machine {
        self.backend
            .as_machine()
            .expect("agent does not run the TPM+IMA backend")
    }

    /// Mutable access to the underlying machine.
    ///
    /// # Panics
    ///
    /// When the agent does not run the TPM+IMA backend; heterogeneous
    /// call sites should use [`Agent::try_machine_mut`].
    pub fn machine_mut(&mut self) -> &mut Machine {
        self.backend
            .as_machine_mut()
            .expect("agent does not run the TPM+IMA backend")
    }

    /// The underlying machine, when this agent runs TPM+IMA.
    pub fn try_machine(&self) -> Option<&Machine> {
        self.backend.as_machine()
    }

    /// Mutable machine access, when this agent runs TPM+IMA.
    pub fn try_machine_mut(&mut self) -> Option<&mut Machine> {
        self.backend.as_machine_mut()
    }

    /// Consumes the agent, returning the machine.
    ///
    /// # Panics
    ///
    /// When the agent does not run the TPM+IMA backend.
    pub fn into_machine(self) -> Machine {
        match self.backend {
            Backend::TpmIma(b) => b.into_machine(),
            other => panic!(
                "agent runs the {} backend, not TPM+IMA",
                AttestationBackend::kind(&other)
            ),
        }
    }

    /// Serves one request.
    pub fn handle(&mut self, request: AgentRequest) -> AgentResponse {
        match request {
            AgentRequest::Identity { challenge } => match self.backend.identity(&challenge) {
                Ok(identity) => AgentResponse::Identity(identity),
                Err(e) => AgentResponse::Error {
                    reason: e.to_string(),
                },
            },
            AgentRequest::Quote {
                nonce,
                from_entry,
                structured,
            } => {
                let format = EvidenceFormat::from_structured(structured);
                match self.backend.quote(&nonce, from_entry, format) {
                    Ok(resp) => AgentResponse::Quote(resp),
                    Err(e) => AgentResponse::Error {
                        reason: e.to_string(),
                    },
                }
            }
        }
    }

    /// Convenience wrapper returning a typed error for `Error` responses.
    pub fn handle_checked(&mut self, request: AgentRequest) -> Result<AgentResponse, KeylimeError> {
        match self.handle(request) {
            AgentResponse::Error { reason } => Err(KeylimeError::Agent { reason }),
            ok => Ok(ok),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{BackendRoot, SecureWorldBackend, SecureWorldConfig};
    use cia_os::MachineConfig;
    use cia_tpm::Manufacturer;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn agent() -> Agent {
        let mut rng = StdRng::seed_from_u64(5);
        let m = Manufacturer::generate(&mut rng);
        Agent::new(Machine::new(&m, MachineConfig::default()))
    }

    #[test]
    fn identity_response_is_bound() {
        let mut a = agent();
        match a.handle(AgentRequest::Identity {
            challenge: b"c1".to_vec(),
        }) {
            AgentResponse::Identity(IdentityResponse::TpmEk {
                ek_certificate,
                binding,
            }) => {
                assert!(binding.verify(&ek_certificate.ek_public, b"c1"));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn quote_covers_log() {
        let mut a = agent();
        assert_eq!(a.backend_kind(), BackendKind::TpmIma);
        let resp = a.handle(AgentRequest::Quote {
            nonce: b"n1".to_vec(),
            from_entry: 0,
            structured: false,
        });
        match resp {
            AgentResponse::Quote(q) => {
                assert_eq!(q.backend(), BackendKind::TpmIma);
                assert_eq!(q.total_entries(), 1, "boot_aggregate only");
                assert!(q.log_excerpt().contains("boot_aggregate"));
                assert_eq!(q.entries(), None, "text path carries no typed list");
                let ak = a.machine().tpm.ak_public().unwrap();
                assert!(q.quote().verify(ak, b"n1"));
                assert!(q.quote().pcr_value(10).is_some());
                assert!(q.quote().pcr_value(0).is_some());
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn incremental_excerpt() {
        let mut a = agent();
        let resp = a.handle(AgentRequest::Quote {
            nonce: b"n".to_vec(),
            from_entry: 1,
            structured: false,
        });
        match resp {
            AgentResponse::Quote(q) => {
                assert!(q.log_excerpt().is_empty());
                assert_eq!(q.total_entries(), 1);
            }
            other => panic!("unexpected {other:?}"),
        }
        // Out-of-range offsets clamp instead of panicking.
        let resp = a.handle(AgentRequest::Quote {
            nonce: b"n".to_vec(),
            from_entry: 99,
            structured: false,
        });
        assert!(matches!(resp, AgentResponse::Quote(_)));
    }

    #[test]
    fn structured_excerpt_matches_text_rendering() {
        let mut a = agent();
        let text = match a.handle(AgentRequest::Quote {
            nonce: b"n".to_vec(),
            from_entry: 0,
            structured: false,
        }) {
            AgentResponse::Quote(q) => q,
            other => panic!("unexpected {other:?}"),
        };
        let typed = match a.handle(AgentRequest::Quote {
            nonce: b"n".to_vec(),
            from_entry: 0,
            structured: true,
        }) {
            AgentResponse::Quote(q) => q,
            other => panic!("unexpected {other:?}"),
        };
        assert!(typed.log_excerpt().is_empty(), "never both renderings");
        let entries = typed.entries().expect("structured path sends entries");
        assert_eq!(entries.len(), typed.total_entries());
        let rendered: String = entries.iter().map(|e| e.render() + "\n").collect();
        assert_eq!(rendered, text.log_excerpt(), "same excerpt, two encodings");
    }

    #[test]
    fn secure_world_agent_serves_protocol() {
        let mut rng = StdRng::seed_from_u64(6);
        let root = BackendRoot::generate("TEE Vendor", &mut rng);
        let sw = SecureWorldBackend::provision(SecureWorldConfig::new("sw-agent", 3), &root);
        let mut a = Agent::with_backend(sw);
        assert_eq!(a.backend_kind(), BackendKind::SecureWorld);
        assert_eq!(a.id().to_string(), "sw-agent");
        assert!(a.try_machine().is_none());
        match a.handle(AgentRequest::Identity {
            challenge: b"c".to_vec(),
        }) {
            AgentResponse::Identity(IdentityResponse::SecureWorld {
                certificate,
                binding,
            }) => {
                assert!(certificate.verify(root.public_key()));
                assert!(binding.verify(&certificate.subject, b"c"));
            }
            other => panic!("unexpected {other:?}"),
        }
        // Structured requests are refused by the backend, not dropped.
        match a.handle(AgentRequest::Quote {
            nonce: b"n".to_vec(),
            from_entry: 0,
            structured: true,
        }) {
            AgentResponse::Error { reason } => {
                assert!(reason.contains("secure-world"), "got: {reason}")
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}
