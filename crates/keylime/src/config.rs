//! Verifier and fleet-engine configuration.
//!
//! [`VerifierConfig`] started as a single `continue_on_failure` toggle;
//! the fleet scheduler added retry, backoff, timeout and worker-pool
//! knobs. Construct it three ways:
//!
//! - `VerifierConfig::default()` — stock-Keylime semantics
//!   (stop-on-failure, the paper's P2) with sane engine parameters;
//! - struct update syntax over `Default` for one-off tweaks:
//!   `VerifierConfig { continue_on_failure: true, ..Default::default() }`;
//! - [`VerifierConfig::builder`] — validated construction for anything
//!   beyond a toggle.

use std::fmt;
use std::time::Duration;

use serde::{Deserialize, Serialize};

/// Verifier behaviour toggles and fleet-engine parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct VerifierConfig {
    /// §IV-C "Improving Keylime's Attestation Process": when `false`
    /// (stock Keylime, and the default), the verifier stops processing at
    /// the first failing log entry and pauses polling — the behaviour
    /// attackers exploit as **P2**. When `true`, every entry is always
    /// evaluated and polling continues, so real discrepancies cannot hide
    /// behind an unresolved false positive.
    pub continue_on_failure: bool,
    /// Dropped transport calls are retried up to this many times before
    /// an agent is reported unreachable for the round.
    pub max_retries: u32,
    /// Backoff before the first retry, in milliseconds; doubles per
    /// attempt (bounded by [`VerifierConfig::max_backoff_ms`]). The fleet
    /// scheduler *records* backoff rather than sleeping it, keeping runs
    /// deterministic and fast.
    pub retry_backoff_ms: u64,
    /// Upper bound on a single backoff step, in milliseconds.
    pub max_backoff_ms: u64,
    /// Per-call latency budget, in milliseconds. Calls exceeding it are
    /// counted in the scheduler's `timeouts` metric.
    pub call_timeout_ms: u64,
    /// Worker threads in the fleet scheduler's pool.
    pub worker_count: usize,
}

impl Default for VerifierConfig {
    fn default() -> Self {
        VerifierConfig {
            continue_on_failure: false,
            max_retries: 3,
            retry_backoff_ms: 10,
            max_backoff_ms: 1_000,
            call_timeout_ms: 1_000,
            worker_count: 4,
        }
    }
}

impl VerifierConfig {
    /// A builder for validated construction.
    pub fn builder() -> VerifierConfigBuilder {
        VerifierConfigBuilder {
            config: VerifierConfig::default(),
        }
    }

    /// The fleet engine's recommended defaults: like `default()` but with
    /// `continue_on_failure` **on** — the paper's P2 fix — so one
    /// unresolved false positive can never blind the verifier to what
    /// comes after it, and with the worker pool sized to the machine.
    pub fn engine_default() -> Self {
        VerifierConfig {
            continue_on_failure: true,
            worker_count: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
            ..VerifierConfig::default()
        }
    }

    /// The backoff before retry `attempt` (1-based), honouring the
    /// exponential-doubling schedule and the `max_backoff_ms` cap.
    pub fn backoff_for_attempt(&self, attempt: u32) -> Duration {
        let shift = attempt.saturating_sub(1).min(63);
        let ms = self
            .retry_backoff_ms
            .saturating_mul(1u64.checked_shl(shift).unwrap_or(u64::MAX))
            .min(self.max_backoff_ms);
        Duration::from_millis(ms)
    }
}

/// Why a [`VerifierConfigBuilder::build`] was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigError {
    /// `worker_count` must be at least 1.
    NoWorkers,
    /// `max_retries` above the supported bound.
    TooManyRetries {
        /// The rejected value.
        requested: u32,
        /// The maximum accepted.
        limit: u32,
    },
    /// `retry_backoff_ms` exceeds `max_backoff_ms`.
    BackoffAboveCap {
        /// The configured base backoff.
        base_ms: u64,
        /// The configured cap.
        cap_ms: u64,
    },
    /// `call_timeout_ms` must be nonzero.
    ZeroTimeout,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::NoWorkers => f.write_str("worker_count must be at least 1"),
            ConfigError::TooManyRetries { requested, limit } => {
                write!(f, "max_retries {requested} exceeds the limit of {limit}")
            }
            ConfigError::BackoffAboveCap { base_ms, cap_ms } => write!(
                f,
                "retry_backoff_ms ({base_ms}) exceeds max_backoff_ms ({cap_ms})"
            ),
            ConfigError::ZeroTimeout => f.write_str("call_timeout_ms must be nonzero"),
        }
    }
}

impl std::error::Error for ConfigError {}

/// Maximum accepted `max_retries` (beyond this, exponential backoff is
/// certainly a misconfiguration).
pub const MAX_RETRIES_LIMIT: u32 = 32;

/// Validated construction of a [`VerifierConfig`].
#[derive(Debug, Clone)]
pub struct VerifierConfigBuilder {
    config: VerifierConfig,
}

impl VerifierConfigBuilder {
    /// Sets the P2 toggle (see [`VerifierConfig::continue_on_failure`]).
    pub fn continue_on_failure(mut self, on: bool) -> Self {
        self.config.continue_on_failure = on;
        self
    }

    /// Sets the retry budget for dropped transport calls.
    pub fn max_retries(mut self, retries: u32) -> Self {
        self.config.max_retries = retries;
        self
    }

    /// Sets the base retry backoff.
    pub fn retry_backoff(mut self, backoff: Duration) -> Self {
        self.config.retry_backoff_ms = backoff.as_millis().min(u128::from(u64::MAX)) as u64;
        self
    }

    /// Sets the base retry backoff in milliseconds.
    pub fn retry_backoff_ms(mut self, ms: u64) -> Self {
        self.config.retry_backoff_ms = ms;
        self
    }

    /// Sets the cap on a single backoff step in milliseconds.
    pub fn max_backoff_ms(mut self, ms: u64) -> Self {
        self.config.max_backoff_ms = ms;
        self
    }

    /// Sets the per-call latency budget in milliseconds.
    pub fn call_timeout_ms(mut self, ms: u64) -> Self {
        self.config.call_timeout_ms = ms;
        self
    }

    /// Sets the scheduler worker-pool size.
    pub fn worker_count(mut self, workers: usize) -> Self {
        self.config.worker_count = workers;
        self
    }

    /// Validates and produces the configuration.
    ///
    /// # Errors
    ///
    /// [`ConfigError`] naming the first violated constraint.
    pub fn build(self) -> Result<VerifierConfig, ConfigError> {
        let c = &self.config;
        if c.worker_count == 0 {
            return Err(ConfigError::NoWorkers);
        }
        if c.max_retries > MAX_RETRIES_LIMIT {
            return Err(ConfigError::TooManyRetries {
                requested: c.max_retries,
                limit: MAX_RETRIES_LIMIT,
            });
        }
        if c.retry_backoff_ms > c.max_backoff_ms {
            return Err(ConfigError::BackoffAboveCap {
                base_ms: c.retry_backoff_ms,
                cap_ms: c.max_backoff_ms,
            });
        }
        if c.call_timeout_ms == 0 {
            return Err(ConfigError::ZeroTimeout);
        }
        Ok(self.config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_stock_keylime() {
        let c = VerifierConfig::default();
        assert!(!c.continue_on_failure, "stock Keylime stops on failure");
        assert!(c.worker_count >= 1);
        assert!(c.max_retries >= 1);
    }

    #[test]
    fn engine_default_fixes_p2() {
        let c = VerifierConfig::engine_default();
        assert!(c.continue_on_failure);
        assert!(c.worker_count >= 1);
    }

    #[test]
    fn builder_roundtrip() {
        let c = VerifierConfig::builder()
            .continue_on_failure(true)
            .max_retries(5)
            .retry_backoff_ms(20)
            .max_backoff_ms(500)
            .call_timeout_ms(2_000)
            .worker_count(8)
            .build()
            .unwrap();
        assert!(c.continue_on_failure);
        assert_eq!(c.max_retries, 5);
        assert_eq!(c.retry_backoff_ms, 20);
        assert_eq!(c.max_backoff_ms, 500);
        assert_eq!(c.call_timeout_ms, 2_000);
        assert_eq!(c.worker_count, 8);
    }

    #[test]
    fn builder_rejects_invalid() {
        assert_eq!(
            VerifierConfig::builder().worker_count(0).build(),
            Err(ConfigError::NoWorkers)
        );
        assert!(matches!(
            VerifierConfig::builder().max_retries(100).build(),
            Err(ConfigError::TooManyRetries { requested: 100, .. })
        ));
        assert!(matches!(
            VerifierConfig::builder()
                .retry_backoff_ms(5_000)
                .max_backoff_ms(100)
                .build(),
            Err(ConfigError::BackoffAboveCap { .. })
        ));
        assert_eq!(
            VerifierConfig::builder().call_timeout_ms(0).build(),
            Err(ConfigError::ZeroTimeout)
        );
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let c = VerifierConfig::builder()
            .retry_backoff_ms(10)
            .max_backoff_ms(60)
            .build()
            .unwrap();
        assert_eq!(c.backoff_for_attempt(1).as_millis(), 10);
        assert_eq!(c.backoff_for_attempt(2).as_millis(), 20);
        assert_eq!(c.backoff_for_attempt(3).as_millis(), 40);
        assert_eq!(c.backoff_for_attempt(4).as_millis(), 60, "capped");
        assert_eq!(c.backoff_for_attempt(63).as_millis(), 60, "no overflow");
    }

    #[test]
    fn struct_update_over_default_still_works() {
        let c = VerifierConfig {
            continue_on_failure: true,
            ..Default::default()
        };
        assert!(c.continue_on_failure);
        assert_eq!(c.max_retries, VerifierConfig::default().max_retries);
    }
}
