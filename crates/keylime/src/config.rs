//! Verifier and fleet-engine configuration.
//!
//! [`VerifierConfig`] started as a single `continue_on_failure` toggle;
//! the fleet scheduler added retry, backoff, timeout and worker-pool
//! knobs. Construct it three ways:
//!
//! - `VerifierConfig::default()` — stock-Keylime semantics
//!   (stop-on-failure, the paper's P2) with sane engine parameters;
//! - struct update syntax over `Default` for one-off tweaks:
//!   `VerifierConfig { continue_on_failure: true, ..Default::default() }`;
//! - [`VerifierConfig::builder`] — validated construction for anything
//!   beyond a toggle.

use std::fmt;
use std::time::Duration;

use serde::{Deserialize, Serialize};

use crate::backend::{BackendKind, BackendSet};

/// Verifier behaviour toggles and fleet-engine parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct VerifierConfig {
    /// §IV-C "Improving Keylime's Attestation Process": when `false`
    /// (stock Keylime, and the default), the verifier stops processing at
    /// the first failing log entry and pauses polling — the behaviour
    /// attackers exploit as **P2**. When `true`, every entry is always
    /// evaluated and polling continues, so real discrepancies cannot hide
    /// behind an unresolved false positive.
    pub continue_on_failure: bool,
    /// Dropped transport calls are retried up to this many times before
    /// an agent is reported unreachable for the round.
    pub max_retries: u32,
    /// Backoff before the first retry, in milliseconds; doubles per
    /// attempt (bounded by [`VerifierConfig::max_backoff_ms`]). The fleet
    /// scheduler *records* backoff rather than sleeping it, keeping runs
    /// deterministic and fast.
    pub retry_backoff_ms: u64,
    /// Upper bound on a single backoff step, in milliseconds.
    pub max_backoff_ms: u64,
    /// Per-call latency budget, in milliseconds. Calls exceeding it are
    /// counted in the scheduler's `timeouts` metric.
    pub call_timeout_ms: u64,
    /// Worker threads in the fleet scheduler's pool.
    pub worker_count: usize,
    /// When `true`, quarantined agents are skipped cheaply on a decaying
    /// re-probe schedule instead of burning the full retry budget every
    /// round. Health is *tracked* either way; this gates only the
    /// cheap-skip behaviour. Off by default (stock semantics: every agent
    /// is retried every round), on in [`VerifierConfig::engine_default`].
    pub quarantine_enabled: bool,
    /// Consecutive unreachable rounds before an agent is marked Degraded.
    pub degraded_after: u32,
    /// Consecutive unreachable rounds before an agent is Quarantined.
    /// Must be ≥ `degraded_after`.
    pub quarantine_after: u32,
    /// Rounds between re-probes when an agent first enters quarantine;
    /// doubles after each failed probe (bounded by
    /// [`VerifierConfig::reprobe_backoff_max_rounds`]).
    pub reprobe_backoff_rounds: u32,
    /// Upper bound on the re-probe interval, in rounds.
    pub reprobe_backoff_max_rounds: u32,
    /// When `true` (the default), quote requests ask for the structured
    /// (typed entry list) excerpt whenever the transport reports the
    /// capability ([`Transport::supports_structured_excerpt`]), letting
    /// the verifier skip the ASCII parse on the hot path. Setting it
    /// `false` forces the legacy text excerpt; verdicts are identical
    /// either way.
    ///
    /// [`Transport::supports_structured_excerpt`]:
    ///     crate::transport::Transport::supports_structured_excerpt
    pub structured_excerpt: bool,
    /// Which attestation backends this verifier accepts evidence from.
    /// Agents enrolled with a backend outside the set fail appraisal
    /// with [`FailureKind::BackendNotAllowed`]. Defaults to every known
    /// backend — heterogeneous fleets are first-class.
    ///
    /// [`FailureKind::BackendNotAllowed`]:
    ///     crate::verifier::FailureKind::BackendNotAllowed
    #[serde(default)]
    pub allowed_backends: BackendSet,
    /// Depth of the bounded evidence channel between the transport
    /// stage and the batched appraisal stage of a pipelined round. `0`
    /// (the default) keeps the classic inline path: each worker fetches
    /// a quote and appraises it before touching the next agent. Any
    /// positive depth splits the round into `worker_count` transport
    /// lanes feeding `worker_count` appraisal workers through a channel
    /// of this capacity, so agent *i*'s log is appraised while agent
    /// *i+1*'s quote is still in flight. Verdicts, traces and every
    /// conserved counter are identical either way.
    #[serde(default)]
    pub pipeline_depth: usize,
    /// Result rows per RPC frame when this verifier runs as a remote
    /// shard behind a wire transport (see [`crate::remote`]). Poll
    /// commands are chunked and result rows coalesced into frames of
    /// this many messages, amortising framing and syscall cost. `0`
    /// (the default) means [`crate::remote::DEFAULT_WIRE_BATCH`];
    /// in-process rounds ignore the knob entirely.
    #[serde(default)]
    pub wire_batch: usize,
}

impl Default for VerifierConfig {
    fn default() -> Self {
        VerifierConfig {
            continue_on_failure: false,
            max_retries: 3,
            retry_backoff_ms: 10,
            max_backoff_ms: 1_000,
            call_timeout_ms: 1_000,
            worker_count: 4,
            quarantine_enabled: false,
            degraded_after: 2,
            quarantine_after: 4,
            reprobe_backoff_rounds: 2,
            reprobe_backoff_max_rounds: 32,
            structured_excerpt: true,
            allowed_backends: BackendSet::all(),
            pipeline_depth: 0,
            wire_batch: 0,
        }
    }
}

impl VerifierConfig {
    /// A builder for validated construction.
    pub fn builder() -> VerifierConfigBuilder {
        VerifierConfigBuilder {
            config: VerifierConfig::default(),
        }
    }

    /// The fleet engine's recommended defaults: like `default()` but with
    /// `continue_on_failure` **on** — the paper's P2 fix — so one
    /// unresolved false positive can never blind the verifier to what
    /// comes after it, and with the worker pool sized to the machine.
    pub fn engine_default() -> Self {
        VerifierConfig {
            continue_on_failure: true,
            quarantine_enabled: true,
            worker_count: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
            ..VerifierConfig::default()
        }
    }

    /// The backoff before retry `attempt` (1-based), honouring the
    /// exponential-doubling schedule and the `max_backoff_ms` cap.
    pub fn backoff_for_attempt(&self, attempt: u32) -> Duration {
        let shift = attempt.saturating_sub(1).min(63);
        let ms = self
            .retry_backoff_ms
            .saturating_mul(1u64.checked_shl(shift).unwrap_or(u64::MAX))
            .min(self.max_backoff_ms);
        Duration::from_millis(ms)
    }
}

/// Why a [`VerifierConfigBuilder::build`] was rejected.
#[non_exhaustive]
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigError {
    /// `allowed_backends` is empty — the verifier could accept no
    /// evidence at all.
    NoBackendsAllowed,
    /// `worker_count` must be at least 1.
    NoWorkers,
    /// `max_retries` above the supported bound.
    TooManyRetries {
        /// The rejected value.
        requested: u32,
        /// The maximum accepted.
        limit: u32,
    },
    /// `retry_backoff_ms` exceeds `max_backoff_ms`.
    BackoffAboveCap {
        /// The configured base backoff.
        base_ms: u64,
        /// The configured cap.
        cap_ms: u64,
    },
    /// `call_timeout_ms` must be nonzero.
    ZeroTimeout,
    /// `degraded_after` must be at least 1.
    ZeroDegradedThreshold,
    /// `quarantine_after` below `degraded_after` — an agent would be
    /// quarantined before it is ever considered degraded.
    QuarantineBeforeDegraded {
        /// The configured quarantine threshold.
        quarantine_after: u32,
        /// The configured degraded threshold.
        degraded_after: u32,
    },
    /// `reprobe_backoff_rounds` must be at least 1.
    ZeroReprobeBackoff,
    /// `reprobe_backoff_rounds` exceeds `reprobe_backoff_max_rounds`.
    ReprobeAboveCap {
        /// The configured base re-probe interval.
        base_rounds: u32,
        /// The configured cap.
        cap_rounds: u32,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::NoBackendsAllowed => {
                f.write_str("allowed_backends must name at least one backend")
            }
            ConfigError::NoWorkers => f.write_str("worker_count must be at least 1"),
            ConfigError::TooManyRetries { requested, limit } => {
                write!(f, "max_retries {requested} exceeds the limit of {limit}")
            }
            ConfigError::BackoffAboveCap { base_ms, cap_ms } => write!(
                f,
                "retry_backoff_ms ({base_ms}) exceeds max_backoff_ms ({cap_ms})"
            ),
            ConfigError::ZeroTimeout => f.write_str("call_timeout_ms must be nonzero"),
            ConfigError::ZeroDegradedThreshold => f.write_str("degraded_after must be at least 1"),
            ConfigError::QuarantineBeforeDegraded {
                quarantine_after,
                degraded_after,
            } => write!(
                f,
                "quarantine_after ({quarantine_after}) is below degraded_after ({degraded_after})"
            ),
            ConfigError::ZeroReprobeBackoff => {
                f.write_str("reprobe_backoff_rounds must be at least 1")
            }
            ConfigError::ReprobeAboveCap {
                base_rounds,
                cap_rounds,
            } => write!(
                f,
                "reprobe_backoff_rounds ({base_rounds}) exceeds reprobe_backoff_max_rounds ({cap_rounds})"
            ),
        }
    }
}

impl std::error::Error for ConfigError {}

/// Maximum accepted `max_retries` (beyond this, exponential backoff is
/// certainly a misconfiguration).
pub const MAX_RETRIES_LIMIT: u32 = 32;

/// Validated construction of a [`VerifierConfig`].
#[derive(Debug, Clone)]
pub struct VerifierConfigBuilder {
    config: VerifierConfig,
}

impl VerifierConfigBuilder {
    /// Sets the P2 toggle (see [`VerifierConfig::continue_on_failure`]).
    pub fn continue_on_failure(mut self, on: bool) -> Self {
        self.config.continue_on_failure = on;
        self
    }

    /// Sets the retry budget for dropped transport calls.
    pub fn max_retries(mut self, retries: u32) -> Self {
        self.config.max_retries = retries;
        self
    }

    /// Sets the base retry backoff.
    pub fn retry_backoff(mut self, backoff: Duration) -> Self {
        self.config.retry_backoff_ms = backoff.as_millis().min(u128::from(u64::MAX)) as u64;
        self
    }

    /// Sets the base retry backoff in milliseconds.
    pub fn retry_backoff_ms(mut self, ms: u64) -> Self {
        self.config.retry_backoff_ms = ms;
        self
    }

    /// Sets the cap on a single backoff step in milliseconds.
    pub fn max_backoff_ms(mut self, ms: u64) -> Self {
        self.config.max_backoff_ms = ms;
        self
    }

    /// Sets the per-call latency budget in milliseconds.
    pub fn call_timeout_ms(mut self, ms: u64) -> Self {
        self.config.call_timeout_ms = ms;
        self
    }

    /// Sets the scheduler worker-pool size.
    pub fn worker_count(mut self, workers: usize) -> Self {
        self.config.worker_count = workers;
        self
    }

    /// Enables or disables the quarantine cheap-skip path
    /// (see [`VerifierConfig::quarantine_enabled`]).
    pub fn quarantine_enabled(mut self, on: bool) -> Self {
        self.config.quarantine_enabled = on;
        self
    }

    /// Sets the consecutive-unreachable threshold for Degraded.
    pub fn degraded_after(mut self, rounds: u32) -> Self {
        self.config.degraded_after = rounds;
        self
    }

    /// Sets the consecutive-unreachable threshold for Quarantined.
    pub fn quarantine_after(mut self, rounds: u32) -> Self {
        self.config.quarantine_after = rounds;
        self
    }

    /// Sets the initial re-probe interval, in rounds.
    pub fn reprobe_backoff_rounds(mut self, rounds: u32) -> Self {
        self.config.reprobe_backoff_rounds = rounds;
        self
    }

    /// Sets the cap on the re-probe interval, in rounds.
    pub fn reprobe_backoff_max_rounds(mut self, rounds: u32) -> Self {
        self.config.reprobe_backoff_max_rounds = rounds;
        self
    }

    /// Enables or disables the structured quote excerpt
    /// (see [`VerifierConfig::structured_excerpt`]).
    pub fn structured_excerpt(mut self, on: bool) -> Self {
        self.config.structured_excerpt = on;
        self
    }

    /// Restricts which backends the verifier accepts evidence from
    /// (see [`VerifierConfig::allowed_backends`]).
    pub fn allowed_backends(mut self, set: BackendSet) -> Self {
        self.config.allowed_backends = set;
        self
    }

    /// Convenience: allow exactly one backend.
    pub fn only_backend(mut self, kind: BackendKind) -> Self {
        self.config.allowed_backends = BackendSet::only(kind);
        self
    }

    /// Sets the evidence-channel depth for pipelined rounds
    /// (see [`VerifierConfig::pipeline_depth`]; `0` stays inline).
    pub fn pipeline_depth(mut self, depth: usize) -> Self {
        self.config.pipeline_depth = depth;
        self
    }

    /// Sets the rows-per-frame batch size for wire-transport shard
    /// rounds (see [`VerifierConfig::wire_batch`]; `0` means the
    /// default batch).
    pub fn wire_batch(mut self, batch: usize) -> Self {
        self.config.wire_batch = batch;
        self
    }

    /// Validates and produces the configuration.
    ///
    /// # Errors
    ///
    /// [`ConfigError`] naming the first violated constraint.
    pub fn build(self) -> Result<VerifierConfig, ConfigError> {
        let c = &self.config;
        if c.allowed_backends.is_empty() {
            return Err(ConfigError::NoBackendsAllowed);
        }
        if c.worker_count == 0 {
            return Err(ConfigError::NoWorkers);
        }
        if c.max_retries > MAX_RETRIES_LIMIT {
            return Err(ConfigError::TooManyRetries {
                requested: c.max_retries,
                limit: MAX_RETRIES_LIMIT,
            });
        }
        if c.retry_backoff_ms > c.max_backoff_ms {
            return Err(ConfigError::BackoffAboveCap {
                base_ms: c.retry_backoff_ms,
                cap_ms: c.max_backoff_ms,
            });
        }
        if c.call_timeout_ms == 0 {
            return Err(ConfigError::ZeroTimeout);
        }
        if c.degraded_after == 0 {
            return Err(ConfigError::ZeroDegradedThreshold);
        }
        if c.quarantine_after < c.degraded_after {
            return Err(ConfigError::QuarantineBeforeDegraded {
                quarantine_after: c.quarantine_after,
                degraded_after: c.degraded_after,
            });
        }
        if c.reprobe_backoff_rounds == 0 {
            return Err(ConfigError::ZeroReprobeBackoff);
        }
        if c.reprobe_backoff_rounds > c.reprobe_backoff_max_rounds {
            return Err(ConfigError::ReprobeAboveCap {
                base_rounds: c.reprobe_backoff_rounds,
                cap_rounds: c.reprobe_backoff_max_rounds,
            });
        }
        Ok(self.config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_stock_keylime() {
        let c = VerifierConfig::default();
        assert!(!c.continue_on_failure, "stock Keylime stops on failure");
        assert!(c.worker_count >= 1);
        assert!(c.max_retries >= 1);
    }

    #[test]
    fn engine_default_fixes_p2() {
        let c = VerifierConfig::engine_default();
        assert!(c.continue_on_failure);
        assert!(c.worker_count >= 1);
        assert!(c.quarantine_enabled, "engine posture quarantines");
    }

    #[test]
    fn stock_default_keeps_quarantine_off() {
        let c = VerifierConfig::default();
        assert!(!c.quarantine_enabled, "stock semantics retry every round");
        assert!(c.degraded_after >= 1);
        assert!(c.quarantine_after >= c.degraded_after);
    }

    #[test]
    fn structured_excerpt_defaults_on_and_toggles() {
        assert!(VerifierConfig::default().structured_excerpt);
        assert!(VerifierConfig::engine_default().structured_excerpt);
        let c = VerifierConfig::builder()
            .structured_excerpt(false)
            .build()
            .unwrap();
        assert!(!c.structured_excerpt);
    }

    #[test]
    fn builder_health_knobs_roundtrip() {
        let c = VerifierConfig::builder()
            .quarantine_enabled(true)
            .degraded_after(1)
            .quarantine_after(3)
            .reprobe_backoff_rounds(4)
            .reprobe_backoff_max_rounds(16)
            .build()
            .unwrap();
        assert!(c.quarantine_enabled);
        assert_eq!(c.degraded_after, 1);
        assert_eq!(c.quarantine_after, 3);
        assert_eq!(c.reprobe_backoff_rounds, 4);
        assert_eq!(c.reprobe_backoff_max_rounds, 16);
    }

    #[test]
    fn builder_rejects_invalid_health_knobs() {
        assert_eq!(
            VerifierConfig::builder().degraded_after(0).build(),
            Err(ConfigError::ZeroDegradedThreshold)
        );
        assert_eq!(
            VerifierConfig::builder()
                .degraded_after(5)
                .quarantine_after(2)
                .build(),
            Err(ConfigError::QuarantineBeforeDegraded {
                quarantine_after: 2,
                degraded_after: 5,
            })
        );
        assert_eq!(
            VerifierConfig::builder().reprobe_backoff_rounds(0).build(),
            Err(ConfigError::ZeroReprobeBackoff)
        );
        assert_eq!(
            VerifierConfig::builder()
                .reprobe_backoff_rounds(64)
                .reprobe_backoff_max_rounds(8)
                .build(),
            Err(ConfigError::ReprobeAboveCap {
                base_rounds: 64,
                cap_rounds: 8,
            })
        );
    }

    #[test]
    fn builder_roundtrip() {
        let c = VerifierConfig::builder()
            .continue_on_failure(true)
            .max_retries(5)
            .retry_backoff_ms(20)
            .max_backoff_ms(500)
            .call_timeout_ms(2_000)
            .worker_count(8)
            .build()
            .unwrap();
        assert!(c.continue_on_failure);
        assert_eq!(c.max_retries, 5);
        assert_eq!(c.retry_backoff_ms, 20);
        assert_eq!(c.max_backoff_ms, 500);
        assert_eq!(c.call_timeout_ms, 2_000);
        assert_eq!(c.worker_count, 8);
    }

    #[test]
    fn builder_rejects_invalid() {
        assert_eq!(
            VerifierConfig::builder().worker_count(0).build(),
            Err(ConfigError::NoWorkers)
        );
        assert!(matches!(
            VerifierConfig::builder().max_retries(100).build(),
            Err(ConfigError::TooManyRetries { requested: 100, .. })
        ));
        assert!(matches!(
            VerifierConfig::builder()
                .retry_backoff_ms(5_000)
                .max_backoff_ms(100)
                .build(),
            Err(ConfigError::BackoffAboveCap { .. })
        ));
        assert_eq!(
            VerifierConfig::builder().call_timeout_ms(0).build(),
            Err(ConfigError::ZeroTimeout)
        );
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let c = VerifierConfig::builder()
            .retry_backoff_ms(10)
            .max_backoff_ms(60)
            .build()
            .unwrap();
        assert_eq!(c.backoff_for_attempt(1).as_millis(), 10);
        assert_eq!(c.backoff_for_attempt(2).as_millis(), 20);
        assert_eq!(c.backoff_for_attempt(3).as_millis(), 40);
        assert_eq!(c.backoff_for_attempt(4).as_millis(), 60, "capped");
        assert_eq!(c.backoff_for_attempt(63).as_millis(), 60, "no overflow");
    }

    #[test]
    fn allowed_backends_default_and_narrowing() {
        let c = VerifierConfig::default();
        for kind in BackendKind::ALL {
            assert!(c.allowed_backends.contains(kind), "all allowed by default");
        }
        let c = VerifierConfig::builder()
            .only_backend(BackendKind::TpmIma)
            .build()
            .unwrap();
        assert!(c.allowed_backends.contains(BackendKind::TpmIma));
        assert!(!c.allowed_backends.contains(BackendKind::SecureWorld));
        assert_eq!(
            VerifierConfig::builder()
                .allowed_backends(BackendSet::none())
                .build(),
            Err(ConfigError::NoBackendsAllowed)
        );
    }

    #[test]
    fn config_deserializes_without_allowed_backends_field() {
        // Pre-backend configs on disk omit the field; it defaults to all.
        let json = serde_json::to_string(&VerifierConfig::default()).unwrap();
        let field = format!(
            "\"allowed_backends\":{}",
            serde_json::to_string(&BackendSet::all()).unwrap()
        );
        let stripped = json
            .replace(&format!("{field},"), "")
            .replace(&format!(",{field}"), "");
        assert_ne!(stripped, json, "field must be present before stripping");
        let c: VerifierConfig = serde_json::from_str(&stripped).unwrap();
        assert_eq!(c.allowed_backends, BackendSet::all());
    }

    #[test]
    fn pipeline_depth_defaults_inline_and_roundtrips() {
        assert_eq!(VerifierConfig::default().pipeline_depth, 0);
        assert_eq!(VerifierConfig::engine_default().pipeline_depth, 0);
        let c = VerifierConfig::builder()
            .pipeline_depth(64)
            .build()
            .unwrap();
        assert_eq!(c.pipeline_depth, 64);
        // Pre-pipeline configs on disk omit the field; it defaults to 0.
        let json = serde_json::to_string(&VerifierConfig::default()).unwrap();
        let stripped = json
            .replace("\"pipeline_depth\":0,", "")
            .replace(",\"pipeline_depth\":0", "");
        assert_ne!(stripped, json, "field must be present before stripping");
        let c: VerifierConfig = serde_json::from_str(&stripped).unwrap();
        assert_eq!(c.pipeline_depth, 0);
    }

    #[test]
    fn wire_batch_defaults_and_roundtrips() {
        assert_eq!(VerifierConfig::default().wire_batch, 0);
        assert_eq!(VerifierConfig::engine_default().wire_batch, 0);
        let c = VerifierConfig::builder().wire_batch(128).build().unwrap();
        assert_eq!(c.wire_batch, 128);
        // Pre-wire configs on disk omit the field; it defaults to 0
        // (meaning "use the default batch").
        let json = serde_json::to_string(&VerifierConfig::default()).unwrap();
        let stripped = json
            .replace("\"wire_batch\":0,", "")
            .replace(",\"wire_batch\":0", "");
        assert_ne!(stripped, json, "field must be present before stripping");
        let c: VerifierConfig = serde_json::from_str(&stripped).unwrap();
        assert_eq!(c.wire_batch, 0);
    }

    #[test]
    fn struct_update_over_default_still_works() {
        let c = VerifierConfig {
            continue_on_failure: true,
            ..Default::default()
        };
        assert!(c.continue_on_failure);
        assert_eq!(c.max_retries, VerifierConfig::default().max_retries);
    }
}
