//! The tenant: operator-facing orchestration, plus a one-process
//! [`Cluster`] bundling all components for experiments.

use cia_os::{Machine, MachineConfig};
use cia_tpm::Manufacturer;
use rand::rngs::StdRng;
use rand::SeedableRng;

use std::collections::BTreeMap;

use crate::agent::Agent;
use crate::audit::{AuditLog, AuditOutcome};
use crate::error::KeylimeError;
use crate::payload::{KeyShare, PayloadBundle};
use crate::policy::RuntimePolicy;
use crate::registrar::Registrar;
use crate::revocation::{RevocationBus, RevocationEmitter};
use crate::transport::Transport;
use crate::verifier::{AgentStatus, Alert, AttestationOutcome, Verifier, VerifierConfig};

/// The command-line management tool's operations, expressed as a trait so
/// experiments can drive any cluster-like object.
pub trait Tenant {
    /// Enrols a new machine: registers its TPM and adds it to the
    /// verifier with `policy`.
    ///
    /// # Errors
    ///
    /// Registration or transport failures.
    fn enroll(&mut self, config: MachineConfig, policy: RuntimePolicy)
        -> Result<String, KeylimeError>;

    /// Pushes a new runtime policy to an enrolled agent.
    ///
    /// # Errors
    ///
    /// [`KeylimeError::UnknownAgent`].
    fn push_policy(&mut self, id: &str, policy: RuntimePolicy) -> Result<(), KeylimeError>;

    /// Polls one agent.
    ///
    /// # Errors
    ///
    /// Unknown agent or transport failures.
    fn attest(&mut self, id: &str) -> Result<AttestationOutcome, KeylimeError>;
}

/// Everything needed to run attestation experiments in one process: a TPM
/// manufacturer, a registrar trusting it, a verifier, a transport, and
/// the enrolled agents.
#[derive(Debug)]
pub struct Cluster {
    /// The TPM manufacturer all machines' TPMs chain to.
    pub manufacturer: Manufacturer,
    /// The registrar.
    pub registrar: Registrar,
    /// The verifier.
    pub verifier: Verifier,
    /// The message transport.
    pub transport: Transport,
    /// Signs revocation notices on attestation failures.
    pub revocation: RevocationEmitter,
    /// Fans revocation notices out to subscribers.
    pub revocation_bus: RevocationBus,
    /// Durable attestation: the tamper-evident outcome history.
    pub audit: AuditLog,
    /// Secure payloads awaiting release (V share held until the agent's
    /// first clean attestation).
    payloads: BTreeMap<String, PayloadBundle>,
    rng: StdRng,
    agents: Vec<Agent>,
}

impl Cluster {
    /// Creates an empty cluster.
    pub fn new(seed: u64, config: VerifierConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let manufacturer = Manufacturer::generate(&mut rng);
        let registrar = Registrar::new(vec![manufacturer.public_key().clone()], seed ^ 0x5ead);
        Cluster {
            manufacturer,
            registrar,
            verifier: Verifier::new(config),
            transport: Transport::reliable(),
            revocation: RevocationEmitter::new(&mut rng),
            revocation_bus: RevocationBus::new(),
            audit: AuditLog::new(&mut rng),
            payloads: BTreeMap::new(),
            rng,
            agents: Vec::new(),
        }
    }

    /// Tenant operation: seal a secret payload for `id`. The U share and
    /// ciphertext go to the agent immediately; the V share is released
    /// only after a clean attestation (see [`Cluster::collect_payload`]).
    ///
    /// # Errors
    ///
    /// [`KeylimeError::UnknownAgent`].
    pub fn provision_payload(&mut self, id: &str, plaintext: &[u8]) -> Result<(), KeylimeError> {
        if self.agent(id).is_none() {
            return Err(KeylimeError::UnknownAgent { id: id.to_string() });
        }
        let bundle = PayloadBundle::seal(plaintext, &mut self.rng);
        self.payloads.insert(id.to_string(), bundle);
        Ok(())
    }

    /// Agent-side payload retrieval: succeeds only once the verifier has
    /// seen at least one clean attestation and the agent is currently
    /// trusted — the verifier then releases the V share and the agent can
    /// combine and decrypt.
    ///
    /// # Errors
    ///
    /// [`KeylimeError::UnknownAgent`] when no payload was provisioned.
    pub fn collect_payload(&mut self, id: &str) -> Result<Option<Vec<u8>>, KeylimeError> {
        let bundle = self
            .payloads
            .get(id)
            .ok_or_else(|| KeylimeError::UnknownAgent { id: id.to_string() })?;
        let trusted = self.verifier.status(id)? == AgentStatus::Trusted
            && self.verifier.attestation_count(id)? > 0;
        if !trusted {
            return Ok(None);
        }
        let key: KeyShare = bundle.u_share.combine(&bundle.v_share);
        Ok(bundle.payload.open(&key))
    }

    /// Builds, registers and enrols a machine; returns its agent id.
    ///
    /// # Errors
    ///
    /// Registration/transport failures.
    pub fn add_machine(
        &mut self,
        config: MachineConfig,
        policy: RuntimePolicy,
    ) -> Result<String, KeylimeError> {
        let machine = Machine::new(&self.manufacturer, config);
        self.add_agent(Agent::new(machine), policy)
    }

    /// Registers and enrols an existing agent.
    ///
    /// # Errors
    ///
    /// Registration/transport failures.
    pub fn add_agent(
        &mut self,
        mut agent: Agent,
        policy: RuntimePolicy,
    ) -> Result<String, KeylimeError> {
        self.registrar.register(&mut self.transport, &mut agent)?;
        let id = agent.id().to_string();
        let ak = self
            .registrar
            .ak_for(&id)
            .expect("just registered")
            .clone();
        self.verifier.add_agent(&id, ak, policy);
        self.agents.push(agent);
        Ok(id)
    }

    /// The enrolled agent ids, in enrolment order.
    pub fn agent_ids(&self) -> Vec<String> {
        self.agents.iter().map(|a| a.id().to_string()).collect()
    }

    /// Borrows an agent by id.
    pub fn agent(&self, id: &str) -> Option<&Agent> {
        self.agents.iter().find(|a| a.id() == id)
    }

    /// Mutably borrows an agent by id (to act on its machine).
    pub fn agent_mut(&mut self, id: &str) -> Option<&mut Agent> {
        self.agents.iter_mut().find(|a| a.id() == id)
    }

    /// Polls one agent at the agent machine's current day.
    ///
    /// # Errors
    ///
    /// Unknown agent or transport failures.
    pub fn attest(&mut self, id: &str) -> Result<AttestationOutcome, KeylimeError> {
        let idx = self
            .agents
            .iter()
            .position(|a| a.id() == id)
            .ok_or_else(|| KeylimeError::UnknownAgent { id: id.to_string() })?;
        let agent = &mut self.agents[idx];
        let day = agent.machine().clock.day();
        let outcome = self.verifier.attest(&mut self.transport, agent, day)?;
        // Durable attestation: every outcome enters the audit chain.
        let audit_outcome = match &outcome {
            AttestationOutcome::Verified { .. } => AuditOutcome::Verified,
            AttestationOutcome::Failed { .. } => AuditOutcome::Failed,
            AttestationOutcome::SkippedPaused => AuditOutcome::Skipped,
        };
        self.audit.record(day, id, audit_outcome);
        // Failed attestations are published on the revocation bus, so
        // subscribed systems can react (drop connections, cordon, ...).
        if let AttestationOutcome::Failed { alerts } = &outcome {
            if let Some(first) = alerts.first() {
                let notice = self.revocation.emit(id, day, first.kind.clone());
                let key = self.revocation.public_key().clone();
                self.revocation_bus.publish(&notice, &key);
            }
        }
        Ok(outcome)
    }

    /// Polls every agent once, returning `(id, outcome)` pairs.
    ///
    /// # Errors
    ///
    /// First transport failure encountered.
    pub fn attest_all(&mut self) -> Result<Vec<(String, AttestationOutcome)>, KeylimeError> {
        let ids = self.agent_ids();
        let mut out = Vec::with_capacity(ids.len());
        for id in ids {
            let outcome = self.attest(&id)?;
            out.push((id, outcome));
        }
        Ok(out)
    }

    /// Operator action: resolve a paused agent by skipping the offending
    /// entries (see [`Verifier::resolve_by_skipping`]).
    ///
    /// # Errors
    ///
    /// Unknown agent or transport failures.
    pub fn resolve(&mut self, id: &str) -> Result<(), KeylimeError> {
        let idx = self
            .agents
            .iter()
            .position(|a| a.id() == id)
            .ok_or_else(|| KeylimeError::UnknownAgent { id: id.to_string() })?;
        self.verifier
            .resolve_by_skipping(&mut self.transport, &mut self.agents[idx])
    }

    /// Status shortcut.
    ///
    /// # Errors
    ///
    /// [`KeylimeError::UnknownAgent`].
    pub fn status(&self, id: &str) -> Result<AgentStatus, KeylimeError> {
        self.verifier.status(id)
    }

    /// Alerts shortcut.
    ///
    /// # Errors
    ///
    /// [`KeylimeError::UnknownAgent`].
    pub fn alerts(&self, id: &str) -> Result<&[Alert], KeylimeError> {
        self.verifier.alerts(id)
    }
}

impl Tenant for Cluster {
    fn enroll(
        &mut self,
        config: MachineConfig,
        policy: RuntimePolicy,
    ) -> Result<String, KeylimeError> {
        self.add_machine(config, policy)
    }

    fn push_policy(&mut self, id: &str, policy: RuntimePolicy) -> Result<(), KeylimeError> {
        self.verifier.update_policy(id, policy)
    }

    fn attest(&mut self, id: &str) -> Result<AttestationOutcome, KeylimeError> {
        Cluster::attest(self, id)
    }
}
