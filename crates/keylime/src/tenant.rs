//! The tenant: operator-facing orchestration, plus a one-process
//! [`Cluster`] bundling all components for experiments.

use cia_os::{Machine, MachineConfig};
use cia_tpm::Manufacturer;
use rand::rngs::StdRng;
use rand::SeedableRng;

use std::collections::BTreeMap;

use cia_storage::StorageError;
use cia_vfs::{Vfs, VfsPath};
use parking_lot::Mutex;

use crate::agent::Agent;
use crate::audit::{AuditLog, AuditOutcome};
use crate::backend::{
    BackendRoot, ConfidentialVmBackend, ConfidentialVmConfig, SecureWorldBackend, SecureWorldConfig,
};
use crate::durable::{ResumePlan, VerifierJournal, DEFAULT_JOURNAL_DIR};
use crate::error::KeylimeError;
use crate::federation::{FederatedRoundReport, Federation};
use crate::ids::AgentId;
use crate::payload::{KeyShare, PayloadBundle};
use crate::policy::{PolicyDelta, RuntimePolicy};
use crate::registrar::{Registrar, RegistrationRecord};
use crate::revocation::{RevocationBus, RevocationEmitter};
use crate::scheduler::{AgentRoundResult, FleetScheduler, RoundOutcome, RoundReport};
use crate::store::PolicyEpoch;
use crate::transport::{ReliableTransport, Transport};
use crate::verifier::{
    AgentStateSnapshot, AgentStatus, Alert, AttestationOutcome, Verifier, VerifierConfig,
};

/// The command-line management tool's operations, expressed as a trait so
/// experiments can drive any cluster-like object.
pub trait Tenant {
    /// Enrols a new machine: registers its TPM and adds it to the
    /// verifier with `policy`.
    ///
    /// # Errors
    ///
    /// Registration or transport failures.
    fn enroll(
        &mut self,
        config: MachineConfig,
        policy: RuntimePolicy,
    ) -> Result<AgentId, KeylimeError>;

    /// Pushes a new runtime policy to an enrolled agent.
    ///
    /// # Errors
    ///
    /// [`KeylimeError::UnknownAgent`].
    fn push_policy(&mut self, id: &AgentId, policy: RuntimePolicy) -> Result<(), KeylimeError>;

    /// Polls one agent.
    ///
    /// # Errors
    ///
    /// Unknown agent or transport failures.
    fn attest(&mut self, id: &AgentId) -> Result<AttestationOutcome, KeylimeError>;
}

/// Everything needed to run attestation experiments in one process: a TPM
/// manufacturer, a registrar trusting it, a verifier, a transport, the
/// fleet scheduler, and the enrolled agents.
///
/// Generic over the [`Transport`]: `Cluster::new` gives the reliable
/// default, [`Cluster::with_transport`] accepts any implementation (e.g.
/// [`crate::transport::LossyTransport`] for loss experiments).
#[derive(Debug)]
pub struct Cluster<T: Transport = ReliableTransport> {
    /// The TPM manufacturer all machines' TPMs chain to.
    pub manufacturer: Manufacturer,
    /// The TEE vendor root all secure-world device certificates chain to.
    pub tee_root: BackendRoot,
    /// The confidential-computing platform root all CVM guest
    /// certificates chain to.
    pub vm_platform: BackendRoot,
    /// The registrar.
    pub registrar: Registrar,
    /// The verifier.
    pub verifier: Verifier,
    /// The message transport. Fleet rounds fork one deterministic lane
    /// off it per agent; direct operations use it as-is.
    pub transport: T,
    /// Signs revocation notices on attestation failures.
    pub revocation: RevocationEmitter,
    /// Fans revocation notices out to subscribers.
    pub revocation_bus: RevocationBus,
    /// Durable attestation: the tamper-evident outcome history.
    pub audit: AuditLog,
    /// The concurrent fleet attestation engine (metrics accumulate here).
    pub scheduler: FleetScheduler,
    /// Secure payloads awaiting release (V share held until the agent's
    /// first clean attestation).
    payloads: BTreeMap<AgentId, PayloadBundle>,
    rng: StdRng,
    agents: Vec<Agent>,
    /// When set, every enrolment, policy publish and attestation round
    /// is journaled for crash recovery (see [`crate::durable`]).
    journal: Option<VerifierJournal>,
}

impl Cluster<ReliableTransport> {
    /// Creates an empty cluster over a reliable transport.
    pub fn new(seed: u64, config: VerifierConfig) -> Self {
        Cluster::with_transport(seed, config, ReliableTransport::new())
    }
}

impl<T: Transport> Cluster<T> {
    /// Creates an empty cluster over the given transport.
    pub fn with_transport(seed: u64, config: VerifierConfig, transport: T) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let manufacturer = Manufacturer::generate(&mut rng);
        // The TEE and platform roots come from their own seeded stream:
        // adding backend families must not shift the draw order (and
        // therefore the keys) of pre-existing clusters.
        let mut backend_rng = StdRng::seed_from_u64(seed ^ 0x7ee5);
        let tee_root = BackendRoot::generate("TEE Vendor", &mut backend_rng);
        let vm_platform = BackendRoot::generate("CC Platform", &mut backend_rng);
        let mut registrar = Registrar::new(vec![manufacturer.public_key().clone()], seed ^ 0x5ead);
        registrar.trust_tee_root(tee_root.public_key().clone());
        registrar.trust_platform_root(vm_platform.public_key().clone());
        Cluster {
            manufacturer,
            tee_root,
            vm_platform,
            registrar,
            verifier: Verifier::new(config),
            transport,
            revocation: RevocationEmitter::new(&mut rng),
            revocation_bus: RevocationBus::new(),
            audit: AuditLog::new(&mut rng),
            scheduler: FleetScheduler::new(),
            payloads: BTreeMap::new(),
            rng,
            agents: Vec::new(),
            journal: None,
        }
    }

    /// Tenant operation: seal a secret payload for `id`. The U share and
    /// ciphertext go to the agent immediately; the V share is released
    /// only after a clean attestation (see [`Cluster::collect_payload`]).
    ///
    /// # Errors
    ///
    /// [`KeylimeError::UnknownAgent`].
    pub fn provision_payload(
        &mut self,
        id: &AgentId,
        plaintext: &[u8],
    ) -> Result<(), KeylimeError> {
        if self.agent(id).is_none() {
            return Err(KeylimeError::UnknownAgent { id: id.clone() });
        }
        let bundle = PayloadBundle::seal(plaintext, &mut self.rng);
        self.payloads.insert(id.clone(), bundle);
        Ok(())
    }

    /// Agent-side payload retrieval: succeeds only once the verifier has
    /// seen at least one clean attestation and the agent is currently
    /// trusted — the verifier then releases the V share and the agent can
    /// combine and decrypt.
    ///
    /// # Errors
    ///
    /// [`KeylimeError::UnknownAgent`] when no payload was provisioned.
    pub fn collect_payload(&mut self, id: &AgentId) -> Result<Option<Vec<u8>>, KeylimeError> {
        let bundle = self
            .payloads
            .get(id)
            .ok_or_else(|| KeylimeError::UnknownAgent { id: id.clone() })?;
        let trusted = self.verifier.status(id)? == AgentStatus::Trusted
            && self.verifier.attestation_count(id)? > 0;
        if !trusted {
            return Ok(None);
        }
        let key: KeyShare = bundle.u_share.combine(&bundle.v_share);
        Ok(bundle.payload.open(&key))
    }

    /// Builds, registers and enrols a machine; returns its agent id.
    ///
    /// # Errors
    ///
    /// Registration/transport failures.
    pub fn add_machine(
        &mut self,
        config: MachineConfig,
        policy: RuntimePolicy,
    ) -> Result<AgentId, KeylimeError> {
        let machine = Machine::new(&self.manufacturer, config);
        self.add_agent(Agent::new(machine), policy)
    }

    /// Registers and enrols an existing agent. Dropped registration calls
    /// are retried within the verifier's retry budget, so enrolment works
    /// over lossy transports too.
    ///
    /// # Errors
    ///
    /// Registration failures, or transport failures persisting past the
    /// retry budget.
    pub fn add_agent(
        &mut self,
        agent: Agent,
        policy: RuntimePolicy,
    ) -> Result<AgentId, KeylimeError> {
        let (id, record) = self.register_with_retry(agent)?;
        self.verifier
            .add_agent_with_identity(id.clone(), record.ak, record.identity, policy);
        self.journal_agent_snapshot(&id)
            .expect("journal enrolment append");
        Ok(id)
    }

    /// Provisions a secure-world (TrustZone-style) backend under this
    /// cluster's TEE vendor root, then registers and enrols it with
    /// `policy`. The verifier appraises it against its measurement
    /// register instead of an IMA PCR, over text evidence only.
    ///
    /// # Errors
    ///
    /// Registration/transport failures.
    pub fn add_secure_world(
        &mut self,
        config: SecureWorldConfig,
        policy: RuntimePolicy,
    ) -> Result<AgentId, KeylimeError> {
        let backend = SecureWorldBackend::provision(config, &self.tee_root);
        self.add_agent(Agent::with_backend(backend), policy)
    }

    /// Provisions a secure-world backend and enrols it on the shared
    /// policy store (see [`Cluster::add_machine_shared`]).
    ///
    /// # Errors
    ///
    /// Registration/transport failures.
    pub fn add_secure_world_shared(
        &mut self,
        config: SecureWorldConfig,
    ) -> Result<AgentId, KeylimeError> {
        let backend = SecureWorldBackend::provision(config, &self.tee_root);
        self.add_agent_shared(Agent::with_backend(backend))
    }

    /// Provisions a confidential-VM backend under this cluster's
    /// platform root, then registers and enrols it with `policy`. The
    /// registrar pins the platform-certified launch measurement; the
    /// verifier checks every quote's launch register against that pin.
    ///
    /// # Errors
    ///
    /// Registration/transport failures.
    pub fn add_confidential_vm(
        &mut self,
        config: ConfidentialVmConfig,
        policy: RuntimePolicy,
    ) -> Result<AgentId, KeylimeError> {
        let backend = ConfidentialVmBackend::provision(config, &self.vm_platform);
        self.add_agent(Agent::with_backend(backend), policy)
    }

    /// Provisions a confidential-VM backend and enrols it on the shared
    /// policy store (see [`Cluster::add_machine_shared`]).
    ///
    /// # Errors
    ///
    /// Registration/transport failures.
    pub fn add_confidential_vm_shared(
        &mut self,
        config: ConfidentialVmConfig,
    ) -> Result<AgentId, KeylimeError> {
        let backend = ConfidentialVmBackend::provision(config, &self.vm_platform);
        self.add_agent_shared(Agent::with_backend(backend))
    }

    /// Builds, registers and enrols a machine attached to the verifier's
    /// shared policy store: the agent appraises against the store's
    /// current snapshot and tracks every published epoch. Prefer this
    /// over [`Cluster::add_machine`] for homogeneous fleets — enrolment
    /// costs one `Arc` clone instead of a full policy copy.
    ///
    /// # Errors
    ///
    /// Registration/transport failures.
    pub fn add_machine_shared(&mut self, config: MachineConfig) -> Result<AgentId, KeylimeError> {
        let machine = Machine::new(&self.manufacturer, config);
        self.add_agent_shared(Agent::new(machine))
    }

    /// Registers and enrols an existing agent attached to the shared
    /// policy store (see [`Cluster::add_machine_shared`]).
    ///
    /// # Errors
    ///
    /// Registration failures, or transport failures persisting past the
    /// retry budget.
    pub fn add_agent_shared(&mut self, agent: Agent) -> Result<AgentId, KeylimeError> {
        let (id, record) = self.register_with_retry(agent)?;
        self.verifier
            .add_agent_shared_with_identity(id.clone(), record.ak, record.identity);
        self.journal_agent_snapshot(&id)
            .expect("journal enrolment append");
        Ok(id)
    }

    /// Turns on crash-durable state journaling: every enrolment, policy
    /// publish and attestation round from here on is recorded in an
    /// append-only log (see [`crate::durable`]), and
    /// [`Cluster::recover_from_image`] can rebuild the verifier from any
    /// crash-truncated image of it. State that already exists — the
    /// current store epoch and every enrolled agent — is checkpointed
    /// immediately, so enabling late loses nothing.
    ///
    /// # Errors
    ///
    /// [`StorageError`] on journal-filesystem failures.
    pub fn enable_durability(&mut self) -> Result<(), StorageError> {
        let dir = Self::journal_dir();
        let mut journal = VerifierJournal::create(Vfs::with_standard_layout(), &dir)?;
        journal.checkpoint_base(
            self.verifier.current_epoch(),
            self.verifier.policy_store().policy(),
        )?;
        self.journal = Some(journal);
        for id in self.verifier.agent_ids() {
            self.journal_agent_snapshot(&id)?;
        }
        Ok(())
    }

    /// True when [`Cluster::enable_durability`] has been called.
    pub fn is_durable(&self) -> bool {
        self.journal.is_some()
    }

    /// The durability journal, when enabled — e.g. to take a crash image
    /// of its log ([`cia_storage::LogStore::crash_image`]).
    pub fn journal(&self) -> Option<&VerifierJournal> {
        self.journal.as_ref()
    }

    /// Where the cluster keeps its journal inside the journal filesystem.
    pub fn journal_dir() -> VfsPath {
        VfsPath::new(DEFAULT_JOURNAL_DIR).expect("constant journal path is valid")
    }

    /// Simulates the restart after a crash: rebuilds the verifier from
    /// `image` — a (possibly crash-truncated) journal filesystem — and
    /// swaps it in, replacing the journal with the reopened one. The
    /// scheduler, transport and agent processes are untouched (they model
    /// the *fleet*, which does not restart when the verifier does).
    /// Returns the in-flight round to resume, if the crash interrupted
    /// one — hand it to [`Cluster::attest_fleet_resume`].
    ///
    /// # Errors
    ///
    /// [`StorageError`] on unreadable journal records (torn tails are
    /// repaired, not errors).
    pub fn recover_from_image(&mut self, image: Vfs) -> Result<Option<ResumePlan>, StorageError> {
        let recovered =
            VerifierJournal::recover(image, &Self::journal_dir(), self.verifier.config())?;
        self.verifier = recovered.verifier;
        self.journal = Some(recovered.journal);
        Ok(recovered.resume)
    }

    /// Resumes a crashed round from its [`ResumePlan`]: agents acked
    /// before the crash are *not* re-attested — their persisted results
    /// are merged with the fresh results of everyone else, yielding the
    /// same report shape an uncrashed round would have produced. Audit
    /// and revocation records are emitted only for the freshly attested
    /// agents (the acked ones were recorded before the crash).
    pub fn attest_fleet_resume(&mut self, plan: &ResumePlan) -> RoundReport
    where
        T: Sync,
    {
        let journal = self
            .journal
            .as_mut()
            .expect("attest_fleet_resume requires durability");
        journal
            .begin_round(plan.round)
            .expect("journal round start");
        let skip = plan.acked_ids();
        let ackbuf: Mutex<Vec<(AgentRoundResult, AgentStateSnapshot)>> =
            Mutex::new(Vec::new()).named("ackbuf");
        let partial = self.scheduler.run_round_observed(
            &mut self.verifier,
            &mut self.agents,
            &self.transport,
            Some(&skip),
            |result, state| ackbuf.lock().push((result.clone(), state)),
        );
        Self::write_acks(journal, &self.verifier, plan.round, ackbuf.into_inner());
        journal
            .commit_round(plan.round)
            .expect("journal round commit");
        self.commit_round_side_effects(&partial.results);
        let mut results = plan.acked.clone();
        results.extend(partial.results.iter().cloned());
        results.sort_by(|a, b| a.id.cmp(&b.id));
        RoundReport {
            results,
            // Health was counted over *every* enrolled record after the
            // resumed round — skipped agents included — so it already
            // matches what the uncrashed round would have reported.
            health: partial.health,
            policy_epoch: partial.policy_epoch,
        }
    }

    /// Sim invariant: recovering from the journal right now must yield a
    /// verifier observably identical to the live one. Only meaningful
    /// between rounds (no round in flight). No-op when durability is off.
    ///
    /// # Errors
    ///
    /// A description of the first divergence found.
    pub fn check_durable_equivalence(&self) -> Result<(), String> {
        let Some(journal) = &self.journal else {
            return Ok(());
        };
        if journal.last_started() != journal.last_committed() {
            return Err("durable-equivalence checked with a round in flight".to_string());
        }
        let recovered = VerifierJournal::recover(
            journal.log().vfs().clone(),
            journal.log().dir(),
            self.verifier.config(),
        )
        .map_err(|e| format!("journal recovery failed: {e:?}"))?;
        let twin = recovered.verifier;
        if twin.current_epoch() != self.verifier.current_epoch() {
            return Err(format!(
                "store epoch diverged: live {:?}, recovered {:?}",
                self.verifier.current_epoch(),
                twin.current_epoch()
            ));
        }
        if twin.policy_store().policy().to_json() != self.verifier.policy_store().policy().to_json()
        {
            return Err("shared policy content diverged after recovery".to_string());
        }
        let live_ids = self.verifier.agent_ids();
        if twin.agent_ids() != live_ids {
            return Err("enrolled agent set diverged after recovery".to_string());
        }
        for id in &live_ids {
            let live = self
                .verifier
                .export_agent_state(id)
                .map_err(|e| format!("live state export failed for {id}: {e:?}"))?;
            let rec = twin
                .export_agent_state(id)
                .map_err(|e| format!("recovered state export failed for {id}: {e:?}"))?;
            if live != rec {
                return Err(format!(
                    "agent {id} state diverged after recovery:\n live {live:?}\n rec  {rec:?}"
                ));
            }
            let live_policy = self
                .verifier
                .policy(id)
                .map_err(|e| format!("{e:?}"))?
                .to_json();
            let rec_policy = twin.policy(id).map_err(|e| format!("{e:?}"))?.to_json();
            if live_policy != rec_policy {
                return Err(format!("agent {id} policy content diverged after recovery"));
            }
        }
        Ok(())
    }

    /// Journals one agent's enrolment constants and current state — the
    /// write point for enrolments, durability enablement, and per-agent
    /// override pushes. The ack is written under the last *committed*
    /// round, so it never masquerades as progress of an in-flight one.
    fn journal_agent_snapshot(&mut self, id: &AgentId) -> Result<(), StorageError> {
        let Some(journal) = self.journal.as_mut() else {
            return Ok(());
        };
        let Some((_, ak, identity, shared, policy)) = self
            .verifier
            .enrolment_view()
            .find(|(eid, ..)| *eid == id)
            .map(|(eid, ak, identity, shared, policy)| {
                (eid, ak.clone(), identity, shared, policy.to_json())
            })
        else {
            return Ok(());
        };
        let Ok(state) = self.verifier.export_agent_state(id) else {
            return Ok(());
        };
        let override_doc;
        let override_policy = if shared {
            None
        } else {
            override_doc = RuntimePolicy::from_json(&policy).map_err(|e| StorageError::Codec {
                what: format!("enrol/{id}"),
                reason: e.to_string(),
            })?;
            Some(&override_doc)
        };
        journal.record_enrolment(
            id,
            &ak,
            identity,
            shared,
            state.policy_epoch,
            override_policy,
        )?;
        // A synthetic ack carries the agent's current mutable state; its
        // result row is filler (round 0 / last-committed acks are never
        // part of a resume plan).
        let result = AgentRoundResult {
            id: id.clone(),
            backend: identity.kind(),
            day: 0,
            attempts: 0,
            backoff_ms: 0,
            policy_epoch: state.policy_epoch,
            shared_policy: shared,
            outcome: RoundOutcome::Verified { new_entries: 0 },
        };
        let round = journal.last_committed();
        journal.record_ack(round, &result, &state, Some(policy))?;
        Ok(())
    }

    /// Appends the journal acks for one completed round, sorted by agent
    /// id so the journal's bytes are identical for any worker count.
    fn write_acks(
        journal: &mut VerifierJournal,
        verifier: &Verifier,
        round: u64,
        mut acks: Vec<(AgentRoundResult, AgentStateSnapshot)>,
    ) {
        acks.sort_by(|a, b| a.0.id.cmp(&b.0.id));
        for (result, state) in &acks {
            // Override agents embed their policy document (it has no
            // epoch history to resolve from); shared agents resolve
            // theirs from the journaled publishes.
            let policy_json = if state.shared_policy {
                None
            } else {
                verifier.policy(&result.id).ok().map(RuntimePolicy::to_json)
            };
            journal
                .record_ack(round, result, state, policy_json)
                .expect("journal ack append");
        }
    }

    /// Sequential post-round bookkeeping: audit chain and revocation bus,
    /// in result order (already sorted by id).
    fn commit_round_side_effects(&mut self, results: &[AgentRoundResult]) {
        for result in results {
            let audit_outcome = match &result.outcome {
                RoundOutcome::Verified { .. } => AuditOutcome::Verified,
                RoundOutcome::Failed { .. } => AuditOutcome::Failed,
                RoundOutcome::SkippedPaused => AuditOutcome::Skipped,
                RoundOutcome::SkippedQuarantined { .. } => AuditOutcome::Skipped,
                RoundOutcome::Unreachable { .. } => AuditOutcome::Unreachable,
            };
            self.audit.record(result.day, &result.id, audit_outcome);
            if let RoundOutcome::Failed { alerts } = &result.outcome {
                if let Some(first) = alerts.first() {
                    let notice = self
                        .revocation
                        .emit(&result.id, result.day, first.kind.clone());
                    let key = self.revocation.public_key().clone();
                    self.revocation_bus.publish(&notice, &key);
                }
            }
        }
    }

    /// Registers an agent with the verifier's retry budget and stores it;
    /// returns its id and registration record (AK plus proven backend
    /// identity) for enrolment.
    fn register_with_retry(
        &mut self,
        mut agent: Agent,
    ) -> Result<(AgentId, RegistrationRecord), KeylimeError> {
        let max_retries = self.verifier.config().max_retries;
        let mut attempts = 0u32;
        loop {
            attempts += 1;
            match self.registrar.register(&mut self.transport, &mut agent) {
                Ok(()) => break,
                Err(KeylimeError::Transport(e)) if e.is_retryable() && attempts <= max_retries => {
                    continue
                }
                Err(e) => return Err(e),
            }
        }
        let id = agent.id().clone();
        let record = self
            .registrar
            .record_for(&id)
            .ok_or_else(|| KeylimeError::Registration {
                reason: format!("registrar lost the record for `{id}` right after registering it"),
            })?
            .clone();
        self.agents.push(agent);
        Ok((id, record))
    }

    /// Publishes a full replacement policy fleet-wide as a new epoch and
    /// swaps every shared agent's handle onto it (one `Arc` clone per
    /// agent, no policy copies). Records the push in the scheduler's
    /// metrics.
    pub fn publish_policy(&mut self, policy: RuntimePolicy) -> PolicyEpoch {
        // lint:allow(determinism): push-duration metering only — feeds
        // SchedulerMetrics::record_policy_push, never control flow.
        let start = std::time::Instant::now();
        let epoch = self.verifier.publish_policy(policy);
        // A full publish applies no *delta* entries — the counter tracks
        // incremental merge work only.
        self.scheduler
            .metrics()
            .record_policy_push(epoch, start.elapsed().as_nanos() as u64, 0);
        if let Some(journal) = self.journal.as_mut() {
            journal
                .record_publish_full(epoch, self.verifier.policy_store().policy())
                .expect("journal policy publish");
        }
        epoch
    }

    /// Publishes a generator delta fleet-wide as a new epoch: the store's
    /// snapshot is updated copy-on-write, its digest index merged
    /// incrementally, and every shared agent's handle swapped — total
    /// cost is O(delta), independent of fleet size. Records the push
    /// (duration and entry count) in the scheduler's metrics; when the
    /// transport advertises delta support the wire cost metered is the
    /// serialized delta, otherwise the full policy document.
    pub fn publish_delta(&mut self, delta: &PolicyDelta) -> (PolicyEpoch, usize) {
        // lint:allow(determinism): push-duration metering only — feeds
        // SchedulerMetrics::record_policy_push, never control flow.
        let start = std::time::Instant::now();
        let (epoch, applied) = self.verifier.publish_delta(delta);
        self.scheduler.metrics().record_policy_push(
            epoch,
            start.elapsed().as_nanos() as u64,
            applied as u64,
        );
        if let Some(journal) = self.journal.as_mut() {
            journal
                .record_publish_delta(epoch, delta)
                .expect("journal delta publish");
        }
        (epoch, applied)
    }

    /// The wire bytes one policy push would cost on this cluster's
    /// transport: the serialized delta when the transport supports delta
    /// pushes, the full current policy document otherwise.
    pub fn policy_push_wire_bytes(&self, delta: &PolicyDelta) -> u64 {
        let body = if self.transport.supports_delta_push() {
            serde_json::to_string(delta)
        } else {
            serde_json::to_string(self.verifier.policy_store().policy())
        };
        body.map(|s| s.len() as u64).unwrap_or(0)
    }

    /// The shared policy store's active epoch.
    pub fn policy_epoch(&self) -> PolicyEpoch {
        self.verifier.current_epoch()
    }

    /// The enrolled agent ids, in enrolment order.
    pub fn agent_ids(&self) -> Vec<AgentId> {
        self.agents.iter().map(|a| a.id().clone()).collect()
    }

    /// Borrows an agent by id.
    pub fn agent(&self, id: &AgentId) -> Option<&Agent> {
        self.agents.iter().find(|a| a.id() == id)
    }

    /// Mutably borrows an agent by id (to act on its machine).
    pub fn agent_mut(&mut self, id: &AgentId) -> Option<&mut Agent> {
        self.agents.iter_mut().find(|a| a.id() == id)
    }

    /// Mutably borrows the whole agent pool, in enrolment order — how a
    /// [`crate::Federation`] built via
    /// [`crate::Federation::from_verifier`] keeps driving the machines
    /// this cluster enrolled.
    pub fn agents_mut(&mut self) -> &mut [Agent] {
        &mut self.agents
    }

    /// Splits the cluster into the two halves a federated round needs —
    /// the agent pool and the transport — in one call, so the borrows
    /// coexist: `fed.run_round(agents, transport)`.
    pub fn federation_parts(&mut self) -> (&mut [Agent], &T) {
        (&mut self.agents, &self.transport)
    }

    /// Polls one agent at its backend's current day.
    ///
    /// # Errors
    ///
    /// Unknown agent or transport failures.
    pub fn attest(&mut self, id: &AgentId) -> Result<AttestationOutcome, KeylimeError> {
        let idx = self
            .agents
            .iter()
            .position(|a| a.id() == id)
            .ok_or_else(|| KeylimeError::UnknownAgent { id: id.clone() })?;
        let agent = &mut self.agents[idx];
        let day = agent.day();
        let outcome = self.verifier.attest(&mut self.transport, agent, day)?;
        // Durable attestation: every outcome enters the audit chain.
        let audit_outcome = match &outcome {
            AttestationOutcome::Verified { .. } => AuditOutcome::Verified,
            AttestationOutcome::Failed { .. } => AuditOutcome::Failed,
            AttestationOutcome::SkippedPaused => AuditOutcome::Skipped,
        };
        self.audit.record(day, id, audit_outcome);
        // Failed attestations are published on the revocation bus, so
        // subscribed systems can react (drop connections, cordon, ...).
        if let AttestationOutcome::Failed { alerts } = &outcome {
            if let Some(first) = alerts.first() {
                let notice = self.revocation.emit(id, day, first.kind.clone());
                let key = self.revocation.public_key().clone();
                self.revocation_bus.publish(&notice, &key);
            }
        }
        Ok(outcome)
    }

    /// Polls every agent once, sequentially, returning `(id, outcome)`
    /// pairs. Prefer [`Cluster::attest_fleet`] for large fleets.
    ///
    /// # Errors
    ///
    /// First transport failure encountered.
    pub fn attest_all(&mut self) -> Result<Vec<(AgentId, AttestationOutcome)>, KeylimeError> {
        let ids = self.agent_ids();
        let mut out = Vec::with_capacity(ids.len());
        for id in ids {
            let outcome = self.attest(&id)?;
            out.push((id, outcome));
        }
        Ok(out)
    }

    /// One concurrent fleet round: every enrolled agent is attested by
    /// the scheduler's worker pool, with per-agent transport lanes,
    /// retry-with-backoff on dropped calls, and no early abort. After the
    /// parallel phase, outcomes are committed to the audit chain and the
    /// revocation bus sequentially in id order, so the durable record is
    /// deterministic regardless of worker interleaving.
    pub fn attest_fleet(&mut self) -> RoundReport
    where
        T: Sync,
    {
        let report = match self.journal.as_mut() {
            None => self
                .scheduler
                .run_round(&mut self.verifier, &mut self.agents, &self.transport),
            Some(journal) => {
                // Durable round protocol: stamp the start, collect each
                // agent's (result, post-round state) from the workers,
                // append the acks sorted by id, seal with the commit
                // mark. A crash between any two appends leaves a clean
                // resumable prefix.
                let round = journal.next_round();
                journal.begin_round(round).expect("journal round start");
                let ackbuf: Mutex<Vec<(AgentRoundResult, AgentStateSnapshot)>> =
                    Mutex::new(Vec::new()).named("ackbuf");
                let report = self.scheduler.run_round_observed(
                    &mut self.verifier,
                    &mut self.agents,
                    &self.transport,
                    None,
                    |result, state| ackbuf.lock().push((result.clone(), state)),
                );
                Self::write_acks(journal, &self.verifier, round, ackbuf.into_inner());
                journal.commit_round(round).expect("journal round commit");
                report
            }
        };
        self.commit_round_side_effects(&report.results);
        report
    }

    /// One federated fleet round: the cluster lends its agents and
    /// transport to `federation` (see [`Federation::run_round`]), then
    /// commits the merged fleet results to the audit chain and the
    /// revocation bus exactly as [`Cluster::attest_fleet`] would.
    ///
    /// The federation's shards — not this cluster's verifier — hold the
    /// live per-agent verifier state once rounds run through them, so a
    /// caller that federates should publish policy through the
    /// federation and read health from its reports. The cluster keeps
    /// owning the agents, machines, audit chain, and revocation bus.
    /// Federated rounds bypass the durability journal.
    pub fn attest_fleet_federated(&mut self, federation: &mut Federation) -> FederatedRoundReport
    where
        T: Sync,
    {
        let report = {
            let (agents, transport) = self.federation_parts();
            federation.run_round(agents, transport)
        };
        self.commit_round_side_effects(&report.fleet.results);
        report
    }

    /// Operator action: resolve a paused agent by skipping the offending
    /// entries (see [`Verifier::resolve_by_skipping`]).
    ///
    /// # Errors
    ///
    /// Unknown agent or transport failures.
    pub fn resolve(&mut self, id: &AgentId) -> Result<(), KeylimeError> {
        let idx = self
            .agents
            .iter()
            .position(|a| a.id() == id)
            .ok_or_else(|| KeylimeError::UnknownAgent { id: id.clone() })?;
        self.verifier
            .resolve_by_skipping(&mut self.transport, &mut self.agents[idx])
    }

    /// Status shortcut.
    ///
    /// # Errors
    ///
    /// [`KeylimeError::UnknownAgent`].
    pub fn status(&self, id: &AgentId) -> Result<AgentStatus, KeylimeError> {
        self.verifier.status(id)
    }

    /// Reachability-health shortcut.
    ///
    /// # Errors
    ///
    /// [`KeylimeError::UnknownAgent`].
    pub fn health(&self, id: &AgentId) -> Result<crate::verifier::AgentHealth, KeylimeError> {
        self.verifier.health(id)
    }

    /// Alerts shortcut.
    ///
    /// # Errors
    ///
    /// [`KeylimeError::UnknownAgent`].
    pub fn alerts(&self, id: &AgentId) -> Result<&[Alert], KeylimeError> {
        self.verifier.alerts(id)
    }
}

impl<T: Transport> Tenant for Cluster<T> {
    fn enroll(
        &mut self,
        config: MachineConfig,
        policy: RuntimePolicy,
    ) -> Result<AgentId, KeylimeError> {
        self.add_machine(config, policy)
    }

    fn push_policy(&mut self, id: &AgentId, policy: RuntimePolicy) -> Result<(), KeylimeError> {
        self.verifier.update_policy(id, policy)?;
        // The agent is now an override: re-journal its enrolment (with
        // the new policy document embedded) and its current state, so a
        // recovery lands on the post-push view.
        self.journal_agent_snapshot(id)
            .expect("journal override push");
        Ok(())
    }

    fn attest(&mut self, id: &AgentId) -> Result<AttestationOutcome, KeylimeError> {
        Cluster::attest(self, id)
    }
}
