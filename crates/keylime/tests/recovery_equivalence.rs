//! The durability tentpole: recovery equivalence.
//!
//! Property: crash the verifier at an *arbitrary* journal record
//! boundary mid-round (plus an arbitrary torn tail), under an arbitrary
//! fault plan, rebuild it from the truncated journal, and resume — the
//! resumed round's report, the fleet's health, and every subsequent
//! round must be bit-identical to a twin verifier that never crashed.
//! Worker counts are drawn independently for the two verifiers, so the
//! property also pins journal/report determinism across {1, 4, 8}.

use cia_crypto::Sha256;
use cia_keylime::{
    Agent, ChaosTransport, Cluster, FaultPlan, FaultTarget, ReliableTransport, RuntimePolicy,
    VerifierConfig,
};
use cia_os::{ExecMethod, Machine, MachineConfig};
use cia_vfs::VfsPath;
use proptest::prelude::*;

type TestCluster = Cluster<ChaosTransport<ReliableTransport>>;

fn sha256_hex(content: &[u8]) -> String {
    let mut h = Sha256::new();
    h.update(content);
    h.finalize().to_hex()
}

fn config(workers: usize) -> VerifierConfig {
    VerifierConfig::builder()
        .continue_on_failure(true)
        .quarantine_enabled(true)
        .degraded_after(1)
        .quarantine_after(2)
        .reprobe_backoff_rounds(1)
        .reprobe_backoff_max_rounds(4)
        .max_retries(2)
        .worker_count(workers)
        .build()
        .unwrap()
}

/// A fleet of `nodes` machines — all but the last on the shared store,
/// the last on a per-agent override — each having executed one measured
/// tool, with the shared policy published after enrolment.
fn build(seed: u64, plan: FaultPlan, workers: usize, nodes: u64) -> TestCluster {
    let tool = VfsPath::new("/usr/bin/service").unwrap();
    let content: &[u8] = b"fleet service v1";
    let mut policy = RuntimePolicy::new();
    policy.allow(tool.as_str(), sha256_hex(content));
    policy.exclude("/tmp");

    let mut cluster = Cluster::with_transport(
        seed,
        config(workers),
        ChaosTransport::new(ReliableTransport::new(), plan),
    );
    for i in 0..nodes {
        let machine_config = MachineConfig {
            hostname: format!("node-{i:02}"),
            seed: 100 + i,
            ..MachineConfig::default()
        };
        let mut machine = Machine::new(&cluster.manufacturer, machine_config);
        machine.write_executable(&tool, content).unwrap();
        machine.exec(&tool, ExecMethod::Direct).unwrap();
        let id = if i == nodes - 1 {
            cluster
                .add_agent(Agent::new(machine), policy.clone())
                .unwrap()
        } else {
            cluster.add_agent_shared(Agent::new(machine)).unwrap()
        };
        let _ = id;
    }
    cluster.publish_policy(policy);
    cluster
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn crash_at_any_record_boundary_recovers_equivalently(
        seed in 0u64..500,
        nodes in 3u64..6,
        rounds_before in 0u64..3,
        subject_workers in prop_oneof![Just(1usize), Just(4usize), Just(8usize)],
        twin_workers in prop_oneof![Just(1usize), Just(4usize), Just(8usize)],
        cut_sel in any::<u64>(),
        torn in 0usize..5,
        loss in prop_oneof![Just(None), Just(Some(0.3)), Just(Some(0.6))],
        partition_lane in prop_oneof![Just(None), (0u64..3).prop_map(Some)],
    ) {
        let make_plan = || {
            let mut p = FaultPlan::new(seed ^ 0xc4a5);
            if let Some(rate) = loss {
                p = p.loss(0..rounds_before + 3, FaultTarget::AllAgents, rate);
            }
            if let Some(lane) = partition_lane {
                p = p.partition(1..rounds_before + 2, FaultTarget::lanes([lane]));
            }
            p
        };

        // The twin never crashes and never journals; the subject
        // journals everything and will crash mid-round.
        let mut twin = build(seed, make_plan(), twin_workers, nodes);
        let mut subject = build(seed, make_plan(), subject_workers, nodes);
        subject.enable_durability().unwrap();

        // Warm-up rounds: the durable run must already be report-equal.
        for round in 0..rounds_before {
            twin.transport.set_round(round);
            subject.transport.set_round(round);
            let expected = twin.attest_fleet();
            let got = subject.attest_fleet();
            prop_assert_eq!(got, expected, "durable round {} diverged pre-crash", round);
        }

        // The round that crashes. The twin completes it normally.
        let crash_round = rounds_before;
        twin.transport.set_round(crash_round);
        let twin_report = twin.attest_fleet();

        // The subject completes it too — then the crash image truncates
        // its journal at an arbitrary record boundary inside the round
        // (possibly before the round even started), plus a torn tail.
        let frames_before = subject.journal().unwrap().log().frame_count();
        subject.transport.set_round(crash_round);
        let _lost_with_the_crash = subject.attest_fleet();
        let frames_after = subject.journal().unwrap().log().frame_count();
        prop_assert!(frames_after > frames_before);
        let cut = frames_before + cut_sel % (frames_after - frames_before);
        let image = subject.journal().unwrap().log().crash_image(cut, torn);

        // Restart: rebuild the verifier from the truncated journal and
        // finish the round — resuming past the durably acked agents, or
        // rerunning it whole if the crash predates the start mark.
        let resume = subject.recover_from_image(image).unwrap();
        subject.transport.set_round(crash_round);
        let subject_report = match &resume {
            Some(plan) => subject.attest_fleet_resume(plan),
            None => subject.attest_fleet(),
        };
        prop_assert_eq!(
            subject_report,
            twin_report,
            "resumed round diverged (cut {} of {}..{}, resume: {})",
            cut,
            frames_before,
            frames_after,
            resume.is_some()
        );

        // No agent acked before the crash was re-attested: the resumed
        // report must carry the acked rows verbatim (checked above via
        // report equality) and the journal must now agree with memory.
        let equiv = subject.check_durable_equivalence();
        prop_assert!(
            equiv.is_ok(),
            "post-resume durable equivalence: {}",
            equiv.err().unwrap_or_default()
        );

        // The engine's conservation identity survives the partial
        // double-run (the crashed attempt's calls are real calls).
        prop_assert!(subject.scheduler.snapshot().is_conserved());

        // And the fleet keeps evolving identically after the recovery.
        twin.transport.set_round(crash_round + 1);
        subject.transport.set_round(crash_round + 1);
        let expected_next = twin.attest_fleet();
        let got_next = subject.attest_fleet();
        prop_assert_eq!(got_next, expected_next, "round after recovery diverged");
    }
}
