//! Property-based tests for runtime policies and the transport codec.

use cia_crypto::{Digest, HashAlgorithm};
use cia_keylime::{PolicyCheck, PolicyDelta, ReliableTransport, RuntimePolicy, Transport};
use proptest::prelude::*;

fn path() -> impl Strategy<Value = String> {
    "[a-z0-9._/-]{1,30}".prop_map(|s| format!("/{}", s.trim_start_matches('/')))
}

fn digest_hex() -> impl Strategy<Value = String> {
    "[0-9a-f]{64}"
}

proptest! {
    /// Policy JSON serialization round-trips arbitrary contents.
    #[test]
    fn policy_json_roundtrip(
        entries in proptest::collection::vec((path(), digest_hex()), 0..20),
        excludes in proptest::collection::vec(path(), 0..5),
        version in any::<u64>(),
    ) {
        let mut policy = RuntimePolicy::new();
        for (p, d) in &entries {
            policy.allow(p.clone(), d.clone());
        }
        for e in &excludes {
            policy.exclude(e.clone());
        }
        policy.meta.version = version;
        let parsed = RuntimePolicy::from_json(&policy.to_json()).unwrap();
        prop_assert_eq!(parsed, policy);
    }

    /// Every allowed (path, digest) pair checks as Allowed unless an
    /// exclude shadows it; unknown digests are HashMismatch; unknown
    /// paths are NotInPolicy.
    #[test]
    fn check_is_consistent(
        entries in proptest::collection::vec((path(), digest_hex()), 1..20),
        probe_digest in digest_hex(),
    ) {
        let mut policy = RuntimePolicy::new();
        for (p, d) in &entries {
            policy.allow(p.clone(), d.clone());
        }
        for (p, d) in &entries {
            match policy.check(p, d) {
                PolicyCheck::Allowed | PolicyCheck::Excluded => {}
                other => prop_assert!(false, "expected allowed for {p}, got {other:?}"),
            }
            if !entries.iter().any(|(q, e)| q == p && e == &probe_digest) {
                match policy.check(p, &probe_digest) {
                    PolicyCheck::HashMismatch { expected } => {
                        prop_assert!(expected.contains(d));
                    }
                    PolicyCheck::Excluded => {}
                    other => prop_assert!(false, "expected mismatch for {p}, got {other:?}"),
                }
            }
        }
        prop_assert_eq!(policy.line_count(), policy.entries().map(|(_, s)| s.len()).sum::<usize>());
    }

    /// Excluding a prefix excludes the whole subtree and nothing outside
    /// the component boundary.
    #[test]
    fn exclusion_prefix_semantics(prefix in path(), child in "[a-z0-9]{1,8}") {
        let mut policy = RuntimePolicy::new();
        policy.exclude(prefix.clone());
        let under = format!("{}/{}", prefix, child);
        let sibling = format!("{}{}", prefix, child);
        prop_assert!(policy.is_excluded(&prefix));
        prop_assert!(policy.is_excluded(&under));
        prop_assert!(!policy.is_excluded(&sibling));
        // Removing restores visibility.
        policy.remove_exclude(&prefix);
        prop_assert!(!policy.is_excluded(&under));
    }

    /// Dedup keeps exactly the retained digest when it is present.
    #[test]
    fn dedup_retains_exactly_one(
        target in path(),
        digests in proptest::collection::vec(digest_hex(), 1..6),
    ) {
        let mut policy = RuntimePolicy::new();
        for d in &digests {
            policy.allow(target.clone(), d.clone());
        }
        let keep = digests.last().unwrap().clone();
        policy.dedup_retain(&target, &keep);
        let set = policy.digests_for(&target).unwrap();
        prop_assert_eq!(set.len(), 1);
        prop_assert!(set.contains(&keep));
    }

    /// The zero-copy digest check agrees with the legacy hex-string
    /// check on arbitrary policies, probes and exclude prefixes — the
    /// binary index is an optimization, never a semantic change.
    #[test]
    fn check_digest_agrees_with_legacy_check(
        entries in proptest::collection::vec((path(), digest_hex()), 0..20),
        excludes in proptest::collection::vec(path(), 0..5),
        probe_path in path(),
        probe_digest in digest_hex(),
    ) {
        let mut policy = RuntimePolicy::new();
        for (p, d) in &entries {
            policy.allow(p.clone(), d.clone());
        }
        for e in &excludes {
            policy.exclude(e.clone());
        }
        // Probe an arbitrary path, every allowed path, and every exclude
        // prefix, with both an arbitrary digest and each allowed digest.
        let mut probes: Vec<(&str, &str)> = vec![(&probe_path, &probe_digest)];
        for (p, d) in &entries {
            probes.push((p, &probe_digest));
            probes.push((p, d));
            probes.push((&probe_path, d));
        }
        for e in &excludes {
            probes.push((e, &probe_digest));
        }
        for (p, d) in probes {
            let typed = Digest::parse_hex(HashAlgorithm::Sha256, d).unwrap();
            prop_assert_eq!(
                policy.check_digest(p, &typed),
                policy.check(p, d),
                "divergence at path {} digest {}", p, d
            );
        }
    }

    /// The transport codec is lossless for arbitrary JSON-serializable
    /// payloads.
    #[test]
    fn transport_codec_lossless(payload in proptest::collection::vec(any::<u8>(), 0..256)) {
        let mut transport = ReliableTransport::new();
        let echoed: Vec<u8> = transport.call(&payload, |p: Vec<u8>| p).unwrap();
        prop_assert_eq!(echoed, payload);
    }
}

// --- Delta application ---------------------------------------------------

/// A small pool of paths/digests so random deltas actually collide with
/// prior policy state (forcing every merge case: re-add after removal,
/// retire, sorted-union merges, brand-new tails).
fn pool_path() -> impl Strategy<Value = String> {
    (0u8..8).prop_map(|i| format!("/bin/p{i}"))
}

fn pool_digest() -> impl Strategy<Value = String> {
    // Mostly canonical digests from a 6-value pool; roughly one in seven
    // is non-canonical — those keep their policy slot but never enter
    // the binary index's raw span (HashMismatch, not NotInPolicy).
    (0u8..7).prop_map(|i| {
        if i < 6 {
            format!("{i:064x}")
        } else {
            "NOT-CANONICAL-HEX".to_string()
        }
    })
}

fn arb_delta() -> impl Strategy<Value = PolicyDelta> {
    (
        proptest::collection::vec((pool_path(), pool_digest()), 0..6),
        proptest::collection::vec(pool_path(), 0..3),
        proptest::collection::vec((pool_path(), pool_digest()), 0..3),
        0u8..3,
    )
        .prop_map(|(added, removed_paths, retired, staged)| PolicyDelta {
            added,
            removed_paths,
            retired,
            staged_kernels: (0..staged).map(|i| format!("6.1.0-{i}")).collect(),
            ..PolicyDelta::default()
        })
}

proptest! {
    /// Incremental delta application (with the sorted index merge) is
    /// indistinguishable from rebuilding the policy from the merged JSON:
    /// structurally (`PolicyDiff` empty), bit-for-bit (JSON), and at the
    /// index level, for arbitrary delta sequences over a warm policy.
    #[test]
    fn apply_delta_equals_rebuild_from_merged_json(
        base in proptest::collection::vec((pool_path(), pool_digest()), 0..10),
        deltas in proptest::collection::vec(arb_delta(), 1..6),
    ) {
        let mut incremental = RuntimePolicy::new();
        for (p, d) in &base {
            incremental.allow(p.clone(), d.clone());
        }
        incremental.warm_index();
        let mut reference = RuntimePolicy::from_json(&incremental.to_json()).unwrap();

        for (i, delta) in deltas.iter().enumerate() {
            let mut delta = delta.clone();
            delta.meta.version = i as u64 + 1;
            incremental.apply_delta(&delta);

            // Reference path: same mutations, then a full JSON round-trip
            // so its index is rebuilt from scratch, never merged.
            for path in &delta.removed_paths {
                reference.remove_path(path);
            }
            for (path, digest) in &delta.added {
                reference.allow(path.clone(), digest.clone());
            }
            for (path, keep) in &delta.retired {
                reference.dedup_retain(path, keep);
            }
            reference.meta = delta.meta.clone();
            reference = RuntimePolicy::from_json(&reference.to_json()).unwrap();

            prop_assert!(
                incremental.diff(&reference).is_empty(),
                "delta {i} diverged: {:?}", incremental.diff(&reference)
            );
            prop_assert_eq!(incremental.to_json(), reference.to_json());
            prop_assert!(
                incremental.index_is_consistent(),
                "merged index diverged from a fresh build after delta {i}"
            );
        }
    }
}
