//! Property-based tests for runtime policies and the transport codec.

use cia_crypto::{Digest, HashAlgorithm};
use cia_keylime::{PolicyCheck, ReliableTransport, RuntimePolicy, Transport};
use proptest::prelude::*;

fn path() -> impl Strategy<Value = String> {
    "[a-z0-9._/-]{1,30}".prop_map(|s| format!("/{}", s.trim_start_matches('/')))
}

fn digest_hex() -> impl Strategy<Value = String> {
    "[0-9a-f]{64}"
}

proptest! {
    /// Policy JSON serialization round-trips arbitrary contents.
    #[test]
    fn policy_json_roundtrip(
        entries in proptest::collection::vec((path(), digest_hex()), 0..20),
        excludes in proptest::collection::vec(path(), 0..5),
        version in any::<u64>(),
    ) {
        let mut policy = RuntimePolicy::new();
        for (p, d) in &entries {
            policy.allow(p.clone(), d.clone());
        }
        for e in &excludes {
            policy.exclude(e.clone());
        }
        policy.meta.version = version;
        let parsed = RuntimePolicy::from_json(&policy.to_json()).unwrap();
        prop_assert_eq!(parsed, policy);
    }

    /// Every allowed (path, digest) pair checks as Allowed unless an
    /// exclude shadows it; unknown digests are HashMismatch; unknown
    /// paths are NotInPolicy.
    #[test]
    fn check_is_consistent(
        entries in proptest::collection::vec((path(), digest_hex()), 1..20),
        probe_digest in digest_hex(),
    ) {
        let mut policy = RuntimePolicy::new();
        for (p, d) in &entries {
            policy.allow(p.clone(), d.clone());
        }
        for (p, d) in &entries {
            match policy.check(p, d) {
                PolicyCheck::Allowed | PolicyCheck::Excluded => {}
                other => prop_assert!(false, "expected allowed for {p}, got {other:?}"),
            }
            if !entries.iter().any(|(q, e)| q == p && e == &probe_digest) {
                match policy.check(p, &probe_digest) {
                    PolicyCheck::HashMismatch { expected } => {
                        prop_assert!(expected.contains(d));
                    }
                    PolicyCheck::Excluded => {}
                    other => prop_assert!(false, "expected mismatch for {p}, got {other:?}"),
                }
            }
        }
        prop_assert_eq!(policy.line_count(), policy.entries().map(|(_, s)| s.len()).sum::<usize>());
    }

    /// Excluding a prefix excludes the whole subtree and nothing outside
    /// the component boundary.
    #[test]
    fn exclusion_prefix_semantics(prefix in path(), child in "[a-z0-9]{1,8}") {
        let mut policy = RuntimePolicy::new();
        policy.exclude(prefix.clone());
        let under = format!("{}/{}", prefix, child);
        let sibling = format!("{}{}", prefix, child);
        prop_assert!(policy.is_excluded(&prefix));
        prop_assert!(policy.is_excluded(&under));
        prop_assert!(!policy.is_excluded(&sibling));
        // Removing restores visibility.
        policy.remove_exclude(&prefix);
        prop_assert!(!policy.is_excluded(&under));
    }

    /// Dedup keeps exactly the retained digest when it is present.
    #[test]
    fn dedup_retains_exactly_one(
        target in path(),
        digests in proptest::collection::vec(digest_hex(), 1..6),
    ) {
        let mut policy = RuntimePolicy::new();
        for d in &digests {
            policy.allow(target.clone(), d.clone());
        }
        let keep = digests.last().unwrap().clone();
        policy.dedup_retain(&target, &keep);
        let set = policy.digests_for(&target).unwrap();
        prop_assert_eq!(set.len(), 1);
        prop_assert!(set.contains(&keep));
    }

    /// The zero-copy digest check agrees with the legacy hex-string
    /// check on arbitrary policies, probes and exclude prefixes — the
    /// binary index is an optimization, never a semantic change.
    #[test]
    fn check_digest_agrees_with_legacy_check(
        entries in proptest::collection::vec((path(), digest_hex()), 0..20),
        excludes in proptest::collection::vec(path(), 0..5),
        probe_path in path(),
        probe_digest in digest_hex(),
    ) {
        let mut policy = RuntimePolicy::new();
        for (p, d) in &entries {
            policy.allow(p.clone(), d.clone());
        }
        for e in &excludes {
            policy.exclude(e.clone());
        }
        // Probe an arbitrary path, every allowed path, and every exclude
        // prefix, with both an arbitrary digest and each allowed digest.
        let mut probes: Vec<(&str, &str)> = vec![(&probe_path, &probe_digest)];
        for (p, d) in &entries {
            probes.push((p, &probe_digest));
            probes.push((p, d));
            probes.push((&probe_path, d));
        }
        for e in &excludes {
            probes.push((e, &probe_digest));
        }
        for (p, d) in probes {
            let typed = Digest::parse_hex(HashAlgorithm::Sha256, d).unwrap();
            prop_assert_eq!(
                policy.check_digest(p, &typed),
                policy.check(p, d),
                "divergence at path {} digest {}", p, d
            );
        }
    }

    /// The transport codec is lossless for arbitrary JSON-serializable
    /// payloads.
    #[test]
    fn transport_codec_lossless(payload in proptest::collection::vec(any::<u8>(), 0..256)) {
        let mut transport = ReliableTransport::new();
        let echoed: Vec<u8> = transport.call(&payload, |p: Vec<u8>| p).unwrap();
        prop_assert_eq!(echoed, payload);
    }
}
