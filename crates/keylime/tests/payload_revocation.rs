//! Integration coverage for the secure-payload bootstrap (`payload.rs`)
//! and the revocation bus (`revocation.rs`) at the Cluster level — in
//! particular the interaction the chaos harness exposed: a revocation
//! published while a subscriber's node is quarantined must be applied on
//! recovery, never lost.

use cia_keylime::{
    Agent, AgentHealth, AgentStatus, ChaosTransport, Cluster, EncryptedPayload, FaultPlan,
    FaultTarget, KeyShare, PayloadBundle, ReliableTransport, RuntimePolicy, VerifierConfig,
};
use cia_os::{ExecMethod, Machine, MachineConfig};
use cia_vfs::VfsPath;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn machine_config(hostname: &str, seed: u64) -> MachineConfig {
    MachineConfig {
        hostname: hostname.to_string(),
        seed,
        ..MachineConfig::default()
    }
}

/// The V share is withheld until the first clean attestation: collecting
/// before any poll yields nothing, collecting after a verified round
/// yields the plaintext.
#[test]
fn payload_released_only_after_clean_attestation() {
    let mut cluster = Cluster::new(41, VerifierConfig::default());
    let id = cluster
        .add_machine(machine_config("node-00", 1), RuntimePolicy::new())
        .unwrap();
    let secret = b"db-password=hunter2";
    cluster.provision_payload(&id, secret).unwrap();

    // No attestation yet: the verifier holds the V share back.
    assert_eq!(cluster.collect_payload(&id).unwrap(), None);

    assert!(cluster.attest(&id).unwrap().is_verified());
    assert_eq!(
        cluster.collect_payload(&id).unwrap().as_deref(),
        Some(secret.as_slice())
    );
}

/// A node that fails attestation loses payload access while paused, and
/// regains it only after operator resolution plus a clean re-poll.
#[test]
fn payload_denied_while_untrusted_restored_after_resolution() {
    let mut cluster = Cluster::new(42, VerifierConfig::default());
    let id = cluster
        .add_machine(machine_config("node-00", 2), RuntimePolicy::new())
        .unwrap();
    cluster.provision_payload(&id, b"api-token=abcd").unwrap();
    assert!(cluster.attest(&id).unwrap().is_verified());

    // Compromise: an unexpected executable runs and attestation fails.
    let machine = cluster.agent_mut(&id).unwrap().machine_mut();
    let rogue = VfsPath::new("/usr/local/bin/rogue").unwrap();
    machine.write_executable(&rogue, b"unexpected").unwrap();
    machine.exec(&rogue, ExecMethod::Direct).unwrap();
    assert!(!cluster.attest(&id).unwrap().is_verified());
    assert_eq!(cluster.status(&id).unwrap(), AgentStatus::Paused);
    assert_eq!(cluster.collect_payload(&id).unwrap(), None);

    // The operator investigates and resolves; the next poll is clean
    // (the rogue entry was already consumed), so trust — and with it
    // payload access — is restored.
    cluster.resolve(&id).unwrap();
    assert!(cluster.attest(&id).unwrap().is_verified());
    assert!(cluster.collect_payload(&id).unwrap().is_some());
}

/// The wire formats round-trip through serde, and a tampered ciphertext
/// is rejected by the integrity tag even under the correct key.
#[test]
fn payload_serde_roundtrip_and_tamper_detection() {
    let mut rng = StdRng::seed_from_u64(7);
    let bundle = PayloadBundle::seal(b"secret config", &mut rng);
    let key = bundle.u_share.combine(&bundle.v_share);

    let payload_json = serde_json::to_string(&bundle.payload).unwrap();
    let share_json = serde_json::to_string(&bundle.u_share).unwrap();
    let payload: EncryptedPayload = serde_json::from_str(&payload_json).unwrap();
    let share: KeyShare = serde_json::from_str(&share_json).unwrap();
    assert_eq!(payload, bundle.payload);
    assert_eq!(share, bundle.u_share);
    assert_eq!(payload.open(&key).unwrap(), b"secret config");

    // Flip the first ciphertext byte on the wire: even under the correct
    // key, the integrity tag must reject the decryption.
    let marker = "\"ciphertext\":[";
    let start = payload_json.find(marker).unwrap() + marker.len();
    let end = start + payload_json[start..].find([',', ']']).unwrap();
    let byte: u8 = payload_json[start..end].parse().unwrap();
    let tampered_json = format!(
        "{}{}{}",
        &payload_json[..start],
        byte ^ 0xff,
        &payload_json[end..]
    );
    let tampered: EncryptedPayload = serde_json::from_str(&tampered_json).unwrap();
    assert_ne!(tampered, payload);
    assert_eq!(tampered.open(&key), None);
}

/// The satellite scenario: node B is partitioned and quarantined while
/// node A is compromised and revoked. B's revocation subscriber is
/// offline for the duration of the quarantine; the notice queues on the
/// bus and applies when B recovers — the revocation is delayed, not lost.
#[test]
fn revocation_during_quarantine_applies_on_recovery() {
    let config = VerifierConfig::builder()
        .quarantine_enabled(true)
        .degraded_after(1)
        .quarantine_after(2)
        .reprobe_backoff_rounds(1)
        .reprobe_backoff_max_rounds(4)
        .max_retries(1)
        .worker_count(2)
        .build()
        .unwrap();
    // Lane 1 (node "bravo", second in sorted order) partitions rounds 1..5.
    let plan = FaultPlan::new(5).partition(1..5, FaultTarget::lanes([1]));
    let mut cluster = Cluster::with_transport(
        43,
        config,
        ChaosTransport::new(ReliableTransport::new(), plan),
    );

    let alpha = {
        let machine = Machine::new(&cluster.manufacturer, machine_config("alpha", 10));
        cluster
            .add_agent(Agent::new(machine), RuntimePolicy::new())
            .unwrap()
    };
    let bravo = {
        let machine = Machine::new(&cluster.manufacturer, machine_config("bravo", 11));
        cluster
            .add_agent(Agent::new(machine), RuntimePolicy::new())
            .unwrap()
    };
    // Bravo's host also runs the revocation consumer, so it goes offline
    // with the node.
    let subscriber = cluster.revocation_bus.subscribe();

    // Round 0: everyone clean and online.
    cluster.transport.set_round(0);
    assert_eq!(cluster.attest_fleet().verified_count(), 2);

    // Rounds 1-2: bravo partitions and quarantines; its consumer drops
    // off the bus at the same time.
    for round in 1..=2 {
        cluster.transport.set_round(round);
        cluster.attest_fleet();
    }
    assert_eq!(cluster.health(&bravo).unwrap(), AgentHealth::Quarantined);
    cluster.revocation_bus.set_online(subscriber, false);

    // Round 3: alpha is compromised mid-quarantine; the verifier revokes
    // it and publishes — to a bus whose only consumer is offline.
    {
        let machine = cluster.agent_mut(&alpha).unwrap().machine_mut();
        let rogue = VfsPath::new("/usr/local/bin/implant").unwrap();
        machine.write_executable(&rogue, b"c2 implant").unwrap();
        machine.exec(&rogue, ExecMethod::Direct).unwrap();
    }
    cluster.transport.set_round(3);
    cluster.attest_fleet();
    assert_eq!(cluster.status(&alpha).unwrap(), AgentStatus::Paused);
    assert_eq!(cluster.revocation_bus.pending_count(subscriber), Some(1));
    assert!(
        !cluster
            .revocation_bus
            .subscriber(subscriber)
            .unwrap()
            .is_revoked(&alpha),
        "the notice must not apply while the consumer is offline"
    );

    // Rounds 5-8: the partition heals; bravo probes back through
    // Recovering to Healthy, and its consumer reconnects — the queued
    // revocation flushes on reconnect.
    for round in 5..=8 {
        cluster.transport.set_round(round);
        cluster.attest_fleet();
    }
    assert_eq!(cluster.health(&bravo).unwrap(), AgentHealth::Healthy);
    cluster.revocation_bus.set_online(subscriber, true);
    assert_eq!(cluster.revocation_bus.pending_count(subscriber), Some(0));
    assert!(
        cluster
            .revocation_bus
            .subscriber(subscriber)
            .unwrap()
            .is_revoked(&alpha),
        "the revocation must apply on recovery, not be lost"
    );
}
