//! Golden tests for the structured quote excerpt (wire format v2).
//!
//! The structured excerpt is a perf optimization, never a semantic
//! change: a verifier consuming typed [`ImaLogEntry`] lists must reach
//! bit-identical conclusions — outcomes, statuses, and replayed PCR
//! folds — to one parsing the canonical ASCII rendering, on clean
//! workloads, on failing workloads, and across the chaos fault corpus.
//! Tampering with the typed entries on the wire must be caught by the
//! PCR replay exactly like tampering with the text would be.

use cia_crypto::{Digest, HashAlgorithm};
use cia_keylime::{
    Agent, AgentId, AgentRequest, AgentResponse, AgentStatus, AttestationOutcome, ChaosTransport,
    Cluster, FailureKind, FaultPlan, FaultTarget, QuoteResponse, ReliableTransport, RoundReport,
    RuntimePolicy, Transport, TransportError, VerifierConfig,
};
use cia_os::{ExecMethod, MachineConfig};
use cia_tpm::pcr::extend_digest;
use cia_vfs::VfsPath;
use serde::de::DeserializeOwned;
use serde::Serialize;

fn p(s: &str) -> VfsPath {
    VfsPath::new(s).unwrap()
}

/// Runs the same scripted workload on a fresh single-node cluster and
/// returns, per attestation round, the outcome, the agent status, and
/// the verifier's replayed PCR 10.
fn run_scripted_rounds(config: VerifierConfig) -> Vec<(AttestationOutcome, AgentStatus, Digest)> {
    let mut cluster = Cluster::new(41, config);
    let mut policy = RuntimePolicy::new();
    policy.exclude("/tmp");

    let id = cluster
        .add_machine(MachineConfig::default(), RuntimePolicy::new())
        .unwrap();
    {
        let m = cluster.agent_mut(&id).unwrap().machine_mut();
        m.write_executable(&p("/usr/bin/good"), b"known good binary")
            .unwrap();
        let digest = m
            .vfs
            .file_digest(&p("/usr/bin/good"), HashAlgorithm::Sha256)
            .unwrap();
        policy.allow("/usr/bin/good", digest.to_hex());
        m.write_executable(&p("/usr/bin/other"), b"second good binary")
            .unwrap();
        let digest = m
            .vfs
            .file_digest(&p("/usr/bin/other"), HashAlgorithm::Sha256)
            .unwrap();
        policy.allow("/usr/bin/other", digest.to_hex());
    }
    cluster.verifier.update_policy(&id, policy).unwrap();

    let mut observed = Vec::new();
    let record = |cluster: &mut Cluster, id: &AgentId, observed: &mut Vec<_>| {
        let outcome = cluster.attest(id).unwrap();
        observed.push((
            outcome,
            cluster.status(id).unwrap(),
            cluster.verifier.replayed_pcr(id).unwrap(),
        ));
    };

    // Round 1: boot_aggregate only.
    record(&mut cluster, &id, &mut observed);
    // Round 2: a burst of allowed and excluded activity.
    {
        let m = cluster.agent_mut(&id).unwrap().machine_mut();
        m.exec(&p("/usr/bin/good"), ExecMethod::Direct).unwrap();
        m.exec(&p("/usr/bin/other"), ExecMethod::Direct).unwrap();
        m.write_executable(&p("/tmp/scratch"), b"excluded scratch")
            .unwrap();
        m.exec(&p("/tmp/scratch"), ExecMethod::Direct).unwrap();
    }
    record(&mut cluster, &id, &mut observed);
    // Round 3: nothing new.
    record(&mut cluster, &id, &mut observed);
    // Round 4: a policy violation followed by more allowed activity, so
    // stop-on-failure and continue-on-failure configs diverge — but
    // identically for both wire formats.
    {
        let m = cluster.agent_mut(&id).unwrap().machine_mut();
        m.write_executable(&p("/usr/bin/surprise"), b"not in policy")
            .unwrap();
        m.exec(&p("/usr/bin/surprise"), ExecMethod::Direct).unwrap();
        m.exec(&p("/usr/bin/good"), ExecMethod::Direct).unwrap();
    }
    record(&mut cluster, &id, &mut observed);
    // Round 5: the agent stays paused (stop-on-failure) or keeps
    // accumulating alerts (continue-on-failure).
    if observed.last().unwrap().1 != AgentStatus::Paused {
        record(&mut cluster, &id, &mut observed);
    }
    observed
}

/// The golden equivalence: text and structured excerpts yield identical
/// outcomes, statuses and replayed PCR folds round by round, under both
/// failure policies.
#[test]
fn structured_and_text_paths_reach_identical_conclusions() {
    for continue_on_failure in [false, true] {
        let base = VerifierConfig::builder().continue_on_failure(continue_on_failure);
        let text = run_scripted_rounds(base.clone().structured_excerpt(false).build().unwrap());
        let structured =
            run_scripted_rounds(base.clone().structured_excerpt(true).build().unwrap());
        assert_eq!(
            text, structured,
            "wire formats diverged (continue_on_failure={continue_on_failure})"
        );
        // The scripted workload exercises both verified and failed rounds.
        assert!(text.iter().any(|(o, _, _)| o.is_verified()));
        assert!(text.iter().any(|(o, _, _)| !o.is_verified()));
    }
}

/// Pulls one structured quote straight from an agent.
fn structured_quote(agent: &mut Agent) -> QuoteResponse {
    let response = agent.handle(AgentRequest::Quote {
        nonce: vec![7; 32],
        from_entry: 0,
        structured: true,
    });
    match response {
        AgentResponse::Quote(q) => q,
        other => panic!("unexpected response {other:?}"),
    }
}

/// The typed entry list survives a JSON wire roundtrip: paths, digests,
/// renderings and recomputed template hashes are preserved, and the
/// memoized hash caches never travel.
#[test]
fn structured_excerpt_roundtrips_through_the_wire() {
    let mut cluster = Cluster::new(43, VerifierConfig::default());
    let id = cluster
        .add_machine(MachineConfig::default(), RuntimePolicy::new())
        .unwrap();
    {
        let m = cluster.agent_mut(&id).unwrap().machine_mut();
        m.write_executable(&p("/usr/bin/tool"), b"some tool")
            .unwrap();
        m.exec(&p("/usr/bin/tool"), ExecMethod::Direct).unwrap();
    }
    let resp = structured_quote(cluster.agent_mut(&id).unwrap());
    assert!(
        resp.log_excerpt().is_empty(),
        "structured replies carry no text"
    );
    let entries = resp.entries().expect("structured entries present");
    assert_eq!(entries.len(), resp.total_entries());

    let wire = serde_json::to_string(&resp).unwrap();
    let back: QuoteResponse = serde_json::from_str(&wire).unwrap();
    let back_entries = back.entries().expect("entries survive the wire");
    assert_eq!(back_entries.len(), entries.len());

    let mut sent_fold = HashAlgorithm::Sha256.zero_digest();
    let mut received_fold = HashAlgorithm::Sha256.zero_digest();
    for (sent, received) in entries.iter().zip(back_entries) {
        assert_eq!(sent.path, received.path);
        assert_eq!(sent.filedata_hash, received.filedata_hash);
        assert_eq!(sent.render(), received.render());
        // Template hashes recompute to the same value on the far side.
        for bank in [HashAlgorithm::Sha1, HashAlgorithm::Sha256] {
            assert_eq!(sent.template_hash(bank), received.template_hash(bank));
        }
        sent_fold = extend_digest(
            HashAlgorithm::Sha256,
            sent_fold,
            sent.template_hash(HashAlgorithm::Sha256),
        );
        received_fold = extend_digest(
            HashAlgorithm::Sha256,
            received_fold,
            received.template_hash(HashAlgorithm::Sha256),
        );
    }
    assert_eq!(sent_fold, received_fold, "PCR folds agree across the wire");
    assert_eq!(resp.quote().pcr_value(10), Some(sent_fold));
}

/// A transport that rewrites one path inside the serialized response —
/// the man-in-the-middle a structured excerpt must not survive.
struct TamperingTransport {
    requests: u64,
}

impl Transport for TamperingTransport {
    fn call<Req, Resp>(
        &mut self,
        request: &Req,
        serve: impl FnOnce(Req) -> Resp,
    ) -> Result<Resp, TransportError>
    where
        Req: Serialize + DeserializeOwned,
        Resp: Serialize + DeserializeOwned,
    {
        let codec = |e: serde_json::Error| TransportError::Codec {
            reason: e.to_string(),
        };
        self.requests += 1;
        let wire_req = serde_json::to_string(request).map_err(codec)?;
        let decoded: Req = serde_json::from_str(&wire_req).map_err(codec)?;
        let response = serve(decoded);
        let wire_resp = serde_json::to_string(&response).map_err(codec)?;
        let tampered = wire_resp.replace("/usr/bin/good", "/usr/bin/evil");
        serde_json::from_str(&tampered).map_err(codec)
    }

    fn requests(&self) -> u64 {
        self.requests
    }

    fn drops(&self) -> u64 {
        0
    }

    fn wire_bytes(&self) -> u64 {
        0
    }

    fn fork(&self, _lane: u64) -> Self {
        TamperingTransport { requests: 0 }
    }
}

/// Tampering with a typed entry in flight lands as a PCR mismatch: the
/// verifier recomputes template hashes from the entry fields (the
/// memoized caches serialize to null), so the fold no longer matches
/// the quoted PCR 10.
#[test]
fn tampered_structured_excerpt_is_rejected() {
    let config = VerifierConfig::builder()
        .structured_excerpt(true)
        .build()
        .unwrap();
    let mut cluster = Cluster::with_transport(47, config, TamperingTransport { requests: 0 });
    let id = cluster
        .add_machine(MachineConfig::default(), RuntimePolicy::new())
        .unwrap();
    {
        let m = cluster.agent_mut(&id).unwrap().machine_mut();
        m.write_executable(&p("/usr/bin/good"), b"known good binary")
            .unwrap();
        m.exec(&p("/usr/bin/good"), ExecMethod::Direct).unwrap();
    }
    match cluster.attest(&id).unwrap() {
        AttestationOutcome::Failed { alerts } => {
            assert!(
                alerts
                    .iter()
                    .any(|a| matches!(a.kind, FailureKind::PcrMismatch)),
                "tampering must surface as a PCR mismatch: {alerts:?}"
            );
        }
        other => panic!("tampered excerpt must not verify: {other:?}"),
    }
    assert_eq!(cluster.status(&id).unwrap(), AgentStatus::Paused);
}

/// Builds a small chaos fleet (loss + partition + crash faults, no
/// payload corruption — corruption mutates the wire bytes themselves,
/// which necessarily differ between formats) and runs six scheduler
/// rounds, returning every report plus the final per-agent replayed
/// PCRs and the deterministic entries_evaluated counter.
fn run_chaos_corpus(structured: bool) -> (Vec<RoundReport>, Vec<(AgentId, Digest)>, u64) {
    let config = VerifierConfig::builder()
        .continue_on_failure(true)
        .max_retries(6)
        .retry_backoff_ms(5)
        .worker_count(3)
        .structured_excerpt(structured)
        .build()
        .unwrap();
    let plan = FaultPlan::new(23)
        .loss(1..3, FaultTarget::AllAgents, 0.3)
        .partition(3..4, FaultTarget::lanes([1]))
        .crash(4, 2);
    let transport = ChaosTransport::new(ReliableTransport::new(), plan);
    let mut cluster = Cluster::with_transport(29, config, transport);

    let mut policy = RuntimePolicy::new();
    let mut ids = Vec::new();
    for i in 0..4u64 {
        let machine = MachineConfig {
            hostname: format!("chaos-{i:02}"),
            seed: i,
            ..MachineConfig::default()
        };
        ids.push(cluster.add_machine(machine, RuntimePolicy::new()).unwrap());
    }
    {
        let m = cluster.agent_mut(&ids[0]).unwrap().machine_mut();
        m.write_executable(&p("/usr/bin/shared"), b"fleet-wide tool")
            .unwrap();
        let digest = m
            .vfs
            .file_digest(&p("/usr/bin/shared"), HashAlgorithm::Sha256)
            .unwrap();
        policy.allow("/usr/bin/shared", digest.to_hex());
    }
    for id in &ids {
        cluster.verifier.update_policy(id, policy.clone()).unwrap();
    }

    let mut reports = Vec::new();
    for round in 0..6u64 {
        cluster.transport.set_round(round);
        if round == 2 {
            // Mid-corpus workload: allowed activity on agent 0, a
            // violation on agent 3.
            let m = cluster.agent_mut(&ids[0]).unwrap().machine_mut();
            m.write_executable(&p("/usr/bin/shared"), b"fleet-wide tool")
                .unwrap();
            m.exec(&p("/usr/bin/shared"), ExecMethod::Direct).unwrap();
            let m = cluster.agent_mut(&ids[3]).unwrap().machine_mut();
            m.write_executable(&p("/usr/bin/dropper"), b"malicious payload")
                .unwrap();
            m.exec(&p("/usr/bin/dropper"), ExecMethod::Direct).unwrap();
        }
        reports.push(cluster.attest_fleet());
    }

    let pcrs = ids
        .iter()
        .map(|id| (id.clone(), cluster.verifier.replayed_pcr(id).unwrap()))
        .collect();
    let entries_evaluated = cluster.scheduler.metrics().snapshot().entries_evaluated;
    (reports, pcrs, entries_evaluated)
}

/// The chaos scenario corpus is wire-format invariant: round reports,
/// replayed PCR values and the entries_evaluated counter are
/// bit-identical whether quotes travel as text or typed entries.
#[test]
fn chaos_corpus_is_wire_format_invariant() {
    let (text_reports, text_pcrs, text_entries) = run_chaos_corpus(false);
    let (typed_reports, typed_pcrs, typed_entries) = run_chaos_corpus(true);
    assert_eq!(text_reports, typed_reports);
    assert_eq!(text_pcrs, typed_pcrs);
    assert_eq!(text_entries, typed_entries);
    // The corpus is non-trivial: faults actually fired and at least one
    // failure outcome exists among the reports.
    assert!(text_reports.iter().any(|r| r.failed_count() > 0));
    assert!(text_entries > 0);
}
