//! End-to-end attestation flows through registrar, verifier, transport
//! and agent, including the P2 stop-on-failure semantics.

use cia_crypto::HashAlgorithm;
use cia_keylime::{
    AgentId, AgentStatus, AttestationOutcome, Cluster, FailureKind, RuntimePolicy, VerifierConfig,
};
use cia_os::{ExecMethod, MachineConfig};
use cia_vfs::VfsPath;

fn p(s: &str) -> VfsPath {
    VfsPath::new(s).unwrap()
}

/// A cluster with one machine and a policy covering `/usr/bin/good`.
fn one_node(config: VerifierConfig) -> (Cluster, AgentId, RuntimePolicy) {
    let mut cluster = Cluster::new(7, config);
    let mut policy = RuntimePolicy::new();
    policy.exclude("/tmp");

    let id = cluster
        .add_machine(MachineConfig::default(), RuntimePolicy::new())
        .unwrap();
    // Create the known-good binary and record its digest in the policy.
    {
        let m = cluster.agent_mut(&id).unwrap().machine_mut();
        m.write_executable(&p("/usr/bin/good"), b"known good binary")
            .unwrap();
        let digest = m
            .vfs
            .file_digest(&p("/usr/bin/good"), HashAlgorithm::Sha256)
            .unwrap();
        policy.allow("/usr/bin/good", digest.to_hex());
    }
    cluster.verifier.update_policy(&id, policy.clone()).unwrap();
    (cluster, id, policy)
}

#[test]
fn clean_machine_attests_repeatedly() {
    let (mut cluster, id, _) = one_node(VerifierConfig::default());
    for _ in 0..5 {
        assert!(cluster.attest(&id).unwrap().is_verified());
    }
    assert_eq!(cluster.verifier.attestation_count(&id).unwrap(), 5);
}

#[test]
fn allowed_execution_passes() {
    let (mut cluster, id, _) = one_node(VerifierConfig::default());
    cluster
        .agent_mut(&id)
        .unwrap()
        .machine_mut()
        .exec(&p("/usr/bin/good"), ExecMethod::Direct)
        .unwrap();
    match cluster.attest(&id).unwrap() {
        AttestationOutcome::Verified { new_entries } => {
            // boot_aggregate + the good binary.
            assert_eq!(new_entries, 2);
        }
        other => panic!("unexpected {other:?}"),
    }
}

#[test]
fn unknown_executable_raises_not_in_policy() {
    let (mut cluster, id, _) = one_node(VerifierConfig::default());
    let m = cluster.agent_mut(&id).unwrap().machine_mut();
    m.write_executable(&p("/usr/bin/surprise"), b"not in policy")
        .unwrap();
    m.exec(&p("/usr/bin/surprise"), ExecMethod::Direct).unwrap();

    match cluster.attest(&id).unwrap() {
        AttestationOutcome::Failed { alerts } => {
            assert!(matches!(
                &alerts[0].kind,
                FailureKind::NotInPolicy { path, .. } if path == "/usr/bin/surprise"
            ));
        }
        other => panic!("unexpected {other:?}"),
    }
    assert_eq!(cluster.status(&id).unwrap(), AgentStatus::Paused);
}

#[test]
fn modified_binary_raises_hash_mismatch() {
    let (mut cluster, id, _) = one_node(VerifierConfig::default());
    let m = cluster.agent_mut(&id).unwrap().machine_mut();
    m.vfs
        .write_file(
            &p("/usr/bin/good"),
            b"TROJANED".to_vec(),
            cia_vfs::Mode::EXEC,
        )
        .unwrap();
    m.exec(&p("/usr/bin/good"), ExecMethod::Direct).unwrap();

    match cluster.attest(&id).unwrap() {
        AttestationOutcome::Failed { alerts } => {
            assert!(matches!(
                &alerts[0].kind,
                FailureKind::HashMismatch { path, .. } if path == "/usr/bin/good"
            ));
        }
        other => panic!("unexpected {other:?}"),
    }
}

#[test]
fn excluded_directory_never_alerts_p1() {
    let (mut cluster, id, _) = one_node(VerifierConfig::default());
    // /tmp is on ext4, so IMA measures it — but the policy excludes it.
    let m = cluster.agent_mut(&id).unwrap().machine_mut();
    m.write_executable(&p("/tmp/dropper"), b"malicious dropper")
        .unwrap();
    let report = m.exec(&p("/tmp/dropper"), ExecMethod::Direct).unwrap();
    assert!(!report.measured_paths.is_empty(), "IMA did measure it");

    assert!(
        cluster.attest(&id).unwrap().is_verified(),
        "Keylime skipped it (P1)"
    );
}

#[test]
fn p2_stop_on_failure_hides_later_entries() {
    let (mut cluster, id, _) = one_node(VerifierConfig::default());
    {
        let m = cluster.agent_mut(&id).unwrap().machine_mut();
        // Step 1: attacker triggers a benign false positive.
        m.write_executable(&p("/usr/bin/benign-unknown"), b"benign not in policy")
            .unwrap();
        m.exec(&p("/usr/bin/benign-unknown"), ExecMethod::Direct)
            .unwrap();
    }
    // Verifier pauses on the FP.
    assert!(matches!(
        cluster.attest(&id).unwrap(),
        AttestationOutcome::Failed { .. }
    ));
    assert_eq!(cluster.status(&id).unwrap(), AgentStatus::Paused);

    // Step 2: the actual attack runs while polling is paused.
    {
        let m = cluster.agent_mut(&id).unwrap().machine_mut();
        m.write_executable(&p("/usr/bin/rootkit"), b"actual attack")
            .unwrap();
        m.exec(&p("/usr/bin/rootkit"), ExecMethod::Direct).unwrap();
    }
    // Polling is paused: nothing is even requested.
    assert_eq!(
        cluster.attest(&id).unwrap(),
        AttestationOutcome::SkippedPaused
    );

    // Operator resumes without fixing the policy: the same FP re-fires,
    // the rootkit entry behind it still unevaluated.
    cluster.verifier.resume(&id).unwrap();
    match cluster.attest(&id).unwrap() {
        AttestationOutcome::Failed { alerts } => {
            assert_eq!(alerts.len(), 1, "only the first failing entry is seen");
            assert!(matches!(
                &alerts[0].kind,
                FailureKind::NotInPolicy { path, .. } if path == "/usr/bin/benign-unknown"
            ));
        }
        other => panic!("unexpected {other:?}"),
    }
    // No alert ever mentioned the rootkit.
    assert!(cluster
        .alerts(&id)
        .unwrap()
        .iter()
        .all(|a| !format!("{:?}", a.kind).contains("rootkit")));
}

#[test]
fn continue_on_failure_sees_everything() {
    let (mut cluster, id, _) = one_node(VerifierConfig {
        continue_on_failure: true,
        ..Default::default()
    });
    {
        let m = cluster.agent_mut(&id).unwrap().machine_mut();
        m.write_executable(&p("/usr/bin/benign-unknown"), b"benign not in policy")
            .unwrap();
        m.exec(&p("/usr/bin/benign-unknown"), ExecMethod::Direct)
            .unwrap();
        m.write_executable(&p("/usr/bin/rootkit"), b"actual attack")
            .unwrap();
        m.exec(&p("/usr/bin/rootkit"), ExecMethod::Direct).unwrap();
    }
    match cluster.attest(&id).unwrap() {
        AttestationOutcome::Failed { alerts } => {
            // BOTH the FP and the attack are reported (the P2 fix).
            assert_eq!(alerts.len(), 2);
            assert!(alerts.iter().any(
                |a| matches!(&a.kind, FailureKind::NotInPolicy { path, .. } if path == "/usr/bin/rootkit")
            ));
        }
        other => panic!("unexpected {other:?}"),
    }
    // Polling continues despite failures.
    assert!(matches!(
        cluster.attest(&id).unwrap(),
        AttestationOutcome::Verified { .. }
    ));
}

#[test]
fn reboot_restarts_attestation_cleanly() {
    let (mut cluster, id, _) = one_node(VerifierConfig::default());
    cluster
        .agent_mut(&id)
        .unwrap()
        .machine_mut()
        .exec(&p("/usr/bin/good"), ExecMethod::Direct)
        .unwrap();
    assert!(cluster.attest(&id).unwrap().is_verified());

    cluster
        .agent_mut(&id)
        .unwrap()
        .machine_mut()
        .reboot()
        .unwrap();
    // After reboot the log restarts; the verifier notices via boot_count
    // and re-verifies from scratch.
    match cluster.attest(&id).unwrap() {
        AttestationOutcome::Verified { new_entries } => assert_eq!(new_entries, 1),
        other => panic!("unexpected {other:?}"),
    }
}

#[test]
fn resolve_by_skipping_gives_the_attacker_a_window() {
    let (mut cluster, id, _) = one_node(VerifierConfig::default());
    {
        let m = cluster.agent_mut(&id).unwrap().machine_mut();
        m.write_executable(&p("/usr/bin/benign-unknown"), b"fp trigger")
            .unwrap();
        m.exec(&p("/usr/bin/benign-unknown"), ExecMethod::Direct)
            .unwrap();
    }
    assert!(matches!(
        cluster.attest(&id).unwrap(),
        AttestationOutcome::Failed { .. }
    ));
    // Attack executes while the operator is still investigating.
    {
        let m = cluster.agent_mut(&id).unwrap().machine_mut();
        m.write_executable(&p("/usr/bin/backdoor"), b"attack")
            .unwrap();
        m.exec(&p("/usr/bin/backdoor"), ExecMethod::Direct).unwrap();
    }
    // Operator "resolves" by skipping everything accumulated so far —
    // the backdoor execution is swallowed along with the FP.
    cluster.resolve(&id).unwrap();
    assert!(cluster.attest(&id).unwrap().is_verified());
    assert!(cluster
        .alerts(&id)
        .unwrap()
        .iter()
        .all(|a| !format!("{:?}", a.kind).contains("backdoor")));
}

#[test]
fn quote_forgery_detected() {
    // An agent whose TPM was re-keyed after registration (simulating AK
    // substitution) fails quote verification.
    let (mut cluster, id, _) = one_node(VerifierConfig::default());
    {
        let m = cluster.agent_mut(&id).unwrap().machine_mut();
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(1234);
        m.tpm.create_ak(&mut rng);
    }
    match cluster.attest(&id).unwrap() {
        AttestationOutcome::Failed { alerts } => {
            assert!(matches!(alerts[0].kind, FailureKind::QuoteInvalid));
        }
        other => panic!("unexpected {other:?}"),
    }
}

#[test]
fn multi_agent_cluster_attests_independently() {
    let mut cluster = Cluster::new(9, VerifierConfig::default());
    let mut ids = Vec::new();
    for i in 0..3 {
        let config = MachineConfig {
            hostname: format!("node-{i}"),
            seed: i as u64,
            ..MachineConfig::default()
        };
        ids.push(cluster.add_machine(config, RuntimePolicy::new()).unwrap());
    }
    // Compromise only node-1.
    {
        let m = cluster.agent_mut(&ids[1]).unwrap().machine_mut();
        m.write_executable(&p("/usr/bin/evil"), b"evil").unwrap();
        m.exec(&p("/usr/bin/evil"), ExecMethod::Direct).unwrap();
    }
    let outcomes = cluster.attest_all().unwrap();
    assert!(outcomes[0].1.is_verified());
    assert!(matches!(outcomes[1].1, AttestationOutcome::Failed { .. }));
    assert!(outcomes[2].1.is_verified());
}

#[test]
fn direct_pcr_tamper_is_a_pcr_mismatch() {
    // An attacker with kernel access extends PCR 10 directly (or the TPM
    // glitches): the log no longer replays to the quoted value.
    let (mut cluster, id, _) = one_node(VerifierConfig::default());
    {
        let m = cluster.agent_mut(&id).unwrap().machine_mut();
        m.tpm
            .pcr_extend(
                HashAlgorithm::Sha256,
                10,
                HashAlgorithm::Sha256.digest(b"out-of-band extend"),
            )
            .unwrap();
    }
    match cluster.attest(&id).unwrap() {
        AttestationOutcome::Failed { alerts } => {
            assert!(matches!(alerts[0].kind, FailureKind::PcrMismatch));
        }
        other => panic!("unexpected {other:?}"),
    }
    assert_eq!(cluster.status(&id).unwrap(), AgentStatus::Paused);
}

#[test]
fn policy_update_mid_stream_takes_effect() {
    // The dynamic-policy flow: a new binary alerts, the operator pushes a
    // policy containing it, the next poll passes.
    let (mut cluster, id, mut policy) = one_node(VerifierConfig::default());
    let new_tool = p("/usr/bin/new-tool");
    {
        let m = cluster.agent_mut(&id).unwrap().machine_mut();
        m.write_executable(&new_tool, b"new tool v1").unwrap();
        m.exec(&new_tool, ExecMethod::Direct).unwrap();
    }
    assert!(matches!(
        cluster.attest(&id).unwrap(),
        AttestationOutcome::Failed { .. }
    ));

    // Push the updated policy; resume; the pending entry now passes.
    let digest = cluster
        .agent(&id)
        .unwrap()
        .machine()
        .vfs
        .file_digest(&new_tool, HashAlgorithm::Sha256)
        .unwrap();
    policy.allow(new_tool.as_str(), digest.to_hex());
    cluster.verifier.update_policy(&id, policy).unwrap();
    cluster.verifier.resume(&id).unwrap();
    assert!(cluster.attest(&id).unwrap().is_verified());
}

#[test]
fn update_window_retains_both_digests() {
    // §III-C consistency: during the update window both the old and the
    // new digest of a rewritten binary are in policy, so a machine that
    // executes either version stays trusted.
    let (mut cluster, id, mut policy) = one_node(VerifierConfig::default());
    let good = p("/usr/bin/good");

    // Execute v1 (already in policy).
    cluster
        .agent_mut(&id)
        .unwrap()
        .machine_mut()
        .exec(&good, ExecMethod::Direct)
        .unwrap();
    assert!(cluster.attest(&id).unwrap().is_verified());

    // The generator appends v2's digest while RETAINING v1's.
    let v2 = b"known good binary v2".to_vec();
    policy.allow("/usr/bin/good", HashAlgorithm::Sha256.digest(&v2).to_hex());
    cluster.verifier.update_policy(&id, policy.clone()).unwrap();

    // The machine upgrades and re-runs the tool: v2 passes too.
    {
        let m = cluster.agent_mut(&id).unwrap().machine_mut();
        m.vfs.write_file(&good, v2, cia_vfs::Mode::EXEC).unwrap();
        m.exec(&good, ExecMethod::Direct).unwrap();
    }
    assert!(cluster.attest(&id).unwrap().is_verified());

    // Post-update dedup: only v2 remains; running a stale v1 now alerts.
    policy.dedup_retain(
        "/usr/bin/good",
        &HashAlgorithm::Sha256
            .digest(b"known good binary v2")
            .to_hex(),
    );
    cluster.verifier.update_policy(&id, policy).unwrap();
    {
        let m = cluster.agent_mut(&id).unwrap().machine_mut();
        m.vfs
            .write_file(&good, b"known good binary".to_vec(), cia_vfs::Mode::EXEC)
            .unwrap();
        m.exec(&good, ExecMethod::Direct).unwrap();
    }
    assert!(matches!(
        cluster.attest(&id).unwrap(),
        AttestationOutcome::Failed { .. }
    ));
}

#[test]
fn audit_chain_records_every_outcome() {
    use cia_keylime::{AuditLog, AuditOutcome};

    let (mut cluster, id, _) = one_node(VerifierConfig::default());
    assert!(cluster.attest(&id).unwrap().is_verified());
    {
        let m = cluster.agent_mut(&id).unwrap().machine_mut();
        m.write_executable(&p("/usr/bin/rogue"), b"rogue").unwrap();
        m.exec(&p("/usr/bin/rogue"), ExecMethod::Direct).unwrap();
    }
    let _ = cluster.attest(&id).unwrap(); // Failed
    let _ = cluster.attest(&id).unwrap(); // SkippedPaused

    let outcomes: Vec<AuditOutcome> = cluster.audit.records().iter().map(|r| r.outcome).collect();
    assert_eq!(
        outcomes,
        vec![
            AuditOutcome::Verified,
            AuditOutcome::Failed,
            AuditOutcome::Skipped
        ]
    );
    // The chain verifies offline against the anchored head.
    let head = cluster.audit.head().unwrap();
    AuditLog::verify_chain(
        cluster.audit.records(),
        cluster.audit.public_key(),
        Some(&head),
    )
    .unwrap();
}

#[test]
fn payload_released_only_after_clean_attestation() {
    let (mut cluster, id, _) = one_node(VerifierConfig::default());
    cluster
        .provision_payload(&id, b"bootstrap-credentials")
        .unwrap();

    // Before any attestation: no payload.
    assert_eq!(cluster.collect_payload(&id).unwrap(), None);

    // After a clean attestation: released and decryptable.
    assert!(cluster.attest(&id).unwrap().is_verified());
    assert_eq!(
        cluster.collect_payload(&id).unwrap().as_deref(),
        Some(&b"bootstrap-credentials"[..])
    );
}

#[test]
fn payload_withheld_from_failing_machine() {
    let (mut cluster, id, _) = one_node(VerifierConfig::default());
    cluster
        .provision_payload(&id, b"bootstrap-credentials")
        .unwrap();
    {
        let m = cluster.agent_mut(&id).unwrap().machine_mut();
        m.write_executable(&p("/usr/bin/implant"), b"implant")
            .unwrap();
        m.exec(&p("/usr/bin/implant"), ExecMethod::Direct).unwrap();
    }
    assert!(!cluster.attest(&id).unwrap().is_verified());
    // Compromised at first contact: the V share is never released.
    assert_eq!(cluster.collect_payload(&id).unwrap(), None);
}
