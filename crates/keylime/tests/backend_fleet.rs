//! Heterogeneous-fleet integration tests for the pluggable attestation
//! backends.
//!
//! One scheduler round mixes TPM+IMA machines, secure-world (TrustZone
//! shape) devices and confidential VMs; the verifier appraises each
//! against its registrar-proven backend family. The suite covers:
//!
//! - a mixed fleet verifying cleanly with per-backend report and metric
//!   splits that refine the aggregates;
//! - worker-count invariance and chaos-corpus replay equality for mixed
//!   fleets;
//! - a per-backend attack/evasion corpus (implants, unapproved trusted
//!   apps, the measured-prefix coverage gap, normal-world tampering,
//!   launch-image substitution, history rewrites, backend-tag
//!   substitution, disallowed families);
//! - the evidence-format negotiation consulting backend capabilities;
//! - a golden-model property test pinning the TPM+IMA appraisal to the
//!   documented pre-refactor semantics, step by step.

use cia_crypto::{Digest, HashAlgorithm, Sha256, VerifyingKey};
use cia_ima::{ImaLogEntry, MeasurementLog, BOOT_AGGREGATE_NAME};
use cia_keylime::{
    Agent, AgentId, AgentRequest, AgentResponse, AgentStatus, AttestationOutcome, BackendError,
    BackendKind, ChaosTransport, Cluster, ConfidentialVmConfig, FailureKind, FaultPlan,
    FaultTarget, MetricsSnapshot, PolicyCheck, ReliableTransport, RoundReport, RuntimePolicy,
    SecureWorldConfig, Transport, TransportError, VerifierConfig,
};
use cia_os::{ExecMethod, MachineConfig};
use cia_tpm::pcr::extend_digest;
use cia_vfs::VfsPath;
use proptest::prelude::*;
use serde::de::DeserializeOwned;
use serde::Serialize;

fn p(s: &str) -> VfsPath {
    VfsPath::new(s).unwrap()
}

const TA_PATH: &str = "/ta/keymaster";
const TA_CONTENT: &[u8] = b"trusted keymaster applet";
const CVM_SVC_PATH: &str = "/opt/svc/agentd";
const CVM_SVC_CONTENT: &[u8] = b"confidential service daemon";
const TPM_TOOL_PATH: &str = "/usr/bin/tool";
const TPM_TOOL_CONTENT: &[u8] = b"fleet-approved tool";

/// Agent ids of one mixed fleet, by backend family.
struct MixedFleet {
    tpm: Vec<AgentId>,
    sw: Vec<AgentId>,
    cvm: Vec<AgentId>,
}

impl MixedFleet {
    fn all(&self) -> impl Iterator<Item = &AgentId> {
        self.tpm.iter().chain(self.sw.iter()).chain(self.cvm.iter())
    }
}

/// Enrols `n` agents of each backend family with per-family policies
/// that cover the clean workload below.
fn enroll_mixed<T: Transport>(cluster: &mut Cluster<T>, n: usize) -> MixedFleet {
    let mut fleet = MixedFleet {
        tpm: Vec::new(),
        sw: Vec::new(),
        cvm: Vec::new(),
    };

    let mut sw_policy = RuntimePolicy::new();
    sw_policy.allow(TA_PATH, HashAlgorithm::Sha256.digest(TA_CONTENT).to_hex());
    let mut cvm_policy = RuntimePolicy::new();
    cvm_policy.allow(
        CVM_SVC_PATH,
        HashAlgorithm::Sha256.digest(CVM_SVC_CONTENT).to_hex(),
    );

    for i in 0..n {
        let machine = MachineConfig {
            hostname: format!("tpm-{i:02}"),
            seed: 100 + i as u64,
            ..MachineConfig::default()
        };
        let id = cluster.add_machine(machine, RuntimePolicy::new()).unwrap();
        let mut policy = RuntimePolicy::new();
        policy.exclude("/tmp");
        {
            let m = cluster.agent_mut(&id).unwrap().machine_mut();
            m.write_executable(&p(TPM_TOOL_PATH), TPM_TOOL_CONTENT)
                .unwrap();
            let digest = m
                .vfs
                .file_digest(&p(TPM_TOOL_PATH), HashAlgorithm::Sha256)
                .unwrap();
            policy.allow(TPM_TOOL_PATH, digest.to_hex());
        }
        cluster.verifier.update_policy(&id, policy).unwrap();
        fleet.tpm.push(id);

        let id = cluster
            .add_secure_world(
                SecureWorldConfig::new(format!("sw-{i:02}"), 200 + i as u64),
                sw_policy.clone(),
            )
            .unwrap();
        fleet.sw.push(id);

        let id = cluster
            .add_confidential_vm(
                ConfidentialVmConfig::new(format!("cvm-{i:02}"), 300 + i as u64),
                cvm_policy.clone(),
            )
            .unwrap();
        fleet.cvm.push(id);
    }
    fleet
}

/// Clean activity on every agent: the approved binary, trusted app and
/// measured service each family's policy covers.
fn run_clean_workload<T: Transport>(cluster: &mut Cluster<T>, fleet: &MixedFleet) {
    for id in &fleet.tpm {
        let m = cluster.agent_mut(id).unwrap().machine_mut();
        m.exec(&p(TPM_TOOL_PATH), ExecMethod::Direct).unwrap();
    }
    for id in &fleet.sw {
        let sw = cluster
            .agent_mut(id)
            .unwrap()
            .backend_mut()
            .as_secure_world_mut()
            .unwrap();
        assert!(sw.load_trusted_app(TA_PATH, TA_CONTENT), "covered load");
    }
    for id in &fleet.cvm {
        let cvm = cluster
            .agent_mut(id)
            .unwrap()
            .backend_mut()
            .as_confidential_vm_mut()
            .unwrap();
        cvm.exec_measured(CVM_SVC_PATH, CVM_SVC_CONTENT);
    }
}

fn alert_kinds(outcome: &AttestationOutcome) -> Vec<FailureKind> {
    match outcome {
        AttestationOutcome::Failed { alerts } => alerts.iter().map(|a| a.kind.clone()).collect(),
        _ => Vec::new(),
    }
}

/// A clean mixed round: every backend family verifies, and both the
/// round report and the metrics snapshot split correctly per backend.
#[test]
fn mixed_fleet_round_verifies_every_backend() {
    let config = VerifierConfig::builder().worker_count(3).build().unwrap();
    let mut cluster = Cluster::new(71, config);
    let fleet = enroll_mixed(&mut cluster, 2);
    run_clean_workload(&mut cluster, &fleet);

    let report = cluster.attest_fleet();
    assert_eq!(report.results.len(), 6);
    assert!(report.all_reached());
    assert_eq!(report.verified_count(), 6);
    for kind in BackendKind::ALL {
        assert_eq!(report.backend_count(kind), 2, "{kind:?} population");
        assert_eq!(report.verified_count_for(kind), 2, "{kind:?} verified");
        assert_eq!(report.failed_count_for(kind), 0, "{kind:?} failed");
    }
    // Each result carries the registrar-proven family.
    for id in &fleet.sw {
        let result = report.results.iter().find(|r| &r.id == id).unwrap();
        assert_eq!(result.backend, BackendKind::SecureWorld);
    }
    for id in &fleet.cvm {
        let result = report.results.iter().find(|r| &r.id == id).unwrap();
        assert_eq!(result.backend, BackendKind::ConfidentialVm);
    }

    let snapshot = cluster.scheduler.metrics().snapshot();
    assert!(snapshot.is_conserved());
    assert!(snapshot.backends_consistent());
    for kind in BackendKind::ALL {
        let counts = snapshot.per_backend.for_kind(kind);
        assert_eq!(counts.verified, 2, "{kind:?} verified split");
        assert_eq!(counts.failed, 0, "{kind:?} failed split");
        assert_eq!(counts.unreachable, 0, "{kind:?} unreachable split");
    }

    // The snapshot round-trips the per-backend split through the wire.
    let wire = serde_json::to_string(&snapshot).unwrap();
    let back: MetricsSnapshot = serde_json::from_str(&wire).unwrap();
    assert_eq!(back.per_backend, snapshot.per_backend);
}

/// Three mixed rounds (clean, attack, aftermath) under a given worker
/// count.
fn run_mixed_rounds(worker_count: usize) -> Vec<RoundReport> {
    let config = VerifierConfig::builder()
        .worker_count(worker_count)
        .build()
        .unwrap();
    let mut cluster = Cluster::new(73, config);
    let fleet = enroll_mixed(&mut cluster, 2);

    let mut reports = Vec::new();
    run_clean_workload(&mut cluster, &fleet);
    reports.push(cluster.attest_fleet());

    // Round 2: one confidential VM relaunches from a tampered image.
    {
        let cvm = cluster
            .agent_mut(&fleet.cvm[0])
            .unwrap()
            .backend_mut()
            .as_confidential_vm_mut()
            .unwrap();
        cvm.relaunch_with_image(b"tampered guest image");
    }
    reports.push(cluster.attest_fleet());
    reports.push(cluster.attest_fleet());
    reports
}

/// The mixed-fleet round reports — outcomes, per-backend tags, attempt
/// counts — are identical under any worker count, and the mid-corpus
/// launch-substitution attack is detected in all of them.
#[test]
fn mixed_fleet_reports_are_worker_count_invariant() {
    let baseline = run_mixed_rounds(1);
    for workers in [2, 4, 8] {
        assert_eq!(baseline, run_mixed_rounds(workers), "workers={workers}");
    }
    assert_eq!(baseline[0].verified_count(), 6);
    assert_eq!(baseline[1].failed_count_for(BackendKind::ConfidentialVm), 1);
    assert_eq!(baseline[1].verified_count_for(BackendKind::TpmIma), 2);
    assert_eq!(baseline[1].verified_count_for(BackendKind::SecureWorld), 2);
}

/// TPM+IMA family: an implant executed on one machine is flagged as
/// NotInPolicy; the rest of the mixed fleet stays trusted.
#[test]
fn tpm_ima_implant_exec_is_detected() {
    let mut cluster = Cluster::new(77, VerifierConfig::default());
    let fleet = enroll_mixed(&mut cluster, 1);
    run_clean_workload(&mut cluster, &fleet);
    {
        let m = cluster.agent_mut(&fleet.tpm[0]).unwrap().machine_mut();
        m.write_executable(&p("/usr/bin/implant"), b"dropped implant")
            .unwrap();
        m.exec(&p("/usr/bin/implant"), ExecMethod::Direct).unwrap();
    }
    let outcome = cluster.attest(&fleet.tpm[0]).unwrap();
    assert!(
        alert_kinds(&outcome).iter().any(
            |k| matches!(k, FailureKind::NotInPolicy { path, .. } if path == "/usr/bin/implant")
        ),
        "implant must surface as NotInPolicy: {outcome:?}"
    );
    assert!(cluster.attest(&fleet.sw[0]).unwrap().is_verified());
    assert!(cluster.attest(&fleet.cvm[0]).unwrap().is_verified());
}

/// Secure world: an unapproved trusted app lands inside the measured
/// prefix, so the in-world agent measures it and the verifier flags it.
#[test]
fn secure_world_unapproved_app_is_detected() {
    let mut cluster = Cluster::new(79, VerifierConfig::default());
    let fleet = enroll_mixed(&mut cluster, 1);
    let id = &fleet.sw[0];
    {
        let sw = cluster
            .agent_mut(id)
            .unwrap()
            .backend_mut()
            .as_secure_world_mut()
            .unwrap();
        assert!(sw.load_trusted_app("/ta/evil", b"rogue applet"));
    }
    let outcome = cluster.attest(id).unwrap();
    assert!(
        alert_kinds(&outcome)
            .iter()
            .any(|k| matches!(k, FailureKind::NotInPolicy { path, .. } if path == "/ta/evil")),
        "unapproved TA must surface as NotInPolicy: {outcome:?}"
    );
    assert_eq!(cluster.status(id).unwrap(), AgentStatus::Paused);
}

/// Secure world, the paper's policy-coverage gap: a load outside the
/// measured prefixes produces no measurement at all, so attestation
/// keeps verifying — the evasion surface is the measurement policy, not
/// the appraisal.
#[test]
fn secure_world_unmeasured_load_evades_attestation() {
    let mut cluster = Cluster::new(83, VerifierConfig::default());
    let fleet = enroll_mixed(&mut cluster, 1);
    let id = &fleet.sw[0];
    {
        let sw = cluster
            .agent_mut(id)
            .unwrap()
            .backend_mut()
            .as_secure_world_mut()
            .unwrap();
        assert!(sw.load_trusted_app(TA_PATH, TA_CONTENT));
        let before = sw.measured_count();
        assert!(
            !sw.load_trusted_app("/vendor/firmware/blob", b"unmeasured payload"),
            "load outside the measured prefixes is not covered"
        );
        assert_eq!(sw.measured_count(), before, "no measurement recorded");
    }
    // The verifier has nothing to appraise: the agent stays trusted.
    assert!(cluster.attest(id).unwrap().is_verified());
    assert_eq!(cluster.status(id).unwrap(), AgentStatus::Trusted);
}

/// Secure world: the normal world cannot reach the measurement state —
/// the world-switch gate only exposes typed entry points.
#[test]
fn secure_world_state_is_gated_from_normal_world() {
    let mut cluster = Cluster::new(89, VerifierConfig::default());
    let fleet = enroll_mixed(&mut cluster, 1);
    let id = &fleet.sw[0];
    {
        let sw = cluster
            .agent_mut(id)
            .unwrap()
            .backend_mut()
            .as_secure_world_mut()
            .unwrap();
        assert!(sw.load_trusted_app(TA_PATH, TA_CONTENT));
        assert!(matches!(
            sw.tamper_from_normal_world(),
            Err(BackendError::Protected { .. })
        ));
    }
    assert!(cluster.attest(id).unwrap().is_verified());
}

/// Confidential VM: relaunching from a different image moves the quoted
/// launch register away from the enrolled pin — caught on the next poll.
#[test]
fn confidential_vm_relaunch_is_detected() {
    let mut cluster = Cluster::new(97, VerifierConfig::default());
    let fleet = enroll_mixed(&mut cluster, 1);
    let id = &fleet.cvm[0];
    assert!(cluster.attest(id).unwrap().is_verified());
    {
        let cvm = cluster
            .agent_mut(id)
            .unwrap()
            .backend_mut()
            .as_confidential_vm_mut()
            .unwrap();
        cvm.relaunch_with_image(b"attacker image");
    }
    let outcome = cluster.attest(id).unwrap();
    assert!(
        alert_kinds(&outcome)
            .iter()
            .any(|k| matches!(k, FailureKind::LaunchMeasurementMismatch)),
        "image substitution must surface as a launch mismatch: {outcome:?}"
    );
    assert_eq!(cluster.status(id).unwrap(), AgentStatus::Paused);
}

/// Confidential VM: the workload cannot rewrite the enforcement agent's
/// history — the privilege separation holds and attestation continues.
#[test]
fn confidential_vm_history_rewrite_is_blocked() {
    let mut cluster = Cluster::new(101, VerifierConfig::default());
    let fleet = enroll_mixed(&mut cluster, 1);
    let id = &fleet.cvm[0];
    {
        let cvm = cluster
            .agent_mut(id)
            .unwrap()
            .backend_mut()
            .as_confidential_vm_mut()
            .unwrap();
        cvm.exec_measured(CVM_SVC_PATH, CVM_SVC_CONTENT);
        assert!(matches!(
            cvm.try_rewrite_history(),
            Err(BackendError::Protected { .. })
        ));
    }
    assert!(cluster.attest(id).unwrap().is_verified());
    assert!(cluster.attest(id).unwrap().is_verified());
}

/// A transport that rewrites the evidence's backend tag in flight — the
/// substitution the verifier must catch against its enrolment record.
struct BackendRewritingTransport;

impl Transport for BackendRewritingTransport {
    fn call<Req, Resp>(
        &mut self,
        request: &Req,
        serve: impl FnOnce(Req) -> Resp,
    ) -> Result<Resp, TransportError>
    where
        Req: Serialize + DeserializeOwned,
        Resp: Serialize + DeserializeOwned,
    {
        let codec = |e: serde_json::Error| TransportError::Codec {
            reason: e.to_string(),
        };
        let wire_req = serde_json::to_string(request).map_err(codec)?;
        let decoded: Req = serde_json::from_str(&wire_req).map_err(codec)?;
        let response = serve(decoded);
        let wire_resp = serde_json::to_string(&response).map_err(codec)?;
        let tampered = wire_resp.replace("\"backend\":\"TpmIma\"", "\"backend\":\"SecureWorld\"");
        serde_json::from_str(&tampered).map_err(codec)
    }

    fn requests(&self) -> u64 {
        0
    }

    fn drops(&self) -> u64 {
        0
    }

    fn wire_bytes(&self) -> u64 {
        0
    }

    fn fork(&self, _lane: u64) -> Self {
        BackendRewritingTransport
    }
}

/// The backend tag on the wire is untrusted metadata: when it disagrees
/// with the registrar-proven family, the verifier rejects the evidence
/// as a substitution attempt.
#[test]
fn backend_tag_substitution_is_detected() {
    let mut cluster =
        Cluster::with_transport(103, VerifierConfig::default(), BackendRewritingTransport);
    let id = cluster
        .add_machine(MachineConfig::default(), RuntimePolicy::new())
        .unwrap();
    let outcome = cluster.attest(&id).unwrap();
    assert!(
        alert_kinds(&outcome).iter().any(|k| matches!(
            k,
            FailureKind::BackendMismatch {
                expected: BackendKind::TpmIma,
                reported: BackendKind::SecureWorld,
            }
        )),
        "tag rewrite must surface as BackendMismatch: {outcome:?}"
    );
    assert_eq!(cluster.status(&id).unwrap(), AgentStatus::Paused);
}

/// Narrowing `allowed_backends` rejects whole families at appraisal
/// time, before any evidence is trusted.
#[test]
fn disallowed_backend_family_is_rejected() {
    let config = VerifierConfig::builder()
        .only_backend(BackendKind::TpmIma)
        .build()
        .unwrap();
    let mut cluster = Cluster::new(107, config);
    let fleet = enroll_mixed(&mut cluster, 1);

    assert!(cluster.attest(&fleet.tpm[0]).unwrap().is_verified());
    let outcome = cluster.attest(&fleet.sw[0]).unwrap();
    assert!(
        alert_kinds(&outcome).iter().any(|k| matches!(
            k,
            FailureKind::BackendNotAllowed {
                backend: BackendKind::SecureWorld,
            }
        )),
        "disallowed family must surface as BackendNotAllowed: {outcome:?}"
    );
    assert_eq!(cluster.status(&fleet.sw[0]).unwrap(), AgentStatus::Paused);
}

/// The structured-excerpt negotiation consults backend capabilities: a
/// verifier configured for typed excerpts falls back to text against a
/// text-only backend instead of sending a request it cannot serve,
/// while capability-complete backends still get the typed path.
#[test]
fn capability_limited_backend_negotiates_text_excerpt() {
    let config = VerifierConfig::builder()
        .structured_excerpt(true)
        .build()
        .unwrap();
    let mut cluster = Cluster::new(109, config);
    let fleet = enroll_mixed(&mut cluster, 1);
    run_clean_workload(&mut cluster, &fleet);

    // The text-only secure world verifies: the verifier downgraded to
    // text for it rather than demanding the typed format.
    assert!(cluster.attest(&fleet.sw[0]).unwrap().is_verified());
    assert!(cluster.attest(&fleet.sw[0]).unwrap().is_verified());

    // Demanding the typed format directly is a backend error — which is
    // exactly what the negotiation exists to avoid.
    let response = cluster
        .agent_mut(&fleet.sw[0])
        .unwrap()
        .handle(AgentRequest::Quote {
            nonce: vec![9; 32],
            from_entry: 0,
            structured: true,
        });
    assert!(
        matches!(response, AgentResponse::Error { .. }),
        "text-only backend must refuse structured requests: {response:?}"
    );

    // A capability-complete backend on the same cluster still serves the
    // typed path.
    let response = cluster
        .agent_mut(&fleet.tpm[0])
        .unwrap()
        .handle(AgentRequest::Quote {
            nonce: vec![9; 32],
            from_entry: 0,
            structured: true,
        });
    match response {
        AgentResponse::Quote(q) => assert!(q.entries().is_some(), "typed entries present"),
        other => panic!("unexpected response {other:?}"),
    }
}

/// Runs a six-round mixed-backend chaos corpus (loss + partition, a
/// mid-corpus attack on each family's surface, a secure-world restart)
/// and returns the reports plus the final per-agent replayed registers.
fn run_mixed_chaos(
    worker_count: usize,
) -> (Vec<RoundReport>, Vec<(AgentId, Digest)>, MetricsSnapshot) {
    let config = VerifierConfig::builder()
        .continue_on_failure(true)
        .max_retries(6)
        .retry_backoff_ms(5)
        .worker_count(worker_count)
        .structured_excerpt(true)
        .build()
        .unwrap();
    let plan = FaultPlan::new(31)
        .loss(1..3, FaultTarget::AllAgents, 0.3)
        .partition(3..4, FaultTarget::lanes([2]));
    let transport = ChaosTransport::new(ReliableTransport::new(), plan);
    let mut cluster = Cluster::with_transport(113, config, transport);
    let fleet = enroll_mixed(&mut cluster, 2);

    let mut reports = Vec::new();
    for round in 0..6u64 {
        cluster.transport.set_round(round);
        if round == 2 {
            // One attack per family surface, plus clean activity.
            run_clean_workload(&mut cluster, &fleet);
            let sw = cluster
                .agent_mut(&fleet.sw[1])
                .unwrap()
                .backend_mut()
                .as_secure_world_mut()
                .unwrap();
            assert!(sw.load_trusted_app("/ta/backdoor", b"rogue applet"));
            let cvm = cluster
                .agent_mut(&fleet.cvm[1])
                .unwrap()
                .backend_mut()
                .as_confidential_vm_mut()
                .unwrap();
            cvm.relaunch_with_image(b"attacker image");
        }
        if round == 4 {
            // A secure-world device restarts: its measurement register
            // resets and the verifier re-appraises from entry zero.
            cluster.agent_mut(&fleet.sw[0]).unwrap().restart().unwrap();
        }
        reports.push(cluster.attest_fleet());
    }

    let pcrs = fleet
        .all()
        .map(|id| (id.clone(), cluster.verifier.replayed_pcr(id).unwrap()))
        .collect();
    let snapshot = cluster.scheduler.metrics().snapshot();
    (reports, pcrs, snapshot)
}

/// The mixed-backend chaos corpus replays bit-identically under any
/// worker count: reports, final replayed registers, and the per-backend
/// metric splits all agree, the splits stay consistent with the
/// aggregates, and both injected attacks are detected.
#[test]
fn mixed_backend_chaos_corpus_is_replay_equal() {
    let (reports, pcrs, snapshot) = run_mixed_chaos(1);
    for workers in [3, 8] {
        let (r, p, s) = run_mixed_chaos(workers);
        assert_eq!(reports, r, "reports diverged at workers={workers}");
        assert_eq!(pcrs, p, "replayed registers diverged at workers={workers}");
        assert_eq!(
            snapshot.per_backend, s.per_backend,
            "per-backend splits diverged at workers={workers}"
        );
    }
    assert!(snapshot.is_conserved());
    assert!(snapshot.backends_consistent());
    // Both injected attacks surfaced in some round's per-backend split.
    assert!(reports
        .iter()
        .any(|r| r.failed_count_for(BackendKind::SecureWorld) >= 1));
    assert!(reports
        .iter()
        .any(|r| r.failed_count_for(BackendKind::ConfidentialVm) >= 1));
    // Faults actually fired: somebody was unreachable at some point.
    assert!(reports.iter().any(|r| r.unreachable_count() > 0));
}

// ---------------------------------------------------------------------------
// Golden-model equivalence: the TPM+IMA appraisal behind the backend
// trait is bit-identical to the documented pre-refactor pipeline.
// ---------------------------------------------------------------------------

/// A from-scratch reimplementation of the pre-refactor TPM+IMA
/// appraisal: quote signature and nonce, rewind detection, excerpt
/// parse, PCR-10 replay, boot_aggregate against quoted PCRs 0–9, then
/// the per-entry policy walk with stop-on-failure prefix semantics.
/// Kept deliberately independent of the verifier's code paths.
struct ReferenceVerifier {
    ak: VerifyingKey,
    policy: RuntimePolicy,
    next_entry: usize,
    replayed_pcr: Digest,
    last_boot_count: Option<u64>,
    status: AgentStatus,
    nonce_counter: u64,
    continue_on_failure: bool,
    structured: bool,
}

#[derive(Debug, PartialEq)]
enum ReferenceOutcome {
    Skipped,
    Verified { new_entries: usize },
    Failed { kinds: Vec<FailureKind> },
}

impl ReferenceVerifier {
    fn new(
        ak: VerifyingKey,
        policy: RuntimePolicy,
        continue_on_failure: bool,
        structured: bool,
    ) -> Self {
        ReferenceVerifier {
            ak,
            policy,
            next_entry: 0,
            replayed_pcr: HashAlgorithm::Sha256.zero_digest(),
            last_boot_count: None,
            status: AgentStatus::Trusted,
            nonce_counter: 0,
            continue_on_failure,
            structured,
        }
    }

    fn fail(&mut self, kinds: Vec<FailureKind>) -> ReferenceOutcome {
        self.status = AgentStatus::Paused;
        ReferenceOutcome::Failed { kinds }
    }

    fn attest(&mut self, agent: &mut Agent) -> ReferenceOutcome {
        if self.status == AgentStatus::Paused && !self.continue_on_failure {
            return ReferenceOutcome::Skipped;
        }
        let mut nonce = vec![0xabu8; 24];
        nonce.extend_from_slice(&self.nonce_counter.to_be_bytes());
        self.nonce_counter += 1;

        let resp = match agent.handle(AgentRequest::Quote {
            nonce: nonce.clone(),
            from_entry: self.next_entry,
            structured: self.structured,
        }) {
            AgentResponse::Quote(q) => q,
            other => panic!("unexpected response {other:?}"),
        };

        // The scripted workload never reboots, so the reboot path (fresh
        // re-quote from entry zero) must never trigger.
        if let Some(last) = self.last_boot_count {
            assert_eq!(last, resp.boot_count(), "no reboots in the script");
        }

        if !resp.quote().verify(&self.ak, &nonce) {
            return self.fail(vec![FailureKind::QuoteInvalid]);
        }
        if resp.total_entries() < self.next_entry {
            return self.fail(vec![FailureKind::LogRewound]);
        }

        let parsed_text;
        let entries: &[ImaLogEntry] = match resp.entries() {
            Some(typed) => typed,
            None => match MeasurementLog::parse(resp.log_excerpt()) {
                Ok(log) => {
                    parsed_text = log;
                    parsed_text.entries()
                }
                Err(e) => {
                    let reason = e.to_string();
                    return self.fail(vec![FailureKind::LogParse { reason }]);
                }
            },
        };

        let mut full_fold = self.replayed_pcr;
        for entry in entries {
            full_fold = extend_digest(
                HashAlgorithm::Sha256,
                full_fold,
                entry.template_hash(HashAlgorithm::Sha256),
            );
        }
        if resp.quote().pcr_value(10) != Some(full_fold) {
            return self.fail(vec![FailureKind::PcrMismatch]);
        }

        let mut kinds = Vec::new();
        let mut processed = 0usize;
        for (offset, entry) in entries.iter().enumerate() {
            let absolute_index = self.next_entry + offset;
            let verdict = if absolute_index == 0 && entry.path == BOOT_AGGREGATE_NAME {
                let mut h = Sha256::new();
                for pcr in 0..=9u8 {
                    if let Some(v) = resp.quote().pcr_value(pcr) {
                        h.update(v.as_bytes());
                    }
                }
                if h.finalize() == entry.filedata_hash {
                    None
                } else {
                    Some(FailureKind::BootAggregateMismatch)
                }
            } else {
                match self.policy.check_digest(&entry.path, &entry.filedata_hash) {
                    PolicyCheck::Allowed | PolicyCheck::Excluded => None,
                    PolicyCheck::HashMismatch { .. } => Some(FailureKind::HashMismatch {
                        path: entry.path.clone(),
                        digest: entry.filedata_hash.to_hex(),
                    }),
                    PolicyCheck::NotInPolicy => Some(FailureKind::NotInPolicy {
                        path: entry.path.clone(),
                        digest: entry.filedata_hash.to_hex(),
                    }),
                }
            };

            if let Some(kind) = verdict {
                kinds.push(kind);
                if !self.continue_on_failure {
                    for accepted in &entries[..processed] {
                        self.replayed_pcr = extend_digest(
                            HashAlgorithm::Sha256,
                            self.replayed_pcr,
                            accepted.template_hash(HashAlgorithm::Sha256),
                        );
                    }
                    self.next_entry += processed;
                    self.last_boot_count = Some(resp.boot_count());
                    return self.fail(kinds);
                }
            }
            processed += 1;
        }

        self.replayed_pcr = full_fold;
        self.next_entry += processed;
        self.last_boot_count = Some(resp.boot_count());
        if kinds.is_empty() {
            self.status = AgentStatus::Trusted;
            ReferenceOutcome::Verified {
                new_entries: processed,
            }
        } else {
            ReferenceOutcome::Failed { kinds }
        }
    }
}

/// One scripted action on the TPM+IMA machine between polls.
#[derive(Debug, Clone)]
enum Op {
    /// Execute one of the pre-approved binaries.
    ExecAllowed(usize),
    /// Drop and execute a binary the policy does not know.
    ExecUnknown,
    /// Drop and execute a scratch file under the excluded /tmp.
    ExecExcluded,
    /// Write a file without executing it (no measurement).
    WriteOnly,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0usize..3).prop_map(Op::ExecAllowed),
        Just(Op::ExecUnknown),
        Just(Op::ExecExcluded),
        Just(Op::WriteOnly),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// For any scripted workload, both failure policies and both wire
    /// formats: the production verifier's outcome kinds, agent status,
    /// and replayed PCR agree round by round with the independent
    /// reference model — the backend refactor changed no appraisal bit.
    #[test]
    fn tpm_ima_appraisal_matches_reference_model(
        script in proptest::collection::vec(
            proptest::collection::vec(op_strategy(), 0..4),
            1..5,
        ),
        seed in 0u64..1_000,
        continue_sel in 0u8..2,
        structured_sel in 0u8..2,
    ) {
        let continue_on_failure = continue_sel == 1;
        let structured = structured_sel == 1;
        let config = VerifierConfig::builder()
            .continue_on_failure(continue_on_failure)
            .structured_excerpt(structured)
            .build()
            .unwrap();
        let mut cluster = Cluster::new(seed, config);
        let id = cluster
            .add_machine(MachineConfig::default(), RuntimePolicy::new())
            .unwrap();

        let mut policy = RuntimePolicy::new();
        policy.exclude("/tmp");
        let mut allowed = Vec::new();
        {
            let m = cluster.agent_mut(&id).unwrap().machine_mut();
            for i in 0..3 {
                let path = format!("/usr/bin/approved{i}");
                m.write_executable(&p(&path), format!("approved binary {i}").as_bytes())
                    .unwrap();
                let digest = m.vfs.file_digest(&p(&path), HashAlgorithm::Sha256).unwrap();
                policy.allow(path.clone(), digest.to_hex());
                allowed.push(path);
            }
        }
        cluster.verifier.update_policy(&id, policy.clone()).unwrap();

        let ak = cluster.registrar.record_for(&id).unwrap().ak.clone();
        let mut reference = ReferenceVerifier::new(ak, policy, continue_on_failure, structured);

        let mut unique = 0usize;
        for round_ops in &script {
            for op in round_ops {
                let m = cluster.agent_mut(&id).unwrap().machine_mut();
                match op {
                    Op::ExecAllowed(i) => {
                        m.exec(&p(&allowed[*i]), ExecMethod::Direct).unwrap();
                    }
                    Op::ExecUnknown => {
                        let path = format!("/usr/bin/rogue{unique}");
                        unique += 1;
                        m.write_executable(&p(&path), b"unknown payload").unwrap();
                        m.exec(&p(&path), ExecMethod::Direct).unwrap();
                    }
                    Op::ExecExcluded => {
                        let path = format!("/tmp/scratch{unique}");
                        unique += 1;
                        m.write_executable(&p(&path), b"scratch job").unwrap();
                        m.exec(&p(&path), ExecMethod::Direct).unwrap();
                    }
                    Op::WriteOnly => {
                        let path = format!("/var/data/file{unique}");
                        unique += 1;
                        m.write_executable(&p(&path), b"inert data").unwrap();
                    }
                }
            }

            let outcome = cluster.attest(&id).unwrap();
            let expected = reference.attest(cluster.agent_mut(&id).unwrap());
            match (&outcome, &expected) {
                (AttestationOutcome::SkippedPaused, ReferenceOutcome::Skipped) => {}
                (
                    AttestationOutcome::Verified { new_entries },
                    ReferenceOutcome::Verified { new_entries: expected_new },
                ) => prop_assert_eq!(new_entries, expected_new),
                (AttestationOutcome::Failed { .. }, ReferenceOutcome::Failed { kinds }) => {
                    prop_assert_eq!(&alert_kinds(&outcome), kinds);
                }
                (got, want) => prop_assert!(false, "outcome mismatch: got {got:?}, want {want:?}"),
            }
            prop_assert_eq!(cluster.status(&id).unwrap(), reference.status);
            prop_assert_eq!(
                cluster.verifier.replayed_pcr(&id).unwrap(),
                reference.replayed_pcr
            );
        }
    }
}
