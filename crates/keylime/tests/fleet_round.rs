//! Fleet-engine integration tests: a lossy concurrent round reaches
//! every agent, retries are visible in the metrics, and the whole
//! retry/backoff schedule is deterministic under a fixed seed.

use cia_keylime::{
    AgentId, Cluster, LossyTransport, RoundOutcome, RoundReport, RuntimePolicy, VerifierConfig,
};
use cia_os::MachineConfig;
use proptest::prelude::*;

fn lossy_fleet(
    size: u64,
    drop_rate: f64,
    seed: u64,
    config: VerifierConfig,
) -> Cluster<LossyTransport> {
    let transport = LossyTransport::new(drop_rate, seed);
    let mut cluster = Cluster::with_transport(seed ^ 0xf1ee7, config, transport);
    for i in 0..size {
        let machine = MachineConfig {
            hostname: format!("fleet-{i:04}"),
            seed: i,
            ..MachineConfig::default()
        };
        cluster
            .add_machine(machine, RuntimePolicy::new())
            .expect("enrolment retries through the lossy transport");
    }
    cluster
}

fn engine_config() -> VerifierConfig {
    VerifierConfig::builder()
        .continue_on_failure(true)
        .max_retries(16)
        .retry_backoff_ms(10)
        .max_backoff_ms(1_000)
        .worker_count(4)
        .build()
        .unwrap()
}

#[test]
fn lossy_round_reaches_every_agent_with_retries_in_metrics() {
    let mut cluster = lossy_fleet(40, 0.10, 11, engine_config());
    let report = cluster.attest_fleet();

    // Zero silent skips: one result per enrolled agent, all reached.
    assert_eq!(report.results.len(), 40);
    assert!(report.all_reached(), "{report:?}");
    for result in &report.results {
        assert!(
            matches!(result.outcome, RoundOutcome::Verified { .. }),
            "clean machine must verify: {result:?}"
        );
        assert!(result.attempts >= 1);
    }

    // 10% loss over ~40 calls makes retries overwhelmingly likely, and
    // every retry must surface in both the report and the registry.
    let snapshot = cluster.scheduler.snapshot();
    assert_eq!(snapshot.rounds, 1);
    assert_eq!(snapshot.verified, 40);
    assert_eq!(snapshot.unreachable, 0);
    assert!(
        snapshot.retries > 0,
        "no retries at 10% loss is implausible"
    );
    assert_eq!(snapshot.retries, report.total_retries());
    assert!(snapshot.calls >= 40 + snapshot.retries);
    assert!(snapshot.drops >= snapshot.retries);
    assert!(snapshot.backoff_ms > 0);
    assert!(snapshot.latency_ns_buckets.iter().sum::<u64>() >= snapshot.calls);

    // The audit chain durably records the whole round, in id order.
    assert_eq!(cluster.audit.len(), 40);
    let ids: Vec<&AgentId> = cluster.audit.records().iter().map(|r| &r.agent).collect();
    let mut sorted = ids.clone();
    sorted.sort();
    assert_eq!(ids, sorted);
}

#[test]
fn exhausted_retry_budget_reports_unreachable_not_silence() {
    // A transport that always drops: every agent must still be reported.
    let config = VerifierConfig::builder().max_retries(2).build().unwrap();
    let mut cluster = lossy_fleet(5, 0.0, 3, config);
    // Swap in a fully lossy transport after enrolment.
    cluster.transport = LossyTransport::new(1.0, 3);
    let report = cluster.attest_fleet();

    assert_eq!(report.results.len(), 5);
    assert_eq!(report.unreachable_count(), 5);
    for result in &report.results {
        assert!(matches!(result.outcome, RoundOutcome::Unreachable { .. }));
        // Budget fully spent: the first attempt plus max_retries.
        assert_eq!(result.attempts, 3);
    }
    let snapshot = cluster.scheduler.snapshot();
    assert_eq!(snapshot.unreachable, 5);
    assert_eq!(snapshot.verified, 0);
    // The audit chain records the unreachable outcomes too.
    assert_eq!(cluster.audit.len(), 5);
}

fn round_fingerprint(report: &RoundReport) -> Vec<(AgentId, u32, u64, bool)> {
    report
        .results
        .iter()
        .map(|r| {
            (
                r.id.clone(),
                r.attempts,
                r.backoff_ms,
                matches!(r.outcome, RoundOutcome::Verified { .. }),
            )
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Retry/backoff behaviour is a pure function of the transport seed:
    /// two identical fleets under the same seed and drop rate produce
    /// byte-identical per-agent attempt counts and backoff schedules,
    /// regardless of worker interleaving — and the schedule matches the
    /// config's exponential-doubling formula exactly.
    #[test]
    fn retry_backoff_is_deterministic_under_fixed_seed(
        seed in any::<u64>(),
        drop_pct in 0u32..45,
        workers in 1usize..6,
    ) {
        let config = VerifierConfig::builder()
            .continue_on_failure(true)
            .max_retries(24)
            .retry_backoff_ms(10)
            .max_backoff_ms(160)
            .worker_count(workers)
            .build()
            .unwrap();
        let drop_rate = f64::from(drop_pct) / 100.0;

        let mut first = lossy_fleet(6, drop_rate, seed, config);
        let mut second = lossy_fleet(6, drop_rate, seed, config);
        let report_a = first.attest_fleet();
        let report_b = second.attest_fleet();

        prop_assert_eq!(round_fingerprint(&report_a), round_fingerprint(&report_b));

        // The recorded backoff is exactly the configured schedule folded
        // over the attempts that failed.
        for result in &report_a.results {
            let expected: u64 = (1..result.attempts)
                .map(|a| config.backoff_for_attempt(a).as_millis() as u64)
                .sum();
            prop_assert_eq!(result.backoff_ms, expected);
        }

        // Aggregate metrics agree between the twin runs.
        let snap_a = first.scheduler.snapshot();
        let snap_b = second.scheduler.snapshot();
        prop_assert_eq!(snap_a.retries, snap_b.retries);
        prop_assert_eq!(snap_a.drops, snap_b.drops);
        prop_assert_eq!(snap_a.backoff_ms, snap_b.backoff_ms);
        prop_assert_eq!(snap_a.verified, snap_b.verified);
    }
}
