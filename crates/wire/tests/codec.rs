//! The codec robustness corpus: whatever bytes arrive — truncated,
//! torn across a frame boundary, or bit-flipped in flight — decode must
//! return a clean [`WireError`], never panic, and never misread.
//!
//! The strategy is the classic fuzz triad over a *valid* encoding:
//!
//! 1. **roundtrip** — every value encodes and decodes back to itself;
//! 2. **truncation** — every proper prefix fails with `Truncated`,
//!    `Closed`, or a length error (and `finish()` catches short reads);
//! 3. **corruption** — a single flipped bit anywhere in a frame is
//!    either caught by the CRC/magic check or, if it lands in the
//!    payload, surfaces as a decode error or a *different* value —
//!    never a crash.

use proptest::prelude::*;

use cia_wire::{
    crc32, frame, unframe, Reader, Wire, WireError, Writer, FRAME_HEADER_LEN, MAGIC, MAX_FRAME,
};

/// A small structured message exercising every primitive the codec
/// offers: fixed ints, varints, bools, bytes, strings, options, vecs.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Exemplar {
    tag: u8,
    flag: bool,
    fixed: u32,
    wide: u64,
    vari: u64,
    blob: Vec<u8>,
    name: String,
    maybe: Option<u64>,
    items: Vec<String>,
}

impl Wire for Exemplar {
    fn encode(&self, w: &mut Writer) {
        w.put_u8(self.tag);
        w.put_bool(self.flag);
        w.put_u32(self.fixed);
        w.put_u64(self.wide);
        w.put_varint(self.vari);
        w.put_bytes(&self.blob);
        w.put_str(&self.name);
        self.maybe.encode(w);
        self.items.encode(w);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(Exemplar {
            tag: r.u8()?,
            flag: r.bool()?,
            fixed: r.u32()?,
            wide: r.u64()?,
            vari: r.varint()?,
            blob: r.bytes()?.to_vec(),
            name: r.str()?.to_owned(),
            maybe: Option::<u64>::decode(r)?,
            items: Vec::<String>::decode(r)?,
        })
    }
}

fn exemplar(seed: u64, blob: Vec<u8>, name: String, items: Vec<String>) -> Exemplar {
    Exemplar {
        tag: (seed & 0xff) as u8,
        flag: seed & 1 == 1,
        fixed: (seed >> 8) as u32,
        wide: seed.wrapping_mul(0x9e37_79b9_7f4a_7c15),
        vari: seed >> 3,
        blob,
        name,
        maybe: seed.is_multiple_of(3).then_some(seed ^ 0xdead_beef),
        items,
    }
}

proptest! {
    /// Encode → decode is the identity, and the reader is fully drained.
    #[test]
    fn roundtrip_is_identity(
        seed in any::<u64>(),
        blob in proptest::collection::vec(any::<u8>(), 0..256),
        name in "[a-z/._-]{0,48}",
        items in proptest::collection::vec("[a-z0-9]{0,16}", 0..8),
    ) {
        let value = exemplar(seed, blob, name, items);
        let bytes = value.to_wire();
        let back = Exemplar::from_wire(&bytes).expect("roundtrip decodes");
        prop_assert_eq!(back, value);
    }

    /// Every proper prefix of a valid encoding fails cleanly — no
    /// panic, no silently-accepted partial value.
    #[test]
    fn every_truncation_errors_cleanly(
        seed in any::<u64>(),
        blob in proptest::collection::vec(any::<u8>(), 0..64),
        name in "[a-z]{0,24}",
    ) {
        let value = exemplar(seed, blob, name, vec!["x".into()]);
        let bytes = value.to_wire();
        for cut in 0..bytes.len() {
            prop_assert!(
                Exemplar::from_wire(&bytes[..cut]).is_err(),
                "prefix of {cut}/{} bytes must not decode",
                bytes.len()
            );
        }
    }

    /// Trailing garbage after a complete value is rejected (`from_wire`
    /// demands the buffer be fully consumed).
    #[test]
    fn trailing_bytes_are_rejected(
        seed in any::<u64>(),
        extra in proptest::collection::vec(any::<u8>(), 1..16),
    ) {
        let value = exemplar(seed, vec![1, 2, 3], "t".into(), Vec::new());
        let mut bytes = value.to_wire();
        bytes.extend_from_slice(&extra);
        prop_assert!(matches!(
            Exemplar::from_wire(&bytes),
            Err(WireError::TrailingBytes { .. })
        ));
    }

    /// Framed payloads survive the trip; every truncation of the frame
    /// errors; every single-bit flip in the header or payload is caught
    /// by magic/CRC/length validation — a torn or corrupted frame can
    /// never be mistaken for a healthy one.
    #[test]
    fn frame_catches_tearing_and_bitflips(
        payload in proptest::collection::vec(any::<u8>(), 0..128),
        flip_bit in 0usize..1024,
    ) {
        let framed = frame(&payload);
        prop_assert_eq!(framed.len(), FRAME_HEADER_LEN + payload.len());
        prop_assert_eq!(unframe(&framed).expect("clean frame unframes"), &payload[..]);

        // Tearing: every proper prefix is an error, never a panic.
        for cut in 0..framed.len() {
            prop_assert!(unframe(&framed[..cut]).is_err());
        }

        // Corruption: flip one bit somewhere in the frame. The CRC is
        // over the payload, the magic and length words guard the
        // header, so *any* flip must surface as an error.
        let bit = flip_bit % (framed.len() * 8);
        let mut torn = framed.clone();
        torn[bit / 8] ^= 1 << (bit % 8);
        let outcome = unframe(&torn);
        prop_assert!(
            outcome.is_err(),
            "bit {bit} flipped silently: {outcome:?}"
        );
    }

    /// The varint decoder round-trips the full u64 range and rejects
    /// overlong/overflowing encodings without panicking.
    #[test]
    fn varint_roundtrip(v in any::<u64>()) {
        let mut w = Writer::new();
        w.put_varint(v);
        let buf = w.into_vec();
        let mut r = Reader::new(&buf);
        prop_assert_eq!(r.varint().expect("varint decodes"), v);
        r.finish().expect("no trailing bytes");
    }

    /// Arbitrary garbage never panics the decoder — it either decodes
    /// (vacuously fine) or errors cleanly. This is the blunt fuzz
    /// backstop behind the targeted cases above.
    #[test]
    fn arbitrary_bytes_never_panic(
        garbage in proptest::collection::vec(any::<u8>(), 0..256),
    ) {
        let _ = Exemplar::from_wire(&garbage);
        let _ = unframe(&garbage);
        let mut r = Reader::new(&garbage);
        let _ = r.varint();
        let _ = r.bytes();
        let _ = r.str();
        let _ = r.seq_len(1);
    }
}

/// A hostile length prefix (huge count, tiny buffer) is rejected by
/// `seq_len`'s plausibility check instead of causing a giant
/// allocation.
#[test]
fn hostile_sequence_length_is_rejected() {
    let mut w = Writer::new();
    w.put_varint(u64::MAX / 2);
    let buf = w.into_vec();
    let mut r = Reader::new(&buf);
    assert!(matches!(r.seq_len(1), Err(WireError::BadLength { .. })));
}

/// Hand-built header corruptions map to their specific errors.
#[test]
fn header_corruptions_name_their_failure() {
    let framed = frame(b"payload");

    let mut bad_magic = framed.clone();
    bad_magic[0] ^= 0xff;
    assert!(matches!(
        unframe(&bad_magic),
        Err(WireError::BadMagic { .. })
    ));

    let mut bad_crc = framed.clone();
    let last = bad_crc.len() - 1;
    bad_crc[last] ^= 0x01; // payload byte → CRC mismatch
    assert!(matches!(unframe(&bad_crc), Err(WireError::BadCrc { .. })));

    // A length word claiming more than MAX_FRAME is rejected before
    // any payload is touched.
    let mut huge = framed;
    let len = (MAX_FRAME as u32 + 1).to_le_bytes();
    huge[4..8].copy_from_slice(&len);
    assert!(matches!(
        unframe(&huge),
        Err(WireError::FrameTooLarge { .. })
    ));

    // Sanity: the magic constant is what the header leads with.
    let fresh = frame(b"");
    assert_eq!(&fresh[0..4], &MAGIC.to_le_bytes());
    assert_eq!(crc32(b""), unframe(&fresh).map(crc32).unwrap());
}
