//! Table-driven CRC32 (IEEE 802.3 polynomial), the frame checksum.

/// The reflected IEEE polynomial used by zlib, Ethernet and PNG.
const POLY: u32 = 0xEDB8_8320;

const TABLE: [u32; 256] = build_table();

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// CRC32 of `bytes` (IEEE, as produced by zlib's `crc32`).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in bytes {
        let index = ((crc ^ u32::from(b)) & 0xFF) as usize;
        crc = (crc >> 8) ^ TABLE[index];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn sensitive_to_single_bit_flips() {
        let base = crc32(b"attestation evidence");
        let mut tampered = b"attestation evidence".to_vec();
        tampered[3] ^= 0x01;
        assert_ne!(crc32(&tampered), base);
    }
}
