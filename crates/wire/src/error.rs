//! Decode and transport failures.

use std::fmt;

/// Why a frame or message could not be decoded or moved.
///
/// Every malformed input — truncated, torn, bit-flipped, or simply
/// nonsense — lands on one of these variants; nothing in this crate
/// panics on attacker-controlled bytes.
#[non_exhaustive]
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The input ended before the value (or frame) it promised.
    Truncated,
    /// A frame did not start with [`crate::MAGIC`].
    BadMagic {
        /// The four bytes found where the magic should be.
        found: u32,
    },
    /// A frame's payload failed its CRC32 check.
    BadCrc {
        /// The checksum the header carried.
        expected: u32,
        /// The checksum the payload actually hashes to.
        found: u32,
    },
    /// A frame claimed a payload larger than [`crate::MAX_FRAME`].
    FrameTooLarge {
        /// The claimed payload length.
        len: usize,
    },
    /// An enum tag no decoder recognises.
    BadTag {
        /// Which decoder rejected it.
        what: &'static str,
        /// The offending tag value.
        tag: u64,
    },
    /// A varint ran past 10 bytes or overflowed its target width.
    VarintOverflow,
    /// A length prefix promised more elements than bytes remain — a
    /// torn or hostile frame trying to force a huge allocation.
    BadLength {
        /// The claimed element count.
        len: usize,
        /// Bytes actually remaining in the buffer.
        remaining: usize,
    },
    /// A message decoded cleanly but left unread bytes behind.
    TrailingBytes {
        /// How many bytes were left over.
        remaining: usize,
    },
    /// A length-prefixed string was not valid UTF-8.
    Utf8,
    /// The peer closed the connection (or dropped its channel end).
    Closed,
    /// An I/O error from the underlying socket.
    Io {
        /// The rendered `std::io::Error`.
        reason: String,
    },
    /// The peer violated the RPC protocol (unexpected message kind).
    Protocol {
        /// What was expected or observed.
        reason: String,
    },
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated => write!(f, "input truncated"),
            WireError::BadMagic { found } => {
                write!(f, "bad frame magic {found:#010x}")
            }
            WireError::BadCrc { expected, found } => {
                write!(
                    f,
                    "frame crc mismatch: header {expected:#010x}, payload {found:#010x}"
                )
            }
            WireError::FrameTooLarge { len } => {
                write!(f, "frame payload of {len} bytes exceeds the maximum")
            }
            WireError::BadTag { what, tag } => write!(f, "unknown {what} tag {tag}"),
            WireError::VarintOverflow => write!(f, "varint overflow"),
            WireError::BadLength { len, remaining } => {
                write!(f, "length prefix {len} exceeds {remaining} remaining bytes")
            }
            WireError::TrailingBytes { remaining } => {
                write!(f, "{remaining} trailing bytes after message")
            }
            WireError::Utf8 => write!(f, "invalid utf-8 in string"),
            WireError::Closed => write!(f, "connection closed by peer"),
            WireError::Io { reason } => write!(f, "i/o error: {reason}"),
            WireError::Protocol { reason } => write!(f, "protocol violation: {reason}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<std::io::Error> for WireError {
    fn from(err: std::io::Error) -> Self {
        match err.kind() {
            std::io::ErrorKind::UnexpectedEof => WireError::Closed,
            _ => WireError::Io {
                reason: err.to_string(),
            },
        }
    }
}
