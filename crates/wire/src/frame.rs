//! Length-prefixed, CRC-protected framing.
//!
//! Every message crossing a [`crate::ShardTransport`] travels inside
//! one frame:
//!
//! ```text
//! offset  size  field
//! 0       4     MAGIC        0x43494157 ("CIAW"), little-endian
//! 4       4     payload len  u32, little-endian
//! 8       4     payload CRC  crc32(payload), little-endian
//! 12      len   payload      one Wire-encoded message
//! ```
//!
//! The magic catches desynchronised streams, the length bounds the
//! read, and the CRC catches torn writes and bit flips — all before a
//! single payload byte reaches a decoder.

use std::io::{Read, Write};

use crate::crc::crc32;
use crate::error::WireError;

/// First four bytes of every frame ("CIAW" little-endian).
pub const MAGIC: u32 = 0x4349_4157;

/// Frame header size: magic + length + CRC, four bytes each.
pub const FRAME_HEADER_LEN: usize = 12;

/// Upper bound on a frame payload (64 MiB) — far above any real batch,
/// low enough that a corrupt length field cannot demand the moon.
pub const MAX_FRAME: usize = 64 << 20;

/// Wraps `payload` in a complete frame.
pub fn frame(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(FRAME_HEADER_LEN + payload.len());
    out.extend_from_slice(&MAGIC.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Validates one complete frame and returns its payload, borrowed from
/// `bytes` — no copy, no allocation.
///
/// # Errors
///
/// [`WireError::Truncated`] when `bytes` is shorter than the frame it
/// promises (or than a header); [`WireError::BadMagic`],
/// [`WireError::FrameTooLarge`], [`WireError::BadCrc`] for corrupt
/// headers or payloads; [`WireError::TrailingBytes`] when `bytes`
/// continues past the frame.
pub fn unframe(bytes: &[u8]) -> Result<&[u8], WireError> {
    let header = bytes.get(..FRAME_HEADER_LEN).ok_or(WireError::Truncated)?;
    let word = |i: usize| {
        let mut b = [0u8; 4];
        b.copy_from_slice(&header[i..i + 4]);
        u32::from_le_bytes(b)
    };
    let magic = word(0);
    if magic != MAGIC {
        return Err(WireError::BadMagic { found: magic });
    }
    let len = word(4) as usize;
    if len > MAX_FRAME {
        return Err(WireError::FrameTooLarge { len });
    }
    let expected = word(8);
    let end = FRAME_HEADER_LEN + len;
    let payload = bytes
        .get(FRAME_HEADER_LEN..end)
        .ok_or(WireError::Truncated)?;
    if bytes.len() > end {
        return Err(WireError::TrailingBytes {
            remaining: bytes.len() - end,
        });
    }
    let found = crc32(payload);
    if found != expected {
        return Err(WireError::BadCrc { expected, found });
    }
    Ok(payload)
}

/// Writes one frame to `w` (header + payload; the caller flushes).
///
/// # Errors
///
/// [`WireError::Io`] / [`WireError::Closed`] from the sink.
pub fn write_frame<W: Write>(w: &mut W, payload: &[u8]) -> Result<(), WireError> {
    let mut header = [0u8; FRAME_HEADER_LEN];
    header[0..4].copy_from_slice(&MAGIC.to_le_bytes());
    header[4..8].copy_from_slice(&(payload.len() as u32).to_le_bytes());
    header[8..12].copy_from_slice(&crc32(payload).to_le_bytes());
    w.write_all(&header)?;
    w.write_all(payload)?;
    Ok(())
}

/// Reads and validates one frame from `r`, returning its payload.
///
/// # Errors
///
/// [`WireError::Closed`] on EOF at a frame boundary (or mid-frame, via
/// the reader's `UnexpectedEof`); [`WireError::BadMagic`],
/// [`WireError::FrameTooLarge`], [`WireError::BadCrc`] for corrupt
/// frames; [`WireError::Io`] for transport failures.
pub fn read_frame<R: Read>(r: &mut R) -> Result<Vec<u8>, WireError> {
    let mut header = [0u8; FRAME_HEADER_LEN];
    r.read_exact(&mut header)?;
    let word = |i: usize| {
        let mut b = [0u8; 4];
        b.copy_from_slice(&header[i..i + 4]);
        u32::from_le_bytes(b)
    };
    let magic = word(0);
    if magic != MAGIC {
        return Err(WireError::BadMagic { found: magic });
    }
    let len = word(4) as usize;
    if len > MAX_FRAME {
        return Err(WireError::FrameTooLarge { len });
    }
    let expected = word(8);
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    let found = crc32(&payload);
    if found != expected {
        return Err(WireError::BadCrc { expected, found });
    }
    Ok(payload)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_unframe_roundtrip() {
        for payload in [&b""[..], b"x", b"quote response bytes"] {
            let framed = frame(payload);
            assert_eq!(framed.len(), FRAME_HEADER_LEN + payload.len());
            assert_eq!(unframe(&framed).unwrap(), payload);
        }
    }

    #[test]
    fn every_truncation_is_detected() {
        let framed = frame(b"some payload");
        for cut in 0..framed.len() {
            assert!(
                unframe(&framed[..cut]).is_err(),
                "truncation at {cut} must error"
            );
        }
    }

    #[test]
    fn every_single_bit_flip_is_detected() {
        let framed = frame(b"evidence");
        for byte in 0..framed.len() {
            for bit in 0..8 {
                let mut corrupt = framed.clone();
                corrupt[byte] ^= 1 << bit;
                assert!(
                    unframe(&corrupt).is_err(),
                    "flip at byte {byte} bit {bit} must error"
                );
            }
        }
    }

    #[test]
    fn io_roundtrip_and_eof() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"one").unwrap();
        write_frame(&mut buf, b"two").unwrap();
        let mut cursor = std::io::Cursor::new(buf);
        assert_eq!(read_frame(&mut cursor).unwrap(), b"one");
        assert_eq!(read_frame(&mut cursor).unwrap(), b"two");
        assert_eq!(read_frame(&mut cursor), Err(WireError::Closed));
    }

    #[test]
    fn oversized_length_is_rejected_without_allocation() {
        let mut framed = frame(b"tiny");
        framed[4..8].copy_from_slice(&u32::MAX.to_le_bytes());
        match unframe(&framed) {
            Err(WireError::FrameTooLarge { .. }) => {}
            other => panic!("expected FrameTooLarge, got {other:?}"),
        }
    }
}
