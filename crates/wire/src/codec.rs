//! The binary codec: varint integers, length-prefixed slices, and the
//! [`Wire`] trait message types implement.
//!
//! Layout rules (all little-endian where fixed-width):
//!
//! - `u8`/`bool`: one byte.
//! - `u32`/`u64` *fixed*: via [`Writer::put_u32`]/[`Writer::put_u64`] —
//!   used only by the frame header, where self-description matters more
//!   than size.
//! - integers on messages: LEB128 varints ([`Writer::put_varint`]), so
//!   the common small values (lane numbers, attempt counts, entry
//!   totals) cost one byte.
//! - byte slices and strings: varint length prefix + raw bytes, read
//!   back **zero-copy** as `&'a [u8]` / `&'a str` borrowing from the
//!   frame buffer.
//! - sequences: varint element count + elements; options: one presence
//!   byte; enums: one varint tag + the variant's fields.
//!
//! Decoding is total: every method returns `Result<_, WireError>` and
//! nothing panics on malformed input, which the torn-frame corpus in
//! `tests/` exercises.

use crate::error::WireError;

/// Append-only encode buffer.
#[derive(Debug, Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// An empty writer.
    pub fn new() -> Self {
        Writer::default()
    }

    /// An empty writer with `capacity` bytes pre-reserved.
    pub fn with_capacity(capacity: usize) -> Self {
        Writer {
            buf: Vec::with_capacity(capacity),
        }
    }

    /// Bytes encoded so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been encoded.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// The encoded bytes.
    pub fn as_slice(&self) -> &[u8] {
        &self.buf
    }

    /// Consumes the writer, returning the encoded bytes.
    pub fn into_vec(self) -> Vec<u8> {
        self.buf
    }

    /// Clears the buffer, keeping its allocation for reuse.
    pub fn clear(&mut self) {
        self.buf.clear();
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a bool as one byte (0 or 1).
    pub fn put_bool(&mut self, v: bool) {
        self.buf.push(u8::from(v));
    }

    /// Appends a fixed-width little-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a fixed-width little-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a LEB128 varint (1 byte for values < 128).
    pub fn put_varint(&mut self, mut v: u64) {
        loop {
            let byte = (v & 0x7F) as u8;
            v >>= 7;
            if v == 0 {
                self.buf.push(byte);
                return;
            }
            self.buf.push(byte | 0x80);
        }
    }

    /// Appends a length-prefixed byte slice.
    pub fn put_bytes(&mut self, bytes: &[u8]) {
        self.put_varint(bytes.len() as u64);
        self.buf.extend_from_slice(bytes);
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, s: &str) {
        self.put_bytes(s.as_bytes());
    }
}

/// Checked, zero-copy decode cursor over a byte slice.
#[derive(Debug, Clone)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// A reader over `buf`, positioned at the start.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// True when every byte has been consumed.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    /// Asserts the message consumed its whole buffer.
    ///
    /// # Errors
    ///
    /// [`WireError::TrailingBytes`] when bytes remain — a sign the
    /// decoder and encoder disagree about the message layout.
    pub fn finish(&self) -> Result<(), WireError> {
        if self.is_empty() {
            Ok(())
        } else {
            Err(WireError::TrailingBytes {
                remaining: self.remaining(),
            })
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let end = self.pos.checked_add(n).ok_or(WireError::Truncated)?;
        let slice = self.buf.get(self.pos..end).ok_or(WireError::Truncated)?;
        self.pos = end;
        Ok(slice)
    }

    /// Reads one byte.
    ///
    /// # Errors
    ///
    /// [`WireError::Truncated`] at end of input.
    pub fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a bool byte.
    ///
    /// # Errors
    ///
    /// [`WireError::Truncated`] at end of input; [`WireError::BadTag`]
    /// for any byte other than 0 or 1.
    pub fn bool(&mut self) -> Result<bool, WireError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            tag => Err(WireError::BadTag {
                what: "bool",
                tag: u64::from(tag),
            }),
        }
    }

    /// Reads a fixed-width little-endian `u32`.
    ///
    /// # Errors
    ///
    /// [`WireError::Truncated`] at end of input.
    pub fn u32(&mut self) -> Result<u32, WireError> {
        let raw = self.take(4)?;
        let mut bytes = [0u8; 4];
        bytes.copy_from_slice(raw);
        Ok(u32::from_le_bytes(bytes))
    }

    /// Reads a fixed-width little-endian `u64`.
    ///
    /// # Errors
    ///
    /// [`WireError::Truncated`] at end of input.
    pub fn u64(&mut self) -> Result<u64, WireError> {
        let raw = self.take(8)?;
        let mut bytes = [0u8; 8];
        bytes.copy_from_slice(raw);
        Ok(u64::from_le_bytes(bytes))
    }

    /// Reads a LEB128 varint.
    ///
    /// # Errors
    ///
    /// [`WireError::Truncated`] at end of input;
    /// [`WireError::VarintOverflow`] past 10 bytes or 64 bits.
    pub fn varint(&mut self) -> Result<u64, WireError> {
        let mut value = 0u64;
        let mut shift = 0u32;
        loop {
            let byte = self.u8()?;
            let low = u64::from(byte & 0x7F);
            if shift >= 64 || (shift == 63 && low > 1) {
                return Err(WireError::VarintOverflow);
            }
            value |= low << shift;
            if byte & 0x80 == 0 {
                return Ok(value);
            }
            shift += 7;
        }
    }

    /// Reads a varint and narrows it to `usize`/`u32`-sized lengths.
    fn varint_len(&mut self) -> Result<usize, WireError> {
        usize::try_from(self.varint()?).map_err(|_| WireError::VarintOverflow)
    }

    /// Reads a length-prefixed byte slice, borrowing from the buffer —
    /// the zero-copy path digests and excerpts decode through.
    ///
    /// # Errors
    ///
    /// [`WireError::Truncated`] when the prefix promises more bytes
    /// than remain.
    pub fn bytes(&mut self) -> Result<&'a [u8], WireError> {
        let len = self.varint_len()?;
        self.take(len)
    }

    /// Reads a length-prefixed UTF-8 string, borrowing from the buffer.
    ///
    /// # Errors
    ///
    /// [`WireError::Truncated`] on short input; [`WireError::Utf8`] on
    /// invalid UTF-8.
    pub fn str(&mut self) -> Result<&'a str, WireError> {
        std::str::from_utf8(self.bytes()?).map_err(|_| WireError::Utf8)
    }

    /// Reads a sequence length prefix, rejecting counts that could not
    /// possibly fit in the remaining bytes (each element costs at least
    /// `min_element_bytes`), so a torn frame cannot force a huge
    /// allocation.
    ///
    /// # Errors
    ///
    /// [`WireError::BadLength`] for impossible counts.
    pub fn seq_len(&mut self, min_element_bytes: usize) -> Result<usize, WireError> {
        let len = self.varint_len()?;
        let floor = min_element_bytes.max(1);
        if len > self.remaining() / floor {
            return Err(WireError::BadLength {
                len,
                remaining: self.remaining(),
            });
        }
        Ok(len)
    }
}

/// Binary encode/decode for one message type.
///
/// Implementations live next to the types they serialize (the orphan
/// rule keeps foreign impls out of this crate). `decode` must be total:
/// malformed bytes return a [`WireError`], never panic.
pub trait Wire: Sized {
    /// Appends this value's encoding to `w`.
    fn encode(&self, w: &mut Writer);

    /// Decodes one value from `r`, leaving the cursor after it.
    ///
    /// # Errors
    ///
    /// Any [`WireError`] describing how the input is malformed.
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError>;

    /// Encodes this value into a fresh byte vector.
    fn to_wire(&self) -> Vec<u8> {
        let mut w = Writer::new();
        self.encode(&mut w);
        w.into_vec()
    }

    /// Decodes exactly one value from `bytes`, requiring full
    /// consumption.
    ///
    /// # Errors
    ///
    /// Any decode error, or [`WireError::TrailingBytes`] when the
    /// buffer holds more than one value.
    fn from_wire(bytes: &[u8]) -> Result<Self, WireError> {
        let mut r = Reader::new(bytes);
        let value = Self::decode(&mut r)?;
        r.finish()?;
        Ok(value)
    }
}

impl Wire for u8 {
    fn encode(&self, w: &mut Writer) {
        w.put_u8(*self);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        r.u8()
    }
}

impl Wire for bool {
    fn encode(&self, w: &mut Writer) {
        w.put_bool(*self);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        r.bool()
    }
}

impl Wire for u32 {
    fn encode(&self, w: &mut Writer) {
        w.put_varint(u64::from(*self));
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        u32::try_from(r.varint()?).map_err(|_| WireError::VarintOverflow)
    }
}

impl Wire for u64 {
    fn encode(&self, w: &mut Writer) {
        w.put_varint(*self);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        r.varint()
    }
}

impl Wire for usize {
    fn encode(&self, w: &mut Writer) {
        w.put_varint(*self as u64);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        usize::try_from(r.varint()?).map_err(|_| WireError::VarintOverflow)
    }
}

impl Wire for String {
    fn encode(&self, w: &mut Writer) {
        w.put_str(self);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(r.str()?.to_string())
    }
}

impl<T: Wire> Wire for Option<T> {
    fn encode(&self, w: &mut Writer) {
        match self {
            None => w.put_u8(0),
            Some(v) => {
                w.put_u8(1);
                v.encode(w);
            }
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.u8()? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(r)?)),
            tag => Err(WireError::BadTag {
                what: "option",
                tag: u64::from(tag),
            }),
        }
    }
}

impl<T: Wire> Wire for Vec<T> {
    fn encode(&self, w: &mut Writer) {
        w.put_varint(self.len() as u64);
        for item in self {
            item.encode(w);
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let len = r.seq_len(1)?;
        let mut items = Vec::with_capacity(len);
        for _ in 0..len {
            items.push(T::decode(r)?);
        }
        Ok(items)
    }
}

impl<A: Wire, B: Wire> Wire for (A, B) {
    fn encode(&self, w: &mut Writer) {
        self.0.encode(w);
        self.1.encode(w);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok((A::decode(r)?, B::decode(r)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varint_boundaries_roundtrip() {
        let cases = [
            0u64,
            1,
            127,
            128,
            16_383,
            16_384,
            u32::MAX as u64,
            u64::MAX - 1,
            u64::MAX,
        ];
        for v in cases {
            let mut w = Writer::new();
            w.put_varint(v);
            let mut r = Reader::new(w.as_slice());
            assert_eq!(r.varint().unwrap(), v);
            assert!(r.is_empty());
        }
    }

    #[test]
    fn varint_overflow_is_an_error() {
        // 11 continuation bytes can never encode a u64.
        let bytes = [0xFFu8; 11];
        let mut r = Reader::new(&bytes);
        assert_eq!(r.varint(), Err(WireError::VarintOverflow));
        // 10 bytes whose top bits overflow 64 bits.
        let bytes = [0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x7F];
        let mut r = Reader::new(&bytes);
        assert_eq!(r.varint(), Err(WireError::VarintOverflow));
    }

    #[test]
    fn bytes_and_str_are_zero_copy() {
        let mut w = Writer::new();
        w.put_str("sha256:deadbeef");
        w.put_bytes(&[1, 2, 3]);
        let buf = w.into_vec();
        let mut r = Reader::new(&buf);
        let s = r.str().unwrap();
        let b = r.bytes().unwrap();
        // Borrowed straight from `buf`: same allocation, no copies.
        assert!(std::ptr::eq(s.as_bytes().as_ptr(), buf[1..].as_ptr()));
        assert_eq!(s, "sha256:deadbeef");
        assert_eq!(b, &[1, 2, 3]);
        assert!(r.finish().is_ok());
    }

    #[test]
    fn truncated_reads_error_cleanly() {
        let mut w = Writer::new();
        w.put_bytes(&[9; 40]);
        let buf = w.into_vec();
        for cut in 0..buf.len() {
            let mut r = Reader::new(&buf[..cut]);
            assert!(r.bytes().is_err(), "cut at {cut} must not decode");
        }
    }

    #[test]
    fn hostile_length_prefix_is_rejected_before_allocation() {
        let mut w = Writer::new();
        w.put_varint(u64::MAX / 2); // absurd element count
        let buf = w.into_vec();
        let mut r = Reader::new(&buf);
        match Vec::<u64>::decode(&mut r) {
            Err(WireError::BadLength { .. }) | Err(WireError::VarintOverflow) => {}
            other => panic!("expected BadLength, got {other:?}"),
        }
    }

    #[test]
    fn container_impls_roundtrip() {
        let value: Vec<(String, u64)> = vec![
            ("agent-0001".to_string(), 0),
            ("agent-0002".to_string(), u64::MAX),
        ];
        let encoded = value.to_wire();
        assert_eq!(Vec::<(String, u64)>::from_wire(&encoded).unwrap(), value);

        let opt: Option<u32> = Some(7);
        assert_eq!(Option::<u32>::from_wire(&opt.to_wire()).unwrap(), opt);
        let none: Option<u32> = None;
        assert_eq!(Option::<u32>::from_wire(&none.to_wire()).unwrap(), none);
    }

    #[test]
    fn trailing_bytes_are_flagged() {
        let mut w = Writer::new();
        w.put_varint(5);
        w.put_u8(0xAA);
        let buf = w.into_vec();
        assert_eq!(
            u64::from_wire(&buf),
            Err(WireError::TrailingBytes { remaining: 1 })
        );
    }
}
