//! Zero-dependency binary wire protocol for cross-process shard RPC.
//!
//! The federation layer keeps a million-agent fleet behind N verifier
//! shards; this crate is the wire boundary that lets those shards live
//! in other processes without giving up the repo's replay guarantees.
//! Everything here is deliberately small and fully deterministic:
//!
//! - [`Writer`] / [`Reader`]: a binary codec with LEB128 varints for
//!   integers and length-prefixed byte slices. Decoding is zero-copy —
//!   [`Reader::bytes`] and [`Reader::str`] borrow straight out of the
//!   frame buffer, so digests and log excerpts are never re-allocated
//!   just to be looked at.
//! - [`Wire`]: the encode/decode trait message types implement. Decode
//!   never panics: every malformed input surfaces as a [`WireError`].
//! - [`frame`] / [`unframe`] and [`read_frame`] / [`write_frame`]:
//!   length-prefixed CRC32-protected framing
//!   (`[magic][len][crc][payload]`) over byte slices or any
//!   `Read`/`Write` pair, so torn or corrupted frames are detected at
//!   the boundary instead of mis-decoding.
//! - [`ShardTransport`]: a splittable duplex connection carrying frames
//!   between a federation coordinator and one shard, with two
//!   implementations — [`DuplexShardTransport`] (in-memory channel,
//!   frames still fully encoded and CRC-checked) and
//!   [`TcpShardTransport`] (`std::net` TCP loopback with Nagle
//!   disabled and a buffered writer flushed per frame).
//!
//! The protocol spoken over these frames lives with the types it
//! serializes (`cia-keylime`'s `remote` module); this crate knows only
//! bytes, frames and connections.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod codec;
mod crc;
mod error;
mod frame;
mod transport;

pub use codec::{Reader, Wire, Writer};
pub use crc::crc32;
pub use error::WireError;
pub use frame::{frame, read_frame, unframe, write_frame, FRAME_HEADER_LEN, MAGIC, MAX_FRAME};
pub use transport::{
    DuplexReceiver, DuplexSender, DuplexShardTransport, FrameReceiver, FrameSender, ShardTransport,
    TcpReceiver, TcpSender, TcpShardTransport,
};
