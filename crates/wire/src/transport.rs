//! Shard transports: splittable duplex connections carrying frames.
//!
//! A federation coordinator drives each remote shard over one
//! bidirectional connection. Commands flow one way while results flow
//! back concurrently, so the connection **splits** into an independent
//! [`FrameSender`] and [`FrameReceiver`] that different threads own.
//! Both halves count frames and bytes locally — telemetry for batching
//! assertions that deliberately stays out of the scheduler's metrics
//! registry, which must remain bit-identical to an in-process round.
//!
//! Two implementations:
//!
//! - [`DuplexShardTransport`]: a pair of in-memory channels. Frames are
//!   still fully encoded, CRC'd and re-validated on receive, so the
//!   whole codec path is exercised without a socket.
//! - [`TcpShardTransport`]: `std::net` TCP. [`TcpShardTransport::
//!   loopback_pair`] binds an ephemeral loopback listener and connects
//!   both ends, with `TCP_NODELAY` set (batching is the protocol's job,
//!   not Nagle's) and a buffered writer flushed once per frame.

use std::io::{BufReader, BufWriter, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::mpsc;

use crate::error::WireError;
use crate::frame::{frame, read_frame, unframe, write_frame, FRAME_HEADER_LEN};

/// The sending half of a split shard connection.
pub trait FrameSender: Send {
    /// Sends one frame carrying `payload`.
    ///
    /// # Errors
    ///
    /// [`WireError::Closed`] when the peer is gone; [`WireError::Io`]
    /// for transport failures.
    fn send_frame(&mut self, payload: &[u8]) -> Result<(), WireError>;

    /// Frames sent so far on this half.
    fn frames_sent(&self) -> u64;

    /// Bytes sent so far (headers included).
    fn bytes_sent(&self) -> u64;
}

/// The receiving half of a split shard connection.
pub trait FrameReceiver: Send {
    /// Blocks for the next frame and returns its validated payload.
    ///
    /// # Errors
    ///
    /// [`WireError::Closed`] at end of stream; [`WireError::BadMagic`],
    /// [`WireError::BadCrc`] and friends for corrupt frames;
    /// [`WireError::Io`] for transport failures.
    fn recv_frame(&mut self) -> Result<Vec<u8>, WireError>;

    /// Frames received so far on this half.
    fn frames_received(&self) -> u64;

    /// Bytes received so far (headers included).
    fn bytes_received(&self) -> u64;
}

/// One end of a coordinator↔shard connection, splittable into
/// independently-owned send and receive halves.
pub trait ShardTransport {
    /// The sending half after a split.
    type Tx: FrameSender;
    /// The receiving half after a split.
    type Rx: FrameReceiver;

    /// Splits the connection for concurrent send and receive.
    fn split(self) -> (Self::Tx, Self::Rx);
}

// ---------------------------------------------------------------------------
// In-memory duplex

/// In-memory shard connection: two crossed unbounded channels moving
/// fully-encoded frames. The identity-speed transport for equivalence
/// tests — every byte still passes through `frame`/`unframe`, so CRC
/// and codec behaviour match the socket path exactly.
#[derive(Debug)]
pub struct DuplexShardTransport {
    tx: mpsc::Sender<Vec<u8>>,
    rx: mpsc::Receiver<Vec<u8>>,
}

impl DuplexShardTransport {
    /// A connected pair of ends: what one sends, the other receives.
    pub fn pair() -> (DuplexShardTransport, DuplexShardTransport) {
        let (a_tx, b_rx) = mpsc::channel();
        let (b_tx, a_rx) = mpsc::channel();
        (
            DuplexShardTransport { tx: a_tx, rx: a_rx },
            DuplexShardTransport { tx: b_tx, rx: b_rx },
        )
    }
}

impl ShardTransport for DuplexShardTransport {
    type Tx = DuplexSender;
    type Rx = DuplexReceiver;

    fn split(self) -> (DuplexSender, DuplexReceiver) {
        (
            DuplexSender {
                tx: self.tx,
                frames: 0,
                bytes: 0,
            },
            DuplexReceiver {
                rx: self.rx,
                frames: 0,
                bytes: 0,
            },
        )
    }
}

/// Sending half of a [`DuplexShardTransport`].
#[derive(Debug)]
pub struct DuplexSender {
    tx: mpsc::Sender<Vec<u8>>,
    frames: u64,
    bytes: u64,
}

impl FrameSender for DuplexSender {
    fn send_frame(&mut self, payload: &[u8]) -> Result<(), WireError> {
        let framed = frame(payload);
        self.frames += 1;
        self.bytes += framed.len() as u64;
        self.tx.send(framed).map_err(|_| WireError::Closed)
    }

    fn frames_sent(&self) -> u64 {
        self.frames
    }

    fn bytes_sent(&self) -> u64 {
        self.bytes
    }
}

/// Receiving half of a [`DuplexShardTransport`].
#[derive(Debug)]
pub struct DuplexReceiver {
    rx: mpsc::Receiver<Vec<u8>>,
    frames: u64,
    bytes: u64,
}

impl FrameReceiver for DuplexReceiver {
    fn recv_frame(&mut self) -> Result<Vec<u8>, WireError> {
        let framed = self.rx.recv().map_err(|_| WireError::Closed)?;
        self.frames += 1;
        self.bytes += framed.len() as u64;
        Ok(unframe(&framed)?.to_vec())
    }

    fn frames_received(&self) -> u64 {
        self.frames
    }

    fn bytes_received(&self) -> u64 {
        self.bytes
    }
}

// ---------------------------------------------------------------------------
// TCP

/// TCP shard connection. Both stream halves are cloned at construction
/// so [`ShardTransport::split`] is infallible.
#[derive(Debug)]
pub struct TcpShardTransport {
    write: TcpStream,
    read: TcpStream,
}

impl TcpShardTransport {
    /// Wraps an established stream (e.g. an accepted connection).
    ///
    /// # Errors
    ///
    /// [`WireError::Io`] when the stream cannot be cloned or
    /// `TCP_NODELAY` cannot be set.
    pub fn from_stream(stream: TcpStream) -> Result<Self, WireError> {
        stream.set_nodelay(true)?;
        let read = stream.try_clone()?;
        Ok(TcpShardTransport {
            write: stream,
            read,
        })
    }

    /// A connected loopback pair on an ephemeral port: binds
    /// `127.0.0.1:0`, connects, accepts, and wraps both ends.
    ///
    /// # Errors
    ///
    /// [`WireError::Io`] when the loopback listener cannot be bound or
    /// connected.
    pub fn loopback_pair() -> Result<(TcpShardTransport, TcpShardTransport), WireError> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        let client = TcpStream::connect(addr)?;
        let (server, _) = listener.accept()?;
        Ok((
            TcpShardTransport::from_stream(server)?,
            TcpShardTransport::from_stream(client)?,
        ))
    }
}

impl ShardTransport for TcpShardTransport {
    type Tx = TcpSender;
    type Rx = TcpReceiver;

    fn split(self) -> (TcpSender, TcpReceiver) {
        (
            TcpSender {
                writer: BufWriter::new(self.write),
                frames: 0,
                bytes: 0,
            },
            TcpReceiver {
                reader: BufReader::new(self.read),
                frames: 0,
                bytes: 0,
            },
        )
    }
}

/// Sending half of a [`TcpShardTransport`]: buffered, flushed per
/// frame — one syscall per frame, however many messages it batches.
#[derive(Debug)]
pub struct TcpSender {
    writer: BufWriter<TcpStream>,
    frames: u64,
    bytes: u64,
}

impl FrameSender for TcpSender {
    fn send_frame(&mut self, payload: &[u8]) -> Result<(), WireError> {
        write_frame(&mut self.writer, payload)?;
        self.writer.flush()?;
        self.frames += 1;
        self.bytes += (FRAME_HEADER_LEN + payload.len()) as u64;
        Ok(())
    }

    fn frames_sent(&self) -> u64 {
        self.frames
    }

    fn bytes_sent(&self) -> u64 {
        self.bytes
    }
}

/// Receiving half of a [`TcpShardTransport`].
#[derive(Debug)]
pub struct TcpReceiver {
    reader: BufReader<TcpStream>,
    frames: u64,
    bytes: u64,
}

impl FrameReceiver for TcpReceiver {
    fn recv_frame(&mut self) -> Result<Vec<u8>, WireError> {
        let payload = read_frame(&mut self.reader)?;
        self.frames += 1;
        self.bytes += (FRAME_HEADER_LEN + payload.len()) as u64;
        Ok(payload)
    }

    fn frames_received(&self) -> u64 {
        self.frames
    }

    fn bytes_received(&self) -> u64 {
        self.bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exercise<C: ShardTransport>(a: C, b: C)
    where
        C::Tx: 'static,
        C::Rx: 'static,
    {
        let (mut a_tx, mut a_rx) = a.split();
        let (mut b_tx, mut b_rx) = b.split();
        // Full-duplex: both directions concurrently.
        let t = std::thread::spawn(move || {
            for i in 0..100u8 {
                b_tx.send_frame(&[i; 33]).unwrap();
            }
            let mut got = Vec::new();
            for _ in 0..100 {
                got.push(b_rx.recv_frame().unwrap());
            }
            (b_tx, b_rx, got)
        });
        for i in 0..100u8 {
            a_tx.send_frame(&[i ^ 0xFF; 7]).unwrap();
        }
        let mut got = Vec::new();
        for _ in 0..100 {
            got.push(a_rx.recv_frame().unwrap());
        }
        let (b_tx, mut b_rx, b_got) = t.join().unwrap();
        for (i, payload) in got.iter().enumerate() {
            assert_eq!(payload.as_slice(), &[i as u8; 33]);
        }
        for (i, payload) in b_got.iter().enumerate() {
            assert_eq!(payload.as_slice(), &[(i as u8) ^ 0xFF; 7]);
        }
        assert_eq!(a_tx.frames_sent(), 100);
        assert_eq!(b_tx.frames_sent(), 100);
        assert!(a_tx.bytes_sent() >= 100 * (FRAME_HEADER_LEN as u64 + 7));
        // Dropping the peer's halves closes the stream.
        drop(a_tx);
        drop(a_rx);
        assert!(b_rx.recv_frame().is_err());
    }

    #[test]
    fn duplex_pair_moves_frames_both_ways() {
        let (a, b) = DuplexShardTransport::pair();
        exercise(a, b);
    }

    #[test]
    fn tcp_loopback_pair_moves_frames_both_ways() {
        let (a, b) = TcpShardTransport::loopback_pair().unwrap();
        exercise(a, b);
    }

    #[test]
    fn duplex_receiver_validates_crc() {
        let (a, b) = DuplexShardTransport::pair();
        // Send a corrupted frame by hand.
        let mut framed = frame(b"payload");
        let last = framed.len() - 1;
        framed[last] ^= 0x40;
        a.tx.send(framed).unwrap();
        let (_tx, mut rx) = b.split();
        assert!(matches!(rx.recv_frame(), Err(WireError::BadCrc { .. })));
    }
}
