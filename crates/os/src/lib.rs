//! The machine simulator: one attested host.
//!
//! [`Machine`] wires together the substrates — a [`cia_vfs::Vfs`], a
//! [`cia_tpm::Tpm`], a [`cia_ima::Ima`], an apt [`cia_distro::UpdateManager`]
//! and a [`cia_distro::SnapManager`] — and exposes the operations the
//! paper's experiments perform on a host:
//!
//! - **executing files** ([`Machine::exec`]) with the three invocation
//!   methods whose measurement behaviour differs (direct/shebang vs
//!   via-interpreter — P5);
//! - **loading kernel modules** ([`Machine::load_module`]);
//! - **running system updates** from a package source;
//! - **rebooting** ([`Machine::reboot`]): TPM PCRs reset, the IMA log and
//!   cache clear, tmpfs contents vanish, a staged kernel becomes the
//!   running kernel, and measured boot + `boot_aggregate` re-run.
//!
//! SNAP executions are automatically recorded under their truncated
//! in-sandbox paths (§III-B), and all time is virtual ([`SimClock`]), so a
//! 66-day experiment runs in milliseconds and is exactly reproducible.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod clock;
pub mod machine;

pub use clock::SimClock;
pub use machine::{ExecMethod, ExecReport, Machine, MachineConfig, MachineError};
