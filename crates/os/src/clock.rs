//! Virtual time for the long-running experiments.

use std::fmt;

use serde::{Deserialize, Serialize};

/// A simulated wall clock with day and minute-of-day resolution.
///
/// The paper's experiments run for weeks of real time (31- and 35-day
/// windows, 5:00 AM mirror syncs, minutes-long policy updates); the
/// simulators advance this clock instead so the whole 66-day run completes
/// in milliseconds and is deterministic.
///
/// # Examples
///
/// ```
/// use cia_os::SimClock;
///
/// let mut clock = SimClock::new();
/// clock.advance_to_hour(5);
/// clock.advance_minutes(150);
/// assert_eq!(clock.to_string(), "day 0 07:30");
/// clock.next_day();
/// assert_eq!(clock.day(), 1);
/// assert_eq!(clock.minute_of_day(), 0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default, Serialize, Deserialize)]
pub struct SimClock {
    day: u32,
    minute_of_day: u32,
}

impl SimClock {
    /// Midnight of day 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// The current simulation day.
    pub fn day(&self) -> u32 {
        self.day
    }

    /// Minutes since this day's midnight.
    pub fn minute_of_day(&self) -> u32 {
        self.minute_of_day
    }

    /// The current hour (0–23).
    pub fn hour(&self) -> u32 {
        self.minute_of_day / 60
    }

    /// Total minutes since day 0 midnight.
    pub fn minutes_since_epoch(&self) -> u64 {
        self.day as u64 * 24 * 60 + self.minute_of_day as u64
    }

    /// Advances by `minutes`, rolling over days as needed.
    pub fn advance_minutes(&mut self, minutes: u32) {
        let total = self.minute_of_day + minutes;
        self.day += total / (24 * 60);
        self.minute_of_day = total % (24 * 60);
    }

    /// Advances to `hour:00` today if it is still ahead, otherwise to
    /// `hour:00` tomorrow.
    pub fn advance_to_hour(&mut self, hour: u32) {
        let target = hour.min(23) * 60;
        if target <= self.minute_of_day {
            self.next_day();
        }
        self.minute_of_day = target;
    }

    /// Jumps to midnight of the next day.
    pub fn next_day(&mut self) {
        self.day += 1;
        self.minute_of_day = 0;
    }
}

impl fmt::Display for SimClock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "day {} {:02}:{:02}",
            self.day,
            self.hour(),
            self.minute_of_day % 60
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn advance_minutes_rolls_over() {
        let mut c = SimClock::new();
        c.advance_minutes(25 * 60);
        assert_eq!(c.day(), 1);
        assert_eq!(c.hour(), 1);
    }

    #[test]
    fn advance_to_hour_forward_and_wrap() {
        let mut c = SimClock::new();
        c.advance_to_hour(5);
        assert_eq!((c.day(), c.hour()), (0, 5));
        // 5:00 already passed: next 5:00 is tomorrow.
        c.advance_to_hour(5);
        assert_eq!((c.day(), c.hour()), (1, 5));
        c.advance_to_hour(23);
        assert_eq!((c.day(), c.hour()), (1, 23));
    }

    #[test]
    fn epoch_minutes() {
        let mut c = SimClock::new();
        c.advance_minutes(90);
        assert_eq!(c.minutes_since_epoch(), 90);
        c.next_day();
        assert_eq!(c.minutes_since_epoch(), 24 * 60);
    }

    #[test]
    fn ordering() {
        let mut a = SimClock::new();
        let mut b = SimClock::new();
        b.advance_minutes(1);
        assert!(a < b);
        a.next_day();
        assert!(a > b);
    }
}
