//! The attested host: substrates wired together.

use std::fmt;

use cia_crypto::HashAlgorithm;
use cia_distro::{Package, SnapManager, UpdateManager, UpgradeReport};
use cia_ima::{AppraisalKeyring, AppraisalResult, Ima, ImaConfig, ImaError, ImaPolicy};
use cia_tpm::{Manufacturer, Tpm, TpmError};
use cia_vfs::{Mode, Vfs, VfsError, VfsPath};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::clock::SimClock;

/// How a file is invoked — the distinction at the heart of P5.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecMethod {
    /// `./binary` — `execve` directly; `BPRM_CHECK` measures the file.
    Direct,
    /// `./script.py` with a `#!` line — the *script* is the `execve`
    /// target and is measured; the interpreter is measured too when it
    /// exists on disk.
    Shebang,
    /// `python3 script.py` — the *interpreter* is the `execve` target;
    /// the script is just a file the interpreter reads. Stock IMA never
    /// sees it.
    Interpreter {
        /// Absolute path of the interpreter binary.
        interpreter: String,
        /// Whether this interpreter opts into script-execution-control
        /// (opens scripts with exec intent). Only matters when the
        /// machine's [`ImaConfig::script_exec_control`] is enabled.
        supports_exec_control: bool,
    },
}

/// What one [`Machine::exec`] call caused IMA to do.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ExecReport {
    /// Paths appended to the measurement list by this execution.
    pub measured_paths: Vec<String>,
    /// True when the *target file itself* produced a (new or cached)
    /// measurement visible to attestation; false when IMA never evaluated
    /// it (exempt filesystem, or interpreter-mediated read).
    pub target_evaluated: bool,
}

/// Errors surfaced by machine operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MachineError {
    /// Filesystem failure.
    Vfs(VfsError),
    /// Measurement failure.
    Ima(ImaError),
    /// TPM failure.
    Tpm(TpmError),
    /// The executed file lacks the executable bit.
    NotExecutable {
        /// The offending path.
        path: String,
    },
    /// IMA-appraisal enforcement refused the access (missing, untrusted
    /// or non-verifying `security.ima` signature).
    AppraisalDenied {
        /// The offending path.
        path: String,
        /// Why appraisal failed.
        reason: String,
    },
}

impl fmt::Display for MachineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MachineError::Vfs(e) => write!(f, "vfs: {e}"),
            MachineError::Ima(e) => write!(f, "ima: {e}"),
            MachineError::Tpm(e) => write!(f, "tpm: {e}"),
            MachineError::NotExecutable { path } => {
                write!(f, "permission denied: `{path}` is not executable")
            }
            MachineError::AppraisalDenied { path, reason } => {
                write!(f, "appraisal denied `{path}`: {reason}")
            }
        }
    }
}

impl std::error::Error for MachineError {}

impl From<VfsError> for MachineError {
    fn from(e: VfsError) -> Self {
        MachineError::Vfs(e)
    }
}
impl From<ImaError> for MachineError {
    fn from(e: ImaError) -> Self {
        MachineError::Ima(e)
    }
}
impl From<TpmError> for MachineError {
    fn from(e: TpmError) -> Self {
        MachineError::Tpm(e)
    }
}

/// Construction parameters for a [`Machine`].
#[derive(Debug, Clone)]
pub struct MachineConfig {
    /// Host name (agent identity).
    pub hostname: String,
    /// IMA measurement policy loaded at boot.
    pub ima_policy: ImaPolicy,
    /// IMA behaviour toggles (mitigations).
    pub ima_config: ImaConfig,
    /// Kernel release the machine initially runs.
    pub running_kernel: String,
    /// IMA-appraisal enforcement (`ima_appraise=enforce`): when set,
    /// executions and module loads require a verifying `security.ima`
    /// signature from this keyring. `None` (the default, and the paper's
    /// setting) is measurement-only.
    pub appraisal: Option<AppraisalKeyring>,
    /// Deterministic seed for key generation.
    pub seed: u64,
}

impl Default for MachineConfig {
    fn default() -> Self {
        MachineConfig {
            hostname: "node-0".to_string(),
            ima_policy: ImaPolicy::keylime_default(),
            ima_config: ImaConfig::default(),
            running_kernel: "5.15.0-76".to_string(),
            appraisal: None,
            seed: 0,
        }
    }
}

/// One attested host: filesystem, TPM, IMA, package manager, snaps, and a
/// virtual clock.
#[derive(Debug)]
pub struct Machine {
    /// The filesystem.
    pub vfs: Vfs,
    /// The TPM.
    pub tpm: Tpm,
    /// The IMA engine.
    pub ima: Ima,
    /// The apt-like package manager.
    pub apt: UpdateManager,
    /// Installed snaps.
    pub snaps: SnapManager,
    /// Virtual wall clock.
    pub clock: SimClock,
    hostname: String,
    running_kernel: String,
    appraisal: Option<AppraisalKeyring>,
    boots: u32,
}

impl Machine {
    /// Builds and boots a machine: standard filesystem layout, TPM
    /// manufactured and endorsed, measured boot run, `boot_aggregate`
    /// recorded.
    pub fn new(manufacturer: &Manufacturer, config: MachineConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut tpm = Tpm::manufacture(manufacturer, &mut rng);
        tpm.create_ak(&mut rng);
        let mut machine = Machine {
            vfs: Vfs::with_standard_layout(),
            tpm,
            ima: Ima::with_config(config.ima_policy, config.ima_config),
            apt: UpdateManager::new(),
            snaps: SnapManager::new(),
            clock: SimClock::new(),
            hostname: config.hostname,
            running_kernel: config.running_kernel,
            appraisal: config.appraisal,
            boots: 0,
        };
        machine.measured_boot().expect("initial boot");
        machine
    }

    /// The host name (Keylime agent identity).
    pub fn hostname(&self) -> &str {
        &self.hostname
    }

    /// The currently running kernel release.
    pub fn running_kernel(&self) -> &str {
        &self.running_kernel
    }

    /// Number of completed boots (1 after construction).
    pub fn boots(&self) -> u32 {
        self.boots
    }

    /// Runs measured boot: extends PCRs 0/2/4 with firmware, bootloader
    /// and kernel digests, then records IMA's `boot_aggregate`.
    fn measured_boot(&mut self) -> Result<(), MachineError> {
        let fw = HashAlgorithm::Sha256.digest(b"firmware v1.0");
        let loader = HashAlgorithm::Sha256.digest(b"grub 2.06");
        let kernel = HashAlgorithm::Sha256.digest(self.running_kernel.as_bytes());
        self.tpm.pcr_extend(HashAlgorithm::Sha256, 0, fw)?;
        self.tpm.pcr_extend(HashAlgorithm::Sha256, 2, loader)?;
        self.tpm.pcr_extend(HashAlgorithm::Sha256, 4, kernel)?;
        self.ima.record_boot_aggregate(&mut self.tpm)?;
        self.boots += 1;
        Ok(())
    }

    /// Enforces IMA-appraisal for an exec/module access when configured.
    fn enforce_appraisal(&self, path: &VfsPath) -> Result<(), MachineError> {
        let Some(keyring) = &self.appraisal else {
            return Ok(());
        };
        match keyring.appraise(&self.vfs, path)? {
            AppraisalResult::Pass => Ok(()),
            other => Err(MachineError::AppraisalDenied {
                path: path.to_string(),
                reason: format!("{other:?}"),
            }),
        }
    }

    /// The path IMA records for `path`: the in-sandbox view for SNAP
    /// files, the path itself otherwise.
    pub fn recorded_path(&self, path: &VfsPath) -> VfsPath {
        self.snaps
            .sandbox_path(path)
            .unwrap_or_else(|| path.clone())
    }

    /// Executes `path` using `method`, driving the corresponding IMA
    /// hooks. Returns which paths were measured.
    ///
    /// # Errors
    ///
    /// [`MachineError::NotExecutable`] when direct-executing a file
    /// without the exec bit (interpreters do not need it — part of P5);
    /// filesystem/TPM errors otherwise.
    pub fn exec(&mut self, path: &VfsPath, method: ExecMethod) -> Result<ExecReport, MachineError> {
        let mut report = ExecReport::default();
        match method {
            ExecMethod::Direct | ExecMethod::Shebang => {
                let meta = self.vfs.metadata(path)?;
                if !meta.mode.is_executable() {
                    return Err(MachineError::NotExecutable {
                        path: path.to_string(),
                    });
                }
                self.enforce_appraisal(path)?;
                let recorded = self.recorded_path(path);
                let before = self.ima.log().len();
                let outcome = self
                    .ima
                    .on_exec(&self.vfs, path, &recorded, &mut self.tpm)?;
                report.target_evaluated = outcome != cia_ima::engine::MeasureOutcome::PolicyExempt;
                if self.ima.log().len() > before {
                    report.measured_paths.push(recorded.to_string());
                }
                // A shebang line also loads the interpreter.
                if let Some(interp) = self.shebang_interpreter(path)? {
                    self.measure_exec_quietly(&interp, &mut report)?;
                }
            }
            ExecMethod::Interpreter {
                interpreter,
                supports_exec_control,
            } => {
                // The interpreter binary is the execve target (measured);
                // the script is not required to be executable.
                let interp_path = VfsPath::new(&interpreter)?;
                self.measure_exec_quietly(&interp_path, &mut report)?;
                // The script: a plain read for stock kernels (P5), an
                // exec-intent open under script-execution-control.
                if supports_exec_control {
                    let recorded = self.recorded_path(path);
                    let before = self.ima.log().len();
                    let outcome =
                        self.ima
                            .on_script_open(&self.vfs, path, &recorded, &mut self.tpm)?;
                    report.target_evaluated =
                        outcome != cia_ima::engine::MeasureOutcome::PolicyExempt;
                    if self.ima.log().len() > before {
                        report.measured_paths.push(recorded.to_string());
                    }
                } else {
                    // Verify the script exists and is readable; unmeasured.
                    let _ = self.vfs.read(path)?;
                    report.target_evaluated = false;
                }
            }
        }
        Ok(report)
    }

    /// Executes the interpreter/extra binary, appending to the report.
    fn measure_exec_quietly(
        &mut self,
        path: &VfsPath,
        report: &mut ExecReport,
    ) -> Result<(), MachineError> {
        if !self.vfs.is_file(path) {
            return Ok(());
        }
        let recorded = self.recorded_path(path);
        let before = self.ima.log().len();
        self.ima
            .on_exec(&self.vfs, path, &recorded, &mut self.tpm)?;
        if self.ima.log().len() > before {
            report.measured_paths.push(recorded.to_string());
        }
        Ok(())
    }

    /// Reads a `#!/...` first line, returning the interpreter path.
    fn shebang_interpreter(&self, path: &VfsPath) -> Result<Option<VfsPath>, MachineError> {
        let content = self.vfs.read(path)?;
        if content.starts_with(b"#!") {
            let line_end = content
                .iter()
                .position(|&b| b == b'\n')
                .unwrap_or(content.len());
            let line = String::from_utf8_lossy(&content[2..line_end]);
            let interp = line.split_whitespace().next().unwrap_or("");
            if interp.starts_with('/') {
                return Ok(Some(VfsPath::new(interp)?));
            }
        }
        Ok(None)
    }

    /// Maps a shared library (`mmap(PROT_EXEC)`), measuring it per policy.
    ///
    /// # Errors
    ///
    /// Filesystem/TPM errors.
    pub fn mmap_library(&mut self, path: &VfsPath) -> Result<(), MachineError> {
        let recorded = self.recorded_path(path);
        self.ima
            .on_mmap_exec(&self.vfs, path, &recorded, &mut self.tpm)?;
        Ok(())
    }

    /// Loads a kernel module (`insmod`), measuring via `MODULE_CHECK`.
    ///
    /// # Errors
    ///
    /// Filesystem/TPM errors.
    pub fn load_module(&mut self, path: &VfsPath) -> Result<(), MachineError> {
        self.enforce_appraisal(path)?;
        self.ima.on_module_load(&self.vfs, path, &mut self.tpm)?;
        Ok(())
    }

    /// Runs `apt upgrade` against a package source (mirror or upstream),
    /// advancing the clock by a size-dependent few minutes.
    ///
    /// # Errors
    ///
    /// Filesystem errors during unpacking.
    pub fn run_updates<'a>(
        &mut self,
        available: impl Iterator<Item = &'a Package>,
    ) -> Result<UpgradeReport, MachineError> {
        let report = self.apt.upgrade_all(&mut self.vfs, available)?;
        // ~5 minutes of apt runtime for a typical update window (§III-C).
        self.clock
            .advance_minutes(if report.upgraded.is_empty() { 1 } else { 5 });
        Ok(report)
    }

    /// Convenience: write a file and make it executable.
    ///
    /// # Errors
    ///
    /// Filesystem errors.
    pub fn write_executable(&mut self, path: &VfsPath, content: &[u8]) -> Result<(), MachineError> {
        if let Some(parent) = path.parent() {
            self.vfs.mkdir_p(&parent)?;
        }
        self.vfs.write_file(path, content.to_vec(), Mode::EXEC)?;
        self.vfs.chmod_exec(path, true)?;
        Ok(())
    }

    /// Reboots the machine: PCRs reset, IMA log/cache clear, volatile
    /// filesystems empty, the most recently staged kernel (if any) becomes
    /// the running kernel, and measured boot + `boot_aggregate` re-run.
    ///
    /// # Errors
    ///
    /// TPM failures during the new measured boot.
    pub fn reboot(&mut self) -> Result<(), MachineError> {
        self.tpm.reboot();
        self.ima.reboot();
        self.vfs.reboot_clear_volatile();
        if let Some(kernel) = self.apt.take_latest_staged_kernel() {
            self.running_kernel = kernel;
        }
        self.clock.advance_minutes(2);
        self.measured_boot()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cia_ima::IMA_PCR;

    fn machine() -> Machine {
        let mut rng = StdRng::seed_from_u64(99);
        let manufacturer = Manufacturer::generate(&mut rng);
        Machine::new(&manufacturer, MachineConfig::default())
    }

    fn p(s: &str) -> VfsPath {
        VfsPath::new(s).unwrap()
    }

    #[test]
    fn boot_records_aggregate() {
        let m = machine();
        assert_eq!(m.boots(), 1);
        assert_eq!(m.ima.log().len(), 1);
        assert_eq!(m.ima.log().entries()[0].path, cia_ima::BOOT_AGGREGATE_NAME);
        assert!(!m
            .tpm
            .pcr_read(HashAlgorithm::Sha256, IMA_PCR)
            .unwrap()
            .is_zero());
    }

    #[test]
    fn direct_exec_measures_target() {
        let mut m = machine();
        let f = p("/usr/bin/tool");
        m.write_executable(&f, b"binary").unwrap();
        let report = m.exec(&f, ExecMethod::Direct).unwrap();
        assert!(report.target_evaluated);
        assert_eq!(report.measured_paths, vec!["/usr/bin/tool".to_string()]);
    }

    #[test]
    fn exec_requires_exec_bit() {
        let mut m = machine();
        let f = p("/usr/bin/noexec");
        m.vfs
            .create_file(&f, b"data".to_vec(), Mode::REGULAR)
            .unwrap();
        assert!(matches!(
            m.exec(&f, ExecMethod::Direct),
            Err(MachineError::NotExecutable { .. })
        ));
    }

    #[test]
    fn shebang_measures_script_and_interpreter() {
        let mut m = machine();
        let py = p("/usr/bin/python3");
        let script = p("/usr/local/bin/task.py");
        m.write_executable(&py, b"python interpreter").unwrap();
        m.write_executable(&script, b"#!/usr/bin/python3\nprint('hi')")
            .unwrap();
        let report = m.exec(&script, ExecMethod::Shebang).unwrap();
        assert!(report.target_evaluated);
        assert_eq!(
            report.measured_paths,
            vec![
                "/usr/local/bin/task.py".to_string(),
                "/usr/bin/python3".to_string()
            ]
        );
    }

    #[test]
    fn p5_interpreter_invocation_hides_script() {
        let mut m = machine();
        let py = p("/usr/bin/python3");
        let script = p("/usr/local/bin/attack.py");
        m.write_executable(&py, b"python interpreter").unwrap();
        // Script does not even need the exec bit.
        m.vfs
            .create_file(&script, b"import os".to_vec(), Mode::REGULAR)
            .unwrap();
        let report = m
            .exec(
                &script,
                ExecMethod::Interpreter {
                    interpreter: "/usr/bin/python3".to_string(),
                    supports_exec_control: false,
                },
            )
            .unwrap();
        assert!(!report.target_evaluated, "stock IMA never sees the script");
        assert_eq!(report.measured_paths, vec!["/usr/bin/python3".to_string()]);
    }

    #[test]
    fn script_exec_control_measures_script() {
        let mut rng = StdRng::seed_from_u64(1);
        let manufacturer = Manufacturer::generate(&mut rng);
        let mut m = Machine::new(
            &manufacturer,
            MachineConfig {
                ima_policy: cia_ima::ImaPolicy::enriched(true),
                ima_config: ImaConfig {
                    reevaluate_on_path_change: false,
                    script_exec_control: true,
                },
                ..MachineConfig::default()
            },
        );
        let py = p("/usr/bin/python3");
        let script = p("/usr/local/bin/attack.py");
        m.write_executable(&py, b"python interpreter").unwrap();
        m.vfs
            .create_file(&script, b"import os".to_vec(), Mode::REGULAR)
            .unwrap();
        let report = m
            .exec(
                &script,
                ExecMethod::Interpreter {
                    interpreter: "/usr/bin/python3".to_string(),
                    supports_exec_control: true,
                },
            )
            .unwrap();
        assert!(report.target_evaluated);
        assert!(report
            .measured_paths
            .contains(&"/usr/local/bin/attack.py".to_string()));
    }

    #[test]
    fn tmpfs_exec_is_unmeasured_p3() {
        let mut m = machine();
        let f = p("/dev/shm/payload");
        m.write_executable(&f, b"evil").unwrap();
        let report = m.exec(&f, ExecMethod::Direct).unwrap();
        assert!(!report.target_evaluated);
        assert!(report.measured_paths.is_empty());
    }

    #[test]
    fn snap_exec_records_truncated_path() {
        let mut m = machine();
        m.snaps
            .install(&mut m.vfs, cia_distro::Snap::core20(1234))
            .unwrap();
        let real = p("/snap/core20/1234/usr/bin/python3");
        let report = m.exec(&real, ExecMethod::Direct).unwrap();
        assert_eq!(report.measured_paths, vec!["/usr/bin/python3".to_string()]);
    }

    #[test]
    fn reboot_clears_state_and_activates_staged_kernel() {
        let mut m = machine();
        let f = p("/usr/bin/tool");
        m.write_executable(&f, b"bin").unwrap();
        m.exec(&f, ExecMethod::Direct).unwrap();
        m.write_executable(&p("/dev/shm/volatile"), b"x").unwrap();

        // Stage a kernel via apt.
        let kernel = Package {
            name: "linux-image-generic".into(),
            version: cia_distro::Version {
                upstream: "5.15.0".into(),
                revision: 90,
            },
            priority: cia_distro::Priority::Optional,
            pocket: cia_distro::Pocket::Updates,
            files: vec![],
            is_kernel: true,
        };
        m.apt.install(&mut m.vfs, &kernel).unwrap();
        assert_eq!(m.running_kernel(), "5.15.0-76");

        m.reboot().unwrap();
        assert_eq!(m.running_kernel(), "5.15.0-90");
        assert_eq!(m.boots(), 2);
        assert_eq!(m.ima.log().len(), 1, "only the fresh boot_aggregate");
        assert!(!m.vfs.exists(&p("/dev/shm/volatile")));
        // Re-execution after reboot is measured again.
        let report = m.exec(&f, ExecMethod::Direct).unwrap();
        assert_eq!(report.measured_paths.len(), 1);
    }

    #[test]
    fn log_replay_always_matches_pcr10() {
        let mut m = machine();
        for name in ["a", "b", "c"] {
            let f = p(&format!("/usr/bin/{name}"));
            m.write_executable(&f, name.as_bytes()).unwrap();
            m.exec(&f, ExecMethod::Direct).unwrap();
        }
        assert_eq!(
            m.ima.log().replay(HashAlgorithm::Sha256),
            m.tpm.pcr_read(HashAlgorithm::Sha256, IMA_PCR).unwrap()
        );
    }
}

#[cfg(test)]
mod more_tests {
    use super::*;
    use cia_crypto::HashAlgorithm;

    fn machine() -> Machine {
        let mut rng = StdRng::seed_from_u64(123);
        let manufacturer = Manufacturer::generate(&mut rng);
        Machine::new(&manufacturer, MachineConfig::default())
    }

    fn p(s: &str) -> VfsPath {
        VfsPath::new(s).unwrap()
    }

    #[test]
    fn exec_missing_file_errors() {
        let mut m = machine();
        assert!(matches!(
            m.exec(&p("/usr/bin/ghost"), ExecMethod::Direct),
            Err(MachineError::Vfs(_))
        ));
    }

    #[test]
    fn interpreter_method_requires_script_readable() {
        let mut m = machine();
        m.write_executable(&p("/usr/bin/python3"), b"py").unwrap();
        let err = m.exec(
            &p("/opt/missing.py"),
            ExecMethod::Interpreter {
                interpreter: "/usr/bin/python3".to_string(),
                supports_exec_control: false,
            },
        );
        assert!(err.is_err());
    }

    #[test]
    fn shebang_with_relative_interpreter_is_ignored() {
        let mut m = machine();
        let script = p("/usr/local/bin/tool");
        m.write_executable(&script, b"#!env python3\nx").unwrap();
        // Relative interpreter: only the script itself is measured.
        let report = m.exec(&script, ExecMethod::Shebang).unwrap();
        assert_eq!(report.measured_paths, vec![script.to_string()]);
    }

    #[test]
    fn shebang_with_args_extracts_interpreter() {
        let mut m = machine();
        m.write_executable(&p("/bin/bash"), b"bash").unwrap();
        let script = p("/usr/local/bin/run.sh");
        m.write_executable(&script, b"#!/bin/bash -eu\necho hi")
            .unwrap();
        let report = m.exec(&script, ExecMethod::Shebang).unwrap();
        assert!(report.measured_paths.contains(&"/bin/bash".to_string()));
    }

    #[test]
    fn write_executable_creates_parents() {
        let mut m = machine();
        let deep = p("/opt/new/deep/dir/tool");
        m.write_executable(&deep, b"x").unwrap();
        assert!(m.vfs.metadata(&deep).unwrap().mode.is_executable());
    }

    #[test]
    fn run_updates_advances_clock() {
        let mut m = machine();
        let before = m.clock.minutes_since_epoch();
        let packages: Vec<cia_distro::Package> = Vec::new();
        m.run_updates(packages.iter()).unwrap();
        assert!(m.clock.minutes_since_epoch() > before);
    }

    #[test]
    fn recorded_path_identity_outside_snaps() {
        let m = machine();
        let path = p("/usr/bin/anything");
        assert_eq!(m.recorded_path(&path), path);
    }

    #[test]
    fn mmap_library_measures_in_policy_path() {
        let mut m = machine();
        let lib = p("/usr/lib/libfoo.so");
        m.write_executable(&lib, b"lib").unwrap();
        m.mmap_library(&lib).unwrap();
        assert_eq!(
            m.ima.log().entries().last().unwrap().path,
            "/usr/lib/libfoo.so"
        );
        assert_eq!(
            m.ima.log().entries().last().unwrap().filedata_hash,
            HashAlgorithm::Sha256.digest(b"lib")
        );
    }

    #[test]
    fn boot_aggregate_changes_with_kernel() {
        // Two machines differing only in the running kernel have
        // different boot aggregates (PCR 4 binds the kernel).
        let mut rng = StdRng::seed_from_u64(9);
        let mfr = Manufacturer::generate(&mut rng);
        let m1 = Machine::new(
            &mfr,
            MachineConfig {
                running_kernel: "5.15.0-76".into(),
                ..MachineConfig::default()
            },
        );
        let m2 = Machine::new(
            &mfr,
            MachineConfig {
                running_kernel: "5.15.0-99".into(),
                ..MachineConfig::default()
            },
        );
        assert_ne!(
            m1.ima.log().entries()[0].filedata_hash,
            m2.ima.log().entries()[0].filedata_hash
        );
    }
}

#[cfg(test)]
mod appraisal_tests {
    use super::*;
    use cia_crypto::KeyPair;
    use cia_ima::{sign_file, AppraisalKeyring};

    fn p(s: &str) -> VfsPath {
        VfsPath::new(s).unwrap()
    }

    fn enforcing_machine() -> (Machine, KeyPair) {
        let mut rng = StdRng::seed_from_u64(77);
        let manufacturer = Manufacturer::generate(&mut rng);
        let kp = KeyPair::from_material([5u8; 32]);
        let mut keyring = AppraisalKeyring::new();
        keyring.trust(kp.verifying.clone());
        let m = Machine::new(
            &manufacturer,
            MachineConfig {
                appraisal: Some(keyring),
                ..MachineConfig::default()
            },
        );
        (m, kp)
    }

    #[test]
    fn signed_binary_runs_and_is_measured() {
        let (mut m, kp) = enforcing_machine();
        let tool = p("/usr/bin/tool");
        m.write_executable(&tool, b"signed tool").unwrap();
        sign_file(&mut m.vfs, &tool, &kp.signing).unwrap();
        let report = m.exec(&tool, ExecMethod::Direct).unwrap();
        assert!(report.target_evaluated);
    }

    #[test]
    fn unsigned_payload_cannot_run_at_all() {
        let (mut m, _) = enforcing_machine();
        let payload = p("/tmp/payload");
        m.write_executable(&payload, b"dropped malware").unwrap();
        // Under measurement-only IMA this would run (and, in /tmp, evade
        // Keylime via P1). Under enforcement it never executes.
        let err = m.exec(&payload, ExecMethod::Direct).unwrap_err();
        assert!(matches!(err, MachineError::AppraisalDenied { .. }));
        // Nothing beyond boot_aggregate entered the log either.
        assert_eq!(m.ima.log().len(), 1);
    }

    #[test]
    fn trojaned_signed_binary_blocked() {
        let (mut m, kp) = enforcing_machine();
        let tool = p("/usr/bin/tool");
        m.write_executable(&tool, b"v1").unwrap();
        sign_file(&mut m.vfs, &tool, &kp.signing).unwrap();
        m.exec(&tool, ExecMethod::Direct).unwrap();
        // Attacker rewrites the binary: the stale signature fails closed.
        m.vfs
            .write_file(&tool, b"TROJANED".to_vec(), Mode::EXEC)
            .unwrap();
        assert!(matches!(
            m.exec(&tool, ExecMethod::Direct),
            Err(MachineError::AppraisalDenied { .. })
        ));
    }

    #[test]
    fn unsigned_module_load_blocked() {
        let (mut m, _) = enforcing_machine();
        let module = p("/lib/modules/rootkit.ko");
        m.vfs
            .create_file(&module, b"rootkit".to_vec(), Mode::REGULAR)
            .unwrap();
        assert!(matches!(
            m.load_module(&module),
            Err(MachineError::AppraisalDenied { .. })
        ));
    }

    #[test]
    fn measurement_only_machine_is_unchanged() {
        // The paper's configuration: appraisal off, everything runs.
        let mut rng = StdRng::seed_from_u64(78);
        let manufacturer = Manufacturer::generate(&mut rng);
        let mut m = Machine::new(&manufacturer, MachineConfig::default());
        let payload = p("/tmp/payload");
        m.write_executable(&payload, b"dropped malware").unwrap();
        assert!(m.exec(&payload, ExecMethod::Direct).is_ok());
    }
}
