//! Property-based tests for the machine simulator.
//!
//! The central invariant of the whole attestation stack: **after any
//! sequence of operations, the IMA measurement list replays exactly to
//! TPM PCR 10** — in both banks, across reboots, regardless of what ran,
//! moved, or got rewritten. If this ever breaks, verifiers would reject
//! honest machines (or worse, accept dishonest ones).

use cia_crypto::HashAlgorithm;
use cia_ima::IMA_PCR;
use cia_os::{ExecMethod, Machine, MachineConfig};
use cia_tpm::Manufacturer;
use cia_vfs::{Mode, VfsPath};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A randomly chosen machine operation.
#[derive(Debug, Clone)]
enum Op {
    Write { slot: u8, content: u8 },
    Exec { slot: u8 },
    ExecViaInterpreter { slot: u8 },
    Mmap { slot: u8 },
    LoadModule { slot: u8 },
    MoveToUsr { slot: u8 },
    Reboot,
}

fn op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (any::<u8>(), any::<u8>()).prop_map(|(slot, content)| Op::Write { slot, content }),
        any::<u8>().prop_map(|slot| Op::Exec { slot }),
        any::<u8>().prop_map(|slot| Op::ExecViaInterpreter { slot }),
        any::<u8>().prop_map(|slot| Op::Mmap { slot }),
        any::<u8>().prop_map(|slot| Op::LoadModule { slot }),
        any::<u8>().prop_map(|slot| Op::MoveToUsr { slot }),
        Just(Op::Reboot),
    ]
}

fn slot_path(slot: u8) -> VfsPath {
    let dir = match slot % 4 {
        0 => "/usr/bin",
        1 => "/tmp",
        2 => "/dev/shm",
        _ => "/opt",
    };
    VfsPath::new(&format!("{dir}/slot-{}", slot % 16)).unwrap()
}

fn apply(machine: &mut Machine, op: &Op) {
    match op {
        Op::Write { slot, content } => {
            let path = slot_path(*slot);
            if let Some(parent) = path.parent() {
                let _ = machine.vfs.mkdir_p(&parent);
            }
            let _ = machine
                .vfs
                .write_file(&path, vec![*content; 16], Mode::EXEC);
            let _ = machine.vfs.chmod_exec(&path, true);
        }
        Op::Exec { slot } => {
            let _ = machine.exec(&slot_path(*slot), ExecMethod::Direct);
        }
        Op::ExecViaInterpreter { slot } => {
            let _ = machine.exec(
                &slot_path(*slot),
                ExecMethod::Interpreter {
                    interpreter: "/usr/bin/python3".to_string(),
                    supports_exec_control: false,
                },
            );
        }
        Op::Mmap { slot } => {
            let _ = machine.mmap_library(&slot_path(*slot));
        }
        Op::LoadModule { slot } => {
            let _ = machine.load_module(&slot_path(*slot));
        }
        Op::MoveToUsr { slot } => {
            let to = VfsPath::new(&format!("/usr/bin/moved-{}", slot % 16)).unwrap();
            let _ = machine.vfs.move_entry(&slot_path(*slot), &to);
        }
        Op::Reboot => {
            machine.reboot().unwrap();
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Replay == PCR 10, always, in both banks.
    #[test]
    fn log_replay_matches_pcr_under_arbitrary_ops(ops in proptest::collection::vec(op(), 0..60)) {
        let mut rng = StdRng::seed_from_u64(0);
        let manufacturer = Manufacturer::generate(&mut rng);
        let mut machine = Machine::new(&manufacturer, MachineConfig::default());
        machine
            .write_executable(&VfsPath::new("/usr/bin/python3").unwrap(), b"py")
            .unwrap();
        for op in &ops {
            apply(&mut machine, op);
            for bank in [HashAlgorithm::Sha1, HashAlgorithm::Sha256] {
                prop_assert_eq!(
                    machine.ima.log().replay(bank),
                    machine.tpm.pcr_read(bank, IMA_PCR).unwrap(),
                    "after {:?}", op
                );
            }
        }
        // The log never loses its boot_aggregate head.
        prop_assert_eq!(&machine.ima.log().entries()[0].path, cia_ima::BOOT_AGGREGATE_NAME);
    }

    /// The measurement list is append-only between reboots: earlier
    /// entries never change.
    #[test]
    fn log_is_append_only(ops in proptest::collection::vec(op(), 0..40)) {
        let mut rng = StdRng::seed_from_u64(0);
        let manufacturer = Manufacturer::generate(&mut rng);
        let mut machine = Machine::new(&manufacturer, MachineConfig::default());
        machine
            .write_executable(&VfsPath::new("/usr/bin/python3").unwrap(), b"py")
            .unwrap();
        let mut prefix: Vec<String> = Vec::new();
        for op in &ops {
            if matches!(op, Op::Reboot) {
                apply(&mut machine, op);
                prefix.clear();
                continue;
            }
            apply(&mut machine, op);
            let rendered: Vec<String> =
                machine.ima.log().entries().iter().map(|e| e.render()).collect();
            prop_assert!(rendered.len() >= prefix.len());
            prop_assert_eq!(&rendered[..prefix.len()], &prefix[..], "prefix changed after {:?}", op);
            prefix = rendered;
        }
    }

    /// tmpfs slots never appear in the measurement list (P3) and /tmp
    /// slots always carry their /tmp path when measured (P1 fodder).
    #[test]
    fn measurement_paths_respect_policy(ops in proptest::collection::vec(op(), 0..40)) {
        let mut rng = StdRng::seed_from_u64(0);
        let manufacturer = Manufacturer::generate(&mut rng);
        let mut machine = Machine::new(&manufacturer, MachineConfig::default());
        machine
            .write_executable(&VfsPath::new("/usr/bin/python3").unwrap(), b"py")
            .unwrap();
        for op in &ops {
            apply(&mut machine, op);
        }
        for entry in machine.ima.log().entries() {
            prop_assert!(
                !entry.path.starts_with("/dev/shm/"),
                "tmpfs execution leaked into the log: {}",
                entry.path
            );
        }
    }
}
