//! Property-based tests for the dynamic policy generator.
//!
//! The generator's contract: after any sequence of mirror syncs, diffs,
//! and dedup passes, the policy (a) contains the latest digest of every
//! executable the mirror carries, and (b) after a dedup, contains *only*
//! latest digests for deduped paths — so a machine that is fully updated
//! from the mirror can never false-positive, and stale binaries
//! eventually stop verifying.

use cia_core::{DynamicPolicyGenerator, GeneratorConfig};
use cia_crypto::HashAlgorithm;
use cia_distro::{Mirror, ReleaseStream, StreamProfile};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Delta faithfulness: for an arbitrary mirror history — skipped
    /// sync days, mid-window or post-window delta takes, kernel reboots
    /// implied by the stream — replaying every
    /// [`DynamicPolicyGenerator::take_delta`] on a replica of the initial
    /// policy reproduces the generator's policy structurally
    /// (`PolicyDiff` empty) after every single take.
    #[test]
    fn delta_replay_matches_generator(
        seed in 0u64..1000,
        days in proptest::collection::vec((any::<bool>(), any::<bool>()), 1..15),
    ) {
        let (mut stream, mut repo) = ReleaseStream::new(StreamProfile::small(seed));
        let mut mirror = Mirror::new();
        mirror.sync(&repo, 0);
        let (mut generator, _) = DynamicPolicyGenerator::generate_initial(
            &mirror,
            "5.15.0-76",
            0,
            GeneratorConfig::paper_default(),
        );
        let mut replica = generator.policy().clone();

        for (i, &(sync, dedup)) in days.iter().enumerate() {
            let day = i as u32 + 1;
            repo.apply_release(&stream.next_day());
            if sync {
                let diff = mirror.sync(&repo, day);
                generator.apply_diff(&diff, day);
                if dedup {
                    generator.finish_update_window();
                }
            }
            replica.apply_delta(&generator.take_delta());
            let diff = replica.diff(generator.policy());
            prop_assert!(diff.is_empty(), "replica diverged on day {day}: {diff:?}");
        }
        // Bit-level agreement at the end, not just structural.
        prop_assert_eq!(replica.to_json(), generator.policy().to_json());
    }

    /// Worker-count independence: the same history generates a
    /// bit-identical policy and reports under 1, 4 and 8 hash workers.
    #[test]
    fn generation_reports_independent_of_workers(
        seed in 0u64..500,
        day_count in 1usize..8,
    ) {
        let run = |workers: usize| {
            let (mut stream, mut repo) = ReleaseStream::new(StreamProfile::small(seed));
            let mut mirror = Mirror::new();
            mirror.sync(&repo, 0);
            let config = GeneratorConfig { hash_workers: workers, ..GeneratorConfig::paper_default() };
            let (mut generator, initial) =
                DynamicPolicyGenerator::generate_initial(&mirror, "5.15.0-76", 0, config);
            let mut reports = vec![initial];
            for day in 1..=day_count as u32 {
                repo.apply_release(&stream.next_day());
                let diff = mirror.sync(&repo, day);
                reports.push(generator.apply_diff(&diff, day));
            }
            (reports, generator.policy().to_json())
        };
        let baseline = run(1);
        for workers in [4usize, 8] {
            prop_assert_eq!(&run(workers), &baseline, "workers = {}", workers);
        }
    }

    /// Coverage invariant across arbitrary update cadences.
    #[test]
    fn policy_always_covers_the_mirror(
        seed in 0u64..1000,
        sync_days in proptest::collection::vec(any::<bool>(), 1..15),
        dedup_after in any::<bool>(),
    ) {
        let (mut stream, mut repo) = ReleaseStream::new(StreamProfile::small(seed));
        let mut mirror = Mirror::new();
        mirror.sync(&repo, 0);
        let (mut generator, _) = DynamicPolicyGenerator::generate_initial(
            &mirror,
            "5.15.0-76",
            0,
            GeneratorConfig::paper_default(),
        );

        for (i, &sync) in sync_days.iter().enumerate() {
            let day = i as u32 + 1;
            repo.apply_release(&stream.next_day());
            if sync {
                let diff = mirror.sync(&repo, day);
                generator.apply_diff(&diff, day);
                if dedup_after {
                    generator.finish_update_window();
                }
            }
        }

        // Every executable currently on the mirror verifies against the
        // policy (kernel packages follow the staging rules and are
        // checked separately below).
        let policy = generator.policy();
        for pkg in mirror.packages().filter(|p| !p.is_kernel) {
            for file in pkg.executable_files() {
                let digest = HashAlgorithm::Sha256.digest(&file.content()).to_hex();
                let allowed = policy
                    .digests_for(&file.install_path)
                    .map(|set| set.contains(&digest))
                    .unwrap_or(false);
                prop_assert!(
                    allowed,
                    "mirror file {} (pkg {}) missing from policy",
                    file.install_path,
                    pkg.name
                );
            }
        }

        // The active kernel's modules are present under versioned paths.
        let active = generator.active_kernel().to_string();
        let kernel_pkg = mirror.packages().find(|p| p.is_kernel).cloned();
        if let Some(kernel) = kernel_pkg {
            if kernel.kernel_release().as_deref() == Some(active.as_str()) {
                for file in kernel.executable_files() {
                    let path = cia_distro::rewrite_kernel_path(&file.install_path, &active);
                    prop_assert!(
                        policy.digests_for(&path).is_some(),
                        "active kernel file {path} missing"
                    );
                }
            }
        }
    }

    /// Dedup never removes the latest digest and never leaves extras for
    /// the paths it touched.
    #[test]
    fn dedup_preserves_latest(seed in 0u64..1000, days in 1usize..10) {
        let (mut stream, mut repo) = ReleaseStream::new(StreamProfile::small(seed));
        let mut mirror = Mirror::new();
        mirror.sync(&repo, 0);
        let (mut generator, _) = DynamicPolicyGenerator::generate_initial(
            &mirror,
            "5.15.0-76",
            0,
            GeneratorConfig::paper_default(),
        );
        let mut touched: Vec<String> = Vec::new();
        for day in 1..=days as u32 {
            repo.apply_release(&stream.next_day());
            let diff = mirror.sync(&repo, day);
            for pkg in diff.iter().filter(|p| !p.is_kernel) {
                for f in pkg.executable_files() {
                    touched.push(f.install_path.clone());
                }
            }
            generator.apply_diff(&diff, day);
        }
        generator.finish_update_window();
        let policy = generator.policy();
        for path in &touched {
            if let Some(set) = policy.digests_for(path) {
                prop_assert_eq!(set.len(), 1, "{} kept stale digests", path);
            }
        }
    }
}
