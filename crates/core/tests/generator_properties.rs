//! Property-based tests for the dynamic policy generator.
//!
//! The generator's contract: after any sequence of mirror syncs, diffs,
//! and dedup passes, the policy (a) contains the latest digest of every
//! executable the mirror carries, and (b) after a dedup, contains *only*
//! latest digests for deduped paths — so a machine that is fully updated
//! from the mirror can never false-positive, and stale binaries
//! eventually stop verifying.

use cia_core::{DynamicPolicyGenerator, GeneratorConfig};
use cia_crypto::HashAlgorithm;
use cia_distro::{Mirror, ReleaseStream, StreamProfile};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Coverage invariant across arbitrary update cadences.
    #[test]
    fn policy_always_covers_the_mirror(
        seed in 0u64..1000,
        sync_days in proptest::collection::vec(any::<bool>(), 1..15),
        dedup_after in any::<bool>(),
    ) {
        let (mut stream, mut repo) = ReleaseStream::new(StreamProfile::small(seed));
        let mut mirror = Mirror::new();
        mirror.sync(&repo, 0);
        let (mut generator, _) = DynamicPolicyGenerator::generate_initial(
            &mirror,
            "5.15.0-76",
            0,
            GeneratorConfig::paper_default(),
        );

        for (i, &sync) in sync_days.iter().enumerate() {
            let day = i as u32 + 1;
            repo.apply_release(&stream.next_day());
            if sync {
                let diff = mirror.sync(&repo, day);
                generator.apply_diff(&diff, day);
                if dedup_after {
                    generator.finish_update_window();
                }
            }
        }

        // Every executable currently on the mirror verifies against the
        // policy (kernel packages follow the staging rules and are
        // checked separately below).
        let policy = generator.policy();
        for pkg in mirror.packages().filter(|p| !p.is_kernel) {
            for file in pkg.executable_files() {
                let digest = HashAlgorithm::Sha256.digest(&file.content()).to_hex();
                let allowed = policy
                    .digests_for(&file.install_path)
                    .map(|set| set.contains(&digest))
                    .unwrap_or(false);
                prop_assert!(
                    allowed,
                    "mirror file {} (pkg {}) missing from policy",
                    file.install_path,
                    pkg.name
                );
            }
        }

        // The active kernel's modules are present under versioned paths.
        let active = generator.active_kernel().to_string();
        let kernel_pkg = mirror.packages().find(|p| p.is_kernel).cloned();
        if let Some(kernel) = kernel_pkg {
            if kernel.kernel_release().as_deref() == Some(active.as_str()) {
                for file in kernel.executable_files() {
                    let path = cia_distro::rewrite_kernel_path(&file.install_path, &active);
                    prop_assert!(
                        policy.digests_for(&path).is_some(),
                        "active kernel file {path} missing"
                    );
                }
            }
        }
    }

    /// Dedup never removes the latest digest and never leaves extras for
    /// the paths it touched.
    #[test]
    fn dedup_preserves_latest(seed in 0u64..1000, days in 1usize..10) {
        let (mut stream, mut repo) = ReleaseStream::new(StreamProfile::small(seed));
        let mut mirror = Mirror::new();
        mirror.sync(&repo, 0);
        let (mut generator, _) = DynamicPolicyGenerator::generate_initial(
            &mirror,
            "5.15.0-76",
            0,
            GeneratorConfig::paper_default(),
        );
        let mut touched: Vec<String> = Vec::new();
        for day in 1..=days as u32 {
            repo.apply_release(&stream.next_day());
            let diff = mirror.sync(&repo, day);
            for pkg in diff.iter().filter(|p| !p.is_kernel) {
                for f in pkg.executable_files() {
                    touched.push(f.install_path.clone());
                }
            }
            generator.apply_diff(&diff, day);
        }
        generator.finish_update_window();
        let policy = generator.policy();
        for path in &touched {
            if let Some(set) = policy.digests_for(path) {
                prop_assert_eq!(set.len(), 1, "{} kept stale digests", path);
            }
        }
    }
}
