//! Experiment-level assertions: the paper's headline §III results hold on
//! the test-scale profiles.

use cia_core::experiments::{run_fp_week, run_longrun, FpWeekConfig, LongRunConfig, UpdateCadence};
use cia_keylime::FailureKind;

#[test]
fn static_policy_week_produces_false_positives() {
    let report = run_fp_week(FpWeekConfig::small(3));
    assert!(
        report.total_false_positives() > 0,
        "a static policy under unattended upgrades must false-positive"
    );
    // Both §III-B error classes appear.
    assert!(report.hash_mismatches() > 0, "updates rewrite executables");
    assert!(
        report.snap_truncation_errors() > 0,
        "SNAP measurements appear truncated"
    );
    // Nothing other than policy failures fired (no quote/PCR issues).
    for alert in report.all_alerts() {
        assert!(matches!(
            alert.kind,
            FailureKind::HashMismatch { .. } | FailureKind::NotInPolicy { .. }
        ));
    }
}

#[test]
fn fp_week_without_snaps_has_no_truncation_errors() {
    let mut config = FpWeekConfig::small(3);
    config.with_snaps = false;
    let report = run_fp_week(config);
    assert_eq!(report.snap_truncation_errors(), 0);
}

#[test]
fn dynamic_policy_eliminates_false_positives() {
    let report = run_longrun(LongRunConfig::small(5));
    assert_eq!(
        report.false_positives(),
        0,
        "disciplined dynamic-policy operation must be FP-free; got {:?}",
        report.alerts
    );
    assert!(report.verified > 0);
    assert!(!report.updates.is_empty());
    // The policy grew (updates appended entries).
    assert!(report.updates.iter().any(|u| u.lines_added > 0));
}

#[test]
fn dynamic_policy_weekly_cadence_also_fp_free() {
    let mut config = LongRunConfig::small(6);
    config.days = 21;
    config.cadence = UpdateCadence::Weekly;
    let report = run_longrun(config);
    assert_eq!(report.false_positives(), 0, "{:?}", report.alerts);
    assert_eq!(report.updates.len(), 3, "three weekly updates in 21 days");
}

#[test]
fn misconfiguration_day_fires_the_march_27_fp() {
    let mut config = LongRunConfig::small(5);
    // Day 5 is a day on which (under this seed) the late upstream release
    // actually updates packages installed on the machine — like March 27,
    // the FP only fires when the skewed update touches something that runs.
    config.misconfig_day = Some(5);
    let report = run_longrun(config);
    assert!(
        report.false_positives() > 0,
        "updating from upstream after the mirror sync must trip attestation"
    );
    // All alerts stem from that day's benign update — policy failures only.
    for (alert, _) in report.alerts.iter().zip(0..) {
        assert!(matches!(
            alert.kind,
            FailureKind::HashMismatch { .. } | FailureKind::NotInPolicy { .. }
        ));
        assert!(alert.day >= 5);
    }
}

#[test]
fn kernel_updates_survive_reboots_without_fps() {
    let mut config = LongRunConfig::small(7);
    // Small profile updates the kernel every 12 days by default; run long
    // enough to cross two kernel reboots.
    config.days = 26;
    let report = run_longrun(config);
    assert_eq!(report.false_positives(), 0, "{:?}", report.alerts);
    let reboots = report.updates.iter().filter(|u| u.kernel_reboot).count();
    assert!(reboots >= 2, "expected kernel reboots, got {reboots}");
}

#[test]
fn update_records_feed_the_figures() {
    let report = run_longrun(LongRunConfig::small(8));
    for u in &report.updates {
        assert!(u.minutes > 0.0, "every update takes time (mirror refresh)");
        assert!(u.packages_high + u.packages_low == u.packages);
        assert!(u.policy_lines_total >= report.initial.policy_lines_total);
    }
    // Fig. 3's property: updates are minutes, not hours.
    assert!(report.mean(|u| u.minutes) < 60.0);
    // Incremental updates are far cheaper than the initial generation.
    assert!(report.initial_minutes > 3.0 * report.mean(|u| u.minutes));
}
