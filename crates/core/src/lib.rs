//! Dynamic policy generation for continuous integrity attestation — the
//! paper's primary contribution (§III-C) — plus the experiment drivers
//! that reproduce its evaluation.
//!
//! The problem: a static Keylime runtime policy false-positives as soon as
//! the OS updates itself (hash mismatches for rewritten executables,
//! missing-from-policy alerts for new ones). The fix evaluated by the
//! paper:
//!
//! 1. operators disable unattended upgrades and run a **local mirror** of
//!    the distribution's `Main`/`Security`/`Updates` pockets;
//! 2. a [`DynamicPolicyGenerator`] syncs the mirror on a schedule and,
//!    *before* machines update, hashes the executables of every new or
//!    changed package and **appends** them to the runtime policy (old
//!    digests are retained during the update window and deduplicated
//!    afterwards);
//! 3. kernel packages are staged: their module digests enter the policy
//!    only when the kernel actually boots, and the outdated kernel's
//!    modules are disallowed after the reboot;
//! 4. machines then update **from the mirror only** — the one false
//!    positive in the paper's 66 days came from violating exactly this
//!    rule (the March-27 misconfiguration, reproducible via
//!    [`experiments::LongRunConfig::misconfig_day`]).
//!
//! The [`experiments`] module drives the paper's §III evaluation: the
//! one-week static-policy false-positive experiment and the 31-day /
//! 35-day dynamic-policy runs behind Figs. 3–5 and Table I. The
//! [`costmodel`] module converts the generator's measured work (bytes
//! synced, files hashed) into simulated wall-clock minutes comparable to
//! the paper's Fig. 3.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod costmodel;
pub mod experiments;
pub mod generator;
pub mod initial_policy;

pub use costmodel::CostModel;
pub use generator::{
    DedupStats, DynamicPolicyGenerator, GenerationReport, GeneratorConfig, DEFAULT_HASH_WORKERS,
};
pub use initial_policy::scan_machine_policy;
