//! Heterogeneous fleet: mixed attestation backends in one deployment.
//!
//! Real fleets are not all TPM-backed servers. This experiment runs one
//! verifier over three backend families at once — TPM+IMA machines,
//! secure-world (TrustZone-style) edge devices, and confidential VMs —
//! and checks the operator-facing properties the backend abstraction
//! must preserve:
//!
//! 1. **every family verifies cleanly** under benign daily activity, and
//!    the per-backend metric splits refine the fleet aggregates exactly;
//! 2. **each family's characteristic compromise is detected** — a
//!    dropped implant (TPM+IMA), an unapproved trusted application
//!    (secure world), and a launch-image substitution (confidential
//!    VM) — without cross-family false positives;
//! 3. **the sweep stays deterministic** per seed, with or without
//!    transport loss, regardless of worker count.

use cia_crypto::HashAlgorithm;
use cia_keylime::{
    AgentId, Alert, BackendKind, Cluster, ConfidentialVmConfig, LossyTransport, MetricsSnapshot,
    PerBackendCounts, RoundOutcome, RuntimePolicy, SecureWorldConfig, VerifierConfig,
};
use cia_os::{ExecMethod, MachineConfig};
use cia_vfs::VfsPath;

const TPM_TOOL: &str = "/usr/bin/fleet-tool";
const TPM_TOOL_CONTENT: &[u8] = b"approved fleet tool";
const TPM_IMPLANT: &str = "/usr/sbin/implant";
const SW_TA: &str = "/ta/keymaster";
const SW_TA_CONTENT: &[u8] = b"approved keymaster applet";
const SW_BACKDOOR: &str = "/ta/backdoor";
const CVM_SVC: &str = "/opt/svc/agentd";
const CVM_SVC_CONTENT: &[u8] = b"confidential service daemon";

/// Configuration of the heterogeneous-fleet experiment.
#[derive(Debug, Clone)]
pub struct HeteroConfig {
    /// TPM+IMA machines.
    pub tpm_nodes: usize,
    /// Secure-world devices.
    pub secure_world_nodes: usize,
    /// Confidential VMs.
    pub confidential_vm_nodes: usize,
    /// Days to run (one fleet sweep per day).
    pub days: u32,
    /// Day the implant lands on the first TPM node, if any.
    pub tpm_compromise: Option<u32>,
    /// Day a rogue trusted app loads on the first secure-world device.
    pub secure_world_compromise: Option<u32>,
    /// Day the first confidential VM relaunches from a tampered image.
    pub confidential_vm_compromise: Option<u32>,
    /// Cluster seed.
    pub seed: u64,
    /// Fraction of transport calls dropped (0.0 = reliable).
    pub drop_rate: f64,
    /// Fleet-scheduler worker threads.
    pub workers: usize,
}

impl HeteroConfig {
    /// A test-scale mixed fleet with one compromise per family.
    pub fn small(seed: u64) -> Self {
        HeteroConfig {
            tpm_nodes: 2,
            secure_world_nodes: 2,
            confidential_vm_nodes: 2,
            days: 6,
            tpm_compromise: Some(2),
            secure_world_compromise: Some(3),
            confidential_vm_compromise: Some(4),
            seed,
            drop_rate: 0.0,
            workers: 3,
        }
    }

    /// A lossy variant of [`HeteroConfig::small`]: 10% message loss.
    pub fn small_lossy(seed: u64) -> Self {
        HeteroConfig {
            drop_rate: 0.10,
            ..HeteroConfig::small(seed)
        }
    }
}

/// The experiment's outcome.
#[derive(Debug, Clone, Default)]
pub struct HeteroReport {
    /// Alerts not attributable to a scheduled compromise (must be empty).
    pub false_positives: Vec<Alert>,
    /// First detection of each scheduled compromise:
    /// `(family, agent, day)`.
    pub detections: Vec<(BackendKind, AgentId, u32)>,
    /// Total polls across all sweeps.
    pub attestations: u64,
    /// Clean polls.
    pub verified: u64,
    /// Polls the engine could not complete within the retry budget.
    pub unreachable: u64,
    /// Final per-backend verified/failed/unreachable splits.
    pub per_backend: PerBackendCounts,
    /// The fleet engine's accumulated metrics.
    pub metrics: MetricsSnapshot,
}

/// Runs the heterogeneous-fleet experiment.
///
/// # Panics
///
/// Panics on internal simulator errors (deterministic by construction).
pub fn run_hetero(config: HeteroConfig) -> HeteroReport {
    let verifier_config = VerifierConfig::builder()
        .continue_on_failure(true)
        .max_retries(16)
        .retry_backoff_ms(5)
        .worker_count(config.workers.max(1))
        .structured_excerpt(true)
        .build()
        .expect("hetero verifier config is valid");
    let transport = LossyTransport::new(config.drop_rate, config.seed ^ 0xbe7e);
    let mut cluster = Cluster::with_transport(config.seed, verifier_config, transport);

    let mut sw_policy = RuntimePolicy::new();
    sw_policy.allow(SW_TA, HashAlgorithm::Sha256.digest(SW_TA_CONTENT).to_hex());
    let mut cvm_policy = RuntimePolicy::new();
    cvm_policy.allow(
        CVM_SVC,
        HashAlgorithm::Sha256.digest(CVM_SVC_CONTENT).to_hex(),
    );

    let mut tpm_ids = Vec::new();
    for n in 0..config.tpm_nodes {
        let machine = MachineConfig {
            hostname: format!("tpm-{n:02}"),
            seed: config.seed ^ (0x100 + n as u64),
            ..MachineConfig::default()
        };
        let id = cluster
            .add_machine(machine, RuntimePolicy::new())
            .expect("tpm enrolment");
        let mut policy = RuntimePolicy::new();
        policy.exclude("/tmp");
        {
            let m = cluster.agent_mut(&id).unwrap().machine_mut();
            m.write_executable(&VfsPath::new(TPM_TOOL).unwrap(), TPM_TOOL_CONTENT)
                .unwrap();
            let digest = m
                .vfs
                .file_digest(&VfsPath::new(TPM_TOOL).unwrap(), HashAlgorithm::Sha256)
                .unwrap();
            policy.allow(TPM_TOOL, digest.to_hex());
        }
        cluster.verifier.update_policy(&id, policy).unwrap();
        tpm_ids.push(id);
    }
    let mut sw_ids = Vec::new();
    for n in 0..config.secure_world_nodes {
        let id = cluster
            .add_secure_world(
                SecureWorldConfig::new(format!("edge-{n:02}"), config.seed ^ (0x200 + n as u64)),
                sw_policy.clone(),
            )
            .expect("secure-world enrolment");
        sw_ids.push(id);
    }
    let mut cvm_ids = Vec::new();
    for n in 0..config.confidential_vm_nodes {
        let id = cluster
            .add_confidential_vm(
                ConfidentialVmConfig::new(format!("cvm-{n:02}"), config.seed ^ (0x300 + n as u64)),
                cvm_policy.clone(),
            )
            .expect("confidential-vm enrolment");
        cvm_ids.push(id);
    }

    let mut report = HeteroReport::default();
    for day in 1..=config.days {
        // Benign daily activity on every family.
        for id in &tpm_ids {
            let m = cluster.agent_mut(id).unwrap().machine_mut();
            m.exec(&VfsPath::new(TPM_TOOL).unwrap(), ExecMethod::Direct)
                .unwrap();
            m.clock.next_day();
        }
        for id in &sw_ids {
            let sw = cluster
                .agent_mut(id)
                .unwrap()
                .backend_mut()
                .as_secure_world_mut()
                .unwrap();
            assert!(sw.load_trusted_app(SW_TA, SW_TA_CONTENT));
            sw.advance_days(1);
        }
        for id in &cvm_ids {
            let cvm = cluster
                .agent_mut(id)
                .unwrap()
                .backend_mut()
                .as_confidential_vm_mut()
                .unwrap();
            cvm.exec_measured(CVM_SVC, CVM_SVC_CONTENT);
            cvm.advance_days(1);
        }

        // Scheduled compromises, one per family surface.
        if config.tpm_compromise == Some(day) {
            let m = cluster.agent_mut(&tpm_ids[0]).unwrap().machine_mut();
            m.write_executable(&VfsPath::new(TPM_IMPLANT).unwrap(), b"c2 implant")
                .unwrap();
            m.exec(&VfsPath::new(TPM_IMPLANT).unwrap(), ExecMethod::Direct)
                .unwrap();
        }
        if config.secure_world_compromise == Some(day) {
            let sw = cluster
                .agent_mut(&sw_ids[0])
                .unwrap()
                .backend_mut()
                .as_secure_world_mut()
                .unwrap();
            assert!(sw.load_trusted_app(SW_BACKDOOR, b"rogue applet"));
        }
        if config.confidential_vm_compromise == Some(day) {
            let cvm = cluster
                .agent_mut(&cvm_ids[0])
                .unwrap()
                .backend_mut()
                .as_confidential_vm_mut()
                .unwrap();
            cvm.relaunch_with_image(b"attacker image");
        }

        let round = cluster.attest_fleet();
        assert_eq!(
            round.results.len(),
            tpm_ids.len() + sw_ids.len() + cvm_ids.len(),
            "no agent may go missing"
        );
        for result in &round.results {
            report.attestations += 1;
            match &result.outcome {
                RoundOutcome::Verified { .. } => report.verified += 1,
                RoundOutcome::Failed { alerts } => {
                    for alert in alerts {
                        let rendered = format!("{:?}", alert.kind);
                        let expected = match result.backend {
                            BackendKind::TpmIma => rendered.contains(TPM_IMPLANT),
                            BackendKind::SecureWorld => rendered.contains(SW_BACKDOOR),
                            BackendKind::ConfidentialVm => {
                                rendered.contains("LaunchMeasurementMismatch")
                            }
                            _ => false,
                        };
                        let already = report.detections.iter().any(|(_, id, _)| id == &result.id);
                        if expected {
                            if !already {
                                report
                                    .detections
                                    .push((result.backend, result.id.clone(), day));
                            }
                        } else {
                            report.false_positives.push(alert.clone());
                        }
                    }
                }
                RoundOutcome::Unreachable { .. } => report.unreachable += 1,
                _ => {}
            }
        }
    }

    report.metrics = cluster.scheduler.snapshot();
    report.per_backend = report.metrics.per_backend;
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mixed_fleet_detects_every_family_compromise() {
        let report = run_hetero(HeteroConfig::small(41));
        assert!(
            report.false_positives.is_empty(),
            "mixed fleet must be FP-free: {:?}",
            report.false_positives
        );
        assert_eq!(report.detections.len(), 3, "{:?}", report.detections);
        let day_of = |kind: BackendKind| {
            report
                .detections
                .iter()
                .find(|(k, _, _)| *k == kind)
                .map(|(_, _, d)| *d)
        };
        assert_eq!(day_of(BackendKind::TpmIma), Some(2));
        assert_eq!(day_of(BackendKind::SecureWorld), Some(3));
        assert_eq!(day_of(BackendKind::ConfidentialVm), Some(4));
        assert_eq!(report.unreachable, 0);
    }

    #[test]
    fn per_backend_splits_refine_the_fleet_aggregates() {
        let report = run_hetero(HeteroConfig::small(42));
        assert!(report.metrics.is_conserved(), "{:?}", report.metrics);
        assert!(report.metrics.backends_consistent(), "{:?}", report.metrics);
        // Every family produced clean rounds, and the splits add up.
        for kind in BackendKind::ALL {
            assert!(
                report.per_backend.for_kind(kind).verified > 0,
                "{kind:?} never verified"
            );
        }
        let split_verified: u64 = BackendKind::ALL
            .iter()
            .map(|&k| report.per_backend.for_kind(k).verified)
            .sum();
        assert_eq!(split_verified, report.verified);
    }

    #[test]
    fn clean_mixed_fleet_stays_green() {
        let mut config = HeteroConfig::small(43);
        config.tpm_compromise = None;
        config.secure_world_compromise = None;
        config.confidential_vm_compromise = None;
        let report = run_hetero(config);
        assert!(report.false_positives.is_empty());
        assert!(report.detections.is_empty());
        assert_eq!(report.attestations, report.verified);
    }

    #[test]
    fn lossy_mixed_fleet_is_deterministic_per_seed() {
        let a = run_hetero(HeteroConfig::small_lossy(46));
        let b = run_hetero(HeteroConfig::small_lossy(46));
        assert_eq!(a.detections, b.detections);
        assert_eq!(a.verified, b.verified);
        assert_eq!(a.per_backend, b.per_backend);
        assert_eq!(a.metrics.retries, b.metrics.retries);
        // Loss forced retries but masked nothing.
        assert!(a.metrics.retries > 0);
        assert_eq!(a.unreachable, 0);
        assert_eq!(a.detections.len(), 3);
    }
}
