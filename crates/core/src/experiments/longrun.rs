//! §III-D: the long-running dynamic-policy experiments.
//!
//! Reproduces the paper's two runs — 31 days of daily updates and 35
//! days of weekly updates (66 days, 36 updates total) — with the full
//! §III-C discipline: mirror sync at 05:00, incremental policy
//! generation *before* the machines update, update-window digest
//! retention with post-update deduplication, kernel staging across
//! reboots, SNAP scrubbing, and machines updating from the mirror only.
//!
//! The paper's single false positive (March 27, 2024) is reproducible by
//! setting [`LongRunConfig::misconfig_day`]: on that day the upstream
//! archive publishes *after* the 05:00 mirror sync, and the operator
//! mistakenly updates the machine from the official archive instead of
//! the mirror.

use cia_distro::{Mirror, ReleaseStream, Snap, StreamProfile};
use cia_keylime::{AgentId, AgentStatus, Alert, Cluster, VerifierConfig};
use cia_os::{ExecMethod, MachineConfig};
use cia_vfs::VfsPath;

use crate::costmodel::CostModel;
use crate::generator::{DynamicPolicyGenerator, GenerationReport, GeneratorConfig};

/// How often the operator updates the fleet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UpdateCadence {
    /// Update every day (the paper's first experiment, 31 days).
    Daily,
    /// Update every 7th day (the second experiment, 35 days).
    Weekly,
}

impl UpdateCadence {
    /// True when `day` is an update day under this cadence.
    pub fn is_update_day(self, day: u32) -> bool {
        match self {
            UpdateCadence::Daily => true,
            UpdateCadence::Weekly => day.is_multiple_of(7),
        }
    }
}

/// Configuration of the long-run experiment.
#[derive(Debug, Clone)]
pub struct LongRunConfig {
    /// Days to run (paper: 31 daily / 35 weekly).
    pub days: u32,
    /// Update cadence.
    pub cadence: UpdateCadence,
    /// Release-stream profile.
    pub stream_profile: StreamProfile,
    /// Day on which the operator pulls from upstream instead of the
    /// mirror after the sync (None = disciplined operation, zero FPs).
    pub misconfig_day: Option<u32>,
    /// Install every Nth mirrored package on the machine.
    pub install_every: usize,
    /// Benign executions per day.
    pub daily_execs: usize,
    /// Cost model for Fig. 3 minutes.
    pub cost_model: CostModel,
    /// Generator configuration.
    pub generator: GeneratorConfig,
    /// Whether a SNAP is installed (exercises scrubbing).
    pub with_snaps: bool,
    /// Machine/cluster seed.
    pub seed: u64,
}

impl LongRunConfig {
    /// Fast test-scale daily run.
    pub fn small(seed: u64) -> Self {
        LongRunConfig {
            days: 10,
            cadence: UpdateCadence::Daily,
            stream_profile: StreamProfile::small(seed),
            misconfig_day: None,
            install_every: 3,
            daily_execs: 6,
            cost_model: CostModel::paper_calibrated(),
            generator: GeneratorConfig::paper_default(),
            with_snaps: true,
            seed,
        }
    }

    /// The paper's 31-day daily-update experiment.
    pub fn paper_daily() -> Self {
        LongRunConfig {
            days: 31,
            cadence: UpdateCadence::Daily,
            stream_profile: StreamProfile::paper_calibrated(),
            misconfig_day: None,
            install_every: 8,
            daily_execs: 25,
            cost_model: CostModel::paper_calibrated(),
            generator: GeneratorConfig::paper_default(),
            with_snaps: true,
            seed: 0x31,
        }
    }

    /// The paper's 35-day weekly-update experiment.
    pub fn paper_weekly() -> Self {
        LongRunConfig {
            days: 35,
            cadence: UpdateCadence::Weekly,
            stream_profile: StreamProfile {
                seed: 0x35,
                ..StreamProfile::paper_calibrated()
            },
            ..Self::paper_daily()
        }
    }
}

/// One policy update (an update day).
#[derive(Debug, Clone, Default)]
pub struct UpdateRecord {
    /// Simulation day.
    pub day: u32,
    /// Updated packages with executables (Fig. 4).
    pub packages: usize,
    /// ... high-priority (Table I).
    pub packages_high: usize,
    /// ... low-priority (Table I).
    pub packages_low: usize,
    /// Policy lines appended (Fig. 5).
    pub lines_added: usize,
    /// Policy bytes appended.
    pub policy_bytes_added: u64,
    /// Simulated minutes the policy update took (Fig. 3).
    pub minutes: f64,
    /// Policy size after the update.
    pub policy_lines_total: usize,
    /// Digests removed by post-update deduplication.
    pub dedup_removed: usize,
    /// Whether a kernel update/reboot happened this day.
    pub kernel_reboot: bool,
}

/// The experiment's outcome.
#[derive(Debug, Clone, Default)]
pub struct LongRunReport {
    /// The initial full policy generation.
    pub initial: GenerationReport,
    /// Minutes the initial generation took.
    pub initial_minutes: f64,
    /// One record per update day.
    pub updates: Vec<UpdateRecord>,
    /// Every alert raised (empty under disciplined operation).
    pub alerts: Vec<Alert>,
    /// Total attestation polls.
    pub attestations: u64,
    /// Polls that verified cleanly.
    pub verified: u64,
}

impl LongRunReport {
    /// False positives observed (all alerts are FPs: no attacks run).
    pub fn false_positives(&self) -> usize {
        self.alerts.len()
    }

    /// Mean over update days of an extractor.
    pub fn mean(&self, f: impl Fn(&UpdateRecord) -> f64) -> f64 {
        if self.updates.is_empty() {
            return 0.0;
        }
        self.updates.iter().map(&f).sum::<f64>() / self.updates.len() as f64
    }

    /// Standard deviation over update days of an extractor.
    pub fn std_dev(&self, f: impl Fn(&UpdateRecord) -> f64) -> f64 {
        if self.updates.is_empty() {
            return 0.0;
        }
        let mean = self.mean(&f);
        let var = self
            .updates
            .iter()
            .map(|u| (f(u) - mean).powi(2))
            .sum::<f64>()
            / self.updates.len() as f64;
        var.sqrt()
    }
}

/// Runs the experiment.
///
/// # Panics
///
/// Panics on internal simulator errors (deterministic by construction).
pub fn run_longrun(config: LongRunConfig) -> LongRunReport {
    let (mut stream, mut repo) = ReleaseStream::new(config.stream_profile.clone());
    let mut mirror = Mirror::new();
    mirror.sync(&repo, 0);

    // --- Day 0: initial policy generation and fleet setup. -------------
    let machine_config = MachineConfig {
        hostname: "longrun-node".to_string(),
        seed: config.seed,
        ..MachineConfig::default()
    };
    let running_kernel = machine_config.running_kernel.clone();
    let (mut generator, initial_report) = DynamicPolicyGenerator::generate_initial(
        &mirror,
        &running_kernel,
        0,
        config.generator.clone(),
    );
    let initial_minutes = config.cost_model.full_regeneration_minutes(
        mirror.packages().map(|p| p.nominal_size()).sum(),
        mirror.len(),
    );

    let mut cluster = Cluster::new(config.seed, VerifierConfig::default());
    let mut agent =
        cia_keylime::Agent::new(cia_os::Machine::new(&cluster.manufacturer, machine_config));
    {
        let m = agent.machine_mut();
        let installed: Vec<_> = mirror
            .packages()
            .enumerate()
            .filter(|(i, p)| i % config.install_every == 0 || p.is_kernel)
            .map(|(_, p)| p.clone())
            .collect();
        for pkg in &installed {
            m.apt.install(&mut m.vfs, pkg).unwrap();
        }
        // Installing the kernel package stages it; consume the staging —
        // the machine is already running this kernel.
        m.apt.take_latest_staged_kernel();
        if config.with_snaps {
            let snap = Snap::core20(1405);
            generator.include_snap(&snap);
            m.snaps.install(&mut m.vfs, snap).unwrap();
        }
    }
    // Publish the initial policy once to the shared store, then enrol
    // the agent as a handle onto it; the run distributes deltas only.
    cluster.publish_policy(generator.policy().clone());
    let id = cluster.add_agent_shared(agent).unwrap();

    let mut report = LongRunReport {
        initial: initial_report,
        initial_minutes,
        ..LongRunReport::default()
    };

    // Sanity attestation at enrolment.
    attest_rounds(&mut cluster, &id, 2, &mut report);

    // --- The run. -------------------------------------------------------
    for day in 1..=config.days {
        // Upstream publishes overnight.
        repo.apply_release(&stream.next_day());

        {
            let m = cluster.agent_mut(&id).unwrap().machine_mut();
            m.clock.advance_to_hour(mirror.sync_hour as u32);
        }

        let mut update_record: Option<UpdateRecord> = None;
        let mut recently_upgraded: Vec<String> = Vec::new();
        if config.cadence.is_update_day(day) {
            // ① 05:00 — mirror sync + incremental policy generation.
            let diff = mirror.sync(&repo, day);
            let gen_report = generator.apply_diff(&diff, day);
            let minutes = config.cost_model.update_minutes(&gen_report);

            // ② Push the day's delta BEFORE the machines update —
            // O(changed entries) instead of a full policy copy.
            cluster.publish_delta(&generator.take_delta());

            // ③ Machines update from the mirror only.
            let kernel_staged;
            {
                let m = cluster.agent_mut(&id).unwrap().machine_mut();
                m.clock.advance_minutes(minutes.ceil() as u32);
                let packages: Vec<_> = mirror.packages().cloned().collect();
                let upgrade = m.run_updates(packages.iter()).unwrap();
                kernel_staged = upgrade.kernel_staged;
                recently_upgraded = upgrade.upgraded.iter().map(|(n, _)| n.clone()).collect();
            }

            // ④ Kernel updates: policy first, then reboot.
            let mut kernel_reboot = false;
            if let Some(release) = kernel_staged {
                generator.on_kernel_boot(&release);
                cluster.publish_delta(&generator.take_delta());
                cluster
                    .agent_mut(&id)
                    .unwrap()
                    .machine_mut()
                    .reboot()
                    .unwrap();
                kernel_reboot = true;
            }

            // ⑤ Post-update deduplication, then push the retirements.
            let dedup_removed = generator.finish_update_window();
            cluster.publish_delta(&generator.take_delta());

            update_record = Some(UpdateRecord {
                day,
                packages: gen_report.packages,
                packages_high: gen_report.packages_high_priority,
                packages_low: gen_report.packages - gen_report.packages_high_priority,
                lines_added: gen_report.lines_added,
                policy_bytes_added: gen_report.policy_bytes_added,
                minutes,
                policy_lines_total: generator.policy().line_count(),
                dedup_removed,
                kernel_reboot,
            });
        }

        // The misconfiguration event: a release lands AFTER the sync and
        // the operator updates from upstream instead of the mirror.
        if config.misconfig_day == Some(day) {
            // Synthesize the late release: a handful of packages that are
            // installed on the machine get a new version upstream...
            let late_packages: Vec<cia_distro::Package> = {
                let m = cluster.agent_mut(&id).unwrap().machine();
                let installed: Vec<String> =
                    m.apt.installed().map(|(n, _)| n.clone()).take(5).collect();
                installed
                    .iter()
                    .filter_map(|name| repo.get(name))
                    .filter(|p| !p.is_kernel)
                    .map(|p| {
                        let mut late = p.clone();
                        late.version = late.version.bump();
                        for f in &mut late.files {
                            f.content_seed ^= 0x5eed_1a7e;
                        }
                        late
                    })
                    .collect()
            };
            repo.apply_release(&cia_distro::ReleaseEvent {
                day,
                packages: late_packages,
            });
            // ...and the operator installs from the official archive
            // instead of the (already-synced) local mirror.
            let m = cluster.agent_mut(&id).unwrap().machine_mut();
            let packages: Vec<_> = repo.packages().cloned().collect();
            let upgrade = m.run_updates(packages.iter()).unwrap();
            recently_upgraded.extend(upgrade.upgraded.iter().map(|(n, _)| n.clone()));
        }

        // Benign daily workload: run updated/installed binaries, load a
        // kernel module, poke the SNAP.
        {
            let m = cluster.agent_mut(&id).unwrap().machine_mut();
            let mut executed = 0usize;
            // Admins touch the freshly updated tools first, then the
            // stable ones — this is what makes a policy/filesystem skew
            // observable at attestation time.
            let stable: Vec<String> = m.apt.installed().map(|(n, _)| n.clone()).collect();
            let candidate_paths: Vec<VfsPath> = recently_upgraded
                .iter()
                .chain(stable.iter())
                .filter_map(|name| {
                    repo.get(name)
                        .and_then(|p| p.files.first())
                        .map(|f| f.install_path.clone())
                })
                .filter_map(|p| VfsPath::new(&p).ok())
                .collect();
            for path in candidate_paths {
                if executed >= config.daily_execs {
                    break;
                }
                if m.vfs.is_file(&path) {
                    m.exec(&path, ExecMethod::Direct).unwrap();
                    executed += 1;
                }
            }
            let kernel = m.running_kernel().to_string();
            let module = VfsPath::new(&format!("/lib/modules/{kernel}/drivers/mod001.ko")).unwrap();
            if m.vfs.is_file(&module) {
                m.load_module(&module).unwrap();
            }
            if config.with_snaps {
                let snap_bin = VfsPath::new("/snap/core20/1405/usr/bin/python3").unwrap();
                if m.vfs.is_file(&snap_bin) {
                    m.exec(&snap_bin, ExecMethod::Direct).unwrap();
                }
            }
            m.clock.next_day();
        }

        // Continuous attestation through the day.
        attest_rounds(&mut cluster, &id, 4, &mut report);

        if let Some(record) = update_record {
            report.updates.push(record);
        }
    }

    // Delta distribution must leave the verifier's shared snapshot
    // structurally identical to the generator's policy, and the agent
    // converged on the latest epoch (it attested after the last push).
    let replica_diff = cluster
        .verifier
        .policy_store()
        .policy()
        .diff(generator.policy());
    assert!(
        replica_diff.is_empty(),
        "delta replica diverged from the generator: {replica_diff:?}"
    );
    assert_eq!(
        cluster.verifier.agent_policy_epoch(&id).unwrap(),
        cluster.policy_epoch(),
        "agent must converge to the latest published epoch"
    );
    report
}

/// Polls `rounds` times, collecting alerts and resolving pauses (operator
/// intervention, as on March 27).
fn attest_rounds(cluster: &mut Cluster, id: &AgentId, rounds: u32, report: &mut LongRunReport) {
    for _ in 0..rounds {
        report.attestations += 1;
        match cluster.attest(id).unwrap() {
            cia_keylime::AttestationOutcome::Verified { .. } => report.verified += 1,
            cia_keylime::AttestationOutcome::Failed { alerts } => {
                report.alerts.extend(alerts);
            }
            cia_keylime::AttestationOutcome::SkippedPaused => {}
        }
        if cluster.status(id).unwrap() == AgentStatus::Paused {
            cluster.resolve(id).unwrap();
        }
    }
}
