//! §III-A/B: one week of benign operation under a static policy.
//!
//! Setup mirrors the paper: an Ubuntu-like machine with unattended
//! upgrades left enabled (the default), a SNAP installed, and a static
//! snapshot policy built by scanning the machine once at enrolment. The
//! only activity is *benign*: navigating the filesystem, executing
//! installed binaries, and the automatic daily system update. Every alert
//! is therefore a false positive, and the experiment classifies them into
//! the paper's taxonomy: hash mismatches and missing-from-policy errors
//! from updates, plus SNAP truncation errors.

use std::collections::BTreeMap;

use cia_distro::{Mirror, ReleaseStream, Snap, StreamProfile};
use cia_keylime::{AgentStatus, Alert, Cluster, FailureKind, VerifierConfig};
use cia_os::{ExecMethod, MachineConfig};
use cia_vfs::VfsPath;

use crate::initial_policy::scan_machine_policy;

/// Configuration of the false-positive experiment.
#[derive(Debug, Clone)]
pub struct FpWeekConfig {
    /// Days of benign operation (the paper ran 7).
    pub days: u32,
    /// Release-stream profile (use [`StreamProfile::small`] in tests).
    pub stream_profile: StreamProfile,
    /// Install every Nth mirrored package on the machine.
    pub install_every: usize,
    /// Benign executions per day.
    pub daily_execs: usize,
    /// Whether a SNAP is installed (reproduces the truncation FPs).
    pub with_snaps: bool,
    /// Seed for the machine identity.
    pub seed: u64,
}

impl FpWeekConfig {
    /// A fast test-scale configuration.
    pub fn small(seed: u64) -> Self {
        FpWeekConfig {
            days: 7,
            stream_profile: StreamProfile::small(seed),
            install_every: 3,
            daily_execs: 8,
            with_snaps: true,
            seed,
        }
    }

    /// The paper-scale configuration. (The seed is chosen so the week
    /// exhibits all three §III-B false-positive classes.)
    pub fn paper() -> Self {
        let mut stream_profile = StreamProfile::paper_calibrated();
        stream_profile.seed = 1;
        FpWeekConfig {
            days: 7,
            stream_profile,
            install_every: 8,
            daily_execs: 25,
            with_snaps: true,
            seed: 1,
        }
    }
}

/// One day of the experiment.
#[derive(Debug, Clone, Default)]
pub struct FpDayRecord {
    /// Simulation day.
    pub day: u32,
    /// Packages the unattended upgrade installed.
    pub packages_updated: usize,
    /// Alerts raised during the day (all false positives).
    pub alerts: Vec<Alert>,
}

/// The experiment's outcome.
#[derive(Debug, Clone, Default)]
pub struct FpWeekReport {
    /// Per-day records.
    pub days: Vec<FpDayRecord>,
    /// Paths of SNAP-sandbox executables (for classifying truncation FPs).
    pub snap_sandbox_paths: Vec<String>,
}

impl FpWeekReport {
    /// Every alert across the week.
    pub fn all_alerts(&self) -> impl Iterator<Item = &Alert> {
        self.days.iter().flat_map(|d| d.alerts.iter())
    }

    /// Total false positives.
    pub fn total_false_positives(&self) -> usize {
        self.days.iter().map(|d| d.alerts.len()).sum()
    }

    /// §III-B error type (1): hash mismatches (modified files).
    pub fn hash_mismatches(&self) -> usize {
        self.all_alerts()
            .filter(|a| matches!(a.kind, FailureKind::HashMismatch { .. }))
            .count()
    }

    /// §III-B error type (2): file in IMA log but missing from policy,
    /// excluding SNAP truncations.
    pub fn missing_from_policy(&self) -> usize {
        self.all_alerts()
            .filter(|a| match &a.kind {
                FailureKind::NotInPolicy { path, .. } => !self.snap_sandbox_paths.contains(path),
                _ => false,
            })
            .count()
    }

    /// SNAP truncation errors: measured under an in-sandbox path the
    /// host-side policy does not contain.
    pub fn snap_truncation_errors(&self) -> usize {
        self.all_alerts()
            .filter(|a| match &a.kind {
                FailureKind::NotInPolicy { path, .. } => self.snap_sandbox_paths.contains(path),
                _ => false,
            })
            .count()
    }

    /// Histogram keyed by a short failure-kind label.
    pub fn by_kind(&self) -> BTreeMap<&'static str, usize> {
        let mut map = BTreeMap::new();
        for alert in self.all_alerts() {
            let key = match alert.kind {
                FailureKind::HashMismatch { .. } => "hash-mismatch",
                FailureKind::NotInPolicy { .. } => "not-in-policy",
                FailureKind::QuoteInvalid => "quote-invalid",
                FailureKind::PcrMismatch => "pcr-mismatch",
                FailureKind::LogRewound => "log-rewound",
                FailureKind::BootAggregateMismatch => "boot-aggregate",
                FailureKind::LogParse { .. } => "log-parse",
                FailureKind::BackendNotAllowed { .. } => "backend-not-allowed",
                FailureKind::BackendMismatch { .. } => "backend-mismatch",
                FailureKind::LaunchMeasurementMismatch => "launch-mismatch",
                _ => "other",
            };
            *map.entry(key).or_insert(0) += 1;
        }
        map
    }
}

/// Runs the experiment.
///
/// # Panics
///
/// Panics on internal simulator errors (the experiment is deterministic;
/// failures indicate bugs, not environmental conditions).
pub fn run_fp_week(config: FpWeekConfig) -> FpWeekReport {
    let (mut stream, mut repo) = ReleaseStream::new(config.stream_profile.clone());
    let mut mirror = Mirror::new();
    mirror.sync(&repo, 0);

    // Build the machine: install a subset of the archive, plus a SNAP.
    let mut cluster = Cluster::new(config.seed, VerifierConfig::default());
    let machine_config = MachineConfig {
        hostname: "fp-node".to_string(),
        seed: config.seed,
        ..MachineConfig::default()
    };
    let mut agent =
        cia_keylime::Agent::new(cia_os::Machine::new(&cluster.manufacturer, machine_config));
    let installed: Vec<_> = mirror
        .packages()
        .enumerate()
        .filter(|(i, _)| i % config.install_every == 0)
        .map(|(_, p)| p.clone())
        .collect();
    {
        let m = agent.machine_mut();
        for pkg in &installed {
            m.apt.install(&mut m.vfs, pkg).unwrap();
        }
        if config.with_snaps {
            m.snaps.install(&mut m.vfs, Snap::core20(1405)).unwrap();
        }
    }

    // Static snapshot policy, scanned once at enrolment (P1: /tmp excluded).
    let policy = scan_machine_policy(agent.machine(), &["/tmp"]);
    let snap_sandbox_paths: Vec<String> = agent
        .machine()
        .snaps
        .installed()
        .iter()
        .flat_map(|s| {
            s.files
                .iter()
                .filter(|(_, _, exec)| *exec)
                .map(|(rel, _, _)| rel.clone())
        })
        .collect();
    let id = cluster.add_agent(agent, policy).unwrap();

    let mut report = FpWeekReport {
        snap_sandbox_paths,
        ..FpWeekReport::default()
    };

    for day in 1..=config.days {
        let mut record = FpDayRecord {
            day,
            ..FpDayRecord::default()
        };

        // Upstream publishes; unattended upgrades pull straight from the
        // archive (the Ubuntu default the paper studied).
        repo.apply_release(&stream.next_day());
        let recently_upgraded: Vec<String>;
        {
            let agent = cluster.agent_mut(&id).unwrap();
            let m = agent.machine_mut();
            let packages: Vec<_> = repo.packages().cloned().collect();
            let upgrade = m.run_updates(packages.iter()).unwrap();
            record.packages_updated = upgrade.upgraded.len();
            recently_upgraded = upgrade.upgraded.iter().map(|(n, _)| n.clone()).collect();
        }

        // Benign workload interleaved with continuous attestation: the
        // verifier polls on a short interval (seconds in real Keylime),
        // so each benign action is typically attested before the next.
        // On a failure the operator investigates and resolves.
        let attest_once = |cluster: &mut Cluster, record: &mut FpDayRecord| {
            if let cia_keylime::AttestationOutcome::Failed { alerts } = cluster.attest(&id).unwrap()
            {
                record.alerts.extend(alerts);
            }
            if cluster.status(&id).unwrap() == AgentStatus::Paused {
                cluster.resolve(&id).unwrap();
            }
        };

        // Morning SNAP usage (its measurement is the truncated
        // in-sandbox path — the §III-B SNAP false positive).
        if config.with_snaps {
            let m = cluster.agent_mut(&id).unwrap().machine_mut();
            let snap_bin = VfsPath::new("/snap/core20/1405/usr/bin/python3").unwrap();
            if m.vfs.is_file(&snap_bin) {
                let _ = m.exec(&snap_bin, ExecMethod::Direct);
            }
            attest_once(&mut cluster, &mut record);
        }

        // After `apt upgrade`, restarted services re-execute their
        // freshly rewritten binaries (including any file new in this
        // version — the "missing file in the policy" case). Then ordinary
        // admin usage of stable tools.
        let mut updated_paths: Vec<VfsPath> = recently_upgraded
            .iter()
            .filter_map(|name| repo.get(name))
            .flat_map(|p| {
                p.files
                    .iter()
                    .rev()
                    .take(2)
                    .map(|f| f.install_path.clone())
                    .collect::<Vec<_>>()
            })
            .filter_map(|p| VfsPath::new(&p).ok())
            .collect();
        {
            let m = cluster.agent_mut(&id).unwrap().machine_mut();
            updated_paths.extend(
                m.apt
                    .installed()
                    .map(|(n, _)| n.clone())
                    .filter_map(|name| {
                        repo.get(&name)
                            .and_then(|p| p.files.first())
                            .map(|f| f.install_path.clone())
                    })
                    .filter_map(|p| VfsPath::new(&p).ok())
                    .collect::<Vec<_>>(),
            );
        }
        let mut executed = 0usize;
        for path in updated_paths {
            if executed >= config.daily_execs {
                break;
            }
            let ran = {
                let m = cluster.agent_mut(&id).unwrap().machine_mut();
                if m.vfs.is_file(&path) {
                    let _ = m.exec(&path, ExecMethod::Direct);
                    true
                } else {
                    false
                }
            };
            if ran {
                executed += 1;
                attest_once(&mut cluster, &mut record);
            }
        }
        cluster
            .agent_mut(&id)
            .unwrap()
            .machine_mut()
            .clock
            .next_day();
        attest_once(&mut cluster, &mut record);

        report.days.push(record);
    }
    report
}
