//! Drivers for the paper's §III evaluation.
//!
//! - [`fp_week`]: the one-week *static policy* experiment (§III-A/B) that
//!   demonstrates why false positives happen: unattended OS updates and
//!   SNAP path truncation.
//! - [`longrun`]: the 31-day daily-update and 35-day weekly-update
//!   *dynamic policy* experiments (§III-D) behind Figs. 3–5 and Table I,
//!   including the March-27 misconfiguration event.
//! - [`fleet`]: the deployment shape the paper targets — one
//!   mirror-derived policy serving many machines — with a mid-run
//!   compromise, detection, and revocation fan-out.
//! - [`hetero`]: the heterogeneous variant of the same deployment — one
//!   verifier over TPM+IMA machines, secure-world devices and
//!   confidential VMs at once, with one characteristic compromise per
//!   backend family.

pub mod fleet;
pub mod fp_week;
pub mod hetero;
pub mod longrun;

pub use fleet::{run_fleet, FleetConfig, FleetReport};
pub use fp_week::{run_fp_week, FpWeekConfig, FpWeekReport};
pub use hetero::{run_hetero, HeteroConfig, HeteroReport};
pub use longrun::{run_longrun, LongRunConfig, LongRunReport, UpdateCadence, UpdateRecord};
