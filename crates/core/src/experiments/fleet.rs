//! Fleet operation: the paper's target deployment shape.
//!
//! The point of dynamic policy generation is that *one* mirror-derived
//! policy serves an entire fleet: every machine installs from the same
//! mirror, so one generator pass covers all of them. This experiment runs
//! N machines under a shared policy with daily updates and verifies the
//! two properties a cloud operator needs simultaneously:
//!
//! 1. **no false positives anywhere** in the fleet under benign churn;
//! 2. **a compromised node is detected and revoked** without disturbing
//!    the others.

use cia_distro::{Mirror, ReleaseStream, StreamProfile};
use cia_keylime::{Agent, AgentStatus, Alert, Cluster, VerifierConfig};
use cia_os::{ExecMethod, Machine, MachineConfig};
use cia_vfs::VfsPath;

use crate::generator::{DynamicPolicyGenerator, GeneratorConfig};

/// Configuration of the fleet experiment.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Number of machines.
    pub nodes: usize,
    /// Days to run.
    pub days: u32,
    /// Release-stream profile.
    pub stream_profile: StreamProfile,
    /// Install every Nth mirrored package on each machine.
    pub install_every: usize,
    /// `(node index, day)` on which an implant lands, if any.
    pub compromise: Option<(usize, u32)>,
    /// Cluster seed.
    pub seed: u64,
}

impl FleetConfig {
    /// A test-scale fleet.
    pub fn small(seed: u64) -> Self {
        FleetConfig {
            nodes: 5,
            days: 8,
            stream_profile: StreamProfile::small(seed),
            install_every: 3,
            compromise: Some((2, 4)),
            seed,
        }
    }
}

/// The experiment's outcome.
#[derive(Debug, Clone, Default)]
pub struct FleetReport {
    /// Alerts not attributable to the implant (must be empty).
    pub false_positives: Vec<Alert>,
    /// `(node, day)` pairs where the implant was alerted on.
    pub detections: Vec<(String, u32)>,
    /// Per-node revocation views: how many of the other nodes learned of
    /// each revocation.
    pub revocations_seen: usize,
    /// Total polls.
    pub attestations: u64,
    /// Clean polls.
    pub verified: u64,
}

/// Runs the fleet experiment.
///
/// # Panics
///
/// Panics on internal simulator errors (deterministic by construction).
pub fn run_fleet(config: FleetConfig) -> FleetReport {
    let (mut stream, mut repo) = ReleaseStream::new(config.stream_profile.clone());
    let mut mirror = Mirror::new();
    mirror.sync(&repo, 0);

    let (mut generator, _) = DynamicPolicyGenerator::generate_initial(
        &mirror,
        "5.15.0-76",
        0,
        GeneratorConfig::paper_default(),
    );

    let mut cluster = Cluster::new(config.seed, VerifierConfig::default());
    // One revocation subscriber per node (each node watches the bus).
    let subscribers: Vec<usize> = (0..config.nodes)
        .map(|_| cluster.revocation_bus.subscribe())
        .collect();

    let mut ids = Vec::new();
    for n in 0..config.nodes {
        let mut machine = Machine::new(
            &cluster.manufacturer,
            MachineConfig {
                hostname: format!("fleet-{n:02}"),
                seed: config.seed ^ n as u64,
                ..MachineConfig::default()
            },
        );
        let installed: Vec<_> = mirror
            .packages()
            .enumerate()
            .filter(|(i, p)| i % config.install_every == 0 && !p.is_kernel)
            .map(|(_, p)| p.clone())
            .collect();
        for pkg in &installed {
            machine.apt.install(&mut machine.vfs, pkg).unwrap();
        }
        let id = cluster
            .add_agent(Agent::new(machine), generator.policy().clone())
            .unwrap();
        ids.push(id);
    }

    let implant_path = "/usr/sbin/implant";
    let mut report = FleetReport::default();

    for day in 1..=config.days {
        // Shared mirror sync + one generator pass for the whole fleet.
        repo.apply_release(&stream.next_day());
        let diff = mirror.sync(&repo, day);
        generator.apply_diff(&diff, day);
        for id in &ids {
            cluster
                .verifier
                .update_policy(id, generator.policy().clone())
                .unwrap();
        }

        // Every node updates and works.
        for (n, id) in ids.iter().enumerate() {
            let upgraded: Vec<String> = {
                let m = cluster.agent_mut(id).unwrap().machine_mut();
                let packages: Vec<_> = mirror.packages().cloned().collect();
                let upgrade = m.run_updates(packages.iter()).unwrap();
                upgrade.upgraded.iter().map(|(name, _)| name.clone()).collect()
            };
            let m = cluster.agent_mut(id).unwrap().machine_mut();
            for name in upgraded.iter().take(4) {
                if let Some(pkg) = repo.get(name) {
                    let path = VfsPath::new(&pkg.files[0].install_path).unwrap();
                    if m.vfs.is_file(&path) {
                        m.exec(&path, ExecMethod::Direct).unwrap();
                    }
                }
            }
            m.clock.next_day();

            // The compromise lands on its scheduled node and day.
            if config.compromise == Some((n, day)) {
                let implant = VfsPath::new(implant_path).unwrap();
                m.write_executable(&implant, b"c2 implant").unwrap();
                m.exec(&implant, ExecMethod::Direct).unwrap();
            }
        }
        generator.finish_update_window();

        // Attestation sweep.
        for id in &ids {
            report.attestations += 1;
            match cluster.attest(id).unwrap() {
                cia_keylime::AttestationOutcome::Verified { .. } => report.verified += 1,
                cia_keylime::AttestationOutcome::Failed { alerts } => {
                    for alert in alerts {
                        let is_implant = format!("{:?}", alert.kind).contains(implant_path);
                        if is_implant {
                            report.detections.push((id.clone(), day));
                        } else {
                            report.false_positives.push(alert);
                        }
                    }
                }
                cia_keylime::AttestationOutcome::SkippedPaused => {}
            }
            // Only benign pauses get operator-resolved; a detected implant
            // keeps its node quarantined.
            if cluster.status(id).unwrap() == AgentStatus::Paused
                && !report.detections.iter().any(|(d, _)| d == id)
            {
                cluster.resolve(id).unwrap();
            }
        }
    }

    // How widely did the revocation propagate?
    if let Some((victim, _)) = config.compromise {
        let victim_id = &ids[victim];
        report.revocations_seen = subscribers
            .iter()
            .filter(|&&s| {
                cluster
                    .revocation_bus
                    .subscriber(s)
                    .map(|sub| sub.is_revoked(victim_id))
                    .unwrap_or(false)
            })
            .count();
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fleet_detects_compromise_without_fps() {
        let report = run_fleet(FleetConfig::small(31));
        assert!(
            report.false_positives.is_empty(),
            "fleet must be FP-free: {:?}",
            report.false_positives
        );
        assert!(!report.detections.is_empty(), "the implant must be detected");
        let (node, day) = &report.detections[0];
        assert_eq!(node, "fleet-02");
        assert_eq!(*day, 4);
        // Every node's subscriber learned about the revocation.
        assert_eq!(report.revocations_seen, 5);
        assert!(report.verified > 0);
    }

    #[test]
    fn clean_fleet_stays_green() {
        let mut config = FleetConfig::small(32);
        config.compromise = None;
        let report = run_fleet(config);
        assert!(report.false_positives.is_empty());
        assert!(report.detections.is_empty());
        assert_eq!(report.revocations_seen, 0);
        assert_eq!(report.attestations, report.verified);
    }

    #[test]
    fn compromised_node_stays_quarantined() {
        let report = run_fleet(FleetConfig::small(33));
        // The victim is detected exactly once and then paused for good —
        // quarantine means no repeated detections.
        assert_eq!(report.detections.len(), 1);
    }
}
