//! Fleet operation: the paper's target deployment shape.
//!
//! The point of dynamic policy generation is that *one* mirror-derived
//! policy serves an entire fleet: every machine installs from the same
//! mirror, so one generator pass covers all of them. This experiment runs
//! N machines under a shared policy with daily updates and verifies the
//! properties a cloud operator needs simultaneously:
//!
//! 1. **no false positives anywhere** in the fleet under benign churn;
//! 2. **a compromised node is detected and revoked** without disturbing
//!    the others;
//! 3. **nobody is silently skipped**, even when the transport drops a
//!    fraction of all calls — the fleet engine retries with backoff and
//!    reports unreachable agents explicitly.
//!
//! The daily attestation sweep runs through the concurrent
//! [`cia_keylime::FleetScheduler`] worker pool (via
//! [`Cluster::attest_fleet`]), so this experiment also exercises the
//! engine at deployment scale.

use cia_distro::{Mirror, ReleaseStream, StreamProfile};
use cia_keylime::{
    Agent, AgentId, AgentStatus, Alert, Cluster, Federation, FederationConfig, HealthCounts,
    LossyTransport, MetricsSnapshot, RoundOutcome, ShardTransportKind, VerifierConfig,
};
use cia_os::{ExecMethod, Machine, MachineConfig};
use cia_vfs::VfsPath;

use crate::generator::{DynamicPolicyGenerator, GeneratorConfig};

/// Configuration of the fleet experiment.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Number of machines.
    pub nodes: usize,
    /// Days to run.
    pub days: u32,
    /// Release-stream profile.
    pub stream_profile: StreamProfile,
    /// Install every Nth mirrored package on each machine.
    pub install_every: usize,
    /// `(node index, day)` on which an implant lands, if any.
    pub compromise: Option<(usize, u32)>,
    /// Cluster seed.
    pub seed: u64,
    /// Fraction of transport calls dropped (0.0 = reliable).
    pub drop_rate: f64,
    /// Fleet-scheduler worker threads.
    pub workers: usize,
    /// The paper's P2 fix: evaluate everything, never pause polling.
    pub continue_on_failure: bool,
    /// Quarantine cheap-skip for persistently unreachable agents (the
    /// health state machine always *tracks*; this gates the skip path).
    pub quarantine: bool,
    /// Verifier shards the daily sweep is federated across (1 = a
    /// single verifier, the classic shape). With more, the fleet is
    /// split by consistent-hash placement, each shard runs its own
    /// worker pool, and policy publishes go through the shared store
    /// exactly once — detections, verification counts, and reachability
    /// are identical to the single-verifier run.
    pub shards: u32,
    /// The coordinator↔shard transport federated sweeps run over:
    /// in-proc (the classic shape), an in-memory duplex wire, or a TCP
    /// loopback socket. Ignored when `shards == 1`.
    pub shard_transport: ShardTransportKind,
    /// Result rows per RPC frame on wire transports (0 = the wire
    /// layer's default batch). Ignored in-proc.
    pub wire_batch: usize,
}

impl FleetConfig {
    /// A test-scale fleet over a reliable transport, with stock
    /// (stop-on-failure) verifier semantics.
    pub fn small(seed: u64) -> Self {
        FleetConfig {
            nodes: 5,
            days: 8,
            stream_profile: StreamProfile::small(seed),
            install_every: 3,
            compromise: Some((2, 4)),
            seed,
            drop_rate: 0.0,
            workers: 4,
            continue_on_failure: false,
            quarantine: false,
            shards: 1,
            shard_transport: ShardTransportKind::InProc,
            wire_batch: 0,
        }
    }

    /// A lossy variant of [`FleetConfig::small`] running the engine
    /// posture: 10% message loss, continue-on-failure on.
    pub fn small_lossy(seed: u64) -> Self {
        FleetConfig {
            drop_rate: 0.10,
            continue_on_failure: true,
            ..FleetConfig::small(seed)
        }
    }
}

/// The experiment's outcome.
#[derive(Debug, Clone, Default)]
pub struct FleetReport {
    /// Alerts not attributable to the implant (must be empty).
    pub false_positives: Vec<Alert>,
    /// `(node, day)` pairs where the implant was alerted on.
    pub detections: Vec<(AgentId, u32)>,
    /// Per-node revocation views: how many of the other nodes learned of
    /// each revocation.
    pub revocations_seen: usize,
    /// Total polls (one per enrolled agent per day — nothing skipped).
    pub attestations: u64,
    /// Clean polls.
    pub verified: u64,
    /// Polls the engine could not complete within the retry budget.
    pub unreachable: u64,
    /// Rounds skipped cheaply because the agent sat in quarantine.
    pub quarantine_skips: u64,
    /// Per-state fleet health counts at the end of the run.
    pub health: HealthCounts,
    /// The fleet engine's accumulated metrics (retries, drops, backoff,
    /// latency histogram) across all sweeps.
    pub metrics: MetricsSnapshot,
}

/// Runs the fleet experiment.
///
/// # Panics
///
/// Panics on internal simulator errors (deterministic by construction).
pub fn run_fleet(config: FleetConfig) -> FleetReport {
    let (mut stream, mut repo) = ReleaseStream::new(config.stream_profile.clone());
    let mut mirror = Mirror::new();
    mirror.sync(&repo, 0);

    let (mut generator, _) = DynamicPolicyGenerator::generate_initial(
        &mirror,
        "5.15.0-76",
        0,
        GeneratorConfig::paper_default(),
    );

    let verifier_config = VerifierConfig::builder()
        .continue_on_failure(config.continue_on_failure)
        .quarantine_enabled(config.quarantine)
        .max_retries(16)
        .retry_backoff_ms(5)
        .worker_count(config.workers.max(1))
        .wire_batch(config.wire_batch)
        .build()
        .expect("fleet verifier config is valid");
    let transport = LossyTransport::new(config.drop_rate, config.seed ^ 0x10a11);
    let mut cluster = Cluster::with_transport(config.seed, verifier_config, transport);
    // One shared policy serves the whole fleet: publish it once, then
    // every enrolment is an `Arc` handle onto the same snapshot.
    cluster.publish_policy(generator.policy().clone());
    // One revocation subscriber per node (each node watches the bus).
    let subscribers: Vec<usize> = (0..config.nodes)
        .map(|_| cluster.revocation_bus.subscribe())
        .collect();

    let mut ids = Vec::new();
    for n in 0..config.nodes {
        let mut machine = Machine::new(
            &cluster.manufacturer,
            MachineConfig {
                hostname: format!("fleet-{n:02}"),
                seed: config.seed ^ n as u64,
                ..MachineConfig::default()
            },
        );
        let installed: Vec<_> = mirror
            .packages()
            .enumerate()
            .filter(|(i, p)| i % config.install_every == 0 && !p.is_kernel)
            .map(|(_, p)| p.clone())
            .collect();
        for pkg in &installed {
            machine.apt.install(&mut machine.vfs, pkg).unwrap();
        }
        let id = cluster.add_agent_shared(Agent::new(machine)).unwrap();
        ids.push(id);
    }

    // Federated shape: re-shard the enrolled verifier across
    // `config.shards` instances sharing one policy store. From here on,
    // policy publishes and sweeps go through the federation; the cluster
    // keeps owning the machines, audit chain, and revocation bus.
    let mut federation = (config.shards > 1).then(|| {
        Federation::from_verifier(
            &cluster.verifier,
            FederationConfig::new(config.shards, verifier_config)
                .with_transport(config.shard_transport),
        )
    });

    let implant_path = "/usr/sbin/implant";
    let mut report = FleetReport::default();

    for day in 1..=config.days {
        // Shared mirror sync + one generator pass for the whole fleet;
        // distribution is one delta publish — O(changed entries), not
        // O(fleet × policy).
        repo.apply_release(&stream.next_day());
        let diff = mirror.sync(&repo, day);
        generator.apply_diff(&diff, day);
        let delta = generator.take_delta();
        match federation.as_mut() {
            // One store epoch fleet-wide; every shard adopts the same
            // snapshot Arc.
            Some(fed) => {
                fed.publish_delta(&delta);
            }
            None => {
                cluster.publish_delta(&delta);
            }
        }

        // Every node updates and works.
        for (n, id) in ids.iter().enumerate() {
            let upgraded: Vec<String> = {
                let m = cluster.agent_mut(id).unwrap().machine_mut();
                let packages: Vec<_> = mirror.packages().cloned().collect();
                let upgrade = m.run_updates(packages.iter()).unwrap();
                upgrade
                    .upgraded
                    .iter()
                    .map(|(name, _)| name.clone())
                    .collect()
            };
            let m = cluster.agent_mut(id).unwrap().machine_mut();
            for name in upgraded.iter().take(4) {
                if let Some(pkg) = repo.get(name) {
                    let path = VfsPath::new(&pkg.files[0].install_path).unwrap();
                    if m.vfs.is_file(&path) {
                        m.exec(&path, ExecMethod::Direct).unwrap();
                    }
                }
            }
            m.clock.next_day();

            // The compromise lands on its scheduled node and day.
            if config.compromise == Some((n, day)) {
                let implant = VfsPath::new(implant_path).unwrap();
                m.write_executable(&implant, b"c2 implant").unwrap();
                m.exec(&implant, ExecMethod::Direct).unwrap();
            }
        }
        generator.finish_update_window();

        // Concurrent attestation sweep: the whole fleet in one engine
        // round, retries and all. Every agent yields exactly one result.
        // Federated, each shard's round runs concurrently and the merged
        // report below is the fleet-level view.
        let round = match federation.as_mut() {
            Some(fed) => cluster.attest_fleet_federated(fed).fleet,
            None => cluster.attest_fleet(),
        };
        assert_eq!(round.results.len(), ids.len(), "no agent may go missing");
        // Every reachable agent must have adopted the day's epoch (only
        // quarantined agents legitimately pin the last one they acked).
        if round.health.quarantined == 0 {
            assert!(
                round.epoch_converged(),
                "fleet must converge to epoch {}",
                round.policy_epoch
            );
        }
        for result in &round.results {
            report.attestations += 1;
            match &result.outcome {
                RoundOutcome::Verified { .. } => report.verified += 1,
                RoundOutcome::Failed { alerts } => {
                    for alert in alerts {
                        let is_implant = format!("{:?}", alert.kind).contains(implant_path);
                        if is_implant {
                            report.detections.push((result.id.clone(), day));
                        } else {
                            report.false_positives.push(alert.clone());
                        }
                    }
                }
                RoundOutcome::SkippedPaused => {}
                RoundOutcome::SkippedQuarantined { .. } => report.quarantine_skips += 1,
                RoundOutcome::Unreachable { .. } => report.unreachable += 1,
                _ => {}
            }
        }
        report.health = round.health;

        // Only benign pauses get operator-resolved; a detected implant
        // keeps its node quarantined. (Resolution itself rides the lossy
        // transport, so give it the same retry budget the engine has.)
        for id in &ids {
            if cluster.status(id).unwrap() == AgentStatus::Paused
                && !report.detections.iter().any(|(d, _)| d == id)
            {
                let resolved = (0..=16).any(|_| cluster.resolve(id).is_ok());
                assert!(resolved, "resolution failed past the retry budget");
            }
        }
    }

    // How widely did the revocation propagate?
    if let Some((victim, _)) = config.compromise {
        let victim_id = &ids[victim];
        report.revocations_seen = subscribers
            .iter()
            .filter(|&&s| {
                cluster
                    .revocation_bus
                    .subscriber(s)
                    .map(|sub| sub.is_revoked(victim_id))
                    .unwrap_or(false)
            })
            .count();
    }
    report.metrics = match &federation {
        Some(fed) => fed.fleet_metrics(),
        None => cluster.scheduler.snapshot(),
    };
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fleet_detects_compromise_without_fps() {
        let report = run_fleet(FleetConfig::small(31));
        assert!(
            report.false_positives.is_empty(),
            "fleet must be FP-free: {:?}",
            report.false_positives
        );
        assert!(
            !report.detections.is_empty(),
            "the implant must be detected"
        );
        let (node, day) = &report.detections[0];
        assert_eq!(node, "fleet-02");
        assert_eq!(*day, 4);
        // Every node's subscriber learned about the revocation.
        assert_eq!(report.revocations_seen, 5);
        assert!(report.verified > 0);
        assert_eq!(report.unreachable, 0);
        // The engine ran one round per day.
        assert_eq!(
            report.metrics.rounds,
            u64::from(FleetConfig::small(31).days)
        );
        // Initial publish is epoch 1; one delta push per day follows.
        assert_eq!(
            report.metrics.policy_epoch,
            1 + u64::from(FleetConfig::small(31).days)
        );
        assert!(report.metrics.delta_entries_applied > 0);
    }

    #[test]
    fn clean_fleet_stays_green() {
        let mut config = FleetConfig::small(32);
        config.compromise = None;
        let report = run_fleet(config);
        assert!(report.false_positives.is_empty());
        assert!(report.detections.is_empty());
        assert_eq!(report.revocations_seen, 0);
        assert_eq!(report.attestations, report.verified);
    }

    #[test]
    fn compromised_node_stays_quarantined() {
        let report = run_fleet(FleetConfig::small(33));
        // The victim is detected exactly once and then paused for good —
        // quarantine means no repeated detections.
        assert_eq!(report.detections.len(), 1);
    }

    #[test]
    fn lossy_fleet_skips_nobody_and_retries_show_in_metrics() {
        let config = FleetConfig::small_lossy(34);
        let expected_polls = (config.nodes as u64) * u64::from(config.days);
        let report = run_fleet(config);

        // 10% loss, but the retry budget absorbs it completely: every
        // agent is attested every day, nothing silently skipped.
        assert_eq!(report.attestations, expected_polls);
        assert_eq!(report.unreachable, 0);
        assert!(report.false_positives.is_empty());
        assert!(
            !report.detections.is_empty(),
            "loss must not mask detection"
        );

        // The engine's work is visible in the registry.
        assert!(report.metrics.retries > 0, "10% loss must force retries");
        assert!(report.metrics.drops >= report.metrics.retries);
        assert!(report.metrics.backoff_ms > 0);
        assert!(report.metrics.calls >= expected_polls);
    }

    #[test]
    fn lossy_fleet_with_quarantine_keeps_everyone_healthy_and_conserved() {
        let mut config = FleetConfig::small_lossy(36);
        config.quarantine = true;
        let report = run_fleet(config);

        // 10% loss never exhausts a 16-retry budget, so nobody actually
        // quarantines — but the tracking runs and the books balance.
        assert_eq!(report.unreachable, 0);
        assert_eq!(report.quarantine_skips, 0);
        assert_eq!(report.health.healthy, report.health.total());
        assert_eq!(report.health.total(), 5);
        assert!(report.metrics.is_conserved(), "{:?}", report.metrics);
    }

    #[test]
    fn federated_fleet_matches_the_single_verifier_run() {
        let days = u64::from(FleetConfig::small(37).days);
        let base = run_fleet(FleetConfig::small_lossy(37));
        for shards in [2u32, 4] {
            let mut config = FleetConfig::small_lossy(37);
            config.shards = shards;
            let fed = run_fleet(config);

            // The sweep's observable outcome is shard-count independent:
            // same detections on the same days, same verification and
            // reachability counts, same revocation fan-out.
            assert_eq!(fed.detections, base.detections);
            assert_eq!(fed.verified, base.verified);
            assert_eq!(fed.attestations, base.attestations);
            assert_eq!(fed.unreachable, base.unreachable);
            assert_eq!(fed.revocations_seen, base.revocations_seen);
            assert!(fed.false_positives.is_empty());

            // The engine's work splits across shards but its total is
            // conserved: lane-deterministic faults mean the same calls,
            // retries, and drops as the single-verifier sweep.
            assert!(fed.metrics.is_conserved(), "{:?}", fed.metrics);
            assert_eq!(fed.metrics.calls, base.metrics.calls);
            assert_eq!(fed.metrics.retries, base.metrics.retries);
            assert_eq!(fed.metrics.drops, base.metrics.drops);
            // `rounds` counts shard rounds: one per shard per day.
            assert_eq!(fed.metrics.rounds, days * u64::from(shards));
        }
    }

    #[test]
    fn wire_transports_match_the_in_proc_federated_run() {
        let mut base_config = FleetConfig::small_lossy(38);
        base_config.shards = 2;
        let base = run_fleet(base_config);
        for transport in [ShardTransportKind::Duplex, ShardTransportKind::Tcp] {
            let mut config = FleetConfig::small_lossy(38);
            config.shards = 2;
            config.shard_transport = transport;
            config.wire_batch = 3; // force multi-frame result streams
            let wired = run_fleet(config);

            // Putting a codec + socket between coordinator and shard
            // changes *nothing observable*: every detection, count, and
            // metric matches the in-proc federated sweep bit-for-bit.
            assert_eq!(wired.detections, base.detections, "{transport:?}");
            assert_eq!(wired.verified, base.verified, "{transport:?}");
            assert_eq!(wired.attestations, base.attestations);
            assert_eq!(wired.unreachable, base.unreachable);
            assert!(wired.false_positives.is_empty());
            assert!(wired.metrics.is_conserved(), "{:?}", wired.metrics);
            assert_eq!(wired.metrics.calls, base.metrics.calls);
            assert_eq!(wired.metrics.retries, base.metrics.retries);
            assert_eq!(wired.metrics.drops, base.metrics.drops);
        }
    }

    #[test]
    fn fleet_is_deterministic_per_seed() {
        let a = run_fleet(FleetConfig::small_lossy(35));
        let b = run_fleet(FleetConfig::small_lossy(35));
        assert_eq!(a.detections, b.detections);
        assert_eq!(a.verified, b.verified);
        assert_eq!(a.metrics.retries, b.metrics.retries);
        assert_eq!(a.metrics.drops, b.metrics.drops);
    }
}
