//! The static "IBM Research-style" initial policy of §III-A.
//!
//! The policy the paper's false-positive experiment started from was
//! built by a bash script that walks the machine's filesystem from `/`,
//! hashes every file with the executable bit set, and writes the results
//! out — excluding container directories and `/tmp` for efficiency. This
//! module reproduces that scan against a simulated machine.

use cia_crypto::HashAlgorithm;
use cia_keylime::RuntimePolicy;
use cia_os::Machine;
use cia_vfs::VfsPath;

/// Walks the machine's filesystem and builds the static snapshot policy:
/// every *executable* file's SHA-256, recorded under its host-side path,
/// with `excludes` carried as policy exclusions (the studied policy
/// excluded `/tmp` — P1).
///
/// Note the scan records SNAP binaries under their **host** paths
/// (`/snap/core20/<rev>/usr/bin/python3`); IMA will measure them under
/// truncated in-sandbox paths, which is exactly the SNAP false-positive
/// cause of §III-B.
pub fn scan_machine_policy(machine: &Machine, excludes: &[&str]) -> RuntimePolicy {
    let mut policy = RuntimePolicy::new();
    policy.meta.generator = "initial-scan".to_string();
    policy.meta.version = 1;
    for prefix in excludes {
        policy.exclude(*prefix);
    }
    let root = VfsPath::root();
    for path in machine.vfs.walk_files(&root) {
        if policy.is_excluded(path.as_str()) {
            continue;
        }
        let Ok(meta) = machine.vfs.metadata(path) else {
            continue;
        };
        if !meta.mode.is_executable() {
            continue;
        }
        if let Ok(digest) = machine.vfs.file_digest(path, HashAlgorithm::Sha256) {
            policy.allow(path.as_str(), digest.to_hex());
        }
    }
    policy
}

#[cfg(test)]
mod tests {
    use super::*;
    use cia_os::MachineConfig;
    use cia_tpm::Manufacturer;
    use cia_vfs::Mode;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn machine() -> Machine {
        let mut rng = StdRng::seed_from_u64(31);
        let m = Manufacturer::generate(&mut rng);
        Machine::new(&m, MachineConfig::default())
    }

    fn p(s: &str) -> VfsPath {
        VfsPath::new(s).unwrap()
    }

    #[test]
    fn scan_records_executables_only() {
        let mut m = machine();
        m.write_executable(&p("/usr/bin/tool"), b"tool").unwrap();
        m.vfs
            .create_file(&p("/etc/config"), b"conf".to_vec(), Mode::REGULAR)
            .unwrap();
        let policy = scan_machine_policy(&m, &["/tmp"]);
        assert!(policy.digests_for("/usr/bin/tool").is_some());
        assert!(policy.digests_for("/etc/config").is_none());
    }

    #[test]
    fn scan_skips_excluded_dirs() {
        let mut m = machine();
        m.write_executable(&p("/tmp/helper"), b"helper").unwrap();
        let policy = scan_machine_policy(&m, &["/tmp"]);
        assert!(policy.digests_for("/tmp/helper").is_none());
        assert!(policy.is_excluded("/tmp/helper"));
    }

    #[test]
    fn scan_records_snap_host_paths() {
        let mut m = machine();
        m.snaps
            .install(&mut m.vfs, cia_distro::Snap::core20(1234))
            .unwrap();
        let policy = scan_machine_policy(&m, &[]);
        // Host-side path present; truncated path absent — the SNAP FP.
        assert!(policy
            .digests_for("/snap/core20/1234/usr/bin/python3")
            .is_some());
        assert!(policy.digests_for("/usr/bin/python3").is_none());
    }

    #[test]
    fn scan_digest_matches_ima_measurement() {
        let mut m = machine();
        m.write_executable(&p("/usr/bin/tool"), b"tool-content")
            .unwrap();
        let policy = scan_machine_policy(&m, &[]);
        let expected = HashAlgorithm::Sha256.digest(b"tool-content").to_hex();
        assert!(policy
            .digests_for("/usr/bin/tool")
            .unwrap()
            .contains(&expected));
    }
}
