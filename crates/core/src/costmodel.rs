//! Converts generator work into simulated wall-clock minutes.
//!
//! The paper's Fig. 3 / Table I report *minutes per policy update* on the
//! authors' testbed (mean 2.36 min daily, 7.50 min weekly, most days under
//! 10 minutes). That time is dominated by mirror refresh plus downloading,
//! unpacking, and hashing the changed packages — i.e. it scales with the
//! bytes of the day's diff. The simulator hashes small stand-in contents,
//! so this model charges each update by its **nominal** volume instead
//! and converts to minutes with constants calibrated to the paper's
//! means.

use serde::{Deserialize, Serialize};

use crate::generator::GenerationReport;

/// The time model: `T = refresh + bytes/download_rate + bytes/process_rate
/// + packages * per_package_overhead`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// Fixed mirror-refresh time per update (rsync of package indices),
    /// in seconds.
    pub mirror_refresh_secs: f64,
    /// Download bandwidth from the upstream archive, bytes/second.
    pub download_bytes_per_sec: f64,
    /// Unpack + SHA-256 throughput, bytes/second.
    pub process_bytes_per_sec: f64,
    /// Per-package bookkeeping (dpkg metadata, decompression setup),
    /// seconds.
    pub per_package_overhead_secs: f64,
}

impl CostModel {
    /// Constants calibrated so the paper-calibrated release stream yields
    /// the paper's Fig. 3/Table I means (≈2.4 min daily, ≈7.5 min weekly).
    pub fn paper_calibrated() -> Self {
        CostModel {
            mirror_refresh_secs: 45.0,
            download_bytes_per_sec: 2.8e6,
            process_bytes_per_sec: 60.0e6,
            per_package_overhead_secs: 1.2,
        }
    }

    /// Minutes one generation pass takes under this model.
    pub fn update_minutes(&self, report: &GenerationReport) -> f64 {
        let bytes = report.nominal_bytes as f64;
        let secs = self.mirror_refresh_secs
            + bytes / self.download_bytes_per_sec
            + bytes / self.process_bytes_per_sec
            + report.packages as f64 * self.per_package_overhead_secs;
        secs / 60.0
    }

    /// Minutes a *full* regeneration (hashing every mirrored byte) takes —
    /// the baseline the paper's incremental scheme avoids.
    pub fn full_regeneration_minutes(&self, total_nominal_bytes: u64, packages: usize) -> f64 {
        let bytes = total_nominal_bytes as f64;
        let secs = self.mirror_refresh_secs
            + bytes / self.download_bytes_per_sec
            + bytes / self.process_bytes_per_sec
            + packages as f64 * self.per_package_overhead_secs;
        secs / 60.0
    }
}

impl Default for CostModel {
    fn default() -> Self {
        Self::paper_calibrated()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(bytes: u64, packages: usize) -> GenerationReport {
        GenerationReport {
            nominal_bytes: bytes,
            packages,
            ..GenerationReport::default()
        }
    }

    #[test]
    fn empty_update_costs_only_refresh() {
        let m = CostModel::paper_calibrated();
        let minutes = m.update_minutes(&report(0, 0));
        assert!((minutes - 45.0 / 60.0).abs() < 1e-9);
    }

    #[test]
    fn typical_daily_update_near_paper_mean() {
        // ~16.5 packages * ~9 MB nominal each ≈ 150 MB.
        let m = CostModel::paper_calibrated();
        let minutes = m.update_minutes(&report(150_000_000, 17));
        assert!(
            (1.0..6.0).contains(&minutes),
            "daily update should be a few minutes, got {minutes}"
        );
    }

    #[test]
    fn cost_is_monotonic_in_bytes() {
        let m = CostModel::paper_calibrated();
        assert!(
            m.update_minutes(&report(2_000_000, 1)) < m.update_minutes(&report(200_000_000, 1))
        );
    }

    #[test]
    fn incremental_beats_full_regeneration() {
        let m = CostModel::paper_calibrated();
        // Initial mirror ~4,200 packages * ~9 MB ≈ 38 GB.
        let full = m.full_regeneration_minutes(38_000_000_000, 4200);
        let incremental = m.update_minutes(&report(150_000_000, 17));
        assert!(
            full > 50.0 * incremental,
            "full {full} vs incremental {incremental}"
        );
    }
}
