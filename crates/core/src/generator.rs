//! The dynamic policy generator.

use std::collections::{BTreeMap, BTreeSet};

use cia_crypto::{DigestCache, HashAlgorithm, Sha256};
use cia_distro::mirror::MirrorDiff;
use cia_distro::{rewrite_kernel_path, Mirror, Package, PackageFile, Snap};
use cia_keylime::{PolicyDelta, RuntimePolicy};
use serde::{Deserialize, Serialize};

/// Default size of the package-hashing worker pool.
pub const DEFAULT_HASH_WORKERS: usize = 4;

/// Configuration of the generator.
#[derive(Debug, Clone)]
pub struct GeneratorConfig {
    /// Exclude prefixes carried into every generated policy. The studied
    /// policy shipped `/tmp` here (P1); the §IV-C mitigation is an empty
    /// list.
    pub excludes: Vec<String>,
    /// §III-C SNAP mitigation (a): also record SNAP executables under
    /// their truncated in-sandbox paths so measured SNAP entries match.
    pub snap_scrubbing: bool,
    /// Worker threads hashing package executables. The digest cache is
    /// prefilled in parallel; report assembly stays serial in input
    /// order, so the generated policy and report are bit-identical for
    /// any worker count (a property test pins {1, 4, 8}).
    pub hash_workers: usize,
}

impl GeneratorConfig {
    /// The configuration studied in the paper's FP experiments: `/tmp`
    /// excluded (inherited from the original policy), SNAP scrubbing on.
    pub fn paper_default() -> Self {
        GeneratorConfig {
            excludes: vec!["/tmp".to_string()],
            snap_scrubbing: true,
            hash_workers: DEFAULT_HASH_WORKERS,
        }
    }

    /// The §IV-C "enriched" configuration: no directory excludes.
    pub fn enriched() -> Self {
        GeneratorConfig {
            excludes: Vec::new(),
            snap_scrubbing: true,
            hash_workers: DEFAULT_HASH_WORKERS,
        }
    }
}

/// What one [`DynamicPolicyGenerator::finish_update_window_stats`] pass
/// did, in timing-free operation counts (regression tests gate on these
/// instead of wall-clock).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DedupStats {
    /// Distinct paths examined — exactly one retain pass runs per path,
    /// however many times it was touched during the window.
    pub distinct_paths: usize,
    /// Duplicate touch records skipped by the sort+dedup (the old
    /// implementation ran a full retain pass for each of these).
    pub duplicates_skipped: usize,
    /// Superseded digests dropped from the policy.
    pub digests_removed: usize,
}

/// What one generation pass did — the raw material for Figs. 3–5 and
/// Table I.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct GenerationReport {
    /// Simulation day of the pass.
    pub day: u32,
    /// New/changed packages with executables ingested (Fig. 4).
    pub packages: usize,
    /// ... of which high-priority (Table I).
    pub packages_high_priority: usize,
    /// Brand-new packages (vs. version changes).
    pub packages_added: usize,
    /// `(path, digest)` lines appended to the policy (Fig. 5).
    pub lines_added: usize,
    /// Approximate bytes those lines add to the policy file.
    pub policy_bytes_added: u64,
    /// Nominal bytes downloaded + hashed (drives the cost model / Fig. 3).
    pub nominal_bytes: u64,
    /// Executable files hashed.
    pub files_hashed: usize,
    /// Policy line count after the pass.
    pub policy_lines_total: usize,
}

/// The generator: owns the evolving policy and the bookkeeping needed for
/// incremental updates, post-update deduplication, and kernel staging.
#[derive(Debug)]
pub struct DynamicPolicyGenerator {
    config: GeneratorConfig,
    policy: RuntimePolicy,
    /// path → latest digest, used to deduplicate after update windows.
    canonical: BTreeMap<String, String>,
    /// Entries updated since the last dedup (their old digests are still
    /// in the policy for update-window consistency).
    pending_dedup: Vec<String>,
    /// Kernel release currently running on the fleet.
    active_kernel: String,
    /// Digest lists for kernels that are installed but not yet booted.
    staged_kernels: BTreeMap<String, Vec<(String, String)>>,
    /// Module/vmlinuz paths of the active kernel (dropped when it is
    /// superseded after a reboot).
    active_kernel_paths: Vec<String>,
    /// Entry operations since the last [`DynamicPolicyGenerator::take_delta`]
    /// — the O(changed) update a verifier's policy store replays instead
    /// of receiving the whole policy again.
    pending_delta: PolicyDelta,
    /// Content-addressed digest cache: package file contents are pure
    /// functions of their `content_seed`, so the seed is the identity key
    /// and a file rebuilt under a new path (kernel rewrites, re-syncs)
    /// never hashes twice.
    digest_cache: DigestCache,
}

impl DynamicPolicyGenerator {
    /// Generates the initial policy from a fully synced mirror: every
    /// executable of every mirrored package is hashed and recorded, with
    /// kernel packages mapped to `active_kernel`'s paths only.
    pub fn generate_initial(
        mirror: &Mirror,
        active_kernel: &str,
        day: u32,
        config: GeneratorConfig,
    ) -> (Self, GenerationReport) {
        let mut generator = DynamicPolicyGenerator {
            config,
            policy: RuntimePolicy::new(),
            canonical: BTreeMap::new(),
            pending_dedup: Vec::new(),
            active_kernel: active_kernel.to_string(),
            staged_kernels: BTreeMap::new(),
            active_kernel_paths: Vec::new(),
            pending_delta: PolicyDelta::default(),
            digest_cache: DigestCache::new(),
        };
        for prefix in generator.config.excludes.clone() {
            generator.policy.exclude(prefix);
        }
        generator.policy.meta.generator = "dynamic-policy-generator".to_string();

        let mut report = GenerationReport {
            day,
            ..GenerationReport::default()
        };
        let packages: Vec<&Package> = mirror.packages().collect();
        generator.prehash(packages.iter().flat_map(|p| p.executable_files()));
        for pkg in packages {
            generator.ingest_package(pkg, true, &mut report);
        }
        generator.policy.meta.version = 1;
        generator.policy.meta.generated_day = day;
        report.policy_lines_total = generator.policy.line_count();
        // The initial policy is distributed whole; the delta stream
        // starts from it.
        generator.pending_delta = PolicyDelta::default();
        (generator, report)
    }

    /// The active generator configuration.
    pub fn config(&self) -> &GeneratorConfig {
        &self.config
    }

    /// The current policy. Push it whole once (initial enrolment), then
    /// distribute [`DynamicPolicyGenerator::take_delta`]s.
    pub fn policy(&self) -> &RuntimePolicy {
        &self.policy
    }

    /// Takes the entry operations accumulated since the last call, as a
    /// [`PolicyDelta`] stamped with the current policy metadata. Applying
    /// it to a replica of the previous take's policy reproduces
    /// [`DynamicPolicyGenerator::policy`] exactly (a property test pins
    /// this over arbitrary mirror histories), so fleet distribution costs
    /// O(changed entries) instead of O(policy).
    pub fn take_delta(&mut self) -> PolicyDelta {
        let mut delta = std::mem::take(&mut self.pending_delta);
        // Retire records replay *after* all adds, so only the last retire
        // per path describes the final state — earlier ones would resurrect
        // nothing but can wrongly out-survive a later add. Keep the last.
        if delta.retired.len() > 1 {
            let mut seen = BTreeSet::new();
            let mut kept: Vec<(String, String)> = delta
                .retired
                .drain(..)
                .rev()
                .filter(|(path, _)| seen.insert(path.clone()))
                .collect();
            kept.reverse();
            delta.retired = kept;
        }
        // A surviving retire is only faithful if nothing touched the path
        // since the dedup pass (its digest set is exactly {keep}). When
        // later adds landed — e.g. the same binary updated again before
        // the delta was taken — replaying "retire all but keep" last
        // would wrongly drop them. Rewrite such paths as a removal plus a
        // re-add of their final digest set, which replays exactly.
        let conflicted: BTreeSet<String> = delta
            .retired
            .iter()
            .filter(|(path, keep)| {
                !matches!(self.policy.digests_for(path),
                          Some(set) if set.len() == 1 && set.contains(keep))
            })
            .map(|(path, _)| path.clone())
            .collect();
        if !conflicted.is_empty() {
            delta.retired.retain(|(path, _)| !conflicted.contains(path));
            delta.added.retain(|(path, _)| !conflicted.contains(path));
            for path in conflicted {
                delta.removed_paths.push(path.clone());
                if let Some(set) = self.policy.digests_for(&path) {
                    delta
                        .added
                        .extend(set.iter().map(|d| (path.clone(), d.clone())));
                }
            }
        }
        delta.meta = self.policy.meta.clone();
        delta
    }

    /// The digest cache's lifetime hit/miss counters (cache effectiveness
    /// metric: a re-synced mirror re-hashes nothing).
    pub fn digest_cache_stats(&self) -> (u64, u64) {
        (
            self.digest_cache.hit_count(),
            self.digest_cache.miss_count(),
        )
    }

    /// The kernel release the policy currently authorises.
    pub fn active_kernel(&self) -> &str {
        &self.active_kernel
    }

    /// Incremental pass over a mirror diff: hashes the executables of the
    /// new/changed packages and appends their digests. Old digests are
    /// retained until [`DynamicPolicyGenerator::finish_update_window`].
    pub fn apply_diff(&mut self, diff: &MirrorDiff, day: u32) -> GenerationReport {
        let mut report = GenerationReport {
            day,
            packages_added: diff.added.iter().filter(|p| p.has_executables()).count(),
            ..GenerationReport::default()
        };
        self.prehash(diff.executable_files());
        for pkg in diff.iter() {
            self.ingest_package(pkg, false, &mut report);
        }
        self.policy.meta.version += 1;
        self.policy.meta.generated_day = day;
        report.policy_lines_total = self.policy.line_count();
        report
    }

    /// §V extension — maintainer-signed manifests: ingests a batch of
    /// [`cia_distro::SignedManifest`]s instead of downloading and hashing
    /// the packages locally. Every manifest is verified against the
    /// operator's trust store first; one bad signature aborts the whole
    /// pass with nothing applied.
    ///
    /// Compared to [`DynamicPolicyGenerator::apply_diff`] this removes
    /// the download + hash cost entirely (`nominal_bytes` stays 0 — only
    /// the manifests travel) and shifts trust from operator-side hashing
    /// to the maintainers' signatures, as the paper suggests.
    ///
    /// # Errors
    ///
    /// [`cia_distro::ManifestError`] when a manifest is unsigned by a
    /// trusted maintainer or fails verification.
    pub fn apply_signed_manifests(
        &mut self,
        manifests: &[cia_distro::SignedManifest],
        authority: &cia_distro::ManifestAuthority,
        day: u32,
    ) -> Result<GenerationReport, cia_distro::ManifestError> {
        // Verify everything before applying anything.
        for signed in manifests {
            authority.verify(signed)?;
        }
        let mut report = GenerationReport {
            day,
            ..GenerationReport::default()
        };
        for signed in manifests {
            let manifest = &signed.manifest;
            if manifest.entries.is_empty() {
                continue;
            }
            report.packages += 1;
            if manifest.is_kernel {
                let release = format!(
                    "{}-{}",
                    manifest.version.upstream, manifest.version.revision
                );
                let entries: Vec<(String, String)> = manifest
                    .entries
                    .iter()
                    .map(|(path, digest)| (rewrite_kernel_path(path, &release), digest.clone()))
                    .collect();
                if release == self.active_kernel {
                    for (path, digest) in entries {
                        self.record_entry(path, digest, &mut report);
                    }
                } else {
                    self.stage_kernel(release, entries);
                }
                continue;
            }
            for (path, digest) in &manifest.entries {
                self.record_entry(path.clone(), digest.clone(), &mut report);
            }
        }
        self.policy.meta.version += 1;
        self.policy.meta.generated_day = day;
        report.policy_lines_total = self.policy.line_count();
        Ok(report)
    }

    /// Fans the digest work for `files` out across the configured worker
    /// pool, filling the content-addressed cache. Workers race only on
    /// cache slots (first writer wins; all compute the same digest), so
    /// the outcome is independent of scheduling. The serial ingest that
    /// follows then assembles policy and report in input order from cache
    /// hits — which is what keeps generation bit-identical across worker
    /// counts.
    fn prehash<'a>(&self, files: impl Iterator<Item = &'a PackageFile>) {
        let todo: Vec<&PackageFile> = files
            .filter(|f| !self.digest_cache.contains(f.content_seed))
            .collect();
        let workers = self.config.hash_workers.max(1).min(todo.len());
        if workers <= 1 {
            for file in todo {
                self.digest_cache
                    .get_or_compute(file.content_seed, || hash_file_content(&file.content()));
            }
            return;
        }
        let (tx, rx) = crossbeam::channel::unbounded::<&PackageFile>();
        for file in todo {
            tx.send(file).expect("queue open");
        }
        drop(tx);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                let rx = rx.clone();
                let cache = &self.digest_cache;
                scope.spawn(move || {
                    while let Ok(file) = rx.recv() {
                        cache.get_or_compute(file.content_seed, || {
                            hash_file_content(&file.content())
                        });
                    }
                });
            }
        });
    }

    /// The digest of one package file, served from the content-addressed
    /// cache (prefilled by [`DynamicPolicyGenerator::prehash`]).
    fn hash_file(&self, file: &PackageFile) -> String {
        self.digest_cache
            .get_or_compute(file.content_seed, || hash_file_content(&file.content()))
    }

    /// Hashes one package's executables into the policy.
    fn ingest_package(&mut self, pkg: &Package, initial: bool, report: &mut GenerationReport) {
        if !pkg.has_executables() {
            return;
        }
        report.packages += 1;
        if pkg.priority.is_high() {
            report.packages_high_priority += 1;
        }

        if let Some(release) = pkg.kernel_release() {
            self.ingest_kernel(pkg, &release, initial, report);
            return;
        }

        for file in pkg.executable_files() {
            let digest = self.hash_file(file);
            report.nominal_bytes += file.nominal_size;
            report.files_hashed += 1;
            self.record_entry(file.install_path.clone(), digest, report);
        }
    }

    /// Kernel packages: only the *active* kernel's files enter the policy
    /// directly. Other releases are staged until their reboot.
    fn ingest_kernel(
        &mut self,
        pkg: &Package,
        release: &str,
        initial: bool,
        report: &mut GenerationReport,
    ) {
        let mut entries = Vec::new();
        for file in pkg.executable_files() {
            let path = rewrite_kernel_path(&file.install_path, release);
            let digest = self.hash_file(file);
            report.nominal_bytes += file.nominal_size;
            report.files_hashed += 1;
            entries.push((path, digest));
        }
        if initial || release == self.active_kernel {
            self.active_kernel_paths = entries.iter().map(|(p, _)| p.clone()).collect();
            if initial {
                self.active_kernel = release.to_string();
            }
            for (path, digest) in entries {
                self.record_entry(path, digest, report);
            }
        } else {
            // §III-C: "when a machine performs an update without
            // rebooting, the policy can tentatively ignore the new
            // kernels" — stage until boot.
            self.stage_kernel(release.to_string(), entries);
        }
    }

    /// Stages a not-yet-active kernel's entries and records the staging
    /// in the pending delta (informational: staged entries are not policy
    /// operations until the reboot).
    fn stage_kernel(&mut self, release: String, entries: Vec<(String, String)>) {
        if !self.pending_delta.staged_kernels.contains(&release) {
            self.pending_delta.staged_kernels.push(release.clone());
        }
        self.staged_kernels.insert(release, entries);
    }

    fn record_entry(&mut self, path: String, digest: String, report: &mut GenerationReport) {
        let changed = !matches!(self.canonical.get(&path), Some(existing) if existing == &digest);
        if changed {
            self.policy.allow(path.clone(), digest.clone());
            report.lines_added += 1;
            report.policy_bytes_added += path.len() as u64 + 64 + 3;
            self.pending_delta
                .added
                .push((path.clone(), digest.clone()));
            self.canonical.insert(path.clone(), digest);
            self.pending_dedup.push(path);
        }
    }

    /// Post-update deduplication (§III-C): drops superseded digests for
    /// every path touched since the last call, returning how many were
    /// removed.
    pub fn finish_update_window(&mut self) -> usize {
        self.finish_update_window_stats().digests_removed
    }

    /// Like [`DynamicPolicyGenerator::finish_update_window`] but returns
    /// operation counts.
    ///
    /// One linear pass: the touched-path log is sorted and deduplicated,
    /// then exactly one retain pass runs per *distinct* path — and only
    /// when the path actually carries a superseded digest. (The first
    /// implementation ran a retain pass per touch record, so a path
    /// updated k times in a window cost k full scans — quadratic over a
    /// busy window.)
    pub fn finish_update_window_stats(&mut self) -> DedupStats {
        let mut pending = std::mem::take(&mut self.pending_dedup);
        let touches = pending.len();
        pending.sort_unstable();
        pending.dedup();
        let mut stats = DedupStats {
            distinct_paths: pending.len(),
            duplicates_skipped: touches - pending.len(),
            digests_removed: 0,
        };
        for path in pending {
            let Some(latest) = self.canonical.get(&path) else {
                continue;
            };
            let stale = self
                .policy
                .digests_for(&path)
                .map_or(0, |set| set.len().saturating_sub(1));
            if stale > 0 {
                self.policy.dedup_retain(&path, latest);
                stats.digests_removed += stale;
                self.pending_delta.retired.push((path, latest.clone()));
            }
        }
        stats
    }

    /// Called when the fleet reboots into `release` (which must have been
    /// staged or already active): its entries join the policy and the
    /// outdated kernel's module entries are disallowed.
    ///
    /// Returns `true` when the policy changed.
    pub fn on_kernel_boot(&mut self, release: &str) -> bool {
        if release == self.active_kernel {
            return false;
        }
        let Some(entries) = self.staged_kernels.remove(release) else {
            return false;
        };
        // Disallow the outdated kernel's files.
        let removed: BTreeSet<String> = std::mem::take(&mut self.active_kernel_paths)
            .into_iter()
            .collect();
        for path in &removed {
            self.policy.remove_path(path);
            self.canonical.remove(path);
        }
        // Delta replay applies removals before adds: scrub pending adds
        // (and now-moot retires) for the removed paths so they don't
        // resurrect the retired kernel on a replica, then record the
        // removals.
        self.pending_delta
            .added
            .retain(|(path, _)| !removed.contains(path));
        self.pending_delta
            .retired
            .retain(|(path, _)| !removed.contains(path));
        self.pending_delta.removed_paths.extend(removed);
        // The staged release is active now, not pending-staged.
        self.pending_delta.staged_kernels.retain(|r| r != release);
        self.active_kernel_paths = entries.iter().map(|(p, _)| p.clone()).collect();
        for (path, digest) in entries {
            self.policy.allow(path.clone(), digest.clone());
            self.pending_delta
                .added
                .push((path.clone(), digest.clone()));
            self.canonical.insert(path, digest);
        }
        self.active_kernel = release.to_string();
        self.policy.meta.version += 1;
        true
    }

    /// §III-C SNAP handling: record a snap's executables under their
    /// truncated in-sandbox paths (no-op when `snap_scrubbing` is off).
    pub fn include_snap(&mut self, snap: &Snap) {
        if !self.config.snap_scrubbing {
            return;
        }
        for (rel, content, executable) in &snap.files {
            if *executable {
                let digest = hash_file_content(content);
                let truncated = if rel.starts_with('/') {
                    rel.clone()
                } else {
                    format!("/{rel}")
                };
                self.policy.allow(truncated.clone(), digest.clone());
                self.pending_delta
                    .added
                    .push((truncated.clone(), digest.clone()));
                self.canonical.insert(truncated, digest);
            }
        }
    }
}

/// SHA-256 of file content as lowercase hex — the measurement the policy
/// stores, identical to what IMA records.
pub fn hash_file_content(content: &[u8]) -> String {
    let mut h = Sha256::new();
    h.update(content);
    h.finalize().to_hex()
}

/// Hex digest of a file's contents under SHA-256, for parity checks in
/// tests.
pub fn digest_hex(content: &[u8]) -> String {
    HashAlgorithm::Sha256.digest(content).to_hex()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cia_distro::{
        PackageFile, Pocket, Priority, ReleaseEvent, ReleaseStream, Repository, StreamProfile,
        Version,
    };

    fn synced_mirror() -> (cia_distro::ReleaseStream, Repository, Mirror) {
        let (stream, repo) = ReleaseStream::new(StreamProfile::small(21));
        let mut mirror = Mirror::new();
        mirror.sync(&repo, 0);
        (stream, repo, mirror)
    }

    #[test]
    fn initial_generation_covers_mirror() {
        let (_, _, mirror) = synced_mirror();
        let (generator, report) = DynamicPolicyGenerator::generate_initial(
            &mirror,
            "5.15.0-76",
            0,
            GeneratorConfig::paper_default(),
        );
        let expected_lines: usize = mirror
            .packages()
            .map(|p| p.executable_files().count())
            .sum();
        assert_eq!(report.lines_added, expected_lines);
        assert_eq!(generator.policy().line_count(), expected_lines);
        assert_eq!(report.files_hashed, expected_lines);
        assert!(generator.policy().is_excluded("/tmp/x"));
    }

    #[test]
    fn incremental_diff_appends_and_retains() {
        let (mut stream, mut repo, mut mirror) = synced_mirror();
        let (mut generator, _) = DynamicPolicyGenerator::generate_initial(
            &mirror,
            "5.15.0-76",
            0,
            GeneratorConfig::paper_default(),
        );

        // Find a real update day.
        let mut diff = None;
        for day in 1..60 {
            repo.apply_release(&stream.next_day());
            let d = mirror.sync(&repo, day);
            if !d.is_empty() && d.changed.iter().any(|p| !p.is_kernel) {
                diff = Some((day, d));
                break;
            }
        }
        let (day, diff) = diff.expect("stream produced an update");
        let changed_pkg = diff.changed.iter().find(|p| !p.is_kernel).unwrap().clone();
        let old_digest = generator
            .policy()
            .digests_for(&changed_pkg.files[0].install_path)
            .unwrap()
            .iter()
            .next()
            .unwrap()
            .clone();

        let report = generator.apply_diff(&diff, day);
        assert!(report.lines_added > 0);
        assert_eq!(report.day, day);

        // Update-window consistency: both digests allowed.
        let path = &changed_pkg.files[0].install_path;
        let set = generator.policy().digests_for(path).unwrap();
        assert!(set.contains(&old_digest));
        assert!(set.contains(&hash_file_content(&changed_pkg.files[0].content())));

        // Post-update dedup drops the stale digest.
        let removed = generator.finish_update_window();
        assert!(removed > 0);
        let set = generator.policy().digests_for(path).unwrap();
        assert_eq!(set.len(), 1);
        assert!(set.contains(&hash_file_content(&changed_pkg.files[0].content())));
    }

    #[test]
    fn unchanged_sync_adds_nothing() {
        let (_, repo, mut mirror) = synced_mirror();
        let (mut generator, _) = DynamicPolicyGenerator::generate_initial(
            &mirror,
            "5.15.0-76",
            0,
            GeneratorConfig::paper_default(),
        );
        let diff = mirror.sync(&repo, 1);
        let report = generator.apply_diff(&diff, 1);
        assert_eq!(report.lines_added, 0);
        assert_eq!(report.packages, 0);
    }

    fn kernel_pkg(rev: u32) -> Package {
        Package {
            name: "linux-image-generic".into(),
            version: Version {
                upstream: "5.15.0".into(),
                revision: rev,
            },
            priority: Priority::Optional,
            pocket: Pocket::Updates,
            files: vec![PackageFile {
                install_path: "/lib/modules/kernel/drivers/net.ko".into(),
                executable: true,
                nominal_size: 1000,
                content_seed: rev as u64,
            }],
            is_kernel: true,
        }
    }

    #[test]
    fn kernel_staging_until_reboot() {
        let repo = Repository::with_packages(vec![kernel_pkg(76)]);
        let mut mirror = Mirror::new();
        mirror.sync(&repo, 0);
        let (mut generator, _) = DynamicPolicyGenerator::generate_initial(
            &mirror,
            "5.15.0-76",
            0,
            GeneratorConfig::paper_default(),
        );
        let old_path = "/lib/modules/5.15.0-76/drivers/net.ko";
        let new_path = "/lib/modules/5.15.0-77/drivers/net.ko";
        assert!(generator.policy().digests_for(old_path).is_some());

        // Kernel update arrives: staged, NOT in policy yet.
        let mut repo2 = repo.clone();
        repo2.apply_release(&ReleaseEvent {
            day: 1,
            packages: vec![kernel_pkg(77)],
        });
        let diff = mirror.sync(&repo2, 1);
        generator.apply_diff(&diff, 1);
        assert!(
            generator.policy().digests_for(new_path).is_none(),
            "staged until boot"
        );
        assert!(generator.policy().digests_for(old_path).is_some());

        // Reboot into the new kernel: new modules allowed, old disallowed.
        assert!(generator.on_kernel_boot("5.15.0-77"));
        assert!(generator.policy().digests_for(new_path).is_some());
        assert!(generator.policy().digests_for(old_path).is_none());
        assert_eq!(generator.active_kernel(), "5.15.0-77");

        // Re-booting into the same kernel is a no-op.
        assert!(!generator.on_kernel_boot("5.15.0-77"));
    }

    #[test]
    fn snap_scrubbing_records_truncated_paths() {
        let (_, _, mirror) = synced_mirror();
        let (mut generator, _) = DynamicPolicyGenerator::generate_initial(
            &mirror,
            "5.15.0-76",
            0,
            GeneratorConfig::paper_default(),
        );
        let snap = Snap::core20(1234);
        generator.include_snap(&snap);
        let digest = hash_file_content(&snap.files[0].1);
        assert!(generator
            .policy()
            .digests_for("/usr/bin/python3")
            .unwrap()
            .contains(&digest));
    }

    #[test]
    fn signed_manifests_match_local_hashing() {
        use cia_distro::{Maintainer, ManifestAuthority};
        use rand::rngs::StdRng;
        use rand::SeedableRng;

        let (mut stream, mut repo, mut mirror) = synced_mirror();
        let make_generator = || {
            DynamicPolicyGenerator::generate_initial(
                &mirror,
                "5.15.0-76",
                0,
                GeneratorConfig::paper_default(),
            )
            .0
        };
        let mut local = make_generator();
        let mut remote = make_generator();

        // Find a non-trivial diff.
        let mut found = None;
        for day in 1..60 {
            repo.apply_release(&stream.next_day());
            let d = mirror.sync(&repo, day);
            if d.len() >= 2 {
                found = Some((day, d));
                break;
            }
        }
        let (day, diff) = found.unwrap();

        // Local hashing path.
        local.apply_diff(&diff, day);

        // Signed-manifest path: the maintainer signs each diffed package.
        let mut rng = StdRng::seed_from_u64(5);
        let maintainer = Maintainer::generate("canonical", &mut rng);
        let mut authority = ManifestAuthority::new();
        authority.trust(&maintainer);
        let manifests: Vec<_> = diff.iter().map(|p| maintainer.sign_package(p)).collect();
        let report = remote
            .apply_signed_manifests(&manifests, &authority, day)
            .unwrap();

        // Both paths produce the identical policy.
        assert_eq!(local.policy(), remote.policy());
        // The signed path moved no package bytes.
        assert_eq!(report.nominal_bytes, 0);
        assert!(report.lines_added == 0 || report.packages > 0);
    }

    #[test]
    fn signed_manifests_reject_forgery_atomically() {
        use cia_distro::{Maintainer, ManifestAuthority};
        use rand::rngs::StdRng;
        use rand::SeedableRng;

        let (_, _, mirror) = synced_mirror();
        let (mut generator, _) = DynamicPolicyGenerator::generate_initial(
            &mirror,
            "5.15.0-76",
            0,
            GeneratorConfig::paper_default(),
        );
        let lines_before = generator.policy().line_count();

        let mut rng = StdRng::seed_from_u64(6);
        let maintainer = Maintainer::generate("canonical", &mut rng);
        let mut authority = ManifestAuthority::new();
        authority.trust(&maintainer);

        let good_pkg = mirror.packages().next().unwrap().clone();
        let good = maintainer.sign_package(&good_pkg);
        let mut bad = good.clone();
        bad.manifest.entries[0].1 = "ab".repeat(32); // backdoored digest

        let err = generator
            .apply_signed_manifests(&[good, bad], &authority, 1)
            .unwrap_err();
        assert!(matches!(
            err,
            cia_distro::ManifestError::BadSignature { .. }
        ));
        // Nothing — not even the good manifest — was applied.
        assert_eq!(generator.policy().line_count(), lines_before);
    }

    /// The generated policy and report must not depend on the hashing
    /// worker count — prehash only warms a content-addressed cache;
    /// assembly is serial in input order.
    #[test]
    fn generation_is_identical_across_worker_counts() {
        let run = |workers: usize| {
            let (mut stream, mut repo, mut mirror) = synced_mirror();
            let config = GeneratorConfig {
                hash_workers: workers,
                ..GeneratorConfig::paper_default()
            };
            let (mut generator, initial) =
                DynamicPolicyGenerator::generate_initial(&mirror, "5.15.0-76", 0, config);
            let mut reports = vec![initial];
            for day in 1..12 {
                repo.apply_release(&stream.next_day());
                let diff = mirror.sync(&repo, day);
                reports.push(generator.apply_diff(&diff, day));
                generator.finish_update_window();
            }
            (reports, generator.policy().to_json())
        };
        let (reports_1, policy_1) = run(1);
        for workers in [4, 8] {
            let (reports_n, policy_n) = run(workers);
            assert_eq!(reports_1, reports_n, "reports differ at {workers} workers");
            assert_eq!(policy_1, policy_n, "policy differs at {workers} workers");
        }
    }

    /// The digest cache makes re-ingesting unchanged content free: the
    /// second generator pass over the same mirror hashes nothing new.
    #[test]
    fn digest_cache_hits_on_unchanged_content() {
        let (mut stream, mut repo, mut mirror) = synced_mirror();
        let (mut generator, _) = DynamicPolicyGenerator::generate_initial(
            &mirror,
            "5.15.0-76",
            0,
            GeneratorConfig::paper_default(),
        );
        let (_, misses_initial) = generator.digest_cache_stats();
        assert!(misses_initial > 0, "initial generation computes digests");
        for day in 1..8 {
            repo.apply_release(&stream.next_day());
            let diff = mirror.sync(&repo, day);
            let changed_files: usize = diff.executable_files().count();
            let (_, before) = generator.digest_cache_stats();
            generator.apply_diff(&diff, day);
            let (_, after) = generator.digest_cache_stats();
            assert!(
                after - before <= changed_files as u64,
                "at most one digest computation per changed file"
            );
        }
    }

    /// Regression (perf): `finish_update_window` is one linear pass. A
    /// path touched k times in a window must trigger exactly one retain
    /// pass, not k — the stats expose the operation counts so the gate is
    /// timing-free.
    #[test]
    fn update_window_dedup_is_single_pass_per_path() {
        let repo = Repository::with_packages(vec![]);
        let mut mirror = Mirror::new();
        mirror.sync(&repo, 0);
        let (mut generator, _) = DynamicPolicyGenerator::generate_initial(
            &mirror,
            "5.15.0-76",
            0,
            GeneratorConfig::paper_default(),
        );
        // One path updated 50 times, another updated once.
        let mut report = GenerationReport::default();
        for rev in 0..50u32 {
            generator.record_entry("/usr/bin/busy".into(), format!("{rev:064}"), &mut report);
        }
        generator.record_entry("/usr/bin/calm".into(), "f".repeat(64), &mut report);
        let stats = generator.finish_update_window_stats();
        assert_eq!(stats.distinct_paths, 2);
        assert_eq!(stats.duplicates_skipped, 49, "49 touch records skipped");
        // /usr/bin/busy held 50 digests, 49 superseded; calm held 1.
        assert_eq!(stats.digests_removed, 49);
        assert_eq!(generator.finish_update_window(), 0, "window already clean");
    }

    /// Applying each day's [`DynamicPolicyGenerator::take_delta`] to a
    /// replica reproduces the generator's policy exactly — including the
    /// adversarial add-retire-add interleavings around update windows and
    /// kernel reboots.
    #[test]
    fn delta_stream_reproduces_policy_on_a_replica() {
        let (mut stream, mut repo, mut mirror) = synced_mirror();
        let (mut generator, _) = DynamicPolicyGenerator::generate_initial(
            &mirror,
            "5.15.0-76",
            0,
            GeneratorConfig::paper_default(),
        );
        let mut replica = generator.policy().clone();
        let mut ops = 0usize;
        for day in 1..25 {
            repo.apply_release(&stream.next_day());
            let diff = mirror.sync(&repo, day);
            generator.apply_diff(&diff, day);
            // Take mid-window on even days (adds only), post-window on
            // odd ones (adds + retires), to cover both delta shapes.
            if day % 2 == 1 {
                generator.finish_update_window();
            }
            ops += replica.apply_delta(&generator.take_delta());
            assert!(
                replica.diff(generator.policy()).is_empty(),
                "replica diverged on day {day}"
            );
        }
        assert!(ops > 0, "the stream must carry real updates");
        assert_eq!(replica.to_json(), generator.policy().to_json());
    }

    /// Kernel staging and reboot are faithful in the delta stream too:
    /// the reboot's removals and re-adds replay on a replica.
    #[test]
    fn kernel_reboot_rides_the_delta_stream() {
        let repo = Repository::with_packages(vec![kernel_pkg(76)]);
        let mut mirror = Mirror::new();
        mirror.sync(&repo, 0);
        let (mut generator, _) = DynamicPolicyGenerator::generate_initial(
            &mirror,
            "5.15.0-76",
            0,
            GeneratorConfig::paper_default(),
        );
        let mut replica = generator.policy().clone();

        let mut repo2 = repo.clone();
        repo2.apply_release(&ReleaseEvent {
            day: 1,
            packages: vec![kernel_pkg(77)],
        });
        let diff = mirror.sync(&repo2, 1);
        generator.apply_diff(&diff, 1);
        let staged = generator.take_delta();
        assert_eq!(staged.staged_kernels, vec!["5.15.0-77".to_string()]);
        assert!(staged.is_empty(), "staging adds no entries yet");
        replica.apply_delta(&staged);

        assert!(generator.on_kernel_boot("5.15.0-77"));
        let boot = generator.take_delta();
        assert!(!boot.removed_paths.is_empty(), "old modules disallowed");
        assert!(boot.staged_kernels.is_empty(), "the release went active");
        replica.apply_delta(&boot);
        assert!(replica.diff(generator.policy()).is_empty());
        assert!(replica
            .digests_for("/lib/modules/5.15.0-76/drivers/net.ko")
            .is_none());
        assert!(replica
            .digests_for("/lib/modules/5.15.0-77/drivers/net.ko")
            .is_some());
    }

    #[test]
    fn snap_scrubbing_disabled_is_noop() {
        let (_, _, mirror) = synced_mirror();
        let (mut generator, _) = DynamicPolicyGenerator::generate_initial(
            &mirror,
            "5.15.0-76",
            0,
            GeneratorConfig {
                snap_scrubbing: false,
                ..GeneratorConfig::paper_default()
            },
        );
        generator.include_snap(&Snap::core20(1234));
        assert!(generator.policy().digests_for("/usr/bin/python3").is_none());
    }
}
