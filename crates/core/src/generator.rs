//! The dynamic policy generator.

use std::collections::BTreeMap;

use cia_crypto::{HashAlgorithm, Sha256};
use cia_distro::mirror::MirrorDiff;
use cia_distro::{rewrite_kernel_path, Mirror, Package, Snap};
use cia_keylime::RuntimePolicy;
use serde::{Deserialize, Serialize};

/// Configuration of the generator.
#[derive(Debug, Clone)]
pub struct GeneratorConfig {
    /// Exclude prefixes carried into every generated policy. The studied
    /// policy shipped `/tmp` here (P1); the §IV-C mitigation is an empty
    /// list.
    pub excludes: Vec<String>,
    /// §III-C SNAP mitigation (a): also record SNAP executables under
    /// their truncated in-sandbox paths so measured SNAP entries match.
    pub snap_scrubbing: bool,
}

impl GeneratorConfig {
    /// The configuration studied in the paper's FP experiments: `/tmp`
    /// excluded (inherited from the original policy), SNAP scrubbing on.
    pub fn paper_default() -> Self {
        GeneratorConfig {
            excludes: vec!["/tmp".to_string()],
            snap_scrubbing: true,
        }
    }

    /// The §IV-C "enriched" configuration: no directory excludes.
    pub fn enriched() -> Self {
        GeneratorConfig {
            excludes: Vec::new(),
            snap_scrubbing: true,
        }
    }
}

/// What one generation pass did — the raw material for Figs. 3–5 and
/// Table I.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct GenerationReport {
    /// Simulation day of the pass.
    pub day: u32,
    /// New/changed packages with executables ingested (Fig. 4).
    pub packages: usize,
    /// ... of which high-priority (Table I).
    pub packages_high_priority: usize,
    /// Brand-new packages (vs. version changes).
    pub packages_added: usize,
    /// `(path, digest)` lines appended to the policy (Fig. 5).
    pub lines_added: usize,
    /// Approximate bytes those lines add to the policy file.
    pub policy_bytes_added: u64,
    /// Nominal bytes downloaded + hashed (drives the cost model / Fig. 3).
    pub nominal_bytes: u64,
    /// Executable files hashed.
    pub files_hashed: usize,
    /// Policy line count after the pass.
    pub policy_lines_total: usize,
}

/// The generator: owns the evolving policy and the bookkeeping needed for
/// incremental updates, post-update deduplication, and kernel staging.
#[derive(Debug)]
pub struct DynamicPolicyGenerator {
    config: GeneratorConfig,
    policy: RuntimePolicy,
    /// path → latest digest, used to deduplicate after update windows.
    canonical: BTreeMap<String, String>,
    /// Entries updated since the last dedup (their old digests are still
    /// in the policy for update-window consistency).
    pending_dedup: Vec<String>,
    /// Kernel release currently running on the fleet.
    active_kernel: String,
    /// Digest lists for kernels that are installed but not yet booted.
    staged_kernels: BTreeMap<String, Vec<(String, String)>>,
    /// Module/vmlinuz paths of the active kernel (dropped when it is
    /// superseded after a reboot).
    active_kernel_paths: Vec<String>,
}

impl DynamicPolicyGenerator {
    /// Generates the initial policy from a fully synced mirror: every
    /// executable of every mirrored package is hashed and recorded, with
    /// kernel packages mapped to `active_kernel`'s paths only.
    pub fn generate_initial(
        mirror: &Mirror,
        active_kernel: &str,
        day: u32,
        config: GeneratorConfig,
    ) -> (Self, GenerationReport) {
        let mut generator = DynamicPolicyGenerator {
            config,
            policy: RuntimePolicy::new(),
            canonical: BTreeMap::new(),
            pending_dedup: Vec::new(),
            active_kernel: active_kernel.to_string(),
            staged_kernels: BTreeMap::new(),
            active_kernel_paths: Vec::new(),
        };
        for prefix in generator.config.excludes.clone() {
            generator.policy.exclude(prefix);
        }
        generator.policy.meta.generator = "dynamic-policy-generator".to_string();

        let mut report = GenerationReport {
            day,
            ..GenerationReport::default()
        };
        let packages: Vec<&Package> = mirror.packages().collect();
        for pkg in packages {
            generator.ingest_package(pkg, true, &mut report);
        }
        generator.policy.meta.version = 1;
        generator.policy.meta.generated_day = day;
        report.policy_lines_total = generator.policy.line_count();
        (generator, report)
    }

    /// The active generator configuration.
    pub fn config(&self) -> &GeneratorConfig {
        &self.config
    }

    /// The current policy (clone it to push to a verifier).
    pub fn policy(&self) -> &RuntimePolicy {
        &self.policy
    }

    /// The kernel release the policy currently authorises.
    pub fn active_kernel(&self) -> &str {
        &self.active_kernel
    }

    /// Incremental pass over a mirror diff: hashes the executables of the
    /// new/changed packages and appends their digests. Old digests are
    /// retained until [`DynamicPolicyGenerator::finish_update_window`].
    pub fn apply_diff(&mut self, diff: &MirrorDiff, day: u32) -> GenerationReport {
        let mut report = GenerationReport {
            day,
            packages_added: diff.added.iter().filter(|p| p.has_executables()).count(),
            ..GenerationReport::default()
        };
        for pkg in diff.iter() {
            self.ingest_package(pkg, false, &mut report);
        }
        self.policy.meta.version += 1;
        self.policy.meta.generated_day = day;
        report.policy_lines_total = self.policy.line_count();
        report
    }

    /// §V extension — maintainer-signed manifests: ingests a batch of
    /// [`cia_distro::SignedManifest`]s instead of downloading and hashing
    /// the packages locally. Every manifest is verified against the
    /// operator's trust store first; one bad signature aborts the whole
    /// pass with nothing applied.
    ///
    /// Compared to [`DynamicPolicyGenerator::apply_diff`] this removes
    /// the download + hash cost entirely (`nominal_bytes` stays 0 — only
    /// the manifests travel) and shifts trust from operator-side hashing
    /// to the maintainers' signatures, as the paper suggests.
    ///
    /// # Errors
    ///
    /// [`cia_distro::ManifestError`] when a manifest is unsigned by a
    /// trusted maintainer or fails verification.
    pub fn apply_signed_manifests(
        &mut self,
        manifests: &[cia_distro::SignedManifest],
        authority: &cia_distro::ManifestAuthority,
        day: u32,
    ) -> Result<GenerationReport, cia_distro::ManifestError> {
        // Verify everything before applying anything.
        for signed in manifests {
            authority.verify(signed)?;
        }
        let mut report = GenerationReport {
            day,
            ..GenerationReport::default()
        };
        for signed in manifests {
            let manifest = &signed.manifest;
            if manifest.entries.is_empty() {
                continue;
            }
            report.packages += 1;
            if manifest.is_kernel {
                let release = format!(
                    "{}-{}",
                    manifest.version.upstream, manifest.version.revision
                );
                let entries: Vec<(String, String)> = manifest
                    .entries
                    .iter()
                    .map(|(path, digest)| (rewrite_kernel_path(path, &release), digest.clone()))
                    .collect();
                if release == self.active_kernel {
                    for (path, digest) in entries {
                        self.record_entry(path, digest, &mut report);
                    }
                } else {
                    self.staged_kernels.insert(release, entries);
                }
                continue;
            }
            for (path, digest) in &manifest.entries {
                self.record_entry(path.clone(), digest.clone(), &mut report);
            }
        }
        self.policy.meta.version += 1;
        self.policy.meta.generated_day = day;
        report.policy_lines_total = self.policy.line_count();
        Ok(report)
    }

    /// Hashes one package's executables into the policy.
    fn ingest_package(&mut self, pkg: &Package, initial: bool, report: &mut GenerationReport) {
        if !pkg.has_executables() {
            return;
        }
        report.packages += 1;
        if pkg.priority.is_high() {
            report.packages_high_priority += 1;
        }

        if let Some(release) = pkg.kernel_release() {
            self.ingest_kernel(pkg, &release, initial, report);
            return;
        }

        for file in pkg.executable_files() {
            let digest = hash_file_content(&file.content());
            report.nominal_bytes += file.nominal_size;
            report.files_hashed += 1;
            self.record_entry(file.install_path.clone(), digest, report);
        }
    }

    /// Kernel packages: only the *active* kernel's files enter the policy
    /// directly. Other releases are staged until their reboot.
    fn ingest_kernel(
        &mut self,
        pkg: &Package,
        release: &str,
        initial: bool,
        report: &mut GenerationReport,
    ) {
        let mut entries = Vec::new();
        for file in pkg.executable_files() {
            let path = rewrite_kernel_path(&file.install_path, release);
            let digest = hash_file_content(&file.content());
            report.nominal_bytes += file.nominal_size;
            report.files_hashed += 1;
            entries.push((path, digest));
        }
        if initial || release == self.active_kernel {
            self.active_kernel_paths = entries.iter().map(|(p, _)| p.clone()).collect();
            if initial {
                self.active_kernel = release.to_string();
            }
            for (path, digest) in entries {
                self.record_entry(path, digest, report);
            }
        } else {
            // §III-C: "when a machine performs an update without
            // rebooting, the policy can tentatively ignore the new
            // kernels" — stage until boot.
            self.staged_kernels.insert(release.to_string(), entries);
        }
    }

    fn record_entry(&mut self, path: String, digest: String, report: &mut GenerationReport) {
        let changed = !matches!(self.canonical.get(&path), Some(existing) if existing == &digest);
        if changed {
            self.policy.allow(path.clone(), digest.clone());
            report.lines_added += 1;
            report.policy_bytes_added += path.len() as u64 + 64 + 3;
            self.canonical.insert(path.clone(), digest);
            self.pending_dedup.push(path);
        }
    }

    /// Post-update deduplication (§III-C): drops superseded digests for
    /// every path touched since the last call, returning how many were
    /// removed.
    pub fn finish_update_window(&mut self) -> usize {
        let before = self.policy.line_count();
        for path in self.pending_dedup.drain(..) {
            if let Some(latest) = self.canonical.get(&path) {
                self.policy.dedup_retain(&path, latest);
            }
        }
        before - self.policy.line_count()
    }

    /// Called when the fleet reboots into `release` (which must have been
    /// staged or already active): its entries join the policy and the
    /// outdated kernel's module entries are disallowed.
    ///
    /// Returns `true` when the policy changed.
    pub fn on_kernel_boot(&mut self, release: &str) -> bool {
        if release == self.active_kernel {
            return false;
        }
        let Some(entries) = self.staged_kernels.remove(release) else {
            return false;
        };
        // Disallow the outdated kernel's files.
        for path in std::mem::take(&mut self.active_kernel_paths) {
            self.policy.remove_path(&path);
            self.canonical.remove(&path);
        }
        self.active_kernel_paths = entries.iter().map(|(p, _)| p.clone()).collect();
        for (path, digest) in entries {
            self.policy.allow(path.clone(), digest.clone());
            self.canonical.insert(path, digest);
        }
        self.active_kernel = release.to_string();
        self.policy.meta.version += 1;
        true
    }

    /// §III-C SNAP handling: record a snap's executables under their
    /// truncated in-sandbox paths (no-op when `snap_scrubbing` is off).
    pub fn include_snap(&mut self, snap: &Snap) {
        if !self.config.snap_scrubbing {
            return;
        }
        for (rel, content, executable) in &snap.files {
            if *executable {
                let digest = hash_file_content(content);
                let truncated = if rel.starts_with('/') {
                    rel.clone()
                } else {
                    format!("/{rel}")
                };
                self.policy.allow(truncated.clone(), digest.clone());
                self.canonical.insert(truncated, digest);
            }
        }
    }
}

/// SHA-256 of file content as lowercase hex — the measurement the policy
/// stores, identical to what IMA records.
pub fn hash_file_content(content: &[u8]) -> String {
    let mut h = Sha256::new();
    h.update(content);
    h.finalize().to_hex()
}

/// Hex digest of a file's contents under SHA-256, for parity checks in
/// tests.
pub fn digest_hex(content: &[u8]) -> String {
    HashAlgorithm::Sha256.digest(content).to_hex()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cia_distro::{
        PackageFile, Pocket, Priority, ReleaseEvent, ReleaseStream, Repository, StreamProfile,
        Version,
    };

    fn synced_mirror() -> (cia_distro::ReleaseStream, Repository, Mirror) {
        let (stream, repo) = ReleaseStream::new(StreamProfile::small(21));
        let mut mirror = Mirror::new();
        mirror.sync(&repo, 0);
        (stream, repo, mirror)
    }

    #[test]
    fn initial_generation_covers_mirror() {
        let (_, _, mirror) = synced_mirror();
        let (generator, report) = DynamicPolicyGenerator::generate_initial(
            &mirror,
            "5.15.0-76",
            0,
            GeneratorConfig::paper_default(),
        );
        let expected_lines: usize = mirror
            .packages()
            .map(|p| p.executable_files().count())
            .sum();
        assert_eq!(report.lines_added, expected_lines);
        assert_eq!(generator.policy().line_count(), expected_lines);
        assert_eq!(report.files_hashed, expected_lines);
        assert!(generator.policy().is_excluded("/tmp/x"));
    }

    #[test]
    fn incremental_diff_appends_and_retains() {
        let (mut stream, mut repo, mut mirror) = synced_mirror();
        let (mut generator, _) = DynamicPolicyGenerator::generate_initial(
            &mirror,
            "5.15.0-76",
            0,
            GeneratorConfig::paper_default(),
        );

        // Find a real update day.
        let mut diff = None;
        for day in 1..60 {
            repo.apply_release(&stream.next_day());
            let d = mirror.sync(&repo, day);
            if !d.is_empty() && d.changed.iter().any(|p| !p.is_kernel) {
                diff = Some((day, d));
                break;
            }
        }
        let (day, diff) = diff.expect("stream produced an update");
        let changed_pkg = diff.changed.iter().find(|p| !p.is_kernel).unwrap().clone();
        let old_digest = generator
            .policy()
            .digests_for(&changed_pkg.files[0].install_path)
            .unwrap()
            .iter()
            .next()
            .unwrap()
            .clone();

        let report = generator.apply_diff(&diff, day);
        assert!(report.lines_added > 0);
        assert_eq!(report.day, day);

        // Update-window consistency: both digests allowed.
        let path = &changed_pkg.files[0].install_path;
        let set = generator.policy().digests_for(path).unwrap();
        assert!(set.contains(&old_digest));
        assert!(set.contains(&hash_file_content(&changed_pkg.files[0].content())));

        // Post-update dedup drops the stale digest.
        let removed = generator.finish_update_window();
        assert!(removed > 0);
        let set = generator.policy().digests_for(path).unwrap();
        assert_eq!(set.len(), 1);
        assert!(set.contains(&hash_file_content(&changed_pkg.files[0].content())));
    }

    #[test]
    fn unchanged_sync_adds_nothing() {
        let (_, repo, mut mirror) = synced_mirror();
        let (mut generator, _) = DynamicPolicyGenerator::generate_initial(
            &mirror,
            "5.15.0-76",
            0,
            GeneratorConfig::paper_default(),
        );
        let diff = mirror.sync(&repo, 1);
        let report = generator.apply_diff(&diff, 1);
        assert_eq!(report.lines_added, 0);
        assert_eq!(report.packages, 0);
    }

    fn kernel_pkg(rev: u32) -> Package {
        Package {
            name: "linux-image-generic".into(),
            version: Version {
                upstream: "5.15.0".into(),
                revision: rev,
            },
            priority: Priority::Optional,
            pocket: Pocket::Updates,
            files: vec![PackageFile {
                install_path: "/lib/modules/kernel/drivers/net.ko".into(),
                executable: true,
                nominal_size: 1000,
                content_seed: rev as u64,
            }],
            is_kernel: true,
        }
    }

    #[test]
    fn kernel_staging_until_reboot() {
        let repo = Repository::with_packages(vec![kernel_pkg(76)]);
        let mut mirror = Mirror::new();
        mirror.sync(&repo, 0);
        let (mut generator, _) = DynamicPolicyGenerator::generate_initial(
            &mirror,
            "5.15.0-76",
            0,
            GeneratorConfig::paper_default(),
        );
        let old_path = "/lib/modules/5.15.0-76/drivers/net.ko";
        let new_path = "/lib/modules/5.15.0-77/drivers/net.ko";
        assert!(generator.policy().digests_for(old_path).is_some());

        // Kernel update arrives: staged, NOT in policy yet.
        let mut repo2 = repo.clone();
        repo2.apply_release(&ReleaseEvent {
            day: 1,
            packages: vec![kernel_pkg(77)],
        });
        let diff = mirror.sync(&repo2, 1);
        generator.apply_diff(&diff, 1);
        assert!(
            generator.policy().digests_for(new_path).is_none(),
            "staged until boot"
        );
        assert!(generator.policy().digests_for(old_path).is_some());

        // Reboot into the new kernel: new modules allowed, old disallowed.
        assert!(generator.on_kernel_boot("5.15.0-77"));
        assert!(generator.policy().digests_for(new_path).is_some());
        assert!(generator.policy().digests_for(old_path).is_none());
        assert_eq!(generator.active_kernel(), "5.15.0-77");

        // Re-booting into the same kernel is a no-op.
        assert!(!generator.on_kernel_boot("5.15.0-77"));
    }

    #[test]
    fn snap_scrubbing_records_truncated_paths() {
        let (_, _, mirror) = synced_mirror();
        let (mut generator, _) = DynamicPolicyGenerator::generate_initial(
            &mirror,
            "5.15.0-76",
            0,
            GeneratorConfig::paper_default(),
        );
        let snap = Snap::core20(1234);
        generator.include_snap(&snap);
        let digest = hash_file_content(&snap.files[0].1);
        assert!(generator
            .policy()
            .digests_for("/usr/bin/python3")
            .unwrap()
            .contains(&digest));
    }

    #[test]
    fn signed_manifests_match_local_hashing() {
        use cia_distro::{Maintainer, ManifestAuthority};
        use rand::rngs::StdRng;
        use rand::SeedableRng;

        let (mut stream, mut repo, mut mirror) = synced_mirror();
        let make_generator = || {
            DynamicPolicyGenerator::generate_initial(
                &mirror,
                "5.15.0-76",
                0,
                GeneratorConfig::paper_default(),
            )
            .0
        };
        let mut local = make_generator();
        let mut remote = make_generator();

        // Find a non-trivial diff.
        let mut found = None;
        for day in 1..60 {
            repo.apply_release(&stream.next_day());
            let d = mirror.sync(&repo, day);
            if d.len() >= 2 {
                found = Some((day, d));
                break;
            }
        }
        let (day, diff) = found.unwrap();

        // Local hashing path.
        local.apply_diff(&diff, day);

        // Signed-manifest path: the maintainer signs each diffed package.
        let mut rng = StdRng::seed_from_u64(5);
        let maintainer = Maintainer::generate("canonical", &mut rng);
        let mut authority = ManifestAuthority::new();
        authority.trust(&maintainer);
        let manifests: Vec<_> = diff.iter().map(|p| maintainer.sign_package(p)).collect();
        let report = remote
            .apply_signed_manifests(&manifests, &authority, day)
            .unwrap();

        // Both paths produce the identical policy.
        assert_eq!(local.policy(), remote.policy());
        // The signed path moved no package bytes.
        assert_eq!(report.nominal_bytes, 0);
        assert!(report.lines_added == 0 || report.packages > 0);
    }

    #[test]
    fn signed_manifests_reject_forgery_atomically() {
        use cia_distro::{Maintainer, ManifestAuthority};
        use rand::rngs::StdRng;
        use rand::SeedableRng;

        let (_, _, mirror) = synced_mirror();
        let (mut generator, _) = DynamicPolicyGenerator::generate_initial(
            &mirror,
            "5.15.0-76",
            0,
            GeneratorConfig::paper_default(),
        );
        let lines_before = generator.policy().line_count();

        let mut rng = StdRng::seed_from_u64(6);
        let maintainer = Maintainer::generate("canonical", &mut rng);
        let mut authority = ManifestAuthority::new();
        authority.trust(&maintainer);

        let good_pkg = mirror.packages().next().unwrap().clone();
        let good = maintainer.sign_package(&good_pkg);
        let mut bad = good.clone();
        bad.manifest.entries[0].1 = "ab".repeat(32); // backdoored digest

        let err = generator
            .apply_signed_manifests(&[good, bad], &authority, 1)
            .unwrap_err();
        assert!(matches!(
            err,
            cia_distro::ManifestError::BadSignature { .. }
        ));
        // Nothing — not even the good manifest — was applied.
        assert_eq!(generator.policy().line_count(), lines_before);
    }

    #[test]
    fn snap_scrubbing_disabled_is_noop() {
        let (_, _, mirror) = synced_mirror();
        let (mut generator, _) = DynamicPolicyGenerator::generate_initial(
            &mirror,
            "5.15.0-76",
            0,
            GeneratorConfig {
                snap_scrubbing: false,
                ..GeneratorConfig::paper_default()
            },
        );
        generator.include_snap(&Snap::core20(1234));
        assert!(generator.policy().digests_for("/usr/bin/python3").is_none());
    }
}
