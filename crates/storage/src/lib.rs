//! `cia-storage`: durable, crash-recoverable state for the verifier.
//!
//! A bitcask-style append-only record log ([`LogStore`]) over
//! [`cia_vfs::Vfs`]: every durable fact is one CRC-framed record
//! (`[crc | ts | ksz | vsz | key | val]`), an in-memory keydir maps
//! each key to its latest frame, and compaction rewrites the live view
//! into a fresh segment. Because the "disk" is the deterministic
//! virtual filesystem, tests can clone it mid-write to model crashes
//! at arbitrary frame boundaries and prove recovery equivalence.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod log;
pub mod record;

pub use log::{Header, KeyDir, KeyValue, LogStore, RecoveryReport, StorageError};
pub use record::{crc32, decode, encode, Frame, FrameError, HEADER_SIZE, TOMBSTONE};
