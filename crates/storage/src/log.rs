//! The append-only log store: CRC-framed segments plus an in-memory
//! keydir.
//!
//! A [`LogStore`] is a bitcask-shaped key-value store layered over
//! [`cia_vfs::Vfs`] so every byte it writes is deterministic,
//! snapshottable (the `Vfs` clones), and fault-injectable (tests
//! truncate or corrupt the underlying files to model crashes and bit
//! rot). Writes append one frame to the active segment; reads go
//! through the keydir — a map from key to the frame's segment, offset
//! and length — so a lookup costs one slice into the segment's bytes.
//!
//! # Recovery
//!
//! [`LogStore::open`] replays every segment in file order, rebuilding
//! the keydir with last-write-wins semantics. The first frame that
//! fails to decode — torn header, torn body, or CRC mismatch — ends
//! the replay: the damaged segment is truncated back to the last good
//! frame boundary and any later segments are dropped entirely, because
//! a torn prefix makes everything after it unordered garbage. Recovery
//! therefore never panics on a damaged log; it recovers the longest
//! intact prefix, which is exactly what a crashed writer guarantees is
//! durable.
//!
//! # Compaction
//!
//! [`LogStore::compact`] rewrites the live frames (the keydir's current
//! view, superseded versions and tombstoned keys dropped) into a fresh
//! segment and deletes the old ones. Logical timestamps are preserved,
//! so a store recovered from a compacted log is indistinguishable from
//! one recovered from the original — the compaction-equivalence
//! property the test suite pins.

use std::collections::BTreeMap;

use cia_vfs::{Mode, Vfs, VfsError, VfsPath};

use crate::record::{self, Frame, HEADER_SIZE};

/// Storage-layer failures. Frame-level damage is *not* an error — the
/// reader truncates past it — so this only carries filesystem faults
/// and caller mistakes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageError {
    /// The underlying virtual filesystem refused an operation.
    Vfs(VfsError),
    /// A value failed to decode at a layer above the frame codec.
    Codec {
        /// What failed to decode.
        what: String,
        /// Decoder diagnostics.
        reason: String,
    },
}

impl From<VfsError> for StorageError {
    fn from(e: VfsError) -> Self {
        StorageError::Vfs(e)
    }
}

impl std::fmt::Display for StorageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StorageError::Vfs(e) => write!(f, "storage vfs error: {e}"),
            StorageError::Codec { what, reason } => {
                write!(f, "storage codec error decoding {what}: {reason}")
            }
        }
    }
}

impl std::error::Error for StorageError {}

/// Keydir entry: where a key's live value sits (fakir-kv's `Header`,
/// with the offset widened for large segments).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Header {
    /// The segment file holding the frame.
    pub file_id: u64,
    /// Byte offset of the value inside the segment.
    pub val_offset: u64,
    /// Value length in bytes.
    pub val_size: u32,
    /// The frame's logical timestamp.
    pub ts: u64,
}

/// The in-memory index: key → live frame location. A `BTreeMap` so
/// iteration (compaction, prefix scans) is deterministic.
pub type KeyDir = BTreeMap<Vec<u8>, Header>;

/// An owned key/value pair, as returned by [`LogStore::scan_prefix`].
pub type KeyValue = (Vec<u8>, Vec<u8>);

/// What [`LogStore::open`] found while replaying.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Frames replayed into the keydir (including superseded ones).
    pub frames_replayed: u64,
    /// Bytes truncated off the first damaged segment, if any.
    pub bytes_truncated: u64,
    /// Whole segments dropped after the damaged one.
    pub segments_dropped: u64,
    /// Human-readable reason the replay stopped early, if it did.
    pub torn: Option<String>,
}

/// The append-only log store. See the module docs.
#[derive(Debug, Clone)]
pub struct LogStore {
    vfs: Vfs,
    dir: VfsPath,
    keydir: KeyDir,
    /// Active segment's file id (`segment-<id>.log`).
    active: u64,
    /// Next logical timestamp (monotonic, never wall clock).
    next_ts: u64,
    /// Frames currently on disk across all segments, in write order.
    frames: u64,
    /// Live bytes of the active segment (its append cursor).
    active_len: u64,
}

fn segment_name(id: u64) -> String {
    format!("segment-{id:06}.log")
}

impl LogStore {
    /// Creates or reopens the store at `dir`, replaying any existing
    /// segments (see the module docs for the damage policy).
    ///
    /// # Errors
    ///
    /// [`StorageError::Vfs`] when the directory cannot be created or a
    /// segment cannot be read back.
    pub fn open(vfs: Vfs, dir: &VfsPath) -> Result<(Self, RecoveryReport), StorageError> {
        let mut store = LogStore {
            vfs,
            dir: dir.clone(),
            keydir: KeyDir::new(),
            active: 0,
            next_ts: 0,
            frames: 0,
            active_len: 0,
        };
        store.vfs.mkdir_p(dir)?;
        let report = store.replay()?;
        Ok((store, report))
    }

    /// The segment file ids currently present, in replay order.
    fn segment_ids(&self) -> Vec<u64> {
        let mut ids: Vec<u64> = self
            .vfs
            .walk_files(&self.dir)
            .filter_map(|p| p.file_name())
            .filter_map(|name| {
                name.strip_prefix("segment-")?
                    .strip_suffix(".log")?
                    .parse()
                    .ok()
            })
            .collect();
        ids.sort_unstable();
        ids
    }

    fn segment_path(&self, id: u64) -> Result<VfsPath, StorageError> {
        Ok(self.dir.join(&segment_name(id))?)
    }

    fn replay(&mut self) -> Result<RecoveryReport, StorageError> {
        let mut report = RecoveryReport::default();
        let ids = self.segment_ids();
        let mut torn_at: Option<(usize, u64, usize)> = None; // (ids idx, file, keep)
        'segments: for (idx, &file_id) in ids.iter().enumerate() {
            let path = self.segment_path(file_id)?;
            let bytes = self.vfs.read(&path)?.to_vec();
            let mut offset = 0usize;
            while offset < bytes.len() {
                match record::decode(&bytes, offset) {
                    Ok(frame) => {
                        self.apply_frame(file_id, offset, &frame);
                        self.next_ts = self.next_ts.max(frame.ts + 1);
                        self.frames += 1;
                        report.frames_replayed += 1;
                        offset += frame.len;
                    }
                    Err(e) => {
                        report.torn = Some(format!("segment {file_id} at {offset}: {e}"));
                        torn_at = Some((idx, file_id, offset));
                        break 'segments;
                    }
                }
            }
            self.active = file_id;
            self.active_len = bytes.len() as u64;
        }

        if let Some((idx, file_id, keep)) = torn_at {
            let path = self.segment_path(file_id)?;
            let full = self.vfs.read(&path)?.len();
            report.bytes_truncated = (full - keep) as u64;
            self.vfs.truncate_file(&path, keep)?;
            self.active = file_id;
            self.active_len = keep as u64;
            for &later in &ids[idx + 1..] {
                let path = self.segment_path(later)?;
                self.vfs.remove_file(&path)?;
                // Forget any keydir entries replay put there: none exist,
                // because replay stops at the first damage. The frames in
                // dropped segments were never applied.
                report.segments_dropped += 1;
            }
        } else if ids.is_empty() {
            // Fresh store: start segment 0 empty so the active segment
            // always exists.
            let path = self.segment_path(0)?;
            if !self.vfs.exists(&path) {
                self.vfs.create_file(&path, Vec::new(), Mode::REGULAR)?;
            }
            self.active = 0;
            self.active_len = 0;
        }
        Ok(report)
    }

    fn apply_frame(&mut self, file_id: u64, offset: usize, frame: &Frame<'_>) {
        if frame.tombstone {
            self.keydir.remove(frame.key);
        } else {
            self.keydir.insert(
                frame.key.to_vec(),
                Header {
                    file_id,
                    val_offset: (offset + HEADER_SIZE + frame.key.len()) as u64,
                    val_size: frame.val.len() as u32,
                    ts: frame.ts,
                },
            );
        }
    }

    /// Appends one frame and indexes it. Returns the logical timestamp
    /// the write was stamped with.
    ///
    /// # Errors
    ///
    /// [`StorageError::Vfs`] when the append fails.
    pub fn put(&mut self, key: &[u8], val: &[u8]) -> Result<u64, StorageError> {
        self.append(key, Some(val))
    }

    /// Appends a tombstone for `key`; the key reads as absent from now
    /// on and compaction drops its history.
    ///
    /// # Errors
    ///
    /// [`StorageError::Vfs`] when the append fails.
    pub fn delete(&mut self, key: &[u8]) -> Result<u64, StorageError> {
        self.append(key, None)
    }

    fn append(&mut self, key: &[u8], val: Option<&[u8]>) -> Result<u64, StorageError> {
        let ts = self.next_ts;
        self.next_ts += 1;
        let frame = record::encode(ts, key, val);
        let path = self.segment_path(self.active)?;
        let offset = self.active_len as usize;
        self.vfs.append_file(&path, &frame, Mode::REGULAR)?;
        self.active_len += frame.len() as u64;
        self.frames += 1;
        match val {
            Some(v) => {
                self.keydir.insert(
                    key.to_vec(),
                    Header {
                        file_id: self.active,
                        val_offset: (offset + HEADER_SIZE + key.len()) as u64,
                        val_size: v.len() as u32,
                        ts,
                    },
                );
            }
            None => {
                self.keydir.remove(key);
            }
        }
        Ok(ts)
    }

    /// Reads the live value for `key`, if any.
    ///
    /// # Errors
    ///
    /// [`StorageError::Vfs`] when the indexed segment cannot be read —
    /// an index/disk divergence that recovery would repair.
    pub fn get(&self, key: &[u8]) -> Result<Option<Vec<u8>>, StorageError> {
        let Some(header) = self.keydir.get(key) else {
            return Ok(None);
        };
        let path = self.segment_path(header.file_id)?;
        let bytes = self.vfs.read(&path)?;
        let start = header.val_offset as usize;
        let end = start + header.val_size as usize;
        if end > bytes.len() {
            return Err(StorageError::Codec {
                what: String::from_utf8_lossy(key).into_owned(),
                reason: format!(
                    "keydir points {start}..{end} past segment end {}",
                    bytes.len()
                ),
            });
        }
        Ok(Some(bytes[start..end].to_vec()))
    }

    /// The live keys with `prefix`, in sorted order, with their values.
    ///
    /// # Errors
    ///
    /// As [`LogStore::get`].
    pub fn scan_prefix(&self, prefix: &[u8]) -> Result<Vec<KeyValue>, StorageError> {
        let mut out = Vec::new();
        for key in self
            .keydir
            .range(prefix.to_vec()..)
            .map(|(k, _)| k.clone())
            .take_while(|k| k.starts_with(prefix))
            .collect::<Vec<_>>()
        {
            if let Some(val) = self.get(&key)? {
                out.push((key, val));
            }
        }
        Ok(out)
    }

    /// Number of live keys.
    pub fn len(&self) -> usize {
        self.keydir.len()
    }

    /// True when no live keys exist.
    pub fn is_empty(&self) -> bool {
        self.keydir.is_empty()
    }

    /// Total frames on disk (live + superseded + tombstones), i.e. the
    /// crash-boundary count for [`LogStore::crash_image`].
    pub fn frame_count(&self) -> u64 {
        self.frames
    }

    /// The logical timestamp the next write will carry.
    pub fn next_ts(&self) -> u64 {
        self.next_ts
    }

    /// The backing virtual filesystem (the "disk" image).
    pub fn vfs(&self) -> &Vfs {
        &self.vfs
    }

    /// The store's directory.
    pub fn dir(&self) -> &VfsPath {
        &self.dir
    }

    /// Rewrites the live frames into a fresh segment (preserving each
    /// frame's logical timestamp, in key order) and deletes the old
    /// segments. Returns the number of frames dropped as garbage.
    ///
    /// # Errors
    ///
    /// [`StorageError::Vfs`] on any filesystem failure mid-rewrite; the
    /// new segment is written completely before old ones are removed,
    /// so a failed compaction leaves the store recoverable.
    pub fn compact(&mut self) -> Result<u64, StorageError> {
        let old_ids = self.segment_ids();
        let new_id = old_ids.last().map_or(0, |last| last + 1);
        let new_path = self.segment_path(new_id)?;

        let mut new_bytes = Vec::new();
        let mut new_keydir = KeyDir::new();
        for (key, header) in &self.keydir {
            let Some(val) = self.get(key)? else { continue };
            let offset = new_bytes.len();
            new_bytes.extend_from_slice(&record::encode(header.ts, key, Some(&val)));
            new_keydir.insert(
                key.clone(),
                Header {
                    file_id: new_id,
                    val_offset: (offset + HEADER_SIZE + key.len()) as u64,
                    val_size: val.len() as u32,
                    ts: header.ts,
                },
            );
        }

        let live = new_keydir.len() as u64;
        let dropped = self.frames - live;
        self.active_len = new_bytes.len() as u64;
        self.vfs.write_file(&new_path, new_bytes, Mode::REGULAR)?;
        for old in old_ids {
            self.vfs.remove_file(&self.segment_path(old)?)?;
        }
        self.keydir = new_keydir;
        self.active = new_id;
        self.frames = live;
        Ok(dropped)
    }

    /// A crash image: a clone of the backing filesystem truncated to
    /// the first `keep_frames` frames (in write order), cut exactly at
    /// a frame boundary — the state a crashed writer leaves behind when
    /// the tail frames never reached the disk. `extra_bytes` additionally
    /// keeps that many bytes of the *next* frame, modelling a torn
    /// write that recovery must truncate away.
    pub fn crash_image(&self, keep_frames: u64, extra_bytes: usize) -> Vfs {
        let mut image = self.vfs.clone();
        let mut remaining = keep_frames;
        let mut cutting = false;
        for file_id in self.segment_ids() {
            let Ok(path) = self.dir.join(&segment_name(file_id)) else {
                continue;
            };
            if cutting {
                let _ = image.remove_file(&path);
                continue;
            }
            let Ok(bytes) = self.vfs.read(&path) else {
                continue;
            };
            let mut offset = 0usize;
            while offset < bytes.len() {
                let Ok(frame) = record::decode(bytes, offset) else {
                    break;
                };
                if remaining == 0 {
                    break;
                }
                remaining -= 1;
                offset += frame.len;
            }
            if remaining == 0 {
                let torn_tail = extra_bytes.min(bytes.len() - offset);
                let _ = image.truncate_file(&path, offset + torn_tail);
                cutting = true;
            }
        }
        image
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dir() -> VfsPath {
        VfsPath::new("/var/lib/cia").unwrap()
    }

    fn fresh() -> LogStore {
        let (store, report) = LogStore::open(Vfs::with_standard_layout(), &dir()).unwrap();
        assert_eq!(report, RecoveryReport::default());
        store
    }

    #[test]
    fn put_get_overwrite() {
        let mut store = fresh();
        store.put(b"a", b"1").unwrap();
        store.put(b"b", b"2").unwrap();
        store.put(b"a", b"3").unwrap();
        assert_eq!(store.get(b"a").unwrap().unwrap(), b"3");
        assert_eq!(store.get(b"b").unwrap().unwrap(), b"2");
        assert_eq!(store.get(b"ghost").unwrap(), None);
        assert_eq!(store.len(), 2);
        assert_eq!(store.frame_count(), 3, "superseded frames stay on disk");
    }

    #[test]
    fn delete_tombstones_and_reads_absent() {
        let mut store = fresh();
        store.put(b"a", b"1").unwrap();
        store.delete(b"a").unwrap();
        assert_eq!(store.get(b"a").unwrap(), None);
        // Reopen: the tombstone replays, the key stays dead.
        let (reopened, _) = LogStore::open(store.vfs().clone(), &dir()).unwrap();
        assert_eq!(reopened.get(b"a").unwrap(), None);
        assert_eq!(reopened.len(), 0);
    }

    #[test]
    fn reopen_replays_last_write_wins() {
        let mut store = fresh();
        for i in 0..10u32 {
            store.put(b"key", format!("v{i}").as_bytes()).unwrap();
        }
        let (reopened, report) = LogStore::open(store.vfs().clone(), &dir()).unwrap();
        assert_eq!(report.frames_replayed, 10);
        assert_eq!(reopened.get(b"key").unwrap().unwrap(), b"v9");
        assert_eq!(reopened.next_ts(), store.next_ts(), "ts stream continues");
    }

    #[test]
    fn compaction_drops_garbage_preserves_view() {
        let mut store = fresh();
        for i in 0..20u32 {
            store
                .put(
                    format!("k{:02}", i % 5).as_bytes(),
                    format!("v{i}").as_bytes(),
                )
                .unwrap();
        }
        store.delete(b"k00").unwrap();
        let before: Vec<_> = store.scan_prefix(b"k").unwrap();
        let dropped = store.compact().unwrap();
        assert_eq!(dropped, 21 - 4);
        assert_eq!(store.scan_prefix(b"k").unwrap(), before);
        // And the compacted image recovers identically.
        let (reopened, report) = LogStore::open(store.vfs().clone(), &dir()).unwrap();
        assert_eq!(report.frames_replayed, 4);
        assert_eq!(reopened.scan_prefix(b"k").unwrap(), before);
    }

    #[test]
    fn writes_after_compaction_land_in_new_segment() {
        let mut store = fresh();
        store.put(b"a", b"1").unwrap();
        store.compact().unwrap();
        store.put(b"b", b"2").unwrap();
        assert_eq!(store.get(b"a").unwrap().unwrap(), b"1");
        assert_eq!(store.get(b"b").unwrap().unwrap(), b"2");
        let (reopened, _) = LogStore::open(store.vfs().clone(), &dir()).unwrap();
        assert_eq!(reopened.get(b"b").unwrap().unwrap(), b"2");
    }

    #[test]
    fn crash_image_cuts_at_frame_boundary() {
        let mut store = fresh();
        for i in 0..6u64 {
            store.put(format!("k{i}").as_bytes(), b"v").unwrap();
        }
        let image = store.crash_image(4, 0);
        let (recovered, report) = LogStore::open(image, &dir()).unwrap();
        assert_eq!(report.frames_replayed, 4);
        assert!(report.torn.is_none(), "clean cut needs no truncation");
        assert_eq!(recovered.len(), 4);
        assert_eq!(recovered.get(b"k3").unwrap().unwrap(), b"v");
        assert_eq!(recovered.get(b"k4").unwrap(), None);
    }

    #[test]
    fn torn_tail_is_truncated_on_open() {
        let mut store = fresh();
        for i in 0..6u64 {
            store.put(format!("k{i}").as_bytes(), b"v").unwrap();
        }
        // Keep 3 frames plus 7 bytes of the 4th: a torn write.
        let image = store.crash_image(3, 7);
        let (recovered, report) = LogStore::open(image, &dir()).unwrap();
        assert_eq!(report.frames_replayed, 3);
        assert_eq!(report.bytes_truncated, 7);
        assert!(report.torn.is_some());
        assert_eq!(recovered.len(), 3);
        // The truncated store accepts new writes cleanly.
        let mut recovered = recovered;
        recovered.put(b"post", b"crash").unwrap();
        let (again, report) = LogStore::open(recovered.vfs().clone(), &dir()).unwrap();
        assert!(report.torn.is_none());
        assert_eq!(again.get(b"post").unwrap().unwrap(), b"crash");
    }
}
