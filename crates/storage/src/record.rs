//! The on-disk record frame: `[crc | ts | ksz | vsz | key | val]`.
//!
//! Every durable fact is one self-validating frame. The CRC covers
//! everything after itself (timestamp, sizes, key, value), so a torn
//! write — a frame cut short by a crash, or bytes flipped by a bad
//! sector — fails validation instead of deserializing into garbage.
//! Readers never trust a length field before the checksum over it has
//! passed; a frame whose declared sizes run past the segment's end is
//! classified as torn, not read out of bounds.
//!
//! Tombstones (deletions) are frames whose `vsz` is the reserved
//! [`TOMBSTONE`] sentinel and whose value is empty: the key's previous
//! versions become garbage for the next compaction to drop.

/// Size of the CRC-32 field.
pub const CRC_SIZE: usize = 4;
/// Size of the logical-timestamp field.
pub const TS_SIZE: usize = 8;
/// Size of the key-length field.
pub const KEY_SIZE: usize = 4;
/// Size of the value-length field.
pub const VAL_SIZE: usize = 4;
/// Total fixed header: `[crc | ts | ksz | vsz]`.
pub const HEADER_SIZE: usize = CRC_SIZE + TS_SIZE + KEY_SIZE + VAL_SIZE;

/// Reserved `vsz` marking a deletion frame (the value is empty).
pub const TOMBSTONE: u32 = u32::MAX;

/// Why a frame failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// Fewer bytes remain than one fixed header — a torn header.
    TruncatedHeader {
        /// Bytes remaining at the frame's start offset.
        remaining: usize,
    },
    /// The header is intact but the declared key/value bytes run past
    /// the end of the segment — a torn body.
    TruncatedBody {
        /// Bytes the header claims the frame needs.
        needed: usize,
        /// Bytes actually remaining.
        remaining: usize,
    },
    /// The checksum over the decoded bytes does not match the stored
    /// CRC — bit rot or a misaligned read.
    CrcMismatch {
        /// The CRC stored in the frame.
        stored: u32,
        /// The CRC computed over the frame's bytes.
        computed: u32,
    },
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::TruncatedHeader { remaining } => {
                write!(f, "torn frame header: only {remaining} bytes remain")
            }
            FrameError::TruncatedBody { needed, remaining } => {
                write!(
                    f,
                    "torn frame body: needs {needed} bytes, {remaining} remain"
                )
            }
            FrameError::CrcMismatch { stored, computed } => {
                write!(
                    f,
                    "crc mismatch: stored {stored:#010x}, computed {computed:#010x}"
                )
            }
        }
    }
}

impl std::error::Error for FrameError {}

/// One decoded frame, borrowing its key and value from the segment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame<'a> {
    /// Logical write sequence number (monotonic per store, never wall
    /// clock — replay must be deterministic).
    pub ts: u64,
    /// The record's key.
    pub key: &'a [u8],
    /// The record's value; empty for tombstones.
    pub val: &'a [u8],
    /// True when this frame deletes the key.
    pub tombstone: bool,
    /// Total encoded length, header included.
    pub len: usize,
}

const CRC_POLY: u32 = 0xEDB8_8320; // CRC-32 (IEEE), reflected form.

const fn crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ CRC_POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = crc_table();

/// CRC-32 (IEEE 802.3) over `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = u32::MAX;
    for &b in bytes {
        let idx = ((crc ^ u32::from(b)) & 0xFF) as usize;
        crc = (crc >> 8) ^ CRC_TABLE[idx];
    }
    !crc
}

/// Encodes one record frame. `val: None` encodes a tombstone.
pub fn encode(ts: u64, key: &[u8], val: Option<&[u8]>) -> Vec<u8> {
    let body = val.unwrap_or(&[]);
    let vsz = match val {
        Some(v) => v.len() as u32,
        None => TOMBSTONE,
    };
    let mut frame = Vec::with_capacity(HEADER_SIZE + key.len() + body.len());
    frame.extend_from_slice(&[0u8; CRC_SIZE]);
    frame.extend_from_slice(&ts.to_le_bytes());
    frame.extend_from_slice(&(key.len() as u32).to_le_bytes());
    frame.extend_from_slice(&vsz.to_le_bytes());
    frame.extend_from_slice(key);
    frame.extend_from_slice(body);
    let crc = crc32(&frame[CRC_SIZE..]);
    frame[..CRC_SIZE].copy_from_slice(&crc.to_le_bytes());
    frame
}

fn read_u32(bytes: &[u8], at: usize) -> u32 {
    let mut buf = [0u8; 4];
    buf.copy_from_slice(&bytes[at..at + 4]);
    u32::from_le_bytes(buf)
}

fn read_u64(bytes: &[u8], at: usize) -> u64 {
    let mut buf = [0u8; 8];
    buf.copy_from_slice(&bytes[at..at + 8]);
    u64::from_le_bytes(buf)
}

/// Decodes the frame starting at `offset` in `segment`.
///
/// # Errors
///
/// [`FrameError`] for torn or corrupt frames; the caller treats any
/// error as "the log ends here" and truncates.
pub fn decode(segment: &[u8], offset: usize) -> Result<Frame<'_>, FrameError> {
    let remaining = segment.len().saturating_sub(offset);
    if remaining < HEADER_SIZE {
        return Err(FrameError::TruncatedHeader { remaining });
    }
    let bytes = &segment[offset..];
    let stored = read_u32(bytes, 0);
    let ts = read_u64(bytes, CRC_SIZE);
    let ksz = read_u32(bytes, CRC_SIZE + TS_SIZE) as usize;
    let raw_vsz = read_u32(bytes, CRC_SIZE + TS_SIZE + KEY_SIZE);
    let tombstone = raw_vsz == TOMBSTONE;
    let vsz = if tombstone { 0 } else { raw_vsz as usize };
    let needed = HEADER_SIZE.saturating_add(ksz).saturating_add(vsz);
    if needed > remaining {
        return Err(FrameError::TruncatedBody { needed, remaining });
    }
    let computed = crc32(&bytes[CRC_SIZE..needed]);
    if computed != stored {
        return Err(FrameError::CrcMismatch { stored, computed });
    }
    Ok(Frame {
        ts,
        key: &bytes[HEADER_SIZE..HEADER_SIZE + ksz],
        val: &bytes[HEADER_SIZE + ksz..needed],
        tombstone,
        len: needed,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_known_vectors() {
        // Standard IEEE check values.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn encode_decode_round_trip() {
        let frame = encode(
            42,
            b"agent/sim-0001",
            Some(b"{\"health\":\"Healthy\"}".as_ref()),
        );
        let decoded = decode(&frame, 0).unwrap();
        assert_eq!(decoded.ts, 42);
        assert_eq!(decoded.key, b"agent/sim-0001");
        assert_eq!(decoded.val, b"{\"health\":\"Healthy\"}");
        assert!(!decoded.tombstone);
        assert_eq!(decoded.len, frame.len());
    }

    #[test]
    fn zero_length_value_round_trips() {
        let frame = encode(7, b"meta/flag", Some(b""));
        let decoded = decode(&frame, 0).unwrap();
        assert_eq!(decoded.val, b"");
        assert!(!decoded.tombstone, "empty value is data, not deletion");
    }

    #[test]
    fn tombstone_round_trips() {
        let frame = encode(9, b"dead/key", None);
        let decoded = decode(&frame, 0).unwrap();
        assert!(decoded.tombstone);
        assert_eq!(decoded.val, b"");
    }

    #[test]
    fn torn_header_and_body_classified() {
        let frame = encode(1, b"k", Some(b"value"));
        assert!(matches!(
            decode(&frame[..HEADER_SIZE - 1], 0),
            Err(FrameError::TruncatedHeader { .. })
        ));
        assert!(matches!(
            decode(&frame[..frame.len() - 1], 0),
            Err(FrameError::TruncatedBody { .. })
        ));
    }

    #[test]
    fn flipped_bit_fails_crc() {
        let mut frame = encode(1, b"k", Some(b"value"));
        let last = frame.len() - 1;
        frame[last] ^= 0x01;
        assert!(matches!(
            decode(&frame, 0),
            Err(FrameError::CrcMismatch { .. })
        ));
    }

    #[test]
    fn oversized_declared_length_is_torn_not_out_of_bounds() {
        // A frame claiming a huge value must fail as torn, not index
        // past the segment (or overflow the needed-bytes sum).
        let mut frame = encode(1, b"k", Some(b"v"));
        let vsz_at = CRC_SIZE + TS_SIZE + KEY_SIZE;
        frame[vsz_at..vsz_at + 4].copy_from_slice(&(u32::MAX - 1).to_le_bytes());
        assert!(matches!(
            decode(&frame, 0),
            Err(FrameError::TruncatedBody { .. })
        ));
    }
}
