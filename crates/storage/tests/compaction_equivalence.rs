//! Compaction-equivalence proptest: for an arbitrary operation
//! sequence with compactions interleaved at arbitrary points, the
//! compacted store — live, and after recovery from its disk image —
//! is observationally identical to a never-compacted twin.

use cia_storage::{KeyValue, LogStore, StorageError};
use cia_vfs::{Vfs, VfsPath};
use proptest::prelude::*;

fn dir() -> VfsPath {
    VfsPath::new("/var/lib/cia").unwrap()
}

#[derive(Debug, Clone)]
enum Op {
    Put(u8, Vec<u8>),
    Delete(u8),
    Compact,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    // The shim's prop_oneof is unweighted; bias toward puts by
    // listing the put arm more than once.
    let put = || {
        (0u8..16, proptest::collection::vec(any::<u8>(), 0..24)).prop_map(|(k, v)| Op::Put(k, v))
    };
    prop_oneof![
        put(),
        put(),
        put(),
        (0u8..16).prop_map(Op::Delete),
        Just(Op::Compact),
    ]
}

fn key(k: u8) -> Vec<u8> {
    format!("key/{k:02}").into_bytes()
}

/// The full observable state: every live (key, value) pair in order.
fn view(store: &LogStore) -> Result<Vec<KeyValue>, StorageError> {
    store.scan_prefix(b"")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn compaction_is_invisible(ops in proptest::collection::vec(op_strategy(), 1..80)) {
        let (mut compacted, _) = LogStore::open(Vfs::with_standard_layout(), &dir()).unwrap();
        let (mut plain, _) = LogStore::open(Vfs::with_standard_layout(), &dir()).unwrap();
        for op in &ops {
            match op {
                Op::Put(k, v) => {
                    compacted.put(&key(*k), v).unwrap();
                    plain.put(&key(*k), v).unwrap();
                }
                Op::Delete(k) => {
                    compacted.delete(&key(*k)).unwrap();
                    plain.delete(&key(*k)).unwrap();
                }
                Op::Compact => {
                    compacted.compact().unwrap();
                }
            }
        }
        let expected = view(&plain).unwrap();
        prop_assert_eq!(view(&compacted).unwrap(), expected.clone());
        prop_assert!(compacted.frame_count() <= plain.frame_count());

        // Recovery from the compacted image reproduces the same view
        // and the same timestamp stream position.
        let (recovered, report) = LogStore::open(compacted.vfs().clone(), &dir()).unwrap();
        prop_assert!(report.torn.is_none());
        prop_assert_eq!(view(&recovered).unwrap(), expected);
        prop_assert_eq!(recovered.len(), compacted.len());
    }

    #[test]
    fn recovery_after_compaction_continues_writes(ops in proptest::collection::vec(op_strategy(), 1..40)) {
        let (mut store, _) = LogStore::open(Vfs::with_standard_layout(), &dir()).unwrap();
        for op in &ops {
            match op {
                Op::Put(k, v) => { store.put(&key(*k), v).unwrap(); }
                Op::Delete(k) => { store.delete(&key(*k)).unwrap(); }
                Op::Compact => { store.compact().unwrap(); }
            }
        }
        store.compact().unwrap();
        let (mut recovered, _) = LogStore::open(store.vfs().clone(), &dir()).unwrap();
        recovered.put(b"zz/after", b"recovery").unwrap();
        let (reread, report) = LogStore::open(recovered.vfs().clone(), &dir()).unwrap();
        prop_assert!(report.torn.is_none());
        prop_assert_eq!(reread.get(b"zz/after").unwrap().unwrap(), b"recovery".to_vec());
        prop_assert_eq!(view(&reread).unwrap().len(), view(&recovered).unwrap().len());
    }
}
