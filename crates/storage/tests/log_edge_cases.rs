//! Log-reader edge cases: the reader must recover the longest intact
//! prefix of a damaged log — never panic, never read past a frame.

use cia_storage::{record, LogStore, RecoveryReport};
use cia_vfs::{Mode, Vfs, VfsPath};

fn dir() -> VfsPath {
    VfsPath::new("/var/lib/cia").unwrap()
}

fn seg0() -> VfsPath {
    dir().join("segment-000000.log").unwrap()
}

fn fresh() -> LogStore {
    LogStore::open(Vfs::with_standard_layout(), &dir())
        .unwrap()
        .0
}

#[test]
fn empty_log_opens_clean() {
    let (store, report) = LogStore::open(Vfs::with_standard_layout(), &dir()).unwrap();
    assert_eq!(report, RecoveryReport::default());
    assert!(store.is_empty());
    assert_eq!(store.frame_count(), 0);
    assert_eq!(store.get(b"anything").unwrap(), None);
}

#[test]
fn reopening_empty_log_is_idempotent() {
    let store = fresh();
    let (again, report) = LogStore::open(store.vfs().clone(), &dir()).unwrap();
    assert_eq!(report, RecoveryReport::default());
    assert!(again.is_empty());
}

#[test]
fn truncated_header_is_dropped() {
    let mut store = fresh();
    store.put(b"good", b"frame").unwrap();
    // Append half a header's worth of garbage: a torn write that died
    // before the fixed header finished.
    let mut vfs = store.vfs().clone();
    vfs.append_file(&seg0(), &[0xAB; 9], Mode::REGULAR).unwrap();
    let (recovered, report) = LogStore::open(vfs, &dir()).unwrap();
    assert_eq!(report.frames_replayed, 1);
    assert_eq!(report.bytes_truncated, 9);
    assert!(report.torn.unwrap().contains("torn frame header"));
    assert_eq!(recovered.get(b"good").unwrap().unwrap(), b"frame");
}

#[test]
fn zero_length_value_survives_replay() {
    let mut store = fresh();
    store.put(b"flag", b"").unwrap();
    let (recovered, _) = LogStore::open(store.vfs().clone(), &dir()).unwrap();
    assert_eq!(
        recovered.get(b"flag").unwrap(),
        Some(Vec::new()),
        "an empty value is present data, not absence"
    );
}

#[test]
fn duplicate_keys_last_write_wins_on_replay() {
    let mut store = fresh();
    store.put(b"k", b"first").unwrap();
    store.put(b"other", b"x").unwrap();
    store.put(b"k", b"second").unwrap();
    store.delete(b"other").unwrap();
    store.put(b"other", b"resurrected").unwrap();
    let (recovered, report) = LogStore::open(store.vfs().clone(), &dir()).unwrap();
    assert_eq!(report.frames_replayed, 5);
    assert_eq!(recovered.get(b"k").unwrap().unwrap(), b"second");
    assert_eq!(recovered.get(b"other").unwrap().unwrap(), b"resurrected");
    assert_eq!(recovered.len(), 2);
}

#[test]
fn corrupt_crc_mid_segment_truncates_there() {
    let mut store = fresh();
    for i in 0..8u64 {
        store
            .put(format!("k{i}").as_bytes(), format!("v{i}").as_bytes())
            .unwrap();
    }
    // Flip one bit inside the 4th frame's value; everything after the
    // 3rd frame becomes unreachable.
    let mut vfs = store.vfs().clone();
    let bytes = vfs.read(&seg0()).unwrap().to_vec();
    let mut offset = 0usize;
    for _ in 0..3 {
        offset += record::decode(&bytes, offset).unwrap().len;
    }
    let mut damaged = bytes.clone();
    damaged[offset + record::HEADER_SIZE + 1] ^= 0x40;
    vfs.write_file(&seg0(), damaged, Mode::REGULAR).unwrap();

    let (recovered, report) = LogStore::open(vfs, &dir()).unwrap();
    assert_eq!(report.frames_replayed, 3);
    assert!(report.torn.unwrap().contains("crc mismatch"));
    assert_eq!(recovered.get(b"k2").unwrap().unwrap(), b"v2");
    assert_eq!(
        recovered.get(b"k3").unwrap(),
        None,
        "frame 4 onward is gone"
    );
    assert_eq!(recovered.len(), 3);
}

#[test]
fn segments_after_damage_are_dropped_entirely() {
    let mut store = fresh();
    store.put(b"a", b"1").unwrap();
    store.compact().unwrap(); // live data now in segment-000001
    store.put(b"b", b"2").unwrap();

    // Recreate a stale segment-000000 with garbage: replay hits it
    // first, truncates it to nothing, and must drop segment-000001
    // rather than replay frames of unknowable order.
    let mut vfs = store.vfs().clone();
    vfs.create_file(&seg0(), vec![0xFF; 32], Mode::REGULAR)
        .unwrap();
    let (recovered, report) = LogStore::open(vfs, &dir()).unwrap();
    assert_eq!(report.frames_replayed, 0);
    assert_eq!(report.segments_dropped, 1);
    assert!(recovered.is_empty());
    // And the recovered store still accepts writes.
    let mut recovered = recovered;
    recovered.put(b"c", b"3").unwrap();
    assert_eq!(recovered.get(b"c").unwrap().unwrap(), b"3");
}

#[test]
fn every_prefix_of_a_log_recovers_without_panic() {
    // The torn-write corpus: cut the segment at every byte length and
    // require open() to succeed with a frame count equal to the number
    // of complete frames that survived the cut.
    let mut store = fresh();
    let mut boundaries = vec![0usize];
    for i in 0..5u64 {
        store
            .put(
                format!("key-{i}").as_bytes(),
                vec![i as u8; i as usize * 3].as_slice(),
            )
            .unwrap();
        let bytes = store.vfs().read(&seg0()).unwrap();
        boundaries.push(bytes.len());
    }
    let full = store.vfs().read(&seg0()).unwrap().to_vec();
    for cut in 0..=full.len() {
        let mut vfs = store.vfs().clone();
        vfs.truncate_file(&seg0(), cut).unwrap();
        let (recovered, report) = LogStore::open(vfs, &dir()).unwrap();
        let complete = boundaries.iter().filter(|&&b| b > 0 && b <= cut).count() as u64;
        assert_eq!(
            report.frames_replayed, complete,
            "cut at byte {cut}: wrong surviving frame count"
        );
        assert_eq!(recovered.len() as u64, complete);
        let at_boundary = boundaries.contains(&cut);
        assert_eq!(report.torn.is_none(), at_boundary, "cut at byte {cut}");
    }
}
