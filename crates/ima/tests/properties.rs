//! Property-based tests for the measurement list and policy.

use cia_crypto::HashAlgorithm;
use cia_ima::{ImaLogEntry, ImaPolicy, MeasurementLog};
use cia_tpm::pcr::extend_digest;
use cia_tpm::{Manufacturer, Tpm};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn tpm() -> Tpm {
    let mut rng = StdRng::seed_from_u64(1);
    let m = Manufacturer::generate(&mut rng);
    Tpm::manufacture(&m, &mut rng)
}

/// Paths as IMA records them: absolute, printable, may contain spaces.
fn measured_path() -> impl Strategy<Value = String> {
    "[a-zA-Z0-9 ._/-]{1,40}".prop_map(|s| format!("/{}", s.trim_start_matches('/')))
}

proptest! {
    /// The canonical ASCII list round-trips arbitrary entries.
    #[test]
    fn log_render_parse_roundtrip(
        entries in proptest::collection::vec(
            (proptest::collection::vec(any::<u8>(), 0..64), measured_path()),
            0..20,
        )
    ) {
        let mut tpm = tpm();
        let mut log = MeasurementLog::new();
        for (content, path) in &entries {
            let entry = ImaLogEntry::new(HashAlgorithm::Sha256.digest(content), path.clone());
            log.append(entry, &mut tpm).unwrap();
        }
        let parsed = MeasurementLog::parse(&log.render()).unwrap();
        prop_assert_eq!(parsed, log);
    }

    /// Replay always matches the TPM PCR, in both banks, at every prefix.
    #[test]
    fn replay_matches_pcr_at_every_prefix(
        contents in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..32), 1..15)
    ) {
        let mut tpm = tpm();
        let mut log = MeasurementLog::new();
        for (i, content) in contents.iter().enumerate() {
            let entry = ImaLogEntry::new(
                HashAlgorithm::Sha256.digest(content),
                format!("/usr/bin/f{i}"),
            );
            log.append(entry, &mut tpm).unwrap();
        }
        for bank in [HashAlgorithm::Sha1, HashAlgorithm::Sha256] {
            prop_assert_eq!(log.replay(bank), tpm.pcr_read(bank, cia_ima::IMA_PCR).unwrap());
        }
        // Prefix folds compose: replay(k+1) = extend(replay(k), h(k)).
        for k in 0..log.len() {
            let next = extend_digest(
                HashAlgorithm::Sha256,
                log.replay_prefix(HashAlgorithm::Sha256, k),
                log.entries()[k].template_hash(HashAlgorithm::Sha256),
            );
            prop_assert_eq!(next, log.replay_prefix(HashAlgorithm::Sha256, k + 1));
        }
    }

    /// Policy text format round-trips arbitrary rule sets.
    #[test]
    fn policy_render_parse_roundtrip(rules in proptest::collection::vec((any::<bool>(), 0u8..4, any::<bool>(), any::<u32>()), 0..12)) {
        use cia_ima::{ImaFunc, PolicyAction, PolicyRule};
        let built: Vec<PolicyRule> = rules
            .into_iter()
            .map(|(measure, func, has_magic, magic)| PolicyRule {
                action: if measure { PolicyAction::Measure } else { PolicyAction::DontMeasure },
                func: match func {
                    0 => None,
                    1 => Some(ImaFunc::BprmCheck),
                    2 => Some(ImaFunc::FileMmap),
                    _ => Some(ImaFunc::ModuleCheck),
                },
                fsmagic: has_magic.then_some(magic as u64),
            })
            .collect();
        let policy = ImaPolicy::from_rules(built);
        let parsed = ImaPolicy::parse(&policy.render()).unwrap();
        prop_assert_eq!(parsed, policy);
    }

    /// Tampering with any single entry's path or digest breaks the parse
    /// (template-hash check) or the replay (PCR check) — never silent.
    #[test]
    fn tampering_never_silent(
        contents in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 1..32), 1..8),
        victim in 0usize..8,
    ) {
        let mut tpm = tpm();
        let mut log = MeasurementLog::new();
        for (i, content) in contents.iter().enumerate() {
            log.append(
                ImaLogEntry::new(HashAlgorithm::Sha256.digest(content), format!("/usr/bin/f{i}")),
                &mut tpm,
            )
            .unwrap();
        }
        let victim = victim % log.len();
        // Forge: replace the victim entry's digest with another value and
        // recompute its line (so the template hash is self-consistent).
        let mut forged_entries: Vec<ImaLogEntry> = log.entries().to_vec();
        forged_entries[victim] = ImaLogEntry::new(
            HashAlgorithm::Sha256.digest(b"forged content"),
            forged_entries[victim].path.clone(),
        );
        let forged_text: String = forged_entries
            .iter()
            .map(|e| format!("{}\n", e.render()))
            .collect();
        let forged = MeasurementLog::parse(&forged_text).unwrap();
        // The forged log parses, but it can no longer replay to the PCR.
        let pcr = tpm.pcr_read(HashAlgorithm::Sha256, cia_ima::IMA_PCR).unwrap();
        prop_assert_ne!(forged.replay(HashAlgorithm::Sha256), pcr);
    }
}
