//! Binary wire codec impl for IMA measurement log entries.
//!
//! A log entry travels as `(pcr, filedata_hash, path)` — the private
//! template-hash memo slots are recomputed lazily on the far side by
//! [`ImaLogEntry::new_in_pcr`], which keeps the wire image minimal and
//! the rebuilt entry semantically identical.

use cia_crypto::Digest;
use cia_wire::{Reader, Wire, WireError, Writer};

use crate::log::ImaLogEntry;

impl Wire for ImaLogEntry {
    fn encode(&self, w: &mut Writer) {
        w.put_u8(self.pcr);
        self.filedata_hash.encode(w);
        w.put_str(&self.path);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let pcr = r.u8()?;
        let filedata_hash = Digest::decode(r)?;
        let path = r.str()?;
        Ok(ImaLogEntry::new_in_pcr(pcr, filedata_hash, path))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cia_crypto::Sha256;

    #[test]
    fn entry_roundtrips() {
        let entry = ImaLogEntry::new(Sha256::digest(b"binary"), "/usr/bin/sshd");
        let back = ImaLogEntry::from_wire(&entry.to_wire()).unwrap();
        assert_eq!(back, entry);
        assert_eq!(
            back.template_hash(cia_crypto::HashAlgorithm::Sha256),
            entry.template_hash(cia_crypto::HashAlgorithm::Sha256)
        );
    }

    #[test]
    fn non_default_pcr_survives() {
        let entry = ImaLogEntry::new_in_pcr(12, Sha256::digest(b"x"), "/etc/shadow");
        assert_eq!(ImaLogEntry::from_wire(&entry.to_wire()).unwrap(), entry);
    }

    #[test]
    fn truncated_entries_error_cleanly() {
        let bytes = ImaLogEntry::new(Sha256::digest(b"y"), "/bin/true").to_wire();
        for cut in 0..bytes.len() {
            assert!(ImaLogEntry::from_wire(&bytes[..cut]).is_err());
        }
    }
}
