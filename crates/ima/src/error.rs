//! Error type for the IMA simulator.

use std::fmt;

use cia_tpm::TpmError;
use cia_vfs::VfsError;

/// Errors returned by IMA operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ImaError {
    /// The underlying filesystem operation failed.
    Vfs(VfsError),
    /// Extending the TPM failed.
    Tpm(TpmError),
    /// A textual policy line could not be parsed.
    PolicyParse {
        /// 1-based line number.
        line: usize,
        /// Description of the problem.
        reason: String,
    },
    /// A measurement-list line could not be parsed.
    LogParse {
        /// 1-based line number.
        line: usize,
        /// Description of the problem.
        reason: String,
    },
    /// An IMA signature blob could not be encoded for the xattr.
    SignatureEncode {
        /// Description of the problem.
        reason: String,
    },
}

impl fmt::Display for ImaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ImaError::Vfs(e) => write!(f, "filesystem error: {e}"),
            ImaError::Tpm(e) => write!(f, "tpm error: {e}"),
            ImaError::PolicyParse { line, reason } => {
                write!(f, "policy parse error at line {line}: {reason}")
            }
            ImaError::LogParse { line, reason } => {
                write!(f, "measurement list parse error at line {line}: {reason}")
            }
            ImaError::SignatureEncode { reason } => {
                write!(f, "signature encode error: {reason}")
            }
        }
    }
}

impl std::error::Error for ImaError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ImaError::Vfs(e) => Some(e),
            ImaError::Tpm(e) => Some(e),
            _ => None,
        }
    }
}

impl From<VfsError> for ImaError {
    fn from(e: VfsError) -> Self {
        ImaError::Vfs(e)
    }
}

impl From<TpmError> for ImaError {
    fn from(e: TpmError) -> Self {
        ImaError::Tpm(e)
    }
}
