//! A simulator of Linux's Integrity Measurement Architecture (IMA).
//!
//! IMA hooks file accesses (execution, executable mmap, kernel-module
//! load), hashes the file content, appends an entry to a measurement list,
//! and extends TPM PCR 10 with the entry's template hash. Keylime's
//! verifier later replays the list against a quoted PCR 10 value and
//! checks each file digest against its runtime policy.
//!
//! Three of the paper's five evasion problems are *design properties of
//! IMA itself*, and this crate reproduces each mechanically:
//!
//! - **P3 — unmonitored filesystems**: policy rules exclude whole
//!   filesystems by superblock magic (`dont_measure fsmagic=0x01021994`
//!   for tmpfs, etc.); executions there are invisible. See [`ImaPolicy`].
//! - **P4 — no re-evaluation**: measurements are cached per
//!   `(filesystem, inode)` and invalidated only by content writes
//!   (`i_version`), never by renames. A file measured once under
//!   `/var/tmp/x` and moved to `/usr/bin/x` is *not* re-measured. See
//!   [`Ima::on_exec`] and the [`ImaConfig::reevaluate_on_path_change`]
//!   mitigation toggle.
//! - **P5 — scripts via interpreters**: only `execve` (`BPRM_CHECK`)
//!   measures the executed file. `python3 script.py` measures the
//!   *interpreter*; the script is a plain read. The
//!   [`ImaConfig::script_exec_control`] toggle models the kernel's
//!   `O_MAYEXEC`/script-execution-control patch set, where opted-in
//!   interpreters open scripts with an exec intent that IMA can measure.
//!
//! # Examples
//!
//! ```
//! use cia_crypto::HashAlgorithm;
//! use cia_ima::{Ima, ImaPolicy};
//! use cia_tpm::{Manufacturer, Tpm};
//! use cia_vfs::{Mode, Vfs, VfsPath};
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! let mut rng = StdRng::seed_from_u64(1);
//! let manufacturer = Manufacturer::generate(&mut rng);
//! let mut tpm = Tpm::manufacture(&manufacturer, &mut rng);
//! let mut vfs = Vfs::with_standard_layout();
//! let mut ima = Ima::new(ImaPolicy::keylime_default());
//! ima.record_boot_aggregate(&mut tpm)?;
//!
//! let ls = VfsPath::new("/usr/bin/ls")?;
//! vfs.create_file(&ls, b"ls binary".to_vec(), Mode::EXEC)?;
//! ima.on_exec(&vfs, &ls, &ls, &mut tpm)?;
//!
//! // The log replays exactly to the TPM's PCR 10.
//! let replayed = ima.log().replay(HashAlgorithm::Sha256);
//! assert_eq!(replayed, tpm.pcr_read(HashAlgorithm::Sha256, 10)?);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod appraise;
pub mod engine;
pub mod error;
pub mod log;
pub mod policy;
pub mod wire;

pub use appraise::{
    sign_content, sign_file, AppraisalKeyring, AppraisalResult, ImaSignature, IMA_XATTR,
};
pub use engine::{Ima, ImaConfig};
pub use error::ImaError;
pub use log::{ImaLogEntry, MeasurementLog, BOOT_AGGREGATE_NAME, IMA_PCR};
pub use policy::{ImaFunc, ImaPolicy, PolicyAction, PolicyRule};
