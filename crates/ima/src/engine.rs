//! The IMA engine: hooks, the measurement cache, and mitigation toggles.

use std::collections::HashMap;

use cia_crypto::{HashAlgorithm, Sha256};
use cia_tpm::Tpm;
use cia_vfs::{FileId, Vfs, VfsPath};
use serde::{Deserialize, Serialize};

use crate::error::ImaError;
use crate::log::{ImaLogEntry, MeasurementLog, BOOT_AGGREGATE_NAME};
use crate::policy::{ImaFunc, ImaPolicy};

/// Behavioural toggles corresponding to the paper's proposed IMA fixes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ImaConfig {
    /// §IV-C "Improving IMA Design: Re-Evaluation" — when set, a cached
    /// measurement is invalidated if the file is accessed under a
    /// different path than the one recorded, closing P4. Stock IMA
    /// behaviour (and the default) is `false`.
    pub reevaluate_on_path_change: bool,
    /// §IV-C "Improving IMA Design: Script Invocations" — when set,
    /// interpreters that support script-execution-control open scripts
    /// with exec intent and the [`ImaFunc::MayExecOpen`] hook fires.
    /// Stock behaviour is `false`.
    pub script_exec_control: bool,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct CachedMeasurement {
    iversion: u64,
    /// Path recorded at measurement time (for the re-evaluation fix).
    path: String,
}

/// Result of presenting one access to the engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MeasureOutcome {
    /// A new entry was appended to the measurement list.
    Measured,
    /// The policy exempts this access (e.g. excluded filesystem — P3).
    PolicyExempt,
    /// The inode was already measured and unchanged (P4).
    Cached,
}

/// The in-kernel IMA state for one machine.
#[derive(Debug, Clone)]
pub struct Ima {
    policy: ImaPolicy,
    config: ImaConfig,
    log: MeasurementLog,
    /// The `iint` cache: measurement state keyed by `(filesystem, inode)`.
    cache: HashMap<FileId, CachedMeasurement>,
}

impl Ima {
    /// Creates an engine with stock kernel behaviour.
    pub fn new(policy: ImaPolicy) -> Self {
        Self::with_config(policy, ImaConfig::default())
    }

    /// Creates an engine with explicit mitigation toggles.
    pub fn with_config(policy: ImaPolicy, config: ImaConfig) -> Self {
        Ima {
            policy,
            config,
            log: MeasurementLog::new(),
            cache: HashMap::new(),
        }
    }

    /// The active measurement policy.
    pub fn policy(&self) -> &ImaPolicy {
        &self.policy
    }

    /// The active configuration.
    pub fn config(&self) -> ImaConfig {
        self.config
    }

    /// Replaces the policy (e.g. loading an enriched policy). Takes effect
    /// for subsequent accesses only, like writing `/sys/.../ima/policy`.
    pub fn set_policy(&mut self, policy: ImaPolicy) {
        self.policy = policy;
    }

    /// The measurement list.
    pub fn log(&self) -> &MeasurementLog {
        &self.log
    }

    /// Records the `boot_aggregate` entry: a digest over PCRs 0–9,
    /// committing the measured-boot state into the runtime list. Must be
    /// called once per boot before any file measurement.
    ///
    /// # Errors
    ///
    /// Propagates TPM read/extend failures.
    pub fn record_boot_aggregate(&mut self, tpm: &mut Tpm) -> Result<(), ImaError> {
        let mut h = Sha256::new();
        for pcr in 0..=9u8 {
            h.update(tpm.pcr_read(HashAlgorithm::Sha256, pcr)?.as_bytes());
        }
        let aggregate = h.finalize();
        self.log
            .append(ImaLogEntry::new(aggregate, BOOT_AGGREGATE_NAME), tpm)
    }

    /// `execve()` hook (`BPRM_CHECK`). `real_path` locates the file in the
    /// VFS; `recorded_path` is the pathname the kernel sees and logs —
    /// for SNAP/chroot executions this is the truncated in-sandbox path.
    ///
    /// # Errors
    ///
    /// Propagates VFS lookup and TPM failures.
    pub fn on_exec(
        &mut self,
        vfs: &Vfs,
        real_path: &VfsPath,
        recorded_path: &VfsPath,
        tpm: &mut Tpm,
    ) -> Result<MeasureOutcome, ImaError> {
        self.measure(vfs, real_path, recorded_path, ImaFunc::BprmCheck, tpm)
    }

    /// `mmap(PROT_EXEC)` hook (`FILE_MMAP`) — shared libraries.
    ///
    /// # Errors
    ///
    /// Propagates VFS lookup and TPM failures.
    pub fn on_mmap_exec(
        &mut self,
        vfs: &Vfs,
        real_path: &VfsPath,
        recorded_path: &VfsPath,
        tpm: &mut Tpm,
    ) -> Result<MeasureOutcome, ImaError> {
        self.measure(vfs, real_path, recorded_path, ImaFunc::FileMmap, tpm)
    }

    /// Kernel-module load hook (`MODULE_CHECK`).
    ///
    /// # Errors
    ///
    /// Propagates VFS lookup and TPM failures.
    pub fn on_module_load(
        &mut self,
        vfs: &Vfs,
        path: &VfsPath,
        tpm: &mut Tpm,
    ) -> Result<MeasureOutcome, ImaError> {
        self.measure(vfs, path, path, ImaFunc::ModuleCheck, tpm)
    }

    /// Interpreter script-open hook. Fires only when
    /// [`ImaConfig::script_exec_control`] is enabled *and* the policy
    /// measures [`ImaFunc::MayExecOpen`]; otherwise the open is an
    /// ordinary read and nothing is measured — which is exactly P5.
    ///
    /// # Errors
    ///
    /// Propagates VFS lookup and TPM failures.
    pub fn on_script_open(
        &mut self,
        vfs: &Vfs,
        real_path: &VfsPath,
        recorded_path: &VfsPath,
        tpm: &mut Tpm,
    ) -> Result<MeasureOutcome, ImaError> {
        if !self.config.script_exec_control {
            return Ok(MeasureOutcome::PolicyExempt);
        }
        self.measure(vfs, real_path, recorded_path, ImaFunc::MayExecOpen, tpm)
    }

    /// The shared measurement path: policy check, cache check, hash,
    /// append, extend.
    fn measure(
        &mut self,
        vfs: &Vfs,
        real_path: &VfsPath,
        recorded_path: &VfsPath,
        func: ImaFunc,
        tpm: &mut Tpm,
    ) -> Result<MeasureOutcome, ImaError> {
        let meta = vfs.metadata(real_path)?;
        if !self.policy.should_measure(func, meta.fs_kind.fsmagic()) {
            return Ok(MeasureOutcome::PolicyExempt);
        }

        if let Some(cached) = self.cache.get(&meta.file_id) {
            let content_unchanged = cached.iversion == meta.iversion;
            let path_unchanged = cached.path == recorded_path.as_str();
            // Stock IMA: only content changes invalidate (P4). With the
            // re-evaluation fix, a new pathname also invalidates.
            let still_valid = if self.config.reevaluate_on_path_change {
                content_unchanged && path_unchanged
            } else {
                content_unchanged
            };
            if still_valid {
                return Ok(MeasureOutcome::Cached);
            }
        }

        let filedata_hash = vfs.file_digest(real_path, HashAlgorithm::Sha256)?;
        self.log
            .append(ImaLogEntry::new(filedata_hash, recorded_path.as_str()), tpm)?;
        self.cache.insert(
            meta.file_id,
            CachedMeasurement {
                iversion: meta.iversion,
                path: recorded_path.as_str().to_string(),
            },
        );
        Ok(MeasureOutcome::Measured)
    }

    /// Reboot semantics: measurement list and cache are reset (they live
    /// in RAM); the policy persists (it is reloaded from disk by init).
    pub fn reboot(&mut self) {
        self.log.clear();
        self.cache.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cia_tpm::Manufacturer;
    use cia_vfs::Mode;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (Vfs, Tpm, Ima) {
        let mut rng = StdRng::seed_from_u64(7);
        let m = Manufacturer::generate(&mut rng);
        let tpm = Tpm::manufacture(&m, &mut rng);
        let vfs = Vfs::with_standard_layout();
        let ima = Ima::new(ImaPolicy::keylime_default());
        (vfs, tpm, ima)
    }

    fn p(s: &str) -> VfsPath {
        VfsPath::new(s).unwrap()
    }

    #[test]
    fn exec_on_ext4_is_measured_once() {
        let (mut vfs, mut tpm, mut ima) = setup();
        let f = p("/usr/bin/tool");
        vfs.create_file(&f, b"bin".to_vec(), Mode::EXEC).unwrap();

        assert_eq!(
            ima.on_exec(&vfs, &f, &f, &mut tpm).unwrap(),
            MeasureOutcome::Measured
        );
        assert_eq!(
            ima.on_exec(&vfs, &f, &f, &mut tpm).unwrap(),
            MeasureOutcome::Cached
        );
        assert_eq!(ima.log().len(), 1);
    }

    #[test]
    fn content_change_remeasures() {
        let (mut vfs, mut tpm, mut ima) = setup();
        let f = p("/usr/bin/tool");
        vfs.create_file(&f, b"v1".to_vec(), Mode::EXEC).unwrap();
        ima.on_exec(&vfs, &f, &f, &mut tpm).unwrap();
        vfs.write_file(&f, b"v2".to_vec(), Mode::EXEC).unwrap();
        assert_eq!(
            ima.on_exec(&vfs, &f, &f, &mut tpm).unwrap(),
            MeasureOutcome::Measured
        );
        assert_eq!(ima.log().len(), 2);
    }

    #[test]
    fn p3_tmpfs_exec_is_invisible() {
        let (mut vfs, mut tpm, mut ima) = setup();
        let f = p("/dev/shm/payload");
        vfs.create_file(&f, b"evil".to_vec(), Mode::EXEC).unwrap();
        assert_eq!(
            ima.on_exec(&vfs, &f, &f, &mut tpm).unwrap(),
            MeasureOutcome::PolicyExempt
        );
        assert!(ima.log().is_empty());
    }

    #[test]
    fn p4_move_within_fs_not_remeasured() {
        let (mut vfs, mut tpm, mut ima) = setup();
        // /tmp is on the root ext4 (Ubuntu default) — measured territory.
        let staged = p("/tmp/rootkit");
        let dest = p("/usr/bin/rootkit");
        vfs.create_file(&staged, b"evil".to_vec(), Mode::EXEC)
            .unwrap();

        // Attacker (or a test run) executes it at the staging path once.
        assert_eq!(
            ima.on_exec(&vfs, &staged, &staged, &mut tpm).unwrap(),
            MeasureOutcome::Measured
        );
        // Move to destination: same filesystem, inode preserved.
        vfs.move_entry(&staged, &dest).unwrap();
        // Stock IMA never re-measures: the /usr/bin execution is invisible.
        assert_eq!(
            ima.on_exec(&vfs, &dest, &dest, &mut tpm).unwrap(),
            MeasureOutcome::Cached
        );
        assert_eq!(ima.log().len(), 1);
        assert_eq!(ima.log().entries()[0].path, "/tmp/rootkit");
    }

    #[test]
    fn p4_fix_reevaluates_on_path_change() {
        let (mut vfs, mut tpm, mut ima_fixed) = setup();
        ima_fixed = Ima::with_config(
            ima_fixed.policy().clone(),
            ImaConfig {
                reevaluate_on_path_change: true,
                script_exec_control: false,
            },
        );
        let staged = p("/tmp/rootkit");
        let dest = p("/usr/bin/rootkit");
        vfs.create_file(&staged, b"evil".to_vec(), Mode::EXEC)
            .unwrap();
        ima_fixed.on_exec(&vfs, &staged, &staged, &mut tpm).unwrap();
        vfs.move_entry(&staged, &dest).unwrap();
        assert_eq!(
            ima_fixed.on_exec(&vfs, &dest, &dest, &mut tpm).unwrap(),
            MeasureOutcome::Measured
        );
        assert_eq!(ima_fixed.log().entries()[1].path, "/usr/bin/rootkit");
    }

    #[test]
    fn p5_script_open_unmeasured_by_default() {
        let (mut vfs, mut tpm, mut ima) = setup();
        let script = p("/usr/local/bin/attack.py");
        vfs.create_file(&script, b"import os".to_vec(), Mode::REGULAR)
            .unwrap();
        assert_eq!(
            ima.on_script_open(&vfs, &script, &script, &mut tpm)
                .unwrap(),
            MeasureOutcome::PolicyExempt
        );
        assert!(ima.log().is_empty());
    }

    #[test]
    fn p5_fix_measures_script_opens() {
        let (mut vfs, mut tpm, _) = setup();
        let mut ima = Ima::with_config(
            ImaPolicy::enriched(true),
            ImaConfig {
                reevaluate_on_path_change: false,
                script_exec_control: true,
            },
        );
        let script = p("/usr/local/bin/attack.py");
        vfs.create_file(&script, b"import os".to_vec(), Mode::REGULAR)
            .unwrap();
        assert_eq!(
            ima.on_script_open(&vfs, &script, &script, &mut tpm)
                .unwrap(),
            MeasureOutcome::Measured
        );
        assert_eq!(ima.log().entries()[0].path, "/usr/local/bin/attack.py");
    }

    #[test]
    fn boot_aggregate_is_first_and_replay_matches() {
        let (mut vfs, mut tpm, mut ima) = setup();
        // Simulate measured boot extending PCR 0.
        tpm.pcr_extend(
            HashAlgorithm::Sha256,
            0,
            HashAlgorithm::Sha256.digest(b"firmware"),
        )
        .unwrap();
        ima.record_boot_aggregate(&mut tpm).unwrap();
        let f = p("/usr/bin/tool");
        vfs.create_file(&f, b"bin".to_vec(), Mode::EXEC).unwrap();
        ima.on_exec(&vfs, &f, &f, &mut tpm).unwrap();

        assert_eq!(ima.log().entries()[0].path, BOOT_AGGREGATE_NAME);
        for bank in [HashAlgorithm::Sha1, HashAlgorithm::Sha256] {
            assert_eq!(
                ima.log().replay(bank),
                tpm.pcr_read(bank, crate::IMA_PCR).unwrap()
            );
        }
    }

    #[test]
    fn reboot_clears_log_and_cache() {
        let (mut vfs, mut tpm, mut ima) = setup();
        let f = p("/usr/bin/tool");
        vfs.create_file(&f, b"bin".to_vec(), Mode::EXEC).unwrap();
        ima.on_exec(&vfs, &f, &f, &mut tpm).unwrap();
        ima.reboot();
        tpm.reboot();
        assert!(ima.log().is_empty());
        // After reboot the same file is measured afresh.
        assert_eq!(
            ima.on_exec(&vfs, &f, &f, &mut tpm).unwrap(),
            MeasureOutcome::Measured
        );
    }

    #[test]
    fn snap_truncated_path_is_recorded() {
        let (mut vfs, mut tpm, mut ima) = setup();
        vfs.mkdir_p(&p("/snap/core20/1234/usr/bin")).unwrap();
        vfs.mount(&p("/snap/core20/1234"), cia_vfs::FilesystemKind::Squashfs)
            .unwrap();
        vfs.mkdir_p(&p("/snap/core20/1234/usr/bin")).unwrap();
        let real = p("/snap/core20/1234/usr/bin/python3");
        vfs.create_file(&real, b"python".to_vec(), Mode::EXEC)
            .unwrap();
        // The kernel inside the sandbox sees the truncated path.
        let truncated = p("/usr/bin/python3");
        ima.on_exec(&vfs, &real, &truncated, &mut tpm).unwrap();
        assert_eq!(ima.log().entries()[0].path, "/usr/bin/python3");
    }

    #[test]
    fn module_load_measured() {
        let (mut vfs, mut tpm, mut ima) = setup();
        let module = p("/lib/modules/diamorphine.ko");
        vfs.create_file(&module, b"ko".to_vec(), Mode::REGULAR)
            .unwrap();
        assert_eq!(
            ima.on_module_load(&vfs, &module, &mut tpm).unwrap(),
            MeasureOutcome::Measured
        );
    }

    #[test]
    fn mmap_exec_measured_and_cached() {
        let (mut vfs, mut tpm, mut ima) = setup();
        let lib = p("/usr/lib/libc.so.6");
        vfs.create_file(&lib, b"libc".to_vec(), Mode::EXEC).unwrap();
        assert_eq!(
            ima.on_mmap_exec(&vfs, &lib, &lib, &mut tpm).unwrap(),
            MeasureOutcome::Measured
        );
        assert_eq!(
            ima.on_mmap_exec(&vfs, &lib, &lib, &mut tpm).unwrap(),
            MeasureOutcome::Cached
        );
    }
}

#[cfg(test)]
mod hardlink_evasion_tests {
    use super::*;
    use cia_tpm::Manufacturer;
    use cia_vfs::Mode;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn p(s: &str) -> VfsPath {
        VfsPath::new(s).unwrap()
    }

    /// A P4 variant the paper's inode-cache analysis implies: a hard link
    /// gives an already-measured inode a second name, and stock IMA never
    /// measures the new name. The re-evaluation fix closes this the same
    /// way it closes the rename case.
    #[test]
    fn hardlink_alias_is_not_remeasured_like_p4() {
        let mut rng = StdRng::seed_from_u64(44);
        let m = Manufacturer::generate(&mut rng);
        let mut tpm = cia_tpm::Tpm::manufacture(&m, &mut rng);
        let mut vfs = Vfs::with_standard_layout();

        let staged = p("/tmp/payload");
        let alias = p("/usr/bin/payload");
        vfs.create_file(&staged, b"evil".to_vec(), Mode::EXEC)
            .unwrap();
        vfs.hardlink(&staged, &alias).unwrap();

        // Stock IMA: measured once under /tmp, the alias execution hits
        // the cache.
        let mut stock = Ima::new(ImaPolicy::keylime_default());
        assert_eq!(
            stock.on_exec(&vfs, &staged, &staged, &mut tpm).unwrap(),
            MeasureOutcome::Measured
        );
        assert_eq!(
            stock.on_exec(&vfs, &alias, &alias, &mut tpm).unwrap(),
            MeasureOutcome::Cached
        );
        assert_eq!(stock.log().entries()[0].path, "/tmp/payload");

        // With the re-evaluation fix, the alias path is measured too.
        let mut tpm2 = cia_tpm::Tpm::manufacture(&m, &mut rng);
        let mut fixed = Ima::with_config(
            ImaPolicy::keylime_default(),
            ImaConfig {
                reevaluate_on_path_change: true,
                script_exec_control: false,
            },
        );
        fixed.on_exec(&vfs, &staged, &staged, &mut tpm2).unwrap();
        assert_eq!(
            fixed.on_exec(&vfs, &alias, &alias, &mut tpm2).unwrap(),
            MeasureOutcome::Measured
        );
        assert_eq!(fixed.log().entries()[1].path, "/usr/bin/payload");
    }
}
