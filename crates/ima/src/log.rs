//! The IMA measurement list (`ascii_runtime_measurements`).

use cia_crypto::{Derived, Digest, HashAlgorithm};
use cia_tpm::pcr::extend_digest;
use cia_tpm::Tpm;
use serde::{DeError, Deserialize, Serialize, Value};

use crate::error::ImaError;

/// The PCR IMA extends (PC-client convention).
pub const IMA_PCR: u8 = 10;

/// Pseudo-path of the first measurement list entry.
pub const BOOT_AGGREGATE_NAME: &str = "boot_aggregate";

/// One `ima-ng` measurement entry.
///
/// Canonical ASCII form (what `/sys/kernel/security/ima/
/// ascii_runtime_measurements` prints):
///
/// ```text
/// 10 <sha1 template hash> ima-ng sha256:<filedata hash> <path>
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ImaLogEntry {
    /// PCR the entry was extended into (always 10 here).
    pub pcr: u8,
    /// Digest of the file content.
    pub filedata_hash: Digest,
    /// Path the kernel recorded for the access. For SNAP/chroot
    /// executions this is the *inside-the-sandbox* path — the truncation
    /// that causes the paper's SNAP false positives.
    pub path: String,
    /// Memoized SHA-1 template hash. Never trusted from the wire
    /// (hand-written serde below omits it entirely); recomputed on
    /// first use.
    tpl_sha1: Derived<Digest>,
    /// Memoized SHA-256 template hash.
    tpl_sha256: Derived<Digest>,
}

// Hand-written wire form: only the three semantic fields travel. The
// memoized template hashes are derived state — shipping them would both
// bloat the excerpt by ~40% and invite a verifier to trust
// attacker-controlled caches, so they are omitted and recomputed.
impl Serialize for ImaLogEntry {
    fn to_value(&self) -> Value {
        Value::Map(vec![
            ("pcr".to_string(), Value::U64(u64::from(self.pcr))),
            ("filedata_hash".to_string(), self.filedata_hash.to_value()),
            ("path".to_string(), Value::Str(self.path.clone())),
        ])
    }
}

impl Deserialize for ImaLogEntry {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        let field = |name: &str| {
            value
                .get(name)
                .ok_or_else(|| DeError::new(format!("missing field `{name}`")))
        };
        Ok(ImaLogEntry {
            pcr: u8::from_value(field("pcr")?)?,
            filedata_hash: Digest::from_value(field("filedata_hash")?)?,
            path: String::from_value(field("path")?)?,
            tpl_sha1: Derived::new(),
            tpl_sha256: Derived::new(),
        })
    }
}

impl ImaLogEntry {
    /// Creates an entry for PCR 10.
    pub fn new(filedata_hash: Digest, path: impl Into<String>) -> Self {
        ImaLogEntry {
            pcr: IMA_PCR,
            filedata_hash,
            path: path.into(),
            tpl_sha1: Derived::new(),
            tpl_sha256: Derived::new(),
        }
    }

    /// Creates an entry recorded in an arbitrary PCR (parser use; IMA
    /// proper always extends PCR 10 — see [`ImaLogEntry::new`]).
    pub fn new_in_pcr(pcr: u8, filedata_hash: Digest, path: impl Into<String>) -> Self {
        ImaLogEntry {
            pcr,
            ..ImaLogEntry::new(filedata_hash, path)
        }
    }

    /// The template data bytes the template hash is computed over
    /// (`ima-ng` packs the digest and pathname; we use the canonical text
    /// rendering, which is stable and unambiguous).
    pub fn template_data(&self) -> Vec<u8> {
        let prefixed = self.filedata_hash.to_prefixed_hex();
        let mut out = Vec::with_capacity("ima-ng  ".len() + prefixed.len() + self.path.len());
        out.extend_from_slice(b"ima-ng ");
        out.extend_from_slice(prefixed.as_bytes());
        out.push(b' ');
        out.extend_from_slice(self.path.as_bytes());
        out
    }

    /// The template hash in `bank` (the digest PCR 10 is extended with).
    ///
    /// Memoized: computed once per entry per bank (at append or parse
    /// time in practice), then served from the cache — the verifier's
    /// fold loop hits this for every entry of every round. The cached
    /// value is dropped rather than sent when an entry crosses the wire,
    /// so a peer can never supply a forged template hash.
    pub fn template_hash(&self, bank: HashAlgorithm) -> Digest {
        let slot = match bank {
            HashAlgorithm::Sha1 => &self.tpl_sha1,
            HashAlgorithm::Sha256 => &self.tpl_sha256,
        };
        *slot.get_or_init(|| {
            // Stream the template parts straight into the hasher — same
            // bytes as `template_data`, but no per-entry allocations.
            let mut prefixed = [0u8; Digest::MAX_PREFIXED_HEX];
            let n = self.filedata_hash.write_prefixed_hex(&mut prefixed);
            bank.digest_parts(&[b"ima-ng ", &prefixed[..n], b" ", self.path.as_bytes()])
        })
    }

    /// Renders the canonical ASCII line.
    pub fn render(&self) -> String {
        format!(
            "{} {} ima-ng {} {}",
            self.pcr,
            self.template_hash(HashAlgorithm::Sha1).to_hex(),
            self.filedata_hash.to_prefixed_hex(),
            self.path
        )
    }

    /// Parses one canonical ASCII line.
    ///
    /// # Errors
    ///
    /// [`ImaError::LogParse`] when the line is malformed or the recorded
    /// template hash does not match the entry contents.
    pub fn parse(line: &str, line_no: usize) -> Result<Self, ImaError> {
        let fields: Vec<&str> = line.split(' ').collect();
        if fields.len() < 5 {
            return Err(ImaError::LogParse {
                line: line_no,
                reason: format!("expected 5 fields, got {}", fields.len()),
            });
        }
        let pcr: u8 = fields[0].parse().map_err(|_| ImaError::LogParse {
            line: line_no,
            reason: format!("bad PCR `{}`", fields[0]),
        })?;
        if fields[2] != "ima-ng" {
            return Err(ImaError::LogParse {
                line: line_no,
                reason: format!("unsupported template `{}`", fields[2]),
            });
        }
        let filedata_hash: Digest = fields[3].parse().map_err(|_| ImaError::LogParse {
            line: line_no,
            reason: format!("bad file digest `{}`", fields[3]),
        })?;
        // Paths may contain spaces; everything after field 3 is the path.
        let path = fields[4..].join(" ");
        let entry = ImaLogEntry::new_in_pcr(pcr, filedata_hash, path);
        let recorded =
            Digest::parse_hex(HashAlgorithm::Sha1, fields[1]).map_err(|_| ImaError::LogParse {
                line: line_no,
                reason: format!("bad template hash `{}`", fields[1]),
            })?;
        if recorded != entry.template_hash(HashAlgorithm::Sha1) {
            return Err(ImaError::LogParse {
                line: line_no,
                reason: "template hash does not match entry".to_string(),
            });
        }
        Ok(entry)
    }
}

/// The append-only measurement list.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MeasurementLog {
    entries: Vec<ImaLogEntry>,
}

impl MeasurementLog {
    /// An empty list.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends an entry and extends PCR 10 in both of `tpm`'s banks.
    ///
    /// # Errors
    ///
    /// Propagates TPM extension failures.
    pub fn append(&mut self, entry: ImaLogEntry, tpm: &mut Tpm) -> Result<(), ImaError> {
        tpm.pcr_extend(
            HashAlgorithm::Sha1,
            IMA_PCR,
            entry.template_hash(HashAlgorithm::Sha1),
        )?;
        tpm.pcr_extend(
            HashAlgorithm::Sha256,
            IMA_PCR,
            entry.template_hash(HashAlgorithm::Sha256),
        )?;
        self.entries.push(entry);
        Ok(())
    }

    /// All entries in measurement order.
    pub fn entries(&self) -> &[ImaLogEntry] {
        &self.entries
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no measurement has been recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Recomputes the PCR 10 value this list implies, by folding every
    /// template hash from the reset value — the verifier's step ② check.
    pub fn replay(&self, bank: HashAlgorithm) -> Digest {
        let mut acc = bank.zero_digest();
        for entry in &self.entries {
            acc = extend_digest(bank, acc, entry.template_hash(bank));
        }
        acc
    }

    /// Replays only the first `count` entries.
    pub fn replay_prefix(&self, bank: HashAlgorithm, count: usize) -> Digest {
        let mut acc = bank.zero_digest();
        for entry in self.entries.iter().take(count) {
            acc = extend_digest(bank, acc, entry.template_hash(bank));
        }
        acc
    }

    /// Renders the full canonical ASCII list.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for e in &self.entries {
            out.push_str(&e.render());
            out.push('\n');
        }
        out
    }

    /// Parses a canonical ASCII list.
    ///
    /// # Errors
    ///
    /// [`ImaError::LogParse`] with the offending line.
    pub fn parse(text: &str) -> Result<Self, ImaError> {
        let mut entries = Vec::new();
        for (idx, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            entries.push(ImaLogEntry::parse(line, idx + 1)?);
        }
        Ok(MeasurementLog { entries })
    }

    /// Clears the list (reboot).
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cia_tpm::Manufacturer;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tpm() -> Tpm {
        let mut rng = StdRng::seed_from_u64(2);
        let m = Manufacturer::generate(&mut rng);
        Tpm::manufacture(&m, &mut rng)
    }

    fn entry(content: &[u8], path: &str) -> ImaLogEntry {
        ImaLogEntry::new(HashAlgorithm::Sha256.digest(content), path)
    }

    #[test]
    fn append_extends_both_banks_and_replays() {
        let mut tpm = tpm();
        let mut log = MeasurementLog::new();
        log.append(entry(b"a", "/usr/bin/a"), &mut tpm).unwrap();
        log.append(entry(b"b", "/usr/bin/b"), &mut tpm).unwrap();

        for bank in [HashAlgorithm::Sha1, HashAlgorithm::Sha256] {
            assert_eq!(log.replay(bank), tpm.pcr_read(bank, IMA_PCR).unwrap());
        }
    }

    #[test]
    fn replay_prefix() {
        let mut tpm = tpm();
        let mut log = MeasurementLog::new();
        log.append(entry(b"a", "/a"), &mut tpm).unwrap();
        let after_one = tpm.pcr_read(HashAlgorithm::Sha256, IMA_PCR).unwrap();
        log.append(entry(b"b", "/b"), &mut tpm).unwrap();
        assert_eq!(log.replay_prefix(HashAlgorithm::Sha256, 1), after_one);
        assert_eq!(
            log.replay_prefix(HashAlgorithm::Sha256, 0),
            HashAlgorithm::Sha256.zero_digest()
        );
    }

    #[test]
    fn render_format() {
        let e = entry(b"content", "/usr/bin/tool");
        let line = e.render();
        let fields: Vec<&str> = line.split(' ').collect();
        assert_eq!(fields[0], "10");
        assert_eq!(fields[1].len(), 40, "sha1 template hash");
        assert_eq!(fields[2], "ima-ng");
        assert!(fields[3].starts_with("sha256:"));
        assert_eq!(fields[4], "/usr/bin/tool");
    }

    #[test]
    fn render_parse_roundtrip() {
        let mut tpm = tpm();
        let mut log = MeasurementLog::new();
        log.append(entry(b"x", BOOT_AGGREGATE_NAME), &mut tpm)
            .unwrap();
        log.append(entry(b"y", "/usr/bin/with space"), &mut tpm)
            .unwrap();
        let text = log.render();
        let parsed = MeasurementLog::parse(&text).unwrap();
        assert_eq!(parsed, log);
    }

    #[test]
    fn parse_rejects_tampered_template_hash() {
        let e = entry(b"x", "/usr/bin/x");
        let line = e.render();
        // Flip the path without recomputing the template hash: detected.
        let tampered = line.replace("/usr/bin/x", "/usr/bin/y");
        let err = ImaLogEntry::parse(&tampered, 1).unwrap_err();
        assert!(matches!(err, ImaError::LogParse { line: 1, .. }));
    }

    #[test]
    fn parse_rejects_malformed_lines() {
        assert!(ImaLogEntry::parse("10 abc ima-ng", 1).is_err());
        assert!(ImaLogEntry::parse("xx h ima-ng sha256:00 /p", 1).is_err());
        assert!(MeasurementLog::parse("10 zz ima-sig sha256:00 /p\n").is_err());
    }

    #[test]
    fn template_hash_is_memoized_and_stable() {
        let e = entry(b"memo", "/usr/bin/memo");
        let first = e.template_hash(HashAlgorithm::Sha256);
        assert_eq!(e.tpl_sha256.get(), Some(&first), "cached after first use");
        assert_eq!(e.template_hash(HashAlgorithm::Sha256), first);
        // The cache equals a from-scratch recomputation.
        assert_eq!(
            first,
            HashAlgorithm::Sha256.digest(&e.template_data()),
            "memoized value matches recomputation"
        );
    }

    #[test]
    fn serde_drops_the_cache_but_preserves_equality() {
        let e = entry(b"wire", "/usr/bin/wire");
        let warm = e.template_hash(HashAlgorithm::Sha256);
        let wire = serde_json::to_string(&e).unwrap();
        let back: ImaLogEntry = serde_json::from_str(&wire).unwrap();
        assert_eq!(back, e, "equality ignores cache state");
        assert_eq!(back.tpl_sha256.get(), None, "cache never travels");
        assert_eq!(back.template_hash(HashAlgorithm::Sha256), warm);
    }

    #[test]
    fn clear_resets() {
        let mut tpm = tpm();
        let mut log = MeasurementLog::new();
        log.append(entry(b"a", "/a"), &mut tpm).unwrap();
        log.clear();
        assert!(log.is_empty());
        assert_eq!(
            log.replay(HashAlgorithm::Sha256),
            HashAlgorithm::Sha256.zero_digest()
        );
    }
}
