//! IMA-appraisal: signature *enforcement*, not just measurement.
//!
//! Everything the paper studies is IMA's *measurement* mode — the kernel
//! records what ran and a remote verifier judges it after the fact. The
//! kernel also supports **appraisal** (`ima_appraise=enforce`): each file
//! carries a signature in its `security.ima` extended attribute, and the
//! kernel *refuses to execute* files whose signature is missing or does
//! not verify against a trusted key. Appraisal is the preventive
//! counterpart the paper's §V "signed by the package maintainers"
//! discussion points toward, and it changes the attack calculus: a
//! dropped payload does not merely go unmeasured — it does not run.
//!
//! This module provides the xattr format, signing helper, trust store,
//! and the appraisal check; `cia-os`'s machine enforces it when
//! configured.

use std::collections::HashMap;

use cia_crypto::{HashAlgorithm, Signature, SigningKey, VerifyingKey};
use cia_vfs::{Vfs, VfsPath};
use serde::{Deserialize, Serialize};

use crate::error::ImaError;

/// The xattr name appraisal signatures live under.
pub const IMA_XATTR: &str = "security.ima";

/// The signed blob stored in `security.ima`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ImaSignature {
    /// Identifies the signing key (fingerprint) for trust-store lookup.
    pub key_id: String,
    /// Signature over the file's SHA-256 digest.
    pub signature: Signature,
}

/// Result of appraising one file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AppraisalResult {
    /// A trusted key's signature verifies over the current content.
    Pass,
    /// No `security.ima` xattr present.
    NoSignature,
    /// The xattr is malformed or the signature does not verify (e.g. the
    /// content was modified after signing).
    BadSignature,
    /// The signing key is not in the trust store.
    UntrustedKey,
}

/// Signs `content` and returns the xattr bytes to store in
/// `security.ima` (what `evmctl ima_sign` produces).
///
/// # Errors
///
/// [`ImaError::SignatureEncode`] when the signature blob is not
/// wire-representable.
pub fn sign_content(key: &SigningKey, content: &[u8]) -> Result<Vec<u8>, ImaError> {
    let digest = HashAlgorithm::Sha256.digest(content);
    let signature = key.sign(digest.as_bytes());
    let blob = ImaSignature {
        key_id: key.verifying_key().fingerprint(),
        signature,
    };
    serde_json::to_vec(&blob).map_err(|e| ImaError::SignatureEncode {
        reason: e.to_string(),
    })
}

/// Convenience: signs the file at `path` in place.
///
/// # Errors
///
/// Filesystem lookup errors, or [`ImaError::SignatureEncode`] when the
/// signature blob cannot be encoded.
pub fn sign_file(vfs: &mut Vfs, path: &VfsPath, key: &SigningKey) -> Result<(), ImaError> {
    let blob = sign_content(key, vfs.read(path)?)?;
    vfs.set_xattr(path, IMA_XATTR, blob)?;
    Ok(())
}

/// The kernel's appraisal trust store (`.ima` keyring).
///
/// Keys are indexed by fingerprint at [`AppraisalKeyring::trust`] time,
/// so [`AppraisalKeyring::appraise`] resolves a signature's `key_id`
/// with one hash lookup instead of recomputing every trusted key's
/// fingerprint per appraisal.
#[derive(Debug, Clone, Default)]
pub struct AppraisalKeyring {
    by_fingerprint: HashMap<String, VerifyingKey>,
}

impl AppraisalKeyring {
    /// An empty keyring (everything fails appraisal).
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a trusted signing key. Re-trusting a key already in the
    /// store is idempotent: the keyring is a set keyed by fingerprint.
    pub fn trust(&mut self, key: VerifyingKey) {
        self.by_fingerprint.insert(key.fingerprint(), key);
    }

    /// Number of trusted keys (distinct fingerprints).
    pub fn len(&self) -> usize {
        self.by_fingerprint.len()
    }

    /// True when no key is trusted.
    pub fn is_empty(&self) -> bool {
        self.by_fingerprint.is_empty()
    }

    /// Appraises the file at `path`: reads `security.ima` and verifies
    /// the signature over the file's current digest against the keyring.
    ///
    /// # Errors
    ///
    /// Filesystem lookup errors.
    pub fn appraise(&self, vfs: &Vfs, path: &VfsPath) -> Result<AppraisalResult, ImaError> {
        let Some(raw) = vfs.get_xattr(path, IMA_XATTR)? else {
            return Ok(AppraisalResult::NoSignature);
        };
        let Ok(blob) = serde_json::from_slice::<ImaSignature>(raw) else {
            return Ok(AppraisalResult::BadSignature);
        };
        let Some(key) = self.by_fingerprint.get(&blob.key_id) else {
            return Ok(AppraisalResult::UntrustedKey);
        };
        let digest = vfs.file_digest(path, HashAlgorithm::Sha256)?;
        if key.verify(digest.as_bytes(), &blob.signature) {
            Ok(AppraisalResult::Pass)
        } else {
            Ok(AppraisalResult::BadSignature)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cia_crypto::KeyPair;
    use cia_vfs::Mode;

    fn setup() -> (Vfs, KeyPair, AppraisalKeyring, VfsPath) {
        let mut vfs = Vfs::with_standard_layout();
        let kp = KeyPair::from_material([3u8; 32]);
        let mut keyring = AppraisalKeyring::new();
        keyring.trust(kp.verifying.clone());
        let path = VfsPath::new("/usr/bin/signed-tool").unwrap();
        vfs.create_file(&path, b"trusted tool v1".to_vec(), Mode::EXEC)
            .unwrap();
        (vfs, kp, keyring, path)
    }

    #[test]
    fn signed_file_passes() {
        let (mut vfs, kp, keyring, path) = setup();
        sign_file(&mut vfs, &path, &kp.signing).unwrap();
        assert_eq!(
            keyring.appraise(&vfs, &path).unwrap(),
            AppraisalResult::Pass
        );
    }

    #[test]
    fn unsigned_file_fails() {
        let (vfs, _, keyring, path) = setup();
        assert_eq!(
            keyring.appraise(&vfs, &path).unwrap(),
            AppraisalResult::NoSignature
        );
    }

    #[test]
    fn tampered_content_fails() {
        let (mut vfs, kp, keyring, path) = setup();
        sign_file(&mut vfs, &path, &kp.signing).unwrap();
        vfs.write_file(&path, b"TROJANED".to_vec(), Mode::EXEC)
            .unwrap();
        assert_eq!(
            keyring.appraise(&vfs, &path).unwrap(),
            AppraisalResult::BadSignature
        );
    }

    #[test]
    fn untrusted_key_fails() {
        let (mut vfs, _, keyring, path) = setup();
        let rogue = KeyPair::from_material([9u8; 32]);
        sign_file(&mut vfs, &path, &rogue.signing).unwrap();
        assert_eq!(
            keyring.appraise(&vfs, &path).unwrap(),
            AppraisalResult::UntrustedKey
        );
    }

    #[test]
    fn garbage_xattr_fails_closed() {
        let (mut vfs, _, keyring, path) = setup();
        vfs.set_xattr(&path, IMA_XATTR, b"not json".to_vec())
            .unwrap();
        assert_eq!(
            keyring.appraise(&vfs, &path).unwrap(),
            AppraisalResult::BadSignature
        );
    }

    #[test]
    fn retrusting_the_same_key_is_idempotent() {
        let (mut vfs, kp, mut keyring, path) = setup();
        assert_eq!(keyring.len(), 1);
        keyring.trust(kp.verifying.clone());
        keyring.trust(kp.verifying.clone());
        assert_eq!(keyring.len(), 1, "one fingerprint, one entry");
        sign_file(&mut vfs, &path, &kp.signing).unwrap();
        assert_eq!(
            keyring.appraise(&vfs, &path).unwrap(),
            AppraisalResult::Pass
        );
        let other = KeyPair::from_material([7u8; 32]);
        keyring.trust(other.verifying);
        assert_eq!(keyring.len(), 2);
        assert!(!keyring.is_empty());
    }

    #[test]
    fn resigning_after_update_restores_pass() {
        let (mut vfs, kp, keyring, path) = setup();
        sign_file(&mut vfs, &path, &kp.signing).unwrap();
        vfs.write_file(&path, b"trusted tool v2".to_vec(), Mode::EXEC)
            .unwrap();
        assert_eq!(
            keyring.appraise(&vfs, &path).unwrap(),
            AppraisalResult::BadSignature
        );
        sign_file(&mut vfs, &path, &kp.signing).unwrap();
        assert_eq!(
            keyring.appraise(&vfs, &path).unwrap(),
            AppraisalResult::Pass
        );
    }
}
