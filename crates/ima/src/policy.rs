//! IMA measurement policy: which accesses get measured.
//!
//! Supports the subset of the kernel's `ima_policy` rule syntax the paper
//! exercises: `measure`/`dont_measure` actions with `func=`, `mask=` and
//! `fsmagic=` conditions. Rules are evaluated in order; the first matching
//! rule decides (kernel semantics), and an access nothing matches is not
//! measured.

use std::fmt;

use cia_vfs::FilesystemKind;
use serde::{Deserialize, Serialize};

use crate::error::ImaError;

/// The kernel integrity hook an access arrives through.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ImaFunc {
    /// `execve()` of a file (includes shebang scripts).
    BprmCheck,
    /// `mmap(..., PROT_EXEC)` — shared libraries.
    FileMmap,
    /// Kernel module loading.
    ModuleCheck,
    /// An open with exec intent (`O_MAYEXEC` / script-execution-control).
    MayExecOpen,
}

impl ImaFunc {
    /// The policy-syntax name (`func=BPRM_CHECK`, ...).
    pub fn name(self) -> &'static str {
        match self {
            ImaFunc::BprmCheck => "BPRM_CHECK",
            ImaFunc::FileMmap => "FILE_MMAP",
            ImaFunc::ModuleCheck => "MODULE_CHECK",
            ImaFunc::MayExecOpen => "MAY_EXEC_OPEN",
        }
    }

    fn from_name(name: &str) -> Option<Self> {
        match name {
            "BPRM_CHECK" => Some(ImaFunc::BprmCheck),
            "FILE_MMAP" => Some(ImaFunc::FileMmap),
            "MODULE_CHECK" => Some(ImaFunc::ModuleCheck),
            "MAY_EXEC_OPEN" => Some(ImaFunc::MayExecOpen),
            _ => None,
        }
    }
}

impl fmt::Display for ImaFunc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Whether a rule measures or exempts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PolicyAction {
    /// Matching accesses are measured.
    Measure,
    /// Matching accesses are exempt from measurement.
    DontMeasure,
}

/// One policy rule.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PolicyRule {
    /// Measure or exempt.
    pub action: PolicyAction,
    /// Match only this hook (None = any).
    pub func: Option<ImaFunc>,
    /// Match only accesses on a filesystem with this superblock magic
    /// (None = any).
    pub fsmagic: Option<u64>,
}

impl PolicyRule {
    fn matches(&self, func: ImaFunc, fsmagic: u64) -> bool {
        self.func.is_none_or(|f| f == func) && self.fsmagic.is_none_or(|m| m == fsmagic)
    }
}

impl fmt::Display for PolicyRule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.action {
            PolicyAction::Measure => f.write_str("measure")?,
            PolicyAction::DontMeasure => f.write_str("dont_measure")?,
        }
        if let Some(func) = self.func {
            write!(f, " func={func}")?;
            if matches!(func, ImaFunc::BprmCheck | ImaFunc::FileMmap) {
                f.write_str(" mask=MAY_EXEC")?;
            }
        }
        if let Some(m) = self.fsmagic {
            write!(f, " fsmagic=0x{m:x}")?;
        }
        Ok(())
    }
}

/// An ordered list of rules; first match wins.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ImaPolicy {
    rules: Vec<PolicyRule>,
}

impl ImaPolicy {
    /// An empty policy (measures nothing).
    pub fn empty() -> Self {
        ImaPolicy { rules: Vec::new() }
    }

    /// The policy recommended by Keylime's documentation, as studied in
    /// §IV of the paper: exempt a range of pseudo/volatile filesystems
    /// (**this is P3**), then measure executions, executable mmaps, and
    /// module loads everywhere else.
    pub fn keylime_default() -> Self {
        let mut rules = Vec::new();
        for kind in [
            FilesystemKind::Procfs,
            FilesystemKind::Sysfs,
            FilesystemKind::Debugfs,
            FilesystemKind::Tmpfs,
            FilesystemKind::Devtmpfs,
            FilesystemKind::Ramfs,
            FilesystemKind::Securityfs,
            FilesystemKind::Overlayfs,
        ] {
            rules.push(PolicyRule {
                action: PolicyAction::DontMeasure,
                func: None,
                fsmagic: Some(kind.fsmagic()),
            });
        }
        for func in [ImaFunc::BprmCheck, ImaFunc::FileMmap, ImaFunc::ModuleCheck] {
            rules.push(PolicyRule {
                action: PolicyAction::Measure,
                func: Some(func),
                fsmagic: None,
            });
        }
        ImaPolicy { rules }
    }

    /// The enriched policy of §IV-C ("Enriching Keylime/IMA Policies"):
    /// like [`ImaPolicy::keylime_default`] but *without* the tmpfs/ramfs
    /// exemptions, so `/tmp`, `/dev/shm` and `/run` executions are
    /// measured. Pseudo-filesystems that cannot host regular files keep
    /// their exemptions. When `script_exec_control` is set, opens with
    /// exec intent are measured too (the P5 direction).
    pub fn enriched(script_exec_control: bool) -> Self {
        let mut rules = Vec::new();
        for kind in [
            FilesystemKind::Sysfs,
            FilesystemKind::Debugfs,
            FilesystemKind::Securityfs,
        ] {
            rules.push(PolicyRule {
                action: PolicyAction::DontMeasure,
                func: None,
                fsmagic: Some(kind.fsmagic()),
            });
        }
        let mut funcs = vec![ImaFunc::BprmCheck, ImaFunc::FileMmap, ImaFunc::ModuleCheck];
        if script_exec_control {
            funcs.push(ImaFunc::MayExecOpen);
        }
        for func in funcs {
            rules.push(PolicyRule {
                action: PolicyAction::Measure,
                func: Some(func),
                fsmagic: None,
            });
        }
        ImaPolicy { rules }
    }

    /// Builds a policy from explicit rules.
    pub fn from_rules(rules: Vec<PolicyRule>) -> Self {
        ImaPolicy { rules }
    }

    /// The rules in evaluation order.
    pub fn rules(&self) -> &[PolicyRule] {
        &self.rules
    }

    /// Decides whether an access through `func` on a filesystem with
    /// `fsmagic` must be measured.
    pub fn should_measure(&self, func: ImaFunc, fsmagic: u64) -> bool {
        for rule in &self.rules {
            if rule.matches(func, fsmagic) {
                return rule.action == PolicyAction::Measure;
            }
        }
        false
    }

    /// True when the policy exempts the given filesystem type entirely.
    pub fn exempts_filesystem(&self, kind: FilesystemKind) -> bool {
        self.rules.iter().any(|r| {
            r.action == PolicyAction::DontMeasure
                && r.func.is_none()
                && r.fsmagic == Some(kind.fsmagic())
        })
    }

    /// Renders the policy in the kernel's `ima_policy` text format.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for rule in &self.rules {
            out.push_str(&rule.to_string());
            out.push('\n');
        }
        out
    }

    /// Parses the text format produced by [`ImaPolicy::render`].
    ///
    /// # Errors
    ///
    /// [`ImaError::PolicyParse`] with the offending line number.
    pub fn parse(text: &str) -> Result<Self, ImaError> {
        let mut rules = Vec::new();
        for (idx, raw_line) in text.lines().enumerate() {
            let line = raw_line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut tokens = line.split_whitespace();
            let action = match tokens.next() {
                Some("measure") => PolicyAction::Measure,
                Some("dont_measure") => PolicyAction::DontMeasure,
                Some(other) => {
                    return Err(ImaError::PolicyParse {
                        line: idx + 1,
                        reason: format!("unknown action `{other}`"),
                    })
                }
                None => continue,
            };
            let mut func = None;
            let mut fsmagic = None;
            for token in tokens {
                if let Some(name) = token.strip_prefix("func=") {
                    func = Some(
                        ImaFunc::from_name(name).ok_or_else(|| ImaError::PolicyParse {
                            line: idx + 1,
                            reason: format!("unknown func `{name}`"),
                        })?,
                    );
                } else if let Some(value) = token.strip_prefix("fsmagic=") {
                    let value = value.trim_start_matches("0x");
                    fsmagic = Some(u64::from_str_radix(value, 16).map_err(|_| {
                        ImaError::PolicyParse {
                            line: idx + 1,
                            reason: format!("bad fsmagic `{value}`"),
                        }
                    })?);
                } else if token.starts_with("mask=") {
                    // mask=MAY_EXEC is implied by the func in this subset.
                } else {
                    return Err(ImaError::PolicyParse {
                        line: idx + 1,
                        reason: format!("unknown condition `{token}`"),
                    });
                }
            }
            rules.push(PolicyRule {
                action,
                func,
                fsmagic,
            });
        }
        Ok(ImaPolicy { rules })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keylime_default_exempts_tmpfs_and_procfs() {
        let p = ImaPolicy::keylime_default();
        // P3: executions on tmpfs/procfs are invisible.
        assert!(!p.should_measure(ImaFunc::BprmCheck, FilesystemKind::Tmpfs.fsmagic()));
        assert!(!p.should_measure(ImaFunc::BprmCheck, FilesystemKind::Procfs.fsmagic()));
        assert!(p.exempts_filesystem(FilesystemKind::Tmpfs));
        // ext4 executions are measured.
        assert!(p.should_measure(ImaFunc::BprmCheck, FilesystemKind::Ext4.fsmagic()));
        assert!(p.should_measure(ImaFunc::ModuleCheck, FilesystemKind::Ext4.fsmagic()));
        // squashfs (SNAPs) is NOT exempt — SNAP binaries do get measured.
        assert!(p.should_measure(ImaFunc::BprmCheck, FilesystemKind::Squashfs.fsmagic()));
    }

    #[test]
    fn default_policy_ignores_mayexec_opens() {
        let p = ImaPolicy::keylime_default();
        assert!(!p.should_measure(ImaFunc::MayExecOpen, FilesystemKind::Ext4.fsmagic()));
    }

    #[test]
    fn enriched_policy_measures_tmpfs() {
        let p = ImaPolicy::enriched(false);
        assert!(p.should_measure(ImaFunc::BprmCheck, FilesystemKind::Tmpfs.fsmagic()));
        assert!(!p.should_measure(ImaFunc::MayExecOpen, FilesystemKind::Ext4.fsmagic()));
        let p2 = ImaPolicy::enriched(true);
        assert!(p2.should_measure(ImaFunc::MayExecOpen, FilesystemKind::Ext4.fsmagic()));
    }

    #[test]
    fn first_match_wins() {
        let p = ImaPolicy::from_rules(vec![
            PolicyRule {
                action: PolicyAction::DontMeasure,
                func: None,
                fsmagic: Some(0xef53),
            },
            PolicyRule {
                action: PolicyAction::Measure,
                func: Some(ImaFunc::BprmCheck),
                fsmagic: None,
            },
        ]);
        assert!(!p.should_measure(ImaFunc::BprmCheck, 0xef53));
        assert!(p.should_measure(ImaFunc::BprmCheck, 0x9fa0));
    }

    #[test]
    fn empty_policy_measures_nothing() {
        let p = ImaPolicy::empty();
        assert!(!p.should_measure(ImaFunc::BprmCheck, 0xef53));
    }

    #[test]
    fn render_parse_roundtrip() {
        let p = ImaPolicy::keylime_default();
        let text = p.render();
        assert!(text.contains("dont_measure fsmagic=0x1021994"));
        assert!(text.contains("measure func=BPRM_CHECK mask=MAY_EXEC"));
        let reparsed = ImaPolicy::parse(&text).unwrap();
        assert_eq!(reparsed, p);
    }

    #[test]
    fn parse_comments_and_blank_lines() {
        let text = "# a comment\n\nmeasure func=BPRM_CHECK mask=MAY_EXEC\n";
        let p = ImaPolicy::parse(text).unwrap();
        assert_eq!(p.rules().len(), 1);
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let err = ImaPolicy::parse("measure func=BPRM_CHECK\nbogus_action\n").unwrap_err();
        assert!(matches!(err, ImaError::PolicyParse { line: 2, .. }));
        let err = ImaPolicy::parse("measure fsmagic=zz\n").unwrap_err();
        assert!(matches!(err, ImaError::PolicyParse { line: 1, .. }));
        let err = ImaPolicy::parse("measure func=NOPE\n").unwrap_err();
        assert!(matches!(err, ImaError::PolicyParse { line: 1, .. }));
        let err = ImaPolicy::parse("measure uid=0\n").unwrap_err();
        assert!(matches!(err, ImaError::PolicyParse { line: 1, .. }));
    }
}
