//! Property-based tests for the cryptographic primitives.

use cia_crypto::{hex, Digest, HashAlgorithm, Hmac, KeyPair, Sha1, Sha256};
use proptest::prelude::*;

proptest! {
    /// Chunked hashing always equals one-shot hashing, for any split.
    #[test]
    fn sha256_incremental_equals_oneshot(
        data in proptest::collection::vec(any::<u8>(), 0..4096),
        splits in proptest::collection::vec(0usize..4096, 0..8),
    ) {
        let mut splits: Vec<usize> = splits.into_iter().map(|s| s % (data.len() + 1)).collect();
        splits.sort_unstable();
        let mut hasher = Sha256::new();
        let mut prev = 0;
        for &s in &splits {
            hasher.update(&data[prev..s]);
            prev = s;
        }
        hasher.update(&data[prev..]);
        prop_assert_eq!(hasher.finalize(), Sha256::digest(&data));
    }

    #[test]
    fn sha1_incremental_equals_oneshot(
        data in proptest::collection::vec(any::<u8>(), 0..2048),
        split in 0usize..2048,
    ) {
        let split = split % (data.len() + 1);
        let mut hasher = Sha1::new();
        hasher.update(&data[..split]);
        hasher.update(&data[split..]);
        prop_assert_eq!(hasher.finalize(), Sha1::digest(&data));
    }

    /// Hex encoding round-trips arbitrary bytes.
    #[test]
    fn hex_roundtrip(data in proptest::collection::vec(any::<u8>(), 0..512)) {
        prop_assert_eq!(hex::decode(&hex::encode(&data)).unwrap(), data);
    }

    /// A MAC verifies under its key and fails under any other key.
    #[test]
    fn hmac_verifies_and_rejects(
        key1 in proptest::collection::vec(any::<u8>(), 1..64),
        key2 in proptest::collection::vec(any::<u8>(), 1..64),
        msg in proptest::collection::vec(any::<u8>(), 0..256),
    ) {
        let tag = Hmac::mac(&key1, &msg);
        prop_assert!(Hmac::verify(&key1, &msg, &tag));
        if key1 != key2 {
            prop_assert!(!Hmac::verify(&key2, &msg, &tag));
        }
    }

    /// Digest prefixed-hex rendering round-trips.
    #[test]
    fn digest_roundtrip(data in proptest::collection::vec(any::<u8>(), 0..128)) {
        for algo in [HashAlgorithm::Sha1, HashAlgorithm::Sha256] {
            let d = algo.digest(&data);
            let parsed: Digest = d.to_prefixed_hex().parse().unwrap();
            prop_assert_eq!(parsed, d);
        }
    }

    /// Signatures verify for the signed message and reject modifications.
    #[test]
    fn signatures_bind_messages(
        material in any::<[u8; 32]>(),
        msg in proptest::collection::vec(any::<u8>(), 1..256),
        flip in 0usize..256,
    ) {
        let kp = KeyPair::from_material(material);
        let sig = kp.signing.sign(&msg);
        prop_assert!(kp.verifying.verify(&msg, &sig));

        let mut tampered = msg.clone();
        let idx = flip % tampered.len();
        tampered[idx] ^= 0x01;
        prop_assert!(!kp.verifying.verify(&tampered, &sig));
    }

    /// Distinct inputs produce distinct SHA-256 digests (collision
    /// resistance at property-test scale).
    #[test]
    fn sha256_distinct_inputs_distinct_digests(
        a in proptest::collection::vec(any::<u8>(), 0..256),
        b in proptest::collection::vec(any::<u8>(), 0..256),
    ) {
        if a != b {
            prop_assert_ne!(Sha256::digest(&a), Sha256::digest(&b));
        }
    }
}
