//! Hexadecimal encoding and decoding.

use std::fmt;

/// Encodes `bytes` as lowercase hexadecimal.
///
/// # Examples
///
/// ```
/// assert_eq!(cia_crypto::hex::encode(&[0xde, 0xad]), "dead");
/// ```
pub fn encode(bytes: &[u8]) -> String {
    let mut out = String::with_capacity(bytes.len() * 2);
    for &b in bytes {
        out.push(char::from_digit((b >> 4) as u32, 16).expect("nibble < 16"));
        out.push(char::from_digit((b & 0x0f) as u32, 16).expect("nibble < 16"));
    }
    out
}

/// Decodes a hexadecimal string (upper- or lowercase) into bytes.
///
/// # Errors
///
/// Returns [`DecodeHexError`] if the input has odd length or contains a
/// non-hexadecimal character.
///
/// # Examples
///
/// ```
/// assert_eq!(cia_crypto::hex::decode("DEad")?, vec![0xde, 0xad]);
/// # Ok::<(), cia_crypto::hex::DecodeHexError>(())
/// ```
pub fn decode(s: &str) -> Result<Vec<u8>, DecodeHexError> {
    if !s.len().is_multiple_of(2) {
        return Err(DecodeHexError::OddLength { len: s.len() });
    }
    let mut out = Vec::with_capacity(s.len() / 2);
    let bytes = s.as_bytes();
    for (i, pair) in bytes.chunks_exact(2).enumerate() {
        let hi = nibble(pair[0]).ok_or(DecodeHexError::InvalidChar { position: i * 2 })?;
        let lo = nibble(pair[1]).ok_or(DecodeHexError::InvalidChar {
            position: i * 2 + 1,
        })?;
        out.push((hi << 4) | lo);
    }
    Ok(out)
}

fn nibble(c: u8) -> Option<u8> {
    match c {
        b'0'..=b'9' => Some(c - b'0'),
        b'a'..=b'f' => Some(c - b'a' + 10),
        b'A'..=b'F' => Some(c - b'A' + 10),
        _ => None,
    }
}

/// Error returned by [`decode`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeHexError {
    /// The input length was not a multiple of two.
    OddLength {
        /// The offending input length.
        len: usize,
    },
    /// A character outside `[0-9a-fA-F]` was found.
    InvalidChar {
        /// Byte offset of the bad character.
        position: usize,
    },
}

impl fmt::Display for DecodeHexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeHexError::OddLength { len } => {
                write!(f, "hex string has odd length {len}")
            }
            DecodeHexError::InvalidChar { position } => {
                write!(f, "invalid hex character at position {position}")
            }
        }
    }
}

impl std::error::Error for DecodeHexError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_empty() {
        assert_eq!(encode(&[]), "");
    }

    #[test]
    fn encode_all_bytes_roundtrip() {
        let all: Vec<u8> = (0..=255).collect();
        assert_eq!(decode(&encode(&all)).unwrap(), all);
    }

    #[test]
    fn decode_uppercase() {
        assert_eq!(decode("FFfe").unwrap(), vec![0xff, 0xfe]);
    }

    #[test]
    fn decode_odd_length() {
        assert_eq!(
            decode("abc").unwrap_err(),
            DecodeHexError::OddLength { len: 3 }
        );
    }

    #[test]
    fn decode_invalid_char_position() {
        assert_eq!(
            decode("ag").unwrap_err(),
            DecodeHexError::InvalidChar { position: 1 }
        );
        assert_eq!(
            decode("zz").unwrap_err(),
            DecodeHexError::InvalidChar { position: 0 }
        );
    }
}
