//! Hexadecimal encoding and decoding.

use std::fmt;

/// Encodes `bytes` as lowercase hexadecimal.
///
/// # Examples
///
/// ```
/// assert_eq!(cia_crypto::hex::encode(&[0xde, 0xad]), "dead");
/// ```
pub fn encode(bytes: &[u8]) -> String {
    let mut out = vec![0u8; bytes.len() * 2];
    encode_to_slice(bytes, &mut out);
    String::from_utf8(out).expect("hex digits are ASCII")
}

const HEX_DIGITS: &[u8; 16] = b"0123456789abcdef";

/// Encodes `bytes` as lowercase hexadecimal into a caller-provided
/// buffer without allocating — the hot-path counterpart of [`encode`].
/// Returns the number of bytes written (`bytes.len() * 2`).
///
/// # Panics
///
/// Panics if `out` is shorter than `bytes.len() * 2`.
///
/// # Examples
///
/// ```
/// let mut buf = [0u8; 4];
/// let n = cia_crypto::hex::encode_to_slice(&[0xde, 0xad], &mut buf);
/// assert_eq!(&buf[..n], b"dead");
/// ```
pub fn encode_to_slice(bytes: &[u8], out: &mut [u8]) -> usize {
    let needed = bytes.len() * 2;
    assert!(
        out.len() >= needed,
        "hex buffer too small: need {needed}, have {}",
        out.len()
    );
    for (i, &b) in bytes.iter().enumerate() {
        out[i * 2] = HEX_DIGITS[(b >> 4) as usize];
        out[i * 2 + 1] = HEX_DIGITS[(b & 0x0f) as usize];
    }
    needed
}

/// Decodes a hexadecimal string (upper- or lowercase) into bytes.
///
/// # Errors
///
/// Returns [`DecodeHexError`] if the input has odd length or contains a
/// non-hexadecimal character.
///
/// # Examples
///
/// ```
/// assert_eq!(cia_crypto::hex::decode("DEad")?, vec![0xde, 0xad]);
/// # Ok::<(), cia_crypto::hex::DecodeHexError>(())
/// ```
pub fn decode(s: &str) -> Result<Vec<u8>, DecodeHexError> {
    if !s.len().is_multiple_of(2) {
        return Err(DecodeHexError::OddLength { len: s.len() });
    }
    let mut out = Vec::with_capacity(s.len() / 2);
    let bytes = s.as_bytes();
    for (i, pair) in bytes.chunks_exact(2).enumerate() {
        let hi = nibble(pair[0]).ok_or(DecodeHexError::InvalidChar { position: i * 2 })?;
        let lo = nibble(pair[1]).ok_or(DecodeHexError::InvalidChar {
            position: i * 2 + 1,
        })?;
        out.push((hi << 4) | lo);
    }
    Ok(out)
}

/// Decodes hexadecimal into a caller-provided buffer without allocating
/// — the hot-path counterpart of [`decode`]. Returns the number of bytes
/// written.
///
/// # Errors
///
/// [`DecodeHexError::OddLength`], [`DecodeHexError::InvalidChar`], or
/// [`DecodeHexError::BufferTooSmall`] when `out` cannot hold the decoded
/// bytes.
///
/// # Examples
///
/// ```
/// let mut buf = [0u8; 4];
/// let n = cia_crypto::hex::decode_to_slice("DEad", &mut buf)?;
/// assert_eq!(&buf[..n], &[0xde, 0xad]);
/// # Ok::<(), cia_crypto::hex::DecodeHexError>(())
/// ```
pub fn decode_to_slice(s: &str, out: &mut [u8]) -> Result<usize, DecodeHexError> {
    if !s.len().is_multiple_of(2) {
        return Err(DecodeHexError::OddLength { len: s.len() });
    }
    let needed = s.len() / 2;
    if out.len() < needed {
        return Err(DecodeHexError::BufferTooSmall {
            needed,
            capacity: out.len(),
        });
    }
    for (i, pair) in s.as_bytes().chunks_exact(2).enumerate() {
        let hi = nibble(pair[0]).ok_or(DecodeHexError::InvalidChar { position: i * 2 })?;
        let lo = nibble(pair[1]).ok_or(DecodeHexError::InvalidChar {
            position: i * 2 + 1,
        })?;
        out[i] = (hi << 4) | lo;
    }
    Ok(needed)
}

/// Nibble values for every byte, `0xff` marking non-hex characters —
/// a branchless lookup for the decode hot path.
const NIBBLES: [u8; 256] = {
    let mut table = [0xffu8; 256];
    let mut c = 0usize;
    while c < 256 {
        table[c] = match c as u8 {
            b'0'..=b'9' => c as u8 - b'0',
            b'a'..=b'f' => c as u8 - b'a' + 10,
            b'A'..=b'F' => c as u8 - b'A' + 10,
            _ => 0xff,
        };
        c += 1;
    }
    table
};

fn nibble(c: u8) -> Option<u8> {
    match NIBBLES[c as usize] {
        0xff => None,
        n => Some(n),
    }
}

/// Error returned by [`decode`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeHexError {
    /// The input length was not a multiple of two.
    OddLength {
        /// The offending input length.
        len: usize,
    },
    /// A character outside `[0-9a-fA-F]` was found.
    InvalidChar {
        /// Byte offset of the bad character.
        position: usize,
    },
    /// The output buffer passed to [`decode_to_slice`] was too small.
    BufferTooSmall {
        /// Bytes the input decodes to.
        needed: usize,
        /// Capacity of the provided buffer.
        capacity: usize,
    },
}

impl fmt::Display for DecodeHexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeHexError::OddLength { len } => {
                write!(f, "hex string has odd length {len}")
            }
            DecodeHexError::InvalidChar { position } => {
                write!(f, "invalid hex character at position {position}")
            }
            DecodeHexError::BufferTooSmall { needed, capacity } => {
                write!(
                    f,
                    "hex output needs {needed} bytes, buffer holds {capacity}"
                )
            }
        }
    }
}

impl std::error::Error for DecodeHexError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_empty() {
        assert_eq!(encode(&[]), "");
    }

    #[test]
    fn encode_all_bytes_roundtrip() {
        let all: Vec<u8> = (0..=255).collect();
        assert_eq!(decode(&encode(&all)).unwrap(), all);
    }

    #[test]
    fn decode_uppercase() {
        assert_eq!(decode("FFfe").unwrap(), vec![0xff, 0xfe]);
    }

    #[test]
    fn decode_odd_length() {
        assert_eq!(
            decode("abc").unwrap_err(),
            DecodeHexError::OddLength { len: 3 }
        );
    }

    #[test]
    fn decode_to_slice_matches_decode() {
        let mut buf = [0u8; 32];
        for input in ["", "00", "deadBEEF", "ff00ff00"] {
            let n = decode_to_slice(input, &mut buf).unwrap();
            assert_eq!(&buf[..n], decode(input).unwrap().as_slice());
        }
        assert_eq!(
            decode_to_slice("abc", &mut buf).unwrap_err(),
            DecodeHexError::OddLength { len: 3 }
        );
        assert_eq!(
            decode_to_slice("ag", &mut buf).unwrap_err(),
            DecodeHexError::InvalidChar { position: 1 }
        );
        let mut tiny = [0u8; 1];
        assert_eq!(
            decode_to_slice("aabb", &mut tiny).unwrap_err(),
            DecodeHexError::BufferTooSmall {
                needed: 2,
                capacity: 1
            }
        );
    }

    #[test]
    fn decode_invalid_char_position() {
        assert_eq!(
            decode("ag").unwrap_err(),
            DecodeHexError::InvalidChar { position: 1 }
        );
        assert_eq!(
            decode("zz").unwrap_err(),
            DecodeHexError::InvalidChar { position: 0 }
        );
    }
}
