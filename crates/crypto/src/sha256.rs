//! SHA-256 as specified in FIPS 180-4.

use crate::digest::Digest;

/// Round constants: first 32 bits of the fractional parts of the cube roots
/// of the first 64 primes.
const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

const H0: [u32; 8] = [
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19,
];

/// An incremental SHA-256 hasher.
///
/// # Examples
///
/// ```
/// use cia_crypto::Sha256;
///
/// let mut hasher = Sha256::new();
/// hasher.update(b"abc");
/// assert_eq!(
///     hasher.finalize().to_hex(),
///     "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
/// );
/// ```
#[derive(Debug, Clone)]
pub struct Sha256 {
    state: [u32; 8],
    /// Pending bytes that do not yet fill a 64-byte block.
    buffer: [u8; 64],
    buffer_len: usize,
    /// Total message length in bytes.
    length: u64,
}

impl Default for Sha256 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha256 {
    /// Digest size in bytes.
    pub const OUTPUT_LEN: usize = 32;
    /// Internal block size in bytes.
    pub const BLOCK_LEN: usize = 64;

    /// Creates a fresh hasher.
    pub fn new() -> Self {
        Sha256 {
            state: H0,
            buffer: [0u8; 64],
            buffer_len: 0,
            length: 0,
        }
    }

    /// Convenience one-shot digest of `data`.
    pub fn digest(data: &[u8]) -> Digest {
        let mut h = Self::new();
        h.update(data);
        h.finalize()
    }

    /// Absorbs `data` into the hash state.
    pub fn update(&mut self, data: &[u8]) {
        self.length = self.length.wrapping_add(data.len() as u64);
        let mut data = data;
        if self.buffer_len > 0 {
            let take = (64 - self.buffer_len).min(data.len());
            self.buffer[self.buffer_len..self.buffer_len + take].copy_from_slice(&data[..take]);
            self.buffer_len += take;
            data = &data[take..];
            if self.buffer_len == 64 {
                let block = self.buffer;
                self.compress(&block);
                self.buffer_len = 0;
            }
        }
        while data.len() >= 64 {
            let mut block = [0u8; 64];
            block.copy_from_slice(&data[..64]);
            self.compress(&block);
            data = &data[64..];
        }
        if !data.is_empty() {
            self.buffer[..data.len()].copy_from_slice(data);
            self.buffer_len = data.len();
        }
    }

    /// Completes the hash and returns the 32-byte digest.
    pub fn finalize(mut self) -> Digest {
        let bit_len = self.length.wrapping_mul(8);
        // Padding: 0x80, zeros, then the 64-bit big-endian bit length.
        self.update_padding(&[0x80]);
        while self.buffer_len != 56 {
            self.update_padding(&[0x00]);
        }
        self.update_padding(&bit_len.to_be_bytes());
        debug_assert_eq!(self.buffer_len, 0);

        let mut out = [0u8; 32];
        for (i, word) in self.state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
        }
        Digest::from_sha256(out)
    }

    /// Like `update` but does not advance the message length counter.
    fn update_padding(&mut self, data: &[u8]) {
        for &byte in data {
            self.buffer[self.buffer_len] = byte;
            self.buffer_len += 1;
            if self.buffer_len == 64 {
                let block = self.buffer;
                self.compress(&block);
                self.buffer_len = 0;
            }
        }
    }

    fn compress(&mut self, block: &[u8; 64]) {
        let mut w = [0u32; 64];
        for (i, chunk) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        for i in 16..64 {
            let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
            let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
            w[i] = w[i - 16]
                .wrapping_add(s0)
                .wrapping_add(w[i - 7])
                .wrapping_add(s1);
        }

        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = self.state;
        // One full round with the working variables already in role
        // order: `$d` accumulates T1 and `$h` is overwritten, so rotating
        // the identifier list across invocations replaces the 8-way
        // variable shuffle of the textbook formulation.
        macro_rules! round {
            ($a:ident, $b:ident, $c:ident, $d:ident,
             $e:ident, $f:ident, $g:ident, $h:ident, $i:expr) => {
                let t1 = $h
                    .wrapping_add($e.rotate_right(6) ^ $e.rotate_right(11) ^ $e.rotate_right(25))
                    .wrapping_add(($e & $f) ^ ((!$e) & $g))
                    .wrapping_add(K[$i])
                    .wrapping_add(w[$i]);
                let t2 = ($a.rotate_right(2) ^ $a.rotate_right(13) ^ $a.rotate_right(22))
                    .wrapping_add(($a & $b) ^ ($a & $c) ^ ($b & $c));
                $d = $d.wrapping_add(t1);
                $h = t1.wrapping_add(t2);
            };
        }
        let mut i = 0;
        while i < 64 {
            round!(a, b, c, d, e, f, g, h, i);
            round!(h, a, b, c, d, e, f, g, i + 1);
            round!(g, h, a, b, c, d, e, f, i + 2);
            round!(f, g, h, a, b, c, d, e, i + 3);
            round!(e, f, g, h, a, b, c, d, i + 4);
            round!(d, e, f, g, h, a, b, c, i + 5);
            round!(c, d, e, f, g, h, a, b, i + 6);
            round!(b, c, d, e, f, g, h, a, i + 7);
            i += 8;
        }

        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
        self.state[4] = self.state[4].wrapping_add(e);
        self.state[5] = self.state[5].wrapping_add(f);
        self.state[6] = self.state[6].wrapping_add(g);
        self.state[7] = self.state[7].wrapping_add(h);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex_digest(data: &[u8]) -> String {
        Sha256::digest(data).to_hex()
    }

    #[test]
    fn fips_vector_empty() {
        assert_eq!(
            hex_digest(b""),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
    }

    #[test]
    fn fips_vector_abc() {
        assert_eq!(
            hex_digest(b"abc"),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
    }

    #[test]
    fn fips_vector_448_bits() {
        assert_eq!(
            hex_digest(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
    }

    #[test]
    fn fips_vector_896_bits() {
        assert_eq!(
            hex_digest(
                b"abcdefghbcdefghicdefghijdefghijkefghijklfghijklmghijklmn\
                  hijklmnoijklmnopjklmnopqklmnopqrlmnopqrsmnopqrstnopqrstu"
            ),
            "cf5b16a778af8380036ce59e7b0492370b249b11e8f07a51afac45037afee9d1"
        );
    }

    #[test]
    fn fips_vector_million_a() {
        let data = vec![b'a'; 1_000_000];
        assert_eq!(
            hex_digest(&data),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn incremental_matches_oneshot() {
        let data: Vec<u8> = (0..1000u32).map(|i| (i % 251) as u8).collect();
        for split in [0usize, 1, 63, 64, 65, 127, 500, 999, 1000] {
            let mut h = Sha256::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finalize(), Sha256::digest(&data), "split at {split}");
        }
    }

    #[test]
    fn many_small_updates_match_oneshot() {
        let data: Vec<u8> = (0..777u32).map(|i| (i * 7 % 256) as u8).collect();
        let mut h = Sha256::new();
        for chunk in data.chunks(3) {
            h.update(chunk);
        }
        assert_eq!(h.finalize(), Sha256::digest(&data));
    }
}
