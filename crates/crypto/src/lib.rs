//! Cryptographic primitives for the continuous-attestation simulators.
//!
//! The paper's system hashes files with SHA-256 (Keylime runtime policies,
//! IMA `ima-ng` entries), aggregates measurements into TPM PCRs (SHA-1 and
//! SHA-256 banks), and signs TPM quotes. This crate provides those
//! primitives implemented from scratch:
//!
//! - [`Sha256`] and [`Sha1`] — FIPS 180-4 digests, validated against the
//!   official test vectors.
//! - [`Hmac`] — RFC 2104 HMAC over SHA-256, validated against RFC 4231.
//! - [`SigningKey`]/[`VerifyingKey`] — MAC-based signatures standing in for
//!   the TPM's asymmetric attestation keys (see `DESIGN.md` for why this
//!   substitution preserves the protocol behaviour).
//! - [`hex`] — hexadecimal encoding/decoding.
//!
//! # Examples
//!
//! ```
//! use cia_crypto::Sha256;
//!
//! let digest = Sha256::digest(b"hello world");
//! assert_eq!(
//!     digest.to_hex(),
//!     "b94d27b9934d3e08a52e52d7da7dabfac484efe37a5380ee9088f7ace2efcde9"
//! );
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod digest;
pub mod hex;
pub mod hmac;
pub mod keys;
pub mod sha1;
pub mod sha256;
pub mod wire;

pub use cache::{Derived, DigestCache};
pub use digest::{Digest, HashAlgorithm};
pub use hmac::Hmac;
pub use keys::{KeyPair, Signature, SigningKey, VerifyingKey};
pub use sha1::Sha1;
pub use sha256::Sha256;
