//! [`Derived`]: a memoization slot for values derivable from their
//! containing struct.
//!
//! The attestation hot path memoizes expensive derived values (template
//! hashes, policy indexes) directly inside the structs they belong to.
//! Those caches must never travel on the wire — a peer-supplied cache
//! would be an integrity hole, and the wire format should not change
//! shape with cache state — so `Derived<T>` serializes to `null` and
//! deserializes to an empty slot regardless of input, forcing the
//! receiver to recompute from the authoritative fields. Equality likewise
//! ignores cache state: two structs differing only in what they have
//! memoized are equal.

use std::fmt;
use std::sync::OnceLock;

use serde::{DeError, Deserialize, Serialize, Value};

/// A write-once memoization slot (see the module docs).
///
/// Thin wrapper over [`OnceLock`]; `&self` callers fill it via
/// [`Derived::get_or_init`], `&mut self` callers invalidate it with
/// [`Derived::clear`] after mutating the fields it was derived from.
///
/// # Examples
///
/// ```
/// use cia_crypto::cache::Derived;
///
/// let slot: Derived<u64> = Derived::new();
/// assert_eq!(slot.get(), None);
/// assert_eq!(*slot.get_or_init(|| 42), 42);
/// assert_eq!(*slot.get_or_init(|| 7), 42, "initialized once");
/// ```
pub struct Derived<T>(OnceLock<T>);

impl<T> Derived<T> {
    /// An empty slot.
    pub fn new() -> Self {
        Derived(OnceLock::new())
    }

    /// The cached value, if one was computed.
    pub fn get(&self) -> Option<&T> {
        self.0.get()
    }

    /// Returns the cached value, computing and storing it on first use.
    pub fn get_or_init(&self, init: impl FnOnce() -> T) -> &T {
        self.0.get_or_init(init)
    }

    /// Drops the cached value; the next [`Derived::get_or_init`]
    /// recomputes. Call after mutating the fields the value derives from.
    pub fn clear(&mut self) {
        self.0 = OnceLock::new();
    }

    /// Mutable access to the cached value, if one was computed.
    pub fn get_mut(&mut self) -> Option<&mut T> {
        self.0.get_mut()
    }

    /// Pre-populates an empty slot (e.g. with a value that was computed
    /// as a by-product of construction). A no-op when already filled.
    pub fn prime(&self, value: T) {
        let _ = self.0.set(value);
    }
}

impl<T> Default for Derived<T> {
    fn default() -> Self {
        Derived::new()
    }
}

impl<T: Clone> Clone for Derived<T> {
    fn clone(&self) -> Self {
        Derived(self.0.clone())
    }
}

impl<T: fmt::Debug> fmt::Debug for Derived<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.get() {
            Some(v) => write!(f, "Derived({v:?})"),
            None => f.write_str("Derived(<empty>)"),
        }
    }
}

/// Cache state never participates in equality: the derived value is a
/// function of the semantic fields, which are compared by the container.
impl<T> PartialEq for Derived<T> {
    fn eq(&self, _other: &Self) -> bool {
        true
    }
}

impl<T> Eq for Derived<T> {}

/// Always `null` on the wire — caches are recomputed, never trusted.
impl<T> Serialize for Derived<T> {
    fn to_value(&self) -> Value {
        Value::Null
    }
}

/// Always deserializes to an empty slot, whatever the input holds.
impl<T> Deserialize for Derived<T> {
    fn from_value(_value: &Value) -> Result<Self, DeError> {
        Ok(Derived::new())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn init_once_and_clear() {
        let mut slot: Derived<String> = Derived::new();
        assert_eq!(slot.get(), None);
        assert_eq!(slot.get_or_init(|| "a".into()), "a");
        assert_eq!(slot.get_or_init(|| "b".into()), "a");
        slot.clear();
        assert_eq!(slot.get_or_init(|| "b".into()), "b");
    }

    #[test]
    fn prime_fills_only_empty_slots() {
        let slot: Derived<u32> = Derived::new();
        slot.prime(1);
        slot.prime(2);
        assert_eq!(slot.get(), Some(&1));
    }

    #[test]
    fn clone_carries_the_cache() {
        let slot: Derived<u32> = Derived::new();
        slot.get_or_init(|| 9);
        assert_eq!(slot.clone().get(), Some(&9));
    }

    #[test]
    fn equality_ignores_cache_state() {
        let full: Derived<u32> = Derived::new();
        full.get_or_init(|| 3);
        let empty: Derived<u32> = Derived::new();
        assert_eq!(full, empty);
    }

    #[test]
    fn serializes_to_null_and_deserializes_empty() {
        let full: Derived<u32> = Derived::new();
        full.get_or_init(|| 3);
        assert_eq!(full.to_value(), Value::Null);
        let back = Derived::<u32>::from_value(&Value::U64(99)).unwrap();
        assert_eq!(back.get(), None);
    }
}
