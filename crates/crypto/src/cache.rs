//! [`Derived`]: a memoization slot for values derivable from their
//! containing struct.
//!
//! The attestation hot path memoizes expensive derived values (template
//! hashes, policy indexes) directly inside the structs they belong to.
//! Those caches must never travel on the wire — a peer-supplied cache
//! would be an integrity hole, and the wire format should not change
//! shape with cache state — so `Derived<T>` serializes to `null` and
//! deserializes to an empty slot regardless of input, forcing the
//! receiver to recompute from the authoritative fields. Equality likewise
//! ignores cache state: two structs differing only in what they have
//! memoized are equal.

use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{OnceLock, RwLock};

use serde::{DeError, Deserialize, Serialize, Value};

/// A write-once memoization slot (see the module docs).
///
/// Thin wrapper over [`OnceLock`]; `&self` callers fill it via
/// [`Derived::get_or_init`], `&mut self` callers invalidate it with
/// [`Derived::clear`] after mutating the fields it was derived from.
///
/// # Examples
///
/// ```
/// use cia_crypto::cache::Derived;
///
/// let slot: Derived<u64> = Derived::new();
/// assert_eq!(slot.get(), None);
/// assert_eq!(*slot.get_or_init(|| 42), 42);
/// assert_eq!(*slot.get_or_init(|| 7), 42, "initialized once");
/// ```
pub struct Derived<T>(OnceLock<T>);

impl<T> Derived<T> {
    /// An empty slot.
    pub fn new() -> Self {
        Derived(OnceLock::new())
    }

    /// The cached value, if one was computed.
    pub fn get(&self) -> Option<&T> {
        self.0.get()
    }

    /// Returns the cached value, computing and storing it on first use.
    pub fn get_or_init(&self, init: impl FnOnce() -> T) -> &T {
        self.0.get_or_init(init)
    }

    /// Drops the cached value; the next [`Derived::get_or_init`]
    /// recomputes. Call after mutating the fields the value derives from.
    pub fn clear(&mut self) {
        self.0 = OnceLock::new();
    }

    /// Mutable access to the cached value, if one was computed.
    pub fn get_mut(&mut self) -> Option<&mut T> {
        self.0.get_mut()
    }

    /// Pre-populates an empty slot (e.g. with a value that was computed
    /// as a by-product of construction). A no-op when already filled.
    pub fn prime(&self, value: T) {
        let _ = self.0.set(value);
    }
}

impl<T> Default for Derived<T> {
    fn default() -> Self {
        Derived::new()
    }
}

impl<T: Clone> Clone for Derived<T> {
    fn clone(&self) -> Self {
        Derived(self.0.clone())
    }
}

impl<T: fmt::Debug> fmt::Debug for Derived<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.get() {
            Some(v) => write!(f, "Derived({v:?})"),
            None => f.write_str("Derived(<empty>)"),
        }
    }
}

/// Cache state never participates in equality: the derived value is a
/// function of the semantic fields, which are compared by the container.
impl<T> PartialEq for Derived<T> {
    fn eq(&self, _other: &Self) -> bool {
        true
    }
}

impl<T> Eq for Derived<T> {}

/// Always `null` on the wire — caches are recomputed, never trusted.
impl<T> Serialize for Derived<T> {
    fn to_value(&self) -> Value {
        Value::Null
    }
}

/// Always deserializes to an empty slot, whatever the input holds.
impl<T> Deserialize for Derived<T> {
    fn from_value(_value: &Value) -> Result<Self, DeError> {
        Ok(Derived::new())
    }
}

/// A content-addressed digest cache shared across hashing workers.
///
/// Keys are *content identities* — any `u64` that uniquely determines the
/// bytes being hashed (the simulated mirror derives file bytes purely from
/// a content seed, so the seed is the identity). Values are rendered hex
/// digests. Unchanged files across daily policy regenerations hit the
/// cache and skip the SHA-256 entirely; hit/miss counters let callers
/// assert cache effectiveness without timing.
///
/// Interior mutability (`RwLock`) so a worker pool can consult and fill
/// the cache through a shared `&DigestCache`.
#[derive(Default)]
pub struct DigestCache {
    map: RwLock<HashMap<u64, String>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl DigestCache {
    /// An empty cache.
    pub fn new() -> Self {
        DigestCache::default()
    }

    /// Whether `key` is already cached (does not count as a hit).
    pub fn contains(&self, key: u64) -> bool {
        self.map
            .read()
            .expect("digest cache poisoned")
            .contains_key(&key)
    }

    /// The cached digest for `key`, counting a hit or miss.
    pub fn get(&self, key: u64) -> Option<String> {
        let found = self
            .map
            .read()
            .expect("digest cache poisoned")
            .get(&key)
            .cloned();
        match &found {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        found
    }

    /// Stores a computed digest (last writer wins; workers racing on the
    /// same content identity compute identical digests).
    pub fn insert(&self, key: u64, digest: String) {
        self.map
            .write()
            .expect("digest cache poisoned")
            .insert(key, digest);
    }

    /// Returns the cached digest for `key`, computing and storing it on a
    /// miss. Hit/miss counters are updated either way.
    pub fn get_or_compute(&self, key: u64, compute: impl FnOnce() -> String) -> String {
        if let Some(found) = self.get(key) {
            return found;
        }
        let digest = compute();
        self.insert(key, digest.clone());
        digest
    }

    /// Number of cached digests.
    pub fn len(&self) -> usize {
        self.map.read().expect("digest cache poisoned").len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lookups that found a cached digest.
    pub fn hit_count(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that had to compute.
    pub fn miss_count(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }
}

impl fmt::Debug for DigestCache {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DigestCache")
            .field("len", &self.len())
            .field("hits", &self.hit_count())
            .field("misses", &self.miss_count())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn init_once_and_clear() {
        let mut slot: Derived<String> = Derived::new();
        assert_eq!(slot.get(), None);
        assert_eq!(slot.get_or_init(|| "a".into()), "a");
        assert_eq!(slot.get_or_init(|| "b".into()), "a");
        slot.clear();
        assert_eq!(slot.get_or_init(|| "b".into()), "b");
    }

    #[test]
    fn prime_fills_only_empty_slots() {
        let slot: Derived<u32> = Derived::new();
        slot.prime(1);
        slot.prime(2);
        assert_eq!(slot.get(), Some(&1));
    }

    #[test]
    fn clone_carries_the_cache() {
        let slot: Derived<u32> = Derived::new();
        slot.get_or_init(|| 9);
        assert_eq!(slot.clone().get(), Some(&9));
    }

    #[test]
    fn equality_ignores_cache_state() {
        let full: Derived<u32> = Derived::new();
        full.get_or_init(|| 3);
        let empty: Derived<u32> = Derived::new();
        assert_eq!(full, empty);
    }

    #[test]
    fn serializes_to_null_and_deserializes_empty() {
        let full: Derived<u32> = Derived::new();
        full.get_or_init(|| 3);
        assert_eq!(full.to_value(), Value::Null);
        let back = Derived::<u32>::from_value(&Value::U64(99)).unwrap();
        assert_eq!(back.get(), None);
    }

    #[test]
    fn digest_cache_counts_hits_and_misses() {
        let cache = DigestCache::new();
        assert!(cache.is_empty());
        assert_eq!(cache.get_or_compute(7, || "aa".into()), "aa");
        assert_eq!(cache.get_or_compute(7, || "bb".into()), "aa");
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.hit_count(), 1);
        assert_eq!(cache.miss_count(), 1);
        assert!(cache.contains(7));
        assert!(!cache.contains(8));
        // `contains` probes do not disturb the counters.
        assert_eq!(cache.hit_count(), 1);
        assert_eq!(cache.miss_count(), 1);
    }

    #[test]
    fn digest_cache_shared_across_threads() {
        let cache = DigestCache::new();
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let cache = &cache;
                s.spawn(move || {
                    for key in 0..32 {
                        cache.get_or_compute(key, || format!("digest-{key}-{t}"));
                    }
                });
            }
        });
        assert_eq!(cache.len(), 32);
        // Racing writers on the same identity compute the same bytes in
        // real use; here we only assert one value per key survived.
        for key in 0..32 {
            assert!(cache.contains(key));
        }
    }
}
