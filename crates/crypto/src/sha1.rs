//! SHA-1 as specified in FIPS 180-4.
//!
//! SHA-1 is cryptographically broken; it is implemented here only because
//! the TPM 2.0 SHA-1 PCR bank and legacy IMA templates (`ima`, template
//! hash field of `ima-ng`) use it, and the simulators mirror that wire
//! format.

use crate::digest::Digest;

const H0: [u32; 5] = [0x67452301, 0xefcdab89, 0x98badcfe, 0x10325476, 0xc3d2e1f0];

/// An incremental SHA-1 hasher.
///
/// # Examples
///
/// ```
/// use cia_crypto::Sha1;
///
/// assert_eq!(
///     Sha1::digest(b"abc").to_hex(),
///     "a9993e364706816aba3e25717850c26c9cd0d89d"
/// );
/// ```
#[derive(Debug, Clone)]
pub struct Sha1 {
    state: [u32; 5],
    buffer: [u8; 64],
    buffer_len: usize,
    length: u64,
}

impl Default for Sha1 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha1 {
    /// Digest size in bytes.
    pub const OUTPUT_LEN: usize = 20;
    /// Internal block size in bytes.
    pub const BLOCK_LEN: usize = 64;

    /// Creates a fresh hasher.
    pub fn new() -> Self {
        Sha1 {
            state: H0,
            buffer: [0u8; 64],
            buffer_len: 0,
            length: 0,
        }
    }

    /// Convenience one-shot digest of `data`.
    pub fn digest(data: &[u8]) -> Digest {
        let mut h = Self::new();
        h.update(data);
        h.finalize()
    }

    /// Absorbs `data` into the hash state.
    pub fn update(&mut self, data: &[u8]) {
        self.length = self.length.wrapping_add(data.len() as u64);
        let mut data = data;
        if self.buffer_len > 0 {
            let take = (64 - self.buffer_len).min(data.len());
            self.buffer[self.buffer_len..self.buffer_len + take].copy_from_slice(&data[..take]);
            self.buffer_len += take;
            data = &data[take..];
            if self.buffer_len == 64 {
                let block = self.buffer;
                self.compress(&block);
                self.buffer_len = 0;
            }
        }
        while data.len() >= 64 {
            let mut block = [0u8; 64];
            block.copy_from_slice(&data[..64]);
            self.compress(&block);
            data = &data[64..];
        }
        if !data.is_empty() {
            self.buffer[..data.len()].copy_from_slice(data);
            self.buffer_len = data.len();
        }
    }

    /// Completes the hash and returns the 20-byte digest.
    pub fn finalize(mut self) -> Digest {
        let bit_len = self.length.wrapping_mul(8);
        self.update_padding(&[0x80]);
        while self.buffer_len != 56 {
            self.update_padding(&[0x00]);
        }
        self.update_padding(&bit_len.to_be_bytes());
        debug_assert_eq!(self.buffer_len, 0);

        let mut out = [0u8; 20];
        for (i, word) in self.state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
        }
        Digest::from_sha1(out)
    }

    fn update_padding(&mut self, data: &[u8]) {
        for &byte in data {
            self.buffer[self.buffer_len] = byte;
            self.buffer_len += 1;
            if self.buffer_len == 64 {
                let block = self.buffer;
                self.compress(&block);
                self.buffer_len = 0;
            }
        }
    }

    fn compress(&mut self, block: &[u8; 64]) {
        let mut w = [0u32; 80];
        for (i, chunk) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        for i in 16..80 {
            w[i] = (w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16]).rotate_left(1);
        }

        let [mut a, mut b, mut c, mut d, mut e] = self.state;
        for (i, &wi) in w.iter().enumerate() {
            let (f, k) = match i {
                0..=19 => ((b & c) | ((!b) & d), 0x5a827999u32),
                20..=39 => (b ^ c ^ d, 0x6ed9eba1),
                40..=59 => ((b & c) | (b & d) | (c & d), 0x8f1bbcdc),
                _ => (b ^ c ^ d, 0xca62c1d6),
            };
            let temp = a
                .rotate_left(5)
                .wrapping_add(f)
                .wrapping_add(e)
                .wrapping_add(k)
                .wrapping_add(wi);
            e = d;
            d = c;
            c = b.rotate_left(30);
            b = a;
            a = temp;
        }

        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
        self.state[4] = self.state[4].wrapping_add(e);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fips_vector_empty() {
        assert_eq!(
            Sha1::digest(b"").to_hex(),
            "da39a3ee5e6b4b0d3255bfef95601890afd80709"
        );
    }

    #[test]
    fn fips_vector_abc() {
        assert_eq!(
            Sha1::digest(b"abc").to_hex(),
            "a9993e364706816aba3e25717850c26c9cd0d89d"
        );
    }

    #[test]
    fn fips_vector_448_bits() {
        assert_eq!(
            Sha1::digest(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq").to_hex(),
            "84983e441c3bd26ebaae4aa1f95129e5e54670f1"
        );
    }

    #[test]
    fn fips_vector_million_a() {
        let data = vec![b'a'; 1_000_000];
        assert_eq!(
            Sha1::digest(&data).to_hex(),
            "34aa973cd4c4daa4f61eeb2bdbad27316534016f"
        );
    }

    #[test]
    fn incremental_matches_oneshot() {
        let data: Vec<u8> = (0..300u32).map(|i| (i % 256) as u8).collect();
        for split in [0usize, 1, 63, 64, 65, 150, 299, 300] {
            let mut h = Sha1::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finalize(), Sha1::digest(&data), "split at {split}");
        }
    }
}
