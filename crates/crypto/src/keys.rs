//! Attestation signing keys.
//!
//! Real TPMs sign quotes with asymmetric keys (RSA/ECC) whose public halves
//! are certified by the manufacturer. None of the allowed dependencies
//! provide asymmetric cryptography, so this module substitutes a MAC-based
//! scheme: a [`KeyPair`] holds 32 bytes of secret material; the
//! [`SigningKey`] MACs messages with it and the [`VerifyingKey`] — which in
//! the simulators is only ever handed out through the trusted registrar
//! channel, mirroring how a real deployment trusts the EK certificate chain
//! — verifies them. The protocol-level property Keylime depends on is
//! preserved: a party without the key material cannot forge a quote.

use std::fmt;

use rand::RngCore;
use serde::{Deserialize, Serialize};

use crate::digest::Digest;
use crate::hex;
use crate::hmac::Hmac;

/// A detached signature over a message.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Signature(Digest);

impl Signature {
    /// The raw signature bytes.
    pub fn as_bytes(&self) -> &[u8] {
        self.0.as_bytes()
    }

    /// The signature as the digest the MAC produced (wire codec use).
    pub(crate) fn digest(&self) -> Digest {
        self.0
    }

    /// Rebuilds a signature from a decoded digest (wire codec use).
    pub(crate) fn from_digest(digest: Digest) -> Self {
        Signature(digest)
    }
}

impl fmt::Display for Signature {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0.to_hex())
    }
}

/// Secret signing half of a key pair.
#[derive(Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SigningKey {
    material: [u8; 32],
}

impl SigningKey {
    /// Signs `message`.
    pub fn sign(&self, message: &[u8]) -> Signature {
        Signature(Hmac::mac(&self.material, message))
    }

    /// Derives the matching verifying key.
    pub fn verifying_key(&self) -> VerifyingKey {
        VerifyingKey {
            material: self.material,
        }
    }
}

impl fmt::Debug for SigningKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Never print key material.
        f.write_str("SigningKey(..)")
    }
}

/// Verification half of a key pair.
///
/// In the simulators this value is distributed only over trusted channels
/// (registrar enrolment), standing in for an EK/AK certificate chain.
#[derive(Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct VerifyingKey {
    material: [u8; 32],
}

impl VerifyingKey {
    /// Verifies `signature` over `message`.
    pub fn verify(&self, message: &[u8], signature: &Signature) -> bool {
        Hmac::verify(&self.material, message, &signature.0)
    }

    /// A short stable fingerprint identifying this key (safe to log).
    pub fn fingerprint(&self) -> String {
        let digest = crate::Sha256::digest(&self.material);
        hex::encode(&digest.as_bytes()[..8])
    }
}

impl fmt::Debug for VerifyingKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "VerifyingKey({})", self.fingerprint())
    }
}

/// A freshly generated signing/verifying key pair.
#[derive(Debug, Clone)]
pub struct KeyPair {
    /// The secret signing key.
    pub signing: SigningKey,
    /// The distributable verifying key.
    pub verifying: VerifyingKey,
}

impl KeyPair {
    /// Generates a key pair from the given randomness source.
    pub fn generate<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        let mut material = [0u8; 32];
        rng.fill_bytes(&mut material);
        Self::from_material(material)
    }

    /// Builds a key pair from fixed material (deterministic tests).
    pub fn from_material(material: [u8; 32]) -> Self {
        let signing = SigningKey { material };
        let verifying = signing.verifying_key();
        KeyPair { signing, verifying }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn pair(seed: u8) -> KeyPair {
        KeyPair::from_material([seed; 32])
    }

    #[test]
    fn sign_verify_roundtrip() {
        let kp = pair(1);
        let sig = kp.signing.sign(b"quote data");
        assert!(kp.verifying.verify(b"quote data", &sig));
    }

    #[test]
    fn tampered_message_rejected() {
        let kp = pair(2);
        let sig = kp.signing.sign(b"quote data");
        assert!(!kp.verifying.verify(b"quote dat4", &sig));
    }

    #[test]
    fn wrong_key_rejected() {
        let sig = pair(3).signing.sign(b"m");
        assert!(!pair(4).verifying.verify(b"m", &sig));
    }

    #[test]
    fn generate_is_seed_deterministic() {
        let mut r1 = StdRng::seed_from_u64(7);
        let mut r2 = StdRng::seed_from_u64(7);
        let a = KeyPair::generate(&mut r1);
        let b = KeyPair::generate(&mut r2);
        assert_eq!(a.signing.sign(b"x"), b.signing.sign(b"x"));
    }

    #[test]
    fn debug_does_not_leak_material() {
        let kp = pair(5);
        let s = format!("{:?}{:?}", kp.signing, kp.verifying);
        assert!(!s.contains("05050505"));
    }

    #[test]
    fn fingerprint_is_stable_and_short() {
        let kp = pair(6);
        assert_eq!(
            kp.verifying.fingerprint(),
            kp.signing.verifying_key().fingerprint()
        );
        assert_eq!(kp.verifying.fingerprint().len(), 16);
    }
}
