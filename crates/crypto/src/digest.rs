//! Digest values and hash-algorithm identifiers shared across the workspace.

use std::fmt;

use serde::{DeError, Deserialize, Serialize, Value};

use crate::hex;

/// Identifies a hash algorithm in logs, policies, and PCR banks.
///
/// Mirrors the algorithm prefixes that appear in IMA's `ima-ng` template
/// (`sha256:...`) and the TPM 2.0 bank selectors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum HashAlgorithm {
    /// SHA-1 (legacy PCR bank and template hashes).
    Sha1,
    /// SHA-256 (default bank, policies, file digests).
    Sha256,
}

impl HashAlgorithm {
    /// Digest length in bytes.
    pub fn output_len(self) -> usize {
        match self {
            HashAlgorithm::Sha1 => 20,
            HashAlgorithm::Sha256 => 32,
        }
    }

    /// The lowercase name used in IMA log entries (e.g. `"sha256"`).
    pub fn name(self) -> &'static str {
        match self {
            HashAlgorithm::Sha1 => "sha1",
            HashAlgorithm::Sha256 => "sha256",
        }
    }

    /// Parses an algorithm name as it appears in IMA logs.
    ///
    /// # Errors
    ///
    /// Returns [`ParseAlgorithmError`] if `name` is not a known algorithm.
    pub fn from_name(name: &str) -> Result<Self, ParseAlgorithmError> {
        match name {
            "sha1" => Ok(HashAlgorithm::Sha1),
            "sha256" => Ok(HashAlgorithm::Sha256),
            _ => Err(ParseAlgorithmError {
                name: name.to_string(),
            }),
        }
    }

    /// One-shot digest of `data` using this algorithm.
    pub fn digest(self, data: &[u8]) -> Digest {
        match self {
            HashAlgorithm::Sha1 => crate::Sha1::digest(data),
            HashAlgorithm::Sha256 => crate::Sha256::digest(data),
        }
    }

    /// One-shot digest of several concatenated parts, equivalent to
    /// [`HashAlgorithm::digest`] over their concatenation but without
    /// materializing it — the allocation-free path for hot loops that
    /// hash composite records (e.g. IMA template data).
    pub fn digest_parts(self, parts: &[&[u8]]) -> Digest {
        match self {
            HashAlgorithm::Sha1 => {
                let mut h = crate::Sha1::new();
                for part in parts {
                    h.update(part);
                }
                h.finalize()
            }
            HashAlgorithm::Sha256 => {
                let mut h = crate::Sha256::new();
                for part in parts {
                    h.update(part);
                }
                h.finalize()
            }
        }
    }

    /// The all-zero digest for this algorithm (PCR reset value).
    pub fn zero_digest(self) -> Digest {
        Digest {
            algorithm: self,
            bytes: DigestBytes::zeroed(self.output_len()),
        }
    }

    /// The all-0xFF digest for this algorithm (locality-4 PCR reset value).
    pub fn ones_digest(self) -> Digest {
        let mut bytes = DigestBytes::zeroed(self.output_len());
        bytes.data[..self.output_len()].fill(0xff);
        Digest {
            algorithm: self,
            bytes,
        }
    }
}

impl fmt::Display for HashAlgorithm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Error returned when parsing an unknown hash-algorithm name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseAlgorithmError {
    name: String,
}

impl fmt::Display for ParseAlgorithmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown hash algorithm `{}`", self.name)
    }
}

impl std::error::Error for ParseAlgorithmError {}

/// Fixed-capacity digest storage (large enough for SHA-256).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
struct DigestBytes {
    data: [u8; 32],
    len: u8,
}

impl DigestBytes {
    fn zeroed(len: usize) -> Self {
        DigestBytes {
            data: [0u8; 32],
            len: len as u8,
        }
    }
}

/// A hash digest tagged with the algorithm that produced it.
///
/// # Examples
///
/// ```
/// use cia_crypto::{Digest, HashAlgorithm};
///
/// let d = HashAlgorithm::Sha256.digest(b"data");
/// let parsed: Digest = d.to_prefixed_hex().parse()?;
/// assert_eq!(parsed, d);
/// # Ok::<(), cia_crypto::digest::ParseDigestError>(())
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Digest {
    algorithm: HashAlgorithm,
    bytes: DigestBytes,
}

/// Wire form is the compact `algo:hex` string — a fraction of the size
/// of a per-byte array encoding, and what IMA logs print anyway.
impl Serialize for Digest {
    fn to_value(&self) -> Value {
        Value::Str(self.to_prefixed_hex())
    }
}

impl Deserialize for Digest {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Str(s) => s
                .parse()
                .map_err(|e: ParseDigestError| DeError::new(e.to_string())),
            other => Err(DeError::expected("`algo:hex` digest string", other)),
        }
    }
}

impl Digest {
    /// Wraps a raw SHA-256 digest.
    pub fn from_sha256(bytes: [u8; 32]) -> Self {
        Digest {
            algorithm: HashAlgorithm::Sha256,
            bytes: DigestBytes {
                data: bytes,
                len: 32,
            },
        }
    }

    /// Wraps a raw SHA-1 digest.
    pub fn from_sha1(bytes: [u8; 20]) -> Self {
        let mut data = [0u8; 32];
        data[..20].copy_from_slice(&bytes);
        Digest {
            algorithm: HashAlgorithm::Sha1,
            bytes: DigestBytes { data, len: 20 },
        }
    }

    /// Builds a digest from raw bytes, validating the length for `algorithm`.
    ///
    /// # Errors
    ///
    /// Returns [`ParseDigestError`] when `bytes` has the wrong length.
    pub fn from_bytes(algorithm: HashAlgorithm, bytes: &[u8]) -> Result<Self, ParseDigestError> {
        if bytes.len() != algorithm.output_len() {
            return Err(ParseDigestError::WrongLength {
                algorithm,
                got: bytes.len(),
            });
        }
        let mut data = [0u8; 32];
        data[..bytes.len()].copy_from_slice(bytes);
        Ok(Digest {
            algorithm,
            bytes: DigestBytes {
                data,
                len: bytes.len() as u8,
            },
        })
    }

    /// The algorithm that produced this digest.
    pub fn algorithm(&self) -> HashAlgorithm {
        self.algorithm
    }

    /// The digest bytes.
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes.data[..self.bytes.len as usize]
    }

    /// Lowercase hex encoding of the digest bytes.
    pub fn to_hex(&self) -> String {
        hex::encode(self.as_bytes())
    }

    /// Upper bound of the `algo:hex` rendering in bytes (`sha256:` plus
    /// 64 hex digits) — the buffer size for
    /// [`Digest::write_prefixed_hex`].
    pub const MAX_PREFIXED_HEX: usize = 7 + 64;

    /// Writes the `algo:hex` rendering into a stack buffer without
    /// allocating, returning the number of bytes used. The hot-path
    /// counterpart of [`Digest::to_prefixed_hex`].
    ///
    /// # Examples
    ///
    /// ```
    /// use cia_crypto::{Digest, HashAlgorithm};
    ///
    /// let d = HashAlgorithm::Sha256.digest(b"x");
    /// let mut buf = [0u8; Digest::MAX_PREFIXED_HEX];
    /// let n = d.write_prefixed_hex(&mut buf);
    /// assert_eq!(&buf[..n], d.to_prefixed_hex().as_bytes());
    /// ```
    pub fn write_prefixed_hex(&self, out: &mut [u8; Self::MAX_PREFIXED_HEX]) -> usize {
        let name = self.algorithm.name().as_bytes();
        out[..name.len()].copy_from_slice(name);
        out[name.len()] = b':';
        let written = hex::encode_to_slice(self.as_bytes(), &mut out[name.len() + 1..]);
        name.len() + 1 + written
    }

    /// IMA-style `algo:hex` rendering (e.g. `sha256:ab12...`).
    pub fn to_prefixed_hex(&self) -> String {
        format!("{}:{}", self.algorithm.name(), self.to_hex())
    }

    /// Parses a bare hex digest whose algorithm is known from context.
    ///
    /// # Errors
    ///
    /// Returns [`ParseDigestError`] on bad hex or wrong length.
    pub fn parse_hex(algorithm: HashAlgorithm, s: &str) -> Result<Self, ParseDigestError> {
        let mut buf = [0u8; 32];
        let n = hex::decode_to_slice(s, &mut buf).map_err(|e| match e {
            hex::DecodeHexError::BufferTooSmall { needed, .. } => ParseDigestError::WrongLength {
                algorithm,
                got: needed,
            },
            _ => ParseDigestError::BadHex,
        })?;
        Self::from_bytes(algorithm, &buf[..n])
    }

    /// True when every byte is zero (e.g. violation markers in IMA logs).
    pub fn is_zero(&self) -> bool {
        self.as_bytes().iter().all(|&b| b == 0)
    }
}

impl fmt::Debug for Digest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Digest({})", self.to_prefixed_hex())
    }
}

impl fmt::Display for Digest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_prefixed_hex())
    }
}

impl std::str::FromStr for Digest {
    type Err = ParseDigestError;

    /// Parses the `algo:hex` form produced by [`Digest::to_prefixed_hex`].
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (name, hex_part) = s.split_once(':').ok_or(ParseDigestError::MissingPrefix)?;
        let algorithm =
            HashAlgorithm::from_name(name).map_err(|_| ParseDigestError::MissingPrefix)?;
        Self::parse_hex(algorithm, hex_part)
    }
}

/// Error returned when parsing a digest fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseDigestError {
    /// The string was not valid hexadecimal.
    BadHex,
    /// The byte length did not match the algorithm's output size.
    WrongLength {
        /// Expected algorithm.
        algorithm: HashAlgorithm,
        /// Actual byte count.
        got: usize,
    },
    /// No `algo:` prefix was present where one was required.
    MissingPrefix,
}

impl fmt::Display for ParseDigestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseDigestError::BadHex => f.write_str("invalid hexadecimal digest"),
            ParseDigestError::WrongLength { algorithm, got } => write!(
                f,
                "digest length {} does not match {} (expected {})",
                got,
                algorithm,
                algorithm.output_len()
            ),
            ParseDigestError::MissingPrefix => f.write_str("missing or unknown algorithm prefix"),
        }
    }
}

impl std::error::Error for ParseDigestError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefixed_roundtrip() {
        let d = HashAlgorithm::Sha256.digest(b"roundtrip");
        let s = d.to_prefixed_hex();
        assert!(s.starts_with("sha256:"));
        assert_eq!(s.parse::<Digest>().unwrap(), d);
    }

    #[test]
    fn sha1_roundtrip() {
        let d = HashAlgorithm::Sha1.digest(b"roundtrip");
        assert_eq!(d.as_bytes().len(), 20);
        assert_eq!(d.to_prefixed_hex().parse::<Digest>().unwrap(), d);
    }

    #[test]
    fn wrong_length_rejected() {
        let err = Digest::from_bytes(HashAlgorithm::Sha256, &[0u8; 20]).unwrap_err();
        assert!(matches!(err, ParseDigestError::WrongLength { got: 20, .. }));
    }

    #[test]
    fn zero_digest_is_zero() {
        assert!(HashAlgorithm::Sha256.zero_digest().is_zero());
        assert!(!HashAlgorithm::Sha256.digest(b"x").is_zero());
    }

    #[test]
    fn ones_digest() {
        let d = HashAlgorithm::Sha1.ones_digest();
        assert_eq!(d.as_bytes(), &[0xffu8; 20][..]);
    }

    #[test]
    fn display_matches_prefixed_hex() {
        let d = HashAlgorithm::Sha256.digest(b"display");
        assert_eq!(format!("{d}"), d.to_prefixed_hex());
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!("sha256:zz".parse::<Digest>().is_err());
        assert!("md5:00".parse::<Digest>().is_err());
        assert!("deadbeef".parse::<Digest>().is_err());
    }

    #[test]
    fn serde_wire_form_is_prefixed_hex() {
        let d = HashAlgorithm::Sha256.digest(b"wire");
        assert_eq!(d.to_value(), Value::Str(d.to_prefixed_hex()));
        let back = Digest::from_value(&d.to_value()).unwrap();
        assert_eq!(back, d);
        assert!(Digest::from_value(&Value::U64(7)).is_err());
        assert!(Digest::from_value(&Value::Str("sha256:zz".into())).is_err());
    }

    #[test]
    fn algorithm_names_roundtrip() {
        for algo in [HashAlgorithm::Sha1, HashAlgorithm::Sha256] {
            assert_eq!(HashAlgorithm::from_name(algo.name()).unwrap(), algo);
        }
        assert!(HashAlgorithm::from_name("md5").is_err());
    }
}
