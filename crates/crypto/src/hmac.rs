//! HMAC-SHA256 as specified in RFC 2104 / FIPS 198-1.

use crate::digest::Digest;
use crate::sha256::Sha256;

/// An incremental HMAC-SHA256 computation.
///
/// # Examples
///
/// ```
/// use cia_crypto::Hmac;
///
/// let tag = Hmac::mac(b"key", b"message");
/// assert!(Hmac::verify(b"key", b"message", &tag));
/// assert!(!Hmac::verify(b"key", b"tampered", &tag));
/// ```
#[derive(Debug, Clone)]
pub struct Hmac {
    inner: Sha256,
    opad_key: [u8; 64],
}

impl Hmac {
    /// Creates an HMAC instance keyed with `key`.
    ///
    /// Keys longer than the SHA-256 block size are hashed first, per the
    /// specification.
    pub fn new(key: &[u8]) -> Self {
        let mut block_key = [0u8; 64];
        if key.len() > 64 {
            let digest = Sha256::digest(key);
            block_key[..32].copy_from_slice(digest.as_bytes());
        } else {
            block_key[..key.len()].copy_from_slice(key);
        }

        let mut ipad_key = [0u8; 64];
        let mut opad_key = [0u8; 64];
        for i in 0..64 {
            ipad_key[i] = block_key[i] ^ 0x36;
            opad_key[i] = block_key[i] ^ 0x5c;
        }

        let mut inner = Sha256::new();
        inner.update(&ipad_key);
        Hmac { inner, opad_key }
    }

    /// Absorbs message bytes.
    pub fn update(&mut self, data: &[u8]) {
        self.inner.update(data);
    }

    /// Completes the MAC computation.
    pub fn finalize(self) -> Digest {
        let inner_digest = self.inner.finalize();
        let mut outer = Sha256::new();
        outer.update(&self.opad_key);
        outer.update(inner_digest.as_bytes());
        outer.finalize()
    }

    /// One-shot MAC of `message` under `key`.
    pub fn mac(key: &[u8], message: &[u8]) -> Digest {
        let mut h = Hmac::new(key);
        h.update(message);
        h.finalize()
    }

    /// Verifies `tag` against a freshly computed MAC in constant time.
    pub fn verify(key: &[u8], message: &[u8], tag: &Digest) -> bool {
        let expected = Self::mac(key, message);
        constant_time_eq(expected.as_bytes(), tag.as_bytes())
    }
}

/// Constant-time byte-slice equality (length leaks, contents do not).
fn constant_time_eq(a: &[u8], b: &[u8]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let mut acc = 0u8;
    for (x, y) in a.iter().zip(b.iter()) {
        acc |= x ^ y;
    }
    acc == 0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hex;

    // Test vectors from RFC 4231.
    #[test]
    fn rfc4231_case_1() {
        let key = [0x0bu8; 20];
        let tag = Hmac::mac(&key, b"Hi There");
        assert_eq!(
            tag.to_hex(),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    #[test]
    fn rfc4231_case_2() {
        let tag = Hmac::mac(b"Jefe", b"what do ya want for nothing?");
        assert_eq!(
            tag.to_hex(),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    #[test]
    fn rfc4231_case_3() {
        let key = [0xaau8; 20];
        let data = [0xddu8; 50];
        let tag = Hmac::mac(&key, &data);
        assert_eq!(
            tag.to_hex(),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
        );
    }

    #[test]
    fn rfc4231_case_6_long_key() {
        let key = [0xaau8; 131];
        let tag = Hmac::mac(
            &key,
            b"Test Using Larger Than Block-Size Key - Hash Key First",
        );
        assert_eq!(
            tag.to_hex(),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    #[test]
    fn rfc4231_case_7_long_key_and_data() {
        let key = [0xaau8; 131];
        let msg = b"This is a test using a larger than block-size key and a larger than \
                    block-size data. The key needs to be hashed before being used by the \
                    HMAC algorithm.";
        let tag = Hmac::mac(&key, msg);
        assert_eq!(
            tag.to_hex(),
            "9b09ffa71b942fcb27635fbcd5b0e944bfdc63644f0713938a7f51535c3a35e2"
        );
    }

    #[test]
    fn incremental_matches_oneshot() {
        let key = b"incremental-key";
        let msg = b"part one and part two";
        let mut h = Hmac::new(key);
        h.update(b"part one");
        h.update(b" and part two");
        assert_eq!(h.finalize(), Hmac::mac(key, msg));
    }

    #[test]
    fn verify_rejects_wrong_key() {
        let tag = Hmac::mac(b"right", b"msg");
        assert!(!Hmac::verify(b"wrong", b"msg", &tag));
    }

    #[test]
    fn constant_time_eq_rejects_len_mismatch() {
        assert!(!constant_time_eq(b"abc", b"abcd"));
        assert!(constant_time_eq(b"abc", b"abc"));
    }

    #[test]
    fn distinct_keys_distinct_tags() {
        let t1 = Hmac::mac(b"k1", b"m");
        let t2 = Hmac::mac(b"k2", b"m");
        assert_ne!(t1, t2);
        let _ = hex::encode(t1.as_bytes());
    }
}
