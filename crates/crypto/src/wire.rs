//! Binary wire codec impls for the crypto primitives.
//!
//! Lives here rather than in `cia-wire` because of the orphan rule —
//! and because [`Digest`] and [`Signature`] keep their fields private,
//! so only this crate can rebuild them from validated bytes. Digest
//! bytes decode through [`cia_wire::Reader::bytes`], borrowing from the
//! frame buffer and copying once into the digest's fixed inline array:
//! no heap allocation on the hot path.

use cia_wire::{Reader, Wire, WireError, Writer};

use crate::digest::{Digest, HashAlgorithm};
use crate::keys::Signature;

impl Wire for HashAlgorithm {
    fn encode(&self, w: &mut Writer) {
        w.put_u8(match self {
            HashAlgorithm::Sha1 => 0,
            HashAlgorithm::Sha256 => 1,
        });
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.u8()? {
            0 => Ok(HashAlgorithm::Sha1),
            1 => Ok(HashAlgorithm::Sha256),
            tag => Err(WireError::BadTag {
                what: "hash algorithm",
                tag: u64::from(tag),
            }),
        }
    }
}

impl Wire for Digest {
    fn encode(&self, w: &mut Writer) {
        self.algorithm().encode(w);
        w.put_bytes(self.as_bytes());
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let algorithm = HashAlgorithm::decode(r)?;
        let raw = r.bytes()?;
        Digest::from_bytes(algorithm, raw).map_err(|_| WireError::BadLength {
            len: raw.len(),
            remaining: algorithm.output_len(),
        })
    }
}

impl Wire for Signature {
    fn encode(&self, w: &mut Writer) {
        self.digest().encode(w);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(Signature::from_digest(Digest::decode(r)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Sha256;

    #[test]
    fn digest_roundtrips_both_algorithms() {
        let d256 = Sha256::digest(b"evidence");
        let d1 = crate::Sha1::digest(b"evidence");
        for d in [d256, d1] {
            let bytes = d.to_wire();
            assert_eq!(Digest::from_wire(&bytes).unwrap(), d);
        }
    }

    #[test]
    fn wrong_length_digest_is_rejected() {
        let d = Sha256::digest(b"x");
        let mut w = Writer::new();
        HashAlgorithm::Sha1.encode(&mut w); // claim sha1 (20 bytes)...
        w.put_bytes(d.as_bytes()); // ...but carry 32
        assert!(Digest::from_wire(w.as_slice()).is_err());
    }

    #[test]
    fn signature_roundtrips() {
        let pair = crate::KeyPair::from_material([7u8; 32]);
        let sig = pair.signing.sign(b"quote");
        let back = Signature::from_wire(&sig.to_wire()).unwrap();
        assert_eq!(back, sig);
        assert!(pair.verifying.verify(b"quote", &back));
    }
}
