//! Offline JSON text layer over the local serde shim.
//!
//! Provides the four entry points the workspace uses —
//! [`to_string`], [`to_vec`], [`from_str`], [`from_slice`] — backed by a
//! complete little JSON writer/parser over [`serde::Value`].

#![forbid(unsafe_code)]

use std::fmt;

use serde::de::DeserializeOwned;
use serde::{Serialize, Value};

/// Serialization/deserialization failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    fn new(message: impl Into<String>) -> Self {
        Error {
            message: message.into(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

/// Result alias (API parity).
pub type Result<T> = std::result::Result<T, Error>;

/// Serializes a value to a JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out)?;
    Ok(out)
}

/// Serializes a value to JSON bytes.
pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>> {
    to_string(value).map(String::into_bytes)
}

/// Deserializes a value from a JSON string.
pub fn from_str<T: DeserializeOwned>(text: &str) -> Result<T> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::new(format!(
            "trailing characters at offset {}",
            parser.pos
        )));
    }
    T::from_value(&value).map_err(|e| Error::new(e.message))
}

/// Deserializes a value from JSON bytes.
pub fn from_slice<T: DeserializeOwned>(bytes: &[u8]) -> Result<T> {
    let text = std::str::from_utf8(bytes).map_err(|e| Error::new(format!("invalid utf-8: {e}")))?;
    from_str(text)
}

// ---------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------

fn write_u64(mut n: u64, out: &mut String) {
    let mut buf = [0u8; 20];
    let mut i = buf.len();
    loop {
        i -= 1;
        buf[i] = b'0' + (n % 10) as u8;
        n /= 10;
        if n == 0 {
            break;
        }
    }
    out.push_str(std::str::from_utf8(&buf[i..]).expect("decimal digits are ASCII"));
}

fn write_value(value: &Value, out: &mut String) -> Result<()> {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::U64(n) => write_u64(*n, out),
        Value::I64(n) => {
            if *n < 0 {
                out.push('-');
            }
            write_u64(n.unsigned_abs(), out);
        }
        Value::F64(x) => {
            if !x.is_finite() {
                return Err(Error::new("cannot serialize non-finite float"));
            }
            // Keep integral floats distinguishable from integers so the
            // reader reproduces Value::F64 on round-trip.
            if x.fract() == 0.0 && x.abs() < 1e15 {
                out.push_str(&format!("{x:.1}"));
            } else {
                out.push_str(&format!("{x}"));
            }
        }
        Value::Str(s) => write_string(s, out),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out)?;
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(k, out);
                out.push(':');
                write_value(v, out)?;
            }
            out.push('}');
        }
    }
    Ok(())
}

fn write_string(s: &str, out: &mut String) {
    out.reserve(s.len() + 2);
    out.push('"');
    // Copy maximal runs of bytes that need no escaping (everything
    // except `"`, `\` and control characters — multi-byte UTF-8 passes
    // through untouched) and escape only the rare exceptions.
    let bytes = s.as_bytes();
    let mut run_start = 0;
    for (i, &b) in bytes.iter().enumerate() {
        if b == b'"' || b == b'\\' || b < 0x20 {
            out.push_str(&s[run_start..i]);
            match b {
                b'"' => out.push_str("\\\""),
                b'\\' => out.push_str("\\\\"),
                b'\n' => out.push_str("\\n"),
                b'\r' => out.push_str("\\r"),
                b'\t' => out.push_str("\\t"),
                _ => {
                    use fmt::Write as _;
                    let _ = write!(out, "\\u{:04x}", b);
                }
            }
            run_start = i + 1;
        }
    }
    out.push_str(&s[run_start..]);
    out.push('"');
}

// ---------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        match self.bump() {
            Some(got) if got == b => Ok(()),
            Some(got) => Err(Error::new(format!(
                "expected `{}` at offset {}, got `{}`",
                b as char,
                self.pos - 1,
                got as char
            ))),
            None => Err(Error::new("unexpected end of input")),
        }
    }

    fn eat_literal(&mut self, lit: &str) -> Result<()> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(Error::new(format!(
                "invalid literal at offset {}",
                self.pos
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => {
                self.eat_literal("null")?;
                Ok(Value::Null)
            }
            Some(b't') => {
                self.eat_literal("true")?;
                Ok(Value::Bool(true))
            }
            Some(b'f') => {
                self.eat_literal("false")?;
                Ok(Value::Bool(false))
            }
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => {
                self.bump();
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.bump();
                    return Ok(Value::Seq(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.bump() {
                        Some(b',') => continue,
                        Some(b']') => return Ok(Value::Seq(items)),
                        _ => return Err(Error::new("expected `,` or `]` in array")),
                    }
                }
            }
            Some(b'{') => {
                self.bump();
                let mut entries = Vec::with_capacity(8);
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.bump();
                    return Ok(Value::Map(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let value = self.parse_value()?;
                    entries.push((key, value));
                    self.skip_ws();
                    match self.bump() {
                        Some(b',') => continue,
                        Some(b'}') => return Ok(Value::Map(entries)),
                        _ => return Err(Error::new("expected `,` or `}` in object")),
                    }
                }
            }
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            Some(other) => Err(Error::new(format!(
                "unexpected character `{}` at offset {}",
                other as char, self.pos
            ))),
            None => Err(Error::new("unexpected end of input")),
        }
    }

    /// Advances past a run of bytes needing no per-byte handling
    /// (anything but `"` and `\`; the input is already valid UTF-8, so
    /// multi-byte sequences and raw control bytes pass through) and
    /// returns it as a str slice.
    fn take_clean_run(&mut self) -> &'a str {
        let start = self.pos;
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b'"' || b == b'\\' {
                break;
            }
            self.pos += 1;
        }
        // The parser's input came from `from_str`, so byte runs between
        // structural characters are valid UTF-8 by construction.
        std::str::from_utf8(&self.bytes[start..self.pos]).unwrap_or("")
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        // Fast path: the whole string is one clean run — a single copy.
        let run = self.take_clean_run();
        if self.peek() == Some(b'"') {
            self.pos += 1;
            return Ok(run.to_string());
        }
        let mut out = String::from(run);
        loop {
            // `take_clean_run` stops only at `"`, `\` or end of input.
            match self.bump() {
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            let d = self
                                .bump()
                                .and_then(|b| (b as char).to_digit(16))
                                .ok_or_else(|| Error::new("bad \\u escape"))?;
                            code = code * 16 + d;
                        }
                        out.push(
                            char::from_u32(code).ok_or_else(|| Error::new("bad unicode escape"))?,
                        );
                    }
                    _ => return Err(Error::new("bad escape sequence")),
                },
                _ => return Err(Error::new("unterminated string")),
            }
            out.push_str(self.take_clean_run());
        }
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.bump();
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.bump();
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.bump();
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.bump();
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.bump();
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.bump();
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.bump();
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if text.is_empty() || text == "-" {
            return Err(Error::new("invalid number"));
        }
        if is_float {
            text.parse::<f64>()
                .map(Value::F64)
                .map_err(|e| Error::new(format!("bad float `{text}`: {e}")))
        } else if let Some(stripped) = text.strip_prefix('-') {
            stripped
                .parse::<u64>()
                .map_err(|e| Error::new(format!("bad int `{text}`: {e}")))
                .map(|n| Value::I64(-(n as i64)))
        } else {
            text.parse::<u64>()
                .map(Value::U64)
                .map_err(|e| Error::new(format!("bad int `{text}`: {e}")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrips() {
        assert_eq!(to_string(&42u32).unwrap(), "42");
        assert_eq!(from_str::<u32>("42").unwrap(), 42);
        assert_eq!(from_str::<i64>("-3").unwrap(), -3);
        assert_eq!(
            to_string("hi\n\"there\"").unwrap(),
            "\"hi\\n\\\"there\\\"\""
        );
        assert_eq!(from_str::<String>("\"hi\\u0041\"").unwrap(), "hiA");
        let x: f64 = from_str("2.5e3").unwrap();
        assert_eq!(x, 2500.0);
    }

    #[test]
    fn containers_roundtrip() {
        let v = vec![(1u8, "a".to_string()), (2, "b".to_string())];
        let json = to_string(&v).unwrap();
        let back: Vec<(u8, String)> = from_str(&json).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn garbage_rejected() {
        assert!(from_str::<u32>("{not json").is_err());
        assert!(from_str::<u32>("").is_err());
        assert!(from_str::<u32>("42 trailing").is_err());
        assert!(from_str::<Vec<u8>>("[1,2").is_err());
    }

    #[test]
    fn unicode_strings_roundtrip() {
        let s = "héllo → wörld 🎉".to_string();
        let back: String = from_str(&to_string(&s).unwrap()).unwrap();
        assert_eq!(back, s);
    }
}
