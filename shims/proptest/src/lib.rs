//! Offline subset of `proptest`.
//!
//! Supports what this workspace's property tests use: the [`Strategy`]
//! trait with `prop_map`/`prop_filter`, integer-range and regex-literal
//! strategies, tuples, `collection::vec`, `Just`, `prop_oneof!`,
//! `sample::Index`, `ProptestConfig::with_cases`, and the `proptest!`,
//! `prop_assert*!` and `prop_assume!` macros.
//!
//! Cases are generated from a deterministic seed; there is no shrinking —
//! a failing case panics with the standard assertion message.

#![forbid(unsafe_code)]

pub mod strategy {
    //! Core strategy trait and combinators.

    use crate::test_runner::TestRng;
    use rand::Rng;

    /// A boxed generation function (type-erased strategy).
    pub type BoxedGen<T> = Box<dyn Fn(&mut TestRng) -> T>;

    /// Generates values of `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Rejects generated values failing `pred` (bounded retry).
        fn prop_filter<F: Fn(&Self::Value) -> bool>(
            self,
            reason: impl Into<String>,
            pred: F,
        ) -> Filter<Self, F>
        where
            Self: Sized,
        {
            Filter {
                inner: self,
                reason: reason.into(),
                pred,
            }
        }

        /// Type-erases this strategy into a generation closure.
        fn into_gen(self) -> BoxedGen<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(move |rng| self.generate(rng))
        }

        /// Boxes this strategy (API parity with `.boxed()`).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy {
                gen_fn: self.into_gen(),
            }
        }
    }

    /// A heap-allocated, type-erased strategy.
    pub struct BoxedStrategy<T> {
        gen_fn: BoxedGen<T>,
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (self.gen_fn)(rng)
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_filter`].
    pub struct Filter<S, F> {
        inner: S,
        reason: String,
        pred: F,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..10_000 {
                let candidate = self.inner.generate(rng);
                if (self.pred)(&candidate) {
                    return candidate;
                }
            }
            panic!(
                "proptest shim: filter `{}` rejected 10000 candidates",
                self.reason
            )
        }
    }

    /// Always produces a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Uniform choice between type-erased strategies (`prop_oneof!`).
    pub struct Union<T> {
        options: Vec<BoxedGen<T>>,
    }

    impl<T> Union<T> {
        /// Builds a union; panics if empty.
        pub fn new(options: Vec<BoxedGen<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let idx = rng.rng.random_range(0..self.options.len());
            (self.options[idx])(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.rng.random_range(self.start..self.end)
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.rng.random_range(self.clone())
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// String strategies from a regex-literal subset: literal characters,
    /// `\x` escapes, `[...]` classes with ranges, and `{m}` / `{m,n}`
    /// repetition. Anything else panics loudly.
    impl Strategy for &'static str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            generate_from_pattern(self, rng)
        }
    }

    enum Atom {
        Literal(char),
        Class(Vec<char>),
    }

    fn parse_class(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> Vec<char> {
        let mut out = Vec::new();
        let mut prev: Option<char> = None;
        loop {
            let c = chars
                .next()
                .unwrap_or_else(|| panic!("proptest shim: unterminated character class"));
            match c {
                ']' => break,
                '-' => {
                    // Range if both endpoints exist; else literal '-'.
                    match (prev, chars.peek().copied()) {
                        (Some(lo), Some(hi)) if hi != ']' => {
                            chars.next();
                            assert!(lo <= hi, "proptest shim: bad class range {lo}-{hi}");
                            for code in (lo as u32 + 1)..=(hi as u32) {
                                out.push(char::from_u32(code).unwrap());
                            }
                            prev = None;
                        }
                        _ => {
                            out.push('-');
                            prev = Some('-');
                        }
                    }
                }
                '\\' => {
                    let esc = chars
                        .next()
                        .unwrap_or_else(|| panic!("proptest shim: dangling escape in class"));
                    out.push(esc);
                    prev = Some(esc);
                }
                c => {
                    out.push(c);
                    prev = Some(c);
                }
            }
        }
        assert!(!out.is_empty(), "proptest shim: empty character class");
        out
    }

    fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
        let mut chars = pattern.chars().peekable();
        let mut out = String::new();
        while let Some(c) = chars.next() {
            let atom = match c {
                '[' => Atom::Class(parse_class(&mut chars)),
                '\\' => Atom::Literal(
                    chars
                        .next()
                        .unwrap_or_else(|| panic!("proptest shim: dangling escape")),
                ),
                '{' | '}' | '*' | '+' | '?' | '(' | ')' | '|' | '^' | '$' => {
                    panic!("proptest shim: unsupported regex syntax `{c}` in `{pattern}`")
                }
                c => Atom::Literal(c),
            };
            // Optional {m} / {m,n} repetition.
            let (lo, hi) = if chars.peek() == Some(&'{') {
                chars.next();
                let mut spec = String::new();
                for c in chars.by_ref() {
                    if c == '}' {
                        break;
                    }
                    spec.push(c);
                }
                match spec.split_once(',') {
                    Some((m, n)) => (
                        m.trim()
                            .parse::<usize>()
                            .expect("bad repetition lower bound"),
                        n.trim()
                            .parse::<usize>()
                            .expect("bad repetition upper bound"),
                    ),
                    None => {
                        let m = spec.trim().parse::<usize>().expect("bad repetition count");
                        (m, m)
                    }
                }
            } else {
                (1, 1)
            };
            let count = if lo == hi {
                lo
            } else {
                rng.rng.random_range(lo..=hi)
            };
            for _ in 0..count {
                match &atom {
                    Atom::Literal(c) => out.push(*c),
                    Atom::Class(options) => {
                        out.push(options[rng.rng.random_range(0..options.len())])
                    }
                }
            }
        }
        out
    }

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident : $idx:tt),+)),+) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )+};
    }
    impl_tuple_strategy!((A: 0), (A: 0, B: 1), (A: 0, B: 1, C: 2), (A: 0, B: 1, C: 2, D: 3));
}

pub mod arbitrary {
    //! `any::<T>()` support.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// Types with a canonical strategy.
    pub trait Arbitrary: Sized {
        /// Draws one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.rng.random::<$t>()
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool);

    impl<T: Arbitrary, const N: usize> Arbitrary for [T; N] {
        fn arbitrary(rng: &mut TestRng) -> Self {
            core::array::from_fn(|_| T::arbitrary(rng))
        }
    }

    impl Arbitrary for crate::sample::Index {
        fn arbitrary(rng: &mut TestRng) -> Self {
            crate::sample::Index(rng.rng.random::<usize>())
        }
    }

    /// The `any::<T>()` strategy.
    pub struct Any<T>(core::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// Canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(core::marker::PhantomData)
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// A strategy for `Vec<T>` with length drawn from a range.
    pub struct VecStrategy<S> {
        element: S,
        min: usize,
        max_exclusive: usize,
    }

    /// Sizes accepted by [`vec`].
    pub trait IntoSizeRange {
        /// Lower bound and exclusive upper bound.
        fn bounds(self) -> (usize, usize);
    }

    impl IntoSizeRange for core::ops::Range<usize> {
        fn bounds(self) -> (usize, usize) {
            (self.start, self.end)
        }
    }

    impl IntoSizeRange for core::ops::RangeInclusive<usize> {
        fn bounds(self) -> (usize, usize) {
            (*self.start(), *self.end() + 1)
        }
    }

    impl IntoSizeRange for usize {
        fn bounds(self) -> (usize, usize) {
            (self, self + 1)
        }
    }

    /// `proptest::collection::vec(element, size_range)`.
    pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> VecStrategy<S> {
        let (min, max_exclusive) = size.bounds();
        assert!(min < max_exclusive, "empty vec size range");
        VecStrategy {
            element,
            min,
            max_exclusive,
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.rng.random_range(self.min..self.max_exclusive);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod sample {
    //! Index sampling (`prop::sample::Index`).

    /// An abstract index into a collection of unknown length.
    #[derive(Debug, Clone, Copy)]
    pub struct Index(pub(crate) usize);

    impl Index {
        /// Resolves against a concrete length.
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on empty collection");
            self.0 % len
        }
    }
}

pub mod test_runner {
    //! Deterministic case runner plumbing used by the `proptest!` macro.

    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// The generator handed to strategies.
    pub struct TestRng {
        /// Underlying deterministic generator.
        pub rng: StdRng,
    }

    impl TestRng {
        /// A fixed-seed rng: property tests are reproducible run-to-run.
        pub fn deterministic() -> Self {
            TestRng {
                rng: StdRng::seed_from_u64(0x70_72_6f_70_74_65_73_74), // "proptest"
            }
        }
    }

    /// Runner configuration.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of cases to execute per property.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    impl ProptestConfig {
        /// Config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    /// Outcome of one generated case.
    pub enum CaseOutcome {
        /// Case ran to completion.
        Pass,
        /// `prop_assume!` rejected the inputs.
        Reject,
    }
}

/// The `prop::` alias used by `use proptest::prelude::*` call sites.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    /// `prop::…` paths (e.g. `prop::sample::Index`).
    pub mod prop {
        pub use crate::collection;
        pub use crate::sample;
        pub use crate::strategy;
    }
}

/// Runs each property over deterministic generated cases.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_fns! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal: expands each `fn` in a `proptest!` block.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ( ($cfg:expr) ) => {};
    (
        ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident( $($argname:ident in $strat:expr),* $(,)? ) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            let mut __rng = $crate::test_runner::TestRng::deterministic();
            let mut __executed: u32 = 0;
            let mut __attempts: u32 = 0;
            while __executed < __config.cases {
                __attempts += 1;
                assert!(
                    __attempts <= __config.cases.saturating_mul(200),
                    "proptest shim: too many rejected cases in {}",
                    stringify!($name),
                );
                $(let $argname = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)*
                // The closure is what lets `prop_assume!` early-return a
                // Reject out of `$body`; inlining the block would break it.
                #[allow(clippy::redundant_closure_call)]
                let __outcome = (move || -> $crate::test_runner::CaseOutcome {
                    $body
                    $crate::test_runner::CaseOutcome::Pass
                })();
                if let $crate::test_runner::CaseOutcome::Pass = __outcome {
                    __executed += 1;
                }
            }
        }
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
}

/// Uniform choice between strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ( $($strat:expr),+ $(,)? ) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::into_gen($strat)),+
        ])
    };
}

/// Asserts inside a property (panics on failure; no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Equality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => { assert_eq!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)+) => { assert_eq!($left, $right, $($fmt)+) };
}

/// Inequality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => { assert_ne!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)+) => { assert_ne!($left, $right, $($fmt)+) };
}

/// Rejects the current case when the assumption fails.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return $crate::test_runner::CaseOutcome::Reject;
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return $crate::test_runner::CaseOutcome::Reject;
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn regex_subset_generates_expected_shapes() {
        let mut rng = crate::test_runner::TestRng::deterministic();
        for _ in 0..100 {
            let s = Strategy::generate(&"[a-z0-9]{1,8}", &mut rng);
            assert!((1..=8).contains(&s.len()));
            assert!(s
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit()));

            let v = Strategy::generate(&"[0-9]\\.[0-9]{1,2}\\.[0-9]-[0-9]{1,3}", &mut rng);
            let parts: Vec<&str> = v.split('.').collect();
            assert_eq!(parts.len(), 3, "version-ish string: {v}");
            assert!(v.contains('-'));
        }
    }

    proptest! {
        #[test]
        fn vec_lengths_respect_range(v in crate::collection::vec(any::<u8>(), 2..5)) {
            prop_assert!(v.len() >= 2 && v.len() < 5);
        }

        #[test]
        fn assume_rejects(x in any::<u8>()) {
            prop_assume!(x.is_multiple_of(2));
            prop_assert_eq!(x % 2, 0);
        }

        #[test]
        fn oneof_and_map(x in prop_oneof![
            (0u32..10).prop_map(|v| v * 2),
            Just(101u32),
        ]) {
            prop_assert!(x == 101 || (x % 2 == 0 && x < 20));
        }
    }
}
