//! Offline subset of the `criterion` benchmarking API.
//!
//! Provides `Criterion`, benchmark groups, `BenchmarkId`, `Throughput`,
//! `BatchSize`, `black_box`, and the `criterion_group!`/`criterion_main!`
//! macros. Measurement is a simple calibrated timing loop (warm-up, then
//! a fixed measurement window) printing mean ± stddev per iteration —
//! enough to compare implementations on this machine without the real
//! crate's statistics machinery.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How `iter_batched` treats its per-iteration setup output.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small inputs: batch many per measurement.
    SmallInput,
    /// Large inputs: fewer per batch.
    LargeInput,
    /// Setup re-runs for every single iteration.
    PerIteration,
}

/// Throughput annotation for a benchmark.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// A benchmark identifier (`group/function/parameter`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function/parameter` id.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function.into(), parameter),
        }
    }

    /// Id from the parameter alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// The per-benchmark timing driver.
pub struct Bencher {
    measurement_window: Duration,
    /// Smoke mode (`--test`): run each routine exactly once, no timing
    /// loop — mirrors real criterion's `cargo bench -- --test`.
    test_mode: bool,
    /// Collected per-iteration nanosecond samples.
    samples: Vec<f64>,
}

impl Bencher {
    /// Times `routine` repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if self.test_mode {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed().as_nanos() as f64);
            return;
        }
        // Warm-up and batch-size calibration.
        let calibration_start = Instant::now();
        let mut calibration_iters = 0u64;
        while calibration_start.elapsed() < self.measurement_window / 10 {
            black_box(routine());
            calibration_iters += 1;
            if calibration_iters >= 1_000_000 {
                break;
            }
        }
        let batch = calibration_iters.max(1);
        let deadline = Instant::now() + self.measurement_window;
        while Instant::now() < deadline {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let nanos = start.elapsed().as_nanos() as f64 / batch as f64;
            self.samples.push(nanos);
        }
        if self.samples.is_empty() {
            // Pathologically slow routine: record the single calibration run.
            self.samples
                .push(calibration_start.elapsed().as_nanos() as f64 / batch as f64);
        }
    }

    /// Times `routine` with fresh setup output per batch.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        if self.test_mode {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.samples.push(start.elapsed().as_nanos() as f64);
            return;
        }
        let deadline = Instant::now() + self.measurement_window;
        let mut guard = 0u32;
        while Instant::now() < deadline || self.samples.is_empty() {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.samples.push(start.elapsed().as_nanos() as f64);
            guard += 1;
            if guard > 5_000_000 {
                break;
            }
        }
    }
}

fn human_nanos(nanos: f64) -> String {
    if nanos < 1_000.0 {
        format!("{nanos:.1} ns")
    } else if nanos < 1_000_000.0 {
        format!("{:.2} µs", nanos / 1_000.0)
    } else if nanos < 1_000_000_000.0 {
        format!("{:.2} ms", nanos / 1_000_000.0)
    } else {
        format!("{:.2} s", nanos / 1_000_000_000.0)
    }
}

fn report(name: &str, samples: &[f64], throughput: Option<Throughput>) {
    if samples.is_empty() {
        println!("{name:<48} (no samples)");
        return;
    }
    let mean = samples.iter().sum::<f64>() / samples.len() as f64;
    let var = samples.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / samples.len() as f64;
    let std = var.sqrt();
    let mut line = format!(
        "{name:<48} time: {} ± {}",
        human_nanos(mean),
        human_nanos(std)
    );
    if let Some(Throughput::Bytes(bytes)) = throughput {
        let gib_s = bytes as f64 / mean; // bytes per nanosecond == GiB-ish/s
        line.push_str(&format!("   thrpt: {gib_s:.3} GB/s"));
    }
    if let Some(Throughput::Elements(n)) = throughput {
        let elems_s = n as f64 / mean * 1e9;
        line.push_str(&format!("   thrpt: {elems_s:.0} elem/s"));
    }
    println!("{line}");
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a Criterion,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the throughput annotation for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) {
        self.throughput = Some(throughput);
    }

    /// Shrinks or grows the per-benchmark sample count (accepted for API
    /// parity; the shim's timing window is fixed).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl std::fmt::Display, mut f: F) {
        let mut bencher = Bencher {
            measurement_window: self.criterion.measurement_window,
            test_mode: self.criterion.test_mode,
            samples: Vec::new(),
        };
        f(&mut bencher);
        report(
            &format!("{}/{}", self.name, id),
            &bencher.samples,
            self.throughput,
        );
    }

    /// Runs one parameterized benchmark in this group.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) {
        let mut bencher = Bencher {
            measurement_window: self.criterion.measurement_window,
            test_mode: self.criterion.test_mode,
            samples: Vec::new(),
        };
        f(&mut bencher, input);
        report(
            &format!("{}/{}", self.name, id),
            &bencher.samples,
            self.throughput,
        );
    }

    /// Finishes the group.
    pub fn finish(self) {}
}

/// The benchmark harness entry point.
pub struct Criterion {
    measurement_window: Duration,
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            // Keep whole-suite runtime sane: the real criterion spends
            // ~5s per benchmark; the shim's window is deliberately small.
            measurement_window: Duration::from_millis(300),
            // `cargo bench -- --test`: smoke every benchmark with a
            // single iteration instead of the timing loop.
            test_mode: std::env::args().any(|a| a == "--test"),
        }
    }
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            criterion: self,
            throughput: None,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut bencher = Bencher {
            measurement_window: self.measurement_window,
            test_mode: self.test_mode,
            samples: Vec::new(),
        };
        f(&mut bencher);
        report(name, &bencher.samples, None);
        self
    }

    /// Accepted for API parity.
    pub fn sample_size(self, _n: usize) -> Self {
        self
    }

    /// Runs the configured groups (invoked by `criterion_main!`).
    pub fn final_summary(&self) {}
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $cfg;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
