//! Offline shim for `rand_chacha`: a real ChaCha12 keystream generator
//! implementing the local `rand` shim's [`RngCore`]/[`SeedableRng`].
//!
//! Deterministic per seed, independent streams per key — exactly what the
//! release-stream simulator needs.

#![forbid(unsafe_code)]

use rand::{RngCore, SeedableRng};

const ROUNDS: usize = 12;

/// A ChaCha12-based deterministic generator.
#[derive(Debug, Clone)]
pub struct ChaCha12Rng {
    key: [u32; 8],
    counter: u64,
    buffer: [u32; 16],
    index: usize,
}

#[inline]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha12Rng {
    fn refill(&mut self) {
        let mut state = [0u32; 16];
        state[0] = 0x6170_7865;
        state[1] = 0x3320_646e;
        state[2] = 0x7962_2d32;
        state[3] = 0x6b20_6574;
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter as u32;
        state[13] = (self.counter >> 32) as u32;
        state[14] = 0;
        state[15] = 0;
        let input = state;
        for _ in 0..ROUNDS / 2 {
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (out, inp) in state.iter_mut().zip(input.iter()) {
            *out = out.wrapping_add(*inp);
        }
        self.buffer = state;
        self.index = 0;
        self.counter = self.counter.wrapping_add(1);
    }
}

impl RngCore for ChaCha12Rng {
    fn next_u32(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let word = self.buffer[self.index];
        self.index += 1;
        word
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        (hi << 32) | lo
    }
}

impl SeedableRng for ChaCha12Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (i, chunk) in seed.chunks_exact(4).enumerate() {
            key[i] = u32::from_le_bytes(chunk.try_into().unwrap());
        }
        ChaCha12Rng {
            key,
            counter: 0,
            buffer: [0; 16],
            index: 16, // force refill on first draw
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_and_seed_sensitive() {
        let mut a = ChaCha12Rng::seed_from_u64(42);
        let mut b = ChaCha12Rng::seed_from_u64(42);
        let mut c = ChaCha12Rng::seed_from_u64(43);
        let xs: Vec<u32> = (0..32).map(|_| a.next_u32()).collect();
        let ys: Vec<u32> = (0..32).map(|_| b.next_u32()).collect();
        let zs: Vec<u32> = (0..32).map(|_| c.next_u32()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn unit_floats() {
        let mut rng = ChaCha12Rng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
        }
    }
}
