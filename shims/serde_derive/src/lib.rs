//! Derive macros for the local serde shim.
//!
//! `syn`/`quote` are unavailable offline, so this parses the item's
//! `TokenStream` directly. It supports exactly the shapes this workspace
//! uses: plain (non-generic) structs with named fields, tuple structs,
//! and enums with unit / tuple / struct variants. `#[serde(default)]` on
//! a named field is honoured: a missing key deserializes to the field
//! type's `Default` instead of erroring, which is how evolving wire
//! formats stay readable by both old and new peers. Other serde
//! attributes such as `#[serde(transparent)]` are accepted and ignored —
//! newtype structs already serialize transparently here.
//!
//! Generated encoding (matches real serde's externally-tagged defaults):
//! named struct -> object; newtype struct -> inner value; tuple struct
//! -> array; unit variant -> `"Variant"`; newtype variant ->
//! `{"Variant": value}`; tuple variant -> `{"Variant": [..]}`; struct
//! variant -> `{"Variant": {..}}`.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// One named field: its identifier and whether `#[serde(default)]` was
/// present.
#[derive(Debug)]
struct NamedField {
    name: String,
    has_default: bool,
}

#[derive(Debug)]
enum Fields {
    Unit,
    Tuple(usize),
    Named(Vec<NamedField>),
}

#[derive(Debug)]
struct Variant {
    name: String,
    fields: Fields,
}

#[derive(Debug)]
enum Item {
    Struct {
        name: String,
        fields: Fields,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

fn parse_item(input: TokenStream) -> Item {
    let mut tokens = input.into_iter().peekable();
    // Skip attributes and visibility.
    loop {
        match tokens.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                tokens.next();
                tokens.next(); // the [...] group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                tokens.next();
                if let Some(TokenTree::Group(g)) = tokens.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        tokens.next(); // pub(crate) etc.
                    }
                }
            }
            _ => break,
        }
    }
    let keyword = match tokens.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde shim derive: expected struct/enum, got {other:?}"),
    };
    let name = match tokens.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde shim derive: expected type name, got {other:?}"),
    };
    if let Some(TokenTree::Punct(p)) = tokens.peek() {
        if p.as_char() == '<' {
            panic!("serde shim derive: generic types are not supported (deriving {name})");
        }
    }
    match keyword.as_str() {
        "struct" => {
            let fields = match tokens.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Fields::Named(parse_named_fields(g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Fields::Tuple(count_tuple_fields(g.stream()))
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ';' => Fields::Unit,
                other => panic!("serde shim derive: unexpected struct body {other:?}"),
            };
            Item::Struct { name, fields }
        }
        "enum" => {
            let body = match tokens.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
                other => panic!("serde shim derive: unexpected enum body {other:?}"),
            };
            Item::Enum {
                name,
                variants: parse_variants(body),
            }
        }
        other => panic!("serde shim derive: cannot derive for `{other}`"),
    }
}

/// Splits a token sequence on top-level commas, tracking `<`/`>` depth so
/// generic arguments do not split (delimited groups are already atomic).
fn split_top_level(stream: TokenStream) -> Vec<Vec<TokenTree>> {
    let mut chunks = vec![Vec::new()];
    let mut angle_depth = 0i32;
    for tree in stream {
        match &tree {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                chunks.push(Vec::new());
                continue;
            }
            _ => {}
        }
        chunks.last_mut().unwrap().push(tree);
    }
    chunks.retain(|c| !c.is_empty());
    chunks
}

/// Strips leading attributes and visibility from a field/variant chunk.
fn strip_attrs_and_vis(chunk: &[TokenTree]) -> &[TokenTree] {
    let mut i = 0;
    while i < chunk.len() {
        match &chunk[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => i += 2,
            TokenTree::Ident(id) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = chunk.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            _ => break,
        }
    }
    &chunk[i..]
}

/// True when the chunk's leading attributes contain `#[serde(default)]`
/// (alone or among other serde arguments).
fn has_serde_default(chunk: &[TokenTree]) -> bool {
    let mut i = 0;
    while i + 1 < chunk.len() {
        let (TokenTree::Punct(p), TokenTree::Group(attr)) = (&chunk[i], &chunk[i + 1]) else {
            break;
        };
        if p.as_char() != '#' {
            break;
        }
        let mut inner = attr.stream().into_iter();
        if let (Some(TokenTree::Ident(id)), Some(TokenTree::Group(args))) =
            (inner.next(), inner.next())
        {
            if id.to_string() == "serde"
                && args
                    .stream()
                    .into_iter()
                    .any(|t| matches!(&t, TokenTree::Ident(a) if a.to_string() == "default"))
            {
                return true;
            }
        }
        i += 2;
    }
    false
}

fn parse_named_fields(stream: TokenStream) -> Vec<NamedField> {
    split_top_level(stream)
        .iter()
        .map(|chunk| {
            let has_default = has_serde_default(chunk);
            let chunk = strip_attrs_and_vis(chunk);
            match chunk.first() {
                Some(TokenTree::Ident(id)) => NamedField {
                    name: id.to_string(),
                    has_default,
                },
                other => panic!("serde shim derive: expected field name, got {other:?}"),
            }
        })
        .collect()
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    split_top_level(stream).len()
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    split_top_level(stream)
        .iter()
        .map(|chunk| {
            let chunk = strip_attrs_and_vis(chunk);
            let name = match chunk.first() {
                Some(TokenTree::Ident(id)) => id.to_string(),
                other => panic!("serde shim derive: expected variant name, got {other:?}"),
            };
            let fields = match chunk.get(1) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Fields::Named(parse_named_fields(g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Fields::Tuple(count_tuple_fields(g.stream()))
                }
                _ => Fields::Unit,
            };
            Variant { name, fields }
        })
        .collect()
}

// ---------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Unit => "::serde::Value::Null".to_string(),
                Fields::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
                Fields::Tuple(n) => {
                    let items: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                        .collect();
                    format!("::serde::Value::Seq(vec![{}])", items.join(", "))
                }
                Fields::Named(names) => {
                    let items: Vec<String> = names
                        .iter()
                        .map(|f| {
                            let f = &f.name;
                            format!(
                                "(\"{f}\".to_string(), ::serde::Serialize::to_value(&self.{f}))"
                            )
                        })
                        .collect();
                    format!("::serde::Value::Map(vec![{}])", items.join(", "))
                }
            };
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vname = &v.name;
                    match &v.fields {
                        Fields::Unit => format!(
                            "{name}::{vname} => ::serde::Value::Str(\"{vname}\".to_string()),"
                        ),
                        Fields::Tuple(1) => format!(
                            "{name}::{vname}(f0) => ::serde::Value::Map(vec![(\"{vname}\".to_string(), ::serde::Serialize::to_value(f0))]),"
                        ),
                        Fields::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                            let items: Vec<String> = (0..*n)
                                .map(|i| format!("::serde::Serialize::to_value(f{i})"))
                                .collect();
                            format!(
                                "{name}::{vname}({}) => ::serde::Value::Map(vec![(\"{vname}\".to_string(), ::serde::Value::Seq(vec![{}]))]),",
                                binds.join(", "),
                                items.join(", ")
                            )
                        }
                        Fields::Named(fields) => {
                            let binds = fields
                                .iter()
                                .map(|f| f.name.clone())
                                .collect::<Vec<_>>()
                                .join(", ");
                            let items: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    let f = &f.name;
                                    format!(
                                        "(\"{f}\".to_string(), ::serde::Serialize::to_value({f}))"
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vname} {{ {binds} }} => ::serde::Value::Map(vec![(\"{vname}\".to_string(), ::serde::Value::Map(vec![{}]))]),",
                                items.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         match self {{\n{}\n}}\n\
                     }}\n\
                 }}",
                arms.join("\n")
            )
        }
    }
}

fn named_field_extractors(type_name: &str, source: &str, fields: &[NamedField]) -> String {
    fields
        .iter()
        .map(|field| {
            let f = &field.name;
            let missing = if field.has_default {
                "::core::default::Default::default()".to_string()
            } else {
                format!(
                    "return Err(::serde::DeError::new(\n\
                         format!(\"missing field `{f}` in {type_name}\")))"
                )
            };
            format!(
                "{f}: match {source}.get(\"{f}\") {{\n\
                     Some(v) => ::serde::Deserialize::from_value(v)?,\n\
                     None => {missing},\n\
                 }},"
            )
        })
        .collect::<Vec<_>>()
        .join("\n")
}

fn gen_deserialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Unit => format!("{{ let _ = value; Ok({name}) }}"),
                Fields::Tuple(1) => format!("Ok({name}(::serde::Deserialize::from_value(value)?))"),
                Fields::Tuple(n) => {
                    let items: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                        .collect();
                    format!(
                        "match value {{\n\
                             ::serde::Value::Seq(items) if items.len() == {n} =>\n\
                                 Ok({name}({})),\n\
                             other => Err(::serde::DeError::expected(\"{n}-element array for {name}\", other)),\n\
                         }}",
                        items.join(", ")
                    )
                }
                Fields::Named(names) => {
                    let extract = named_field_extractors(name, "value", names);
                    format!(
                        "match value {{\n\
                             ::serde::Value::Map(_) => Ok({name} {{\n{extract}\n}}),\n\
                             other => Err(::serde::DeError::expected(\"object for {name}\", other)),\n\
                         }}"
                    )
                }
            };
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(value: &::serde::Value) -> Result<Self, ::serde::DeError> {{\n\
                         {body}\n\
                     }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.fields, Fields::Unit))
                .map(|v| format!("\"{0}\" => Ok({name}::{0}),", v.name))
                .collect();
            let tagged_arms: Vec<String> = variants
                .iter()
                .filter_map(|v| {
                    let vname = &v.name;
                    match &v.fields {
                        Fields::Unit => None,
                        Fields::Tuple(1) => Some(format!(
                            "\"{vname}\" => Ok({name}::{vname}(::serde::Deserialize::from_value(payload)?)),"
                        )),
                        Fields::Tuple(n) => {
                            let items: Vec<String> = (0..*n)
                                .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                                .collect();
                            Some(format!(
                                "\"{vname}\" => match payload {{\n\
                                     ::serde::Value::Seq(items) if items.len() == {n} =>\n\
                                         Ok({name}::{vname}({})),\n\
                                     other => Err(::serde::DeError::expected(\"{n}-element array for {name}::{vname}\", other)),\n\
                                 }},",
                                items.join(", ")
                            ))
                        }
                        Fields::Named(fields) => {
                            let extract = named_field_extractors(
                                &format!("{name}::{vname}"),
                                "payload",
                                fields,
                            );
                            Some(format!(
                                "\"{vname}\" => match payload {{\n\
                                     ::serde::Value::Map(_) => Ok({name}::{vname} {{\n{extract}\n}}),\n\
                                     other => Err(::serde::DeError::expected(\"object for {name}::{vname}\", other)),\n\
                                 }},"
                            ))
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(value: &::serde::Value) -> Result<Self, ::serde::DeError> {{\n\
                         match value {{\n\
                             ::serde::Value::Str(tag) => match tag.as_str() {{\n\
                                 {unit}\n\
                                 other => Err(::serde::DeError::new(format!(\"unknown variant `{{other}}` of {name}\"))),\n\
                             }},\n\
                             ::serde::Value::Map(entries) if entries.len() == 1 => {{\n\
                                 let (tag, payload) = &entries[0];\n\
                                 match tag.as_str() {{\n\
                                     {tagged}\n\
                                     other => Err(::serde::DeError::new(format!(\"unknown variant `{{other}}` of {name}\"))),\n\
                                 }}\n\
                             }}\n\
                             other => Err(::serde::DeError::expected(\"variant of {name}\", other)),\n\
                         }}\n\
                     }}\n\
                 }}",
                unit = unit_arms.join("\n"),
                tagged = tagged_arms.join("\n"),
            )
        }
    }
}

/// Derives the shim's `Serialize` trait.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("serde shim derive: generated Serialize impl must parse")
}

/// Derives the shim's `Deserialize` trait.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("serde shim derive: generated Deserialize impl must parse")
}
