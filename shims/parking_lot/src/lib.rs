//! Offline shim for `parking_lot`: non-poisoning [`Mutex`]/[`RwLock`]
//! wrappers over `std::sync` with parking_lot's infallible lock API.
//!
//! With the `lock-sanitizer` feature enabled, every blocking
//! acquisition is additionally recorded into a process-global
//! **lock-order graph**: an edge `A → B` means some thread acquired `B`
//! while holding `A`. A cycle in that graph is a potential deadlock —
//! two threads can interleave the cyclic acquisitions and block each
//! other forever. See the [`sanitizer`] module for inspection
//! (`cycles()`, `edges()`, `reset()`). Locks are registered under
//! human-readable names via [`Mutex::named`]/[`RwLock::named`], which
//! should mirror the static `lock-order` manifest consumed by
//! `cia-lint` — the static pass proves the order where heuristics can
//! see it, the sanitizer proves it across real interleavings.
//!
//! Recording happens *before* blocking, so an actual deadlock still
//! leaves its edges in the graph. `try_lock`/`try_*` variants record no
//! edges (they cannot deadlock) but do count as held while live, so
//! later blocking acquisitions under them are ordered correctly.
//!
//! The same feature also feeds a **vector-clock happens-before race
//! detector** (the [`racecheck`] module): every acquisition joins the
//! lock's release clock into the acquiring thread and every release
//! publishes the releaser's clock, so reads/writes of fields wrapped in
//! [`RaceCell`] can be checked for ordering through *instrumented*
//! synchronization only. `racecheck::races()` empty after a run means
//! every audited access pair was ordered by a lock, channel, or
//! fork/join edge the shims actually recorded — the dynamic complement
//! to `cia-lint`'s static lock-order manifest.

#![forbid(unsafe_code)]

use std::ops::{Deref, DerefMut};
use std::sync;

#[cfg(feature = "lock-sanitizer")]
pub mod racecheck;
#[cfg(feature = "lock-sanitizer")]
pub mod sanitizer;

#[cfg(feature = "lock-sanitizer")]
use sanitizer::{HeldToken, LazyLockId};

/// A mutual-exclusion lock that never poisons.
#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: sync::Mutex<T>,
    #[cfg(feature = "lock-sanitizer")]
    id: LazyLockId,
}

/// Guard for [`Mutex`].
///
/// `_held` is declared first so it drops before the inner guard: the
/// sanitizer records the release (and publishes the happens-before
/// clock) while the real lock is still held.
#[derive(Debug)]
pub struct MutexGuard<'a, T> {
    #[cfg(feature = "lock-sanitizer")]
    _held: HeldToken,
    inner: sync::MutexGuard<'a, T>,
}

impl<T> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T> Mutex<T> {
    /// Wraps a value.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
            #[cfg(feature = "lock-sanitizer")]
            id: LazyLockId::new(),
        }
    }

    /// Registers this lock under a human-readable name in the sanitizer
    /// graph (no-op without the `lock-sanitizer` feature). Builder
    /// style: `Mutex::new(v).named("pins")`.
    #[must_use]
    pub fn named(self, name: &'static str) -> Self {
        #[cfg(feature = "lock-sanitizer")]
        sanitizer::register_name(self.id.get(), name);
        #[cfg(not(feature = "lock-sanitizer"))]
        let _ = name;
        self
    }

    /// Acquires the lock (recovers from poisoning).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        #[cfg(feature = "lock-sanitizer")]
        let _held = sanitizer::enter(self.id.get());
        let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        // Happens-before join only after the lock is truly held — joining
        // before blocking would miss the release that let us in.
        #[cfg(feature = "lock-sanitizer")]
        racecheck::lock_acquired(self.id.get());
        MutexGuard {
            #[cfg(feature = "lock-sanitizer")]
            _held,
            inner,
        }
    }

    /// Tries to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        let inner = match self.inner.try_lock() {
            Ok(guard) => guard,
            Err(sync::TryLockError::Poisoned(e)) => e.into_inner(),
            Err(sync::TryLockError::WouldBlock) => return None,
        };
        Some(MutexGuard {
            #[cfg(feature = "lock-sanitizer")]
            _held: sanitizer::enter_quiet(self.id.get()),
            inner,
        })
    }

    /// Consumes the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A readers-writer lock that never poisons.
#[derive(Debug, Default)]
pub struct RwLock<T> {
    inner: sync::RwLock<T>,
    #[cfg(feature = "lock-sanitizer")]
    id: LazyLockId,
}

/// Read guard for [`RwLock`]. (`_held` first — see [`MutexGuard`].)
#[derive(Debug)]
pub struct RwLockReadGuard<'a, T> {
    #[cfg(feature = "lock-sanitizer")]
    _held: HeldToken,
    inner: sync::RwLockReadGuard<'a, T>,
}

impl<T> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

/// Write guard for [`RwLock`]. (`_held` first — see [`MutexGuard`].)
#[derive(Debug)]
pub struct RwLockWriteGuard<'a, T> {
    #[cfg(feature = "lock-sanitizer")]
    _held: HeldToken,
    inner: sync::RwLockWriteGuard<'a, T>,
}

impl<T> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T> RwLock<T> {
    /// Wraps a value.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
            #[cfg(feature = "lock-sanitizer")]
            id: LazyLockId::new(),
        }
    }

    /// Registers this lock under a human-readable name in the sanitizer
    /// graph (no-op without the `lock-sanitizer` feature). Builder
    /// style: `RwLock::new(v).named("inner")`.
    #[must_use]
    pub fn named(self, name: &'static str) -> Self {
        #[cfg(feature = "lock-sanitizer")]
        sanitizer::register_name(self.id.get(), name);
        #[cfg(not(feature = "lock-sanitizer"))]
        let _ = name;
        self
    }

    /// Acquires a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        #[cfg(feature = "lock-sanitizer")]
        let _held = sanitizer::enter(self.id.get());
        let inner = self.inner.read().unwrap_or_else(|e| e.into_inner());
        #[cfg(feature = "lock-sanitizer")]
        racecheck::lock_acquired(self.id.get());
        RwLockReadGuard {
            #[cfg(feature = "lock-sanitizer")]
            _held,
            inner,
        }
    }

    /// Acquires an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        #[cfg(feature = "lock-sanitizer")]
        let _held = sanitizer::enter(self.id.get());
        let inner = self.inner.write().unwrap_or_else(|e| e.into_inner());
        #[cfg(feature = "lock-sanitizer")]
        racecheck::lock_acquired(self.id.get());
        RwLockWriteGuard {
            #[cfg(feature = "lock-sanitizer")]
            _held,
            inner,
        }
    }

    /// Tries to acquire a shared read lock without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        let inner = match self.inner.try_read() {
            Ok(guard) => guard,
            Err(sync::TryLockError::Poisoned(e)) => e.into_inner(),
            Err(sync::TryLockError::WouldBlock) => return None,
        };
        Some(RwLockReadGuard {
            #[cfg(feature = "lock-sanitizer")]
            _held: sanitizer::enter_quiet(self.id.get()),
            inner,
        })
    }

    /// Consumes the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

/// A plain value whose reads and writes are audited by the
/// happens-before race detector.
///
/// Without the `lock-sanitizer` feature this is a zero-cost newtype.
/// With it, [`get`](RaceCell::get) reports a read and
/// [`get_mut`](RaceCell::get_mut)/[`set`](RaceCell::set) report a write
/// to [`racecheck`], which convicts any pair of accesses not ordered by
/// an *instrumented* synchronization chain (shim locks, shim channels,
/// instrumented fork/join). Rust's borrow rules already forbid true
/// data races on the value itself — the cell audits that the recorded
/// happens-before graph is sufficient, i.e. that the code's
/// synchronization story matches what the shims can see.
#[derive(Debug, Default)]
pub struct RaceCell<T> {
    value: T,
    #[cfg(feature = "lock-sanitizer")]
    id: LazyLockId,
}

impl<T> RaceCell<T> {
    /// Wraps a value.
    pub const fn new(value: T) -> Self {
        RaceCell {
            value,
            #[cfg(feature = "lock-sanitizer")]
            id: LazyLockId::new(),
        }
    }

    /// Registers this cell under a human-readable name in race reports
    /// (no-op without the `lock-sanitizer` feature). Builder style:
    /// `RaceCell::new(v).named("retired")`.
    #[must_use]
    pub fn named(self, name: &'static str) -> Self {
        #[cfg(feature = "lock-sanitizer")]
        racecheck::register_cell_name(self.id.get(), name);
        #[cfg(not(feature = "lock-sanitizer"))]
        let _ = name;
        self
    }

    /// Reads the value (recorded as an audited read).
    pub fn get(&self) -> &T {
        #[cfg(feature = "lock-sanitizer")]
        racecheck::cell_read(self.id.get());
        &self.value
    }

    /// Mutable access (recorded as an audited write).
    pub fn get_mut(&mut self) -> &mut T {
        #[cfg(feature = "lock-sanitizer")]
        racecheck::cell_write(self.id.get());
        &mut self.value
    }

    /// Replaces the value (recorded as an audited write).
    pub fn set(&mut self, value: T) {
        #[cfg(feature = "lock-sanitizer")]
        racecheck::cell_write(self.id.get());
        self.value = value;
    }

    /// Consumes the cell, returning the value (not recorded — by-value
    /// moves are ownership transfers, which the borrow checker orders).
    pub fn into_inner(self) -> T {
        self.value
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basics() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basics() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
    }

    #[test]
    fn try_lock_contended() {
        let m = Mutex::new(0);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }
}
