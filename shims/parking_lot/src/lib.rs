//! Offline shim for `parking_lot`: non-poisoning [`Mutex`]/[`RwLock`]
//! wrappers over `std::sync` with parking_lot's infallible lock API.

#![forbid(unsafe_code)]

use std::sync;

/// A mutual-exclusion lock that never poisons.
#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: sync::Mutex<T>,
}

/// Guard for [`Mutex`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Wraps a value.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Acquires the lock (recovers from poisoning).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Tries to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(guard),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Consumes the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A readers-writer lock that never poisons.
#[derive(Debug, Default)]
pub struct RwLock<T> {
    inner: sync::RwLock<T>,
}

/// Read guard for [`RwLock`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Write guard for [`RwLock`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Wraps a value.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Acquires a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Consumes the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basics() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basics() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
    }
}
