//! Vector-clock happens-before race detector.
//!
//! Every thread that touches an instrumented primitive gets a **vector
//! clock** `C_t` (one logical-time slot per thread, lazily grown).
//! Synchronization primitives carry clocks of their own and transfer
//! ordering between threads:
//!
//! * **lock release → acquire**: releasing joins the thread clock into
//!   the lock's clock and ticks the releaser; acquiring joins the
//!   lock's clock into the acquirer. Anything the releaser did before
//!   unlock happens-before anything the acquirer does after lock.
//! * **channel send → recv**: sending joins into the channel's clock
//!   and ticks the sender; receiving joins the channel's clock into the
//!   receiver. Conservative: a receiver inherits the union of *all*
//!   prior sends, which can only under-report races, never invent one.
//! * **fork / join**: spawning snapshots the parent clock into the
//!   child; joining merges the child's final clock back. Recorded by
//!   the instrumented `crossbeam::thread::scope` wrappers.
//!
//! Audited shared fields are wrapped in [`crate::RaceCell`], whose
//! accessors report reads/writes here. An access **races** a prior
//! access when the prior thread's recorded epoch is *not* contained in
//! the current thread's clock — no chain of instrumented
//! synchronization orders the two. That is exactly the FastTrack
//! condition, with full vector clocks instead of epochs since the
//! audited set is tiny (a handful of fields, a few dozen threads per
//! sim round).
//!
//! Like the lock-order graph next door, state is process-global and
//! append-only; tests that assert on [`races`] call [`reset`] first and
//! serialize among themselves.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex as StdMutex, OnceLock};

/// A vector clock: slot per thread id, lazily grown, missing = 0.
pub type Clock = Vec<u64>;

/// Next thread slot to hand out.
static NEXT_TID: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// This thread's (tid, vector clock). The tid is assigned on first
    /// use and the clock starts with a single tick in its own slot so
    /// every access epoch is nonzero.
    static LOCAL: RefCell<Option<(usize, Clock)>> = const { RefCell::new(None) };
}

/// Joins `from` into `into` (pointwise max).
fn join(into: &mut Clock, from: &Clock) {
    if into.len() < from.len() {
        into.resize(from.len(), 0);
    }
    for (slot, &v) in into.iter_mut().zip(from.iter()) {
        *slot = (*slot).max(v);
    }
}

/// Runs `f` with this thread's `(tid, clock)`, initializing on first
/// use.
fn with_local<R>(f: impl FnOnce(usize, &mut Clock) -> R) -> R {
    LOCAL.with(|local| {
        let mut local = local.borrow_mut();
        let (tid, clock) = local.get_or_insert_with(|| {
            let tid = NEXT_TID.fetch_add(1, Ordering::Relaxed);
            let mut clock = vec![0u64; tid + 1];
            clock[tid] = 1;
            (tid, clock)
        });
        f(*tid, clock)
    })
}

/// One audited cell's access history.
#[derive(Debug, Default, Clone)]
struct CellState {
    /// The last write: `(tid, epoch)`.
    last_write: Option<(usize, u64)>,
    /// Reads since the last write: tid → epoch.
    reads: BTreeMap<usize, u64>,
}

/// Process-global detector state.
#[derive(Debug, Default)]
struct State {
    /// Lock id → clock of its last release.
    lock_clocks: BTreeMap<u64, Clock>,
    /// Channel id → join of all send clocks.
    chan_clocks: BTreeMap<u64, Clock>,
    /// Audited cell id → access history.
    cells: BTreeMap<u64, CellState>,
    /// Cell id → registered name.
    names: BTreeMap<u64, String>,
    /// Detected races, human-readable, deduplicated.
    races: Vec<String>,
}

fn state() -> &'static StdMutex<State> {
    static STATE: OnceLock<StdMutex<State>> = OnceLock::new();
    STATE.get_or_init(|| StdMutex::new(State::default()))
}

fn with_state<R>(f: impl FnOnce(&mut State) -> R) -> R {
    let mut guard = state().lock().unwrap_or_else(|e| e.into_inner());
    f(&mut guard)
}

/// Registers a human-readable name for an audited cell.
pub(crate) fn register_cell_name(id: u64, name: &'static str) {
    with_state(|s| {
        s.names.insert(id, name.to_string());
    });
}

/// Lock acquired: inherit the ordering of its last release.
pub(crate) fn lock_acquired(id: u64) {
    with_local(|_tid, clock| {
        with_state(|s| {
            if let Some(lc) = s.lock_clocks.get(&id) {
                join(clock, lc);
            }
        });
    });
}

/// Lock released: publish this thread's ordering to the next acquirer.
pub(crate) fn lock_released(id: u64) {
    with_local(|tid, clock| {
        with_state(|s| {
            join(s.lock_clocks.entry(id).or_default(), clock);
        });
        clock[tid] += 1;
    });
}

/// Channel send: publish to the channel's clock, then tick. Public so
/// the instrumented `crossbeam` shim can record its queue edges.
pub fn channel_send(id: u64) {
    with_local(|tid, clock| {
        with_state(|s| {
            join(s.chan_clocks.entry(id).or_default(), clock);
        });
        clock[tid] += 1;
    });
}

/// Channel recv: inherit the union of all sends so far. Public for the
/// instrumented `crossbeam` shim.
pub fn channel_recv(id: u64) {
    with_local(|_tid, clock| {
        with_state(|s| {
            if let Some(cc) = s.chan_clocks.get(&id) {
                join(clock, cc);
            }
        });
    });
}

/// Parent side of a spawn: snapshot the clock for the child, then tick
/// so the parent's subsequent work is not ordered into the child.
pub fn fork() -> Clock {
    with_local(|tid, clock| {
        let snapshot = clock.clone();
        clock[tid] += 1;
        snapshot
    })
}

/// Child side of a spawn: inherit everything the parent did before it.
pub fn child_start(parent: &Clock) {
    with_local(|_tid, clock| join(clock, parent));
}

/// Child about to exit: snapshot its final clock for the joiner.
pub fn child_finish() -> Clock {
    with_local(|_tid, clock| clock.clone())
}

/// Joiner side: inherit everything the child did.
pub fn absorb_join(child: &Clock) {
    with_local(|_tid, clock| join(clock, child));
}

/// Reports a read of an audited cell.
pub(crate) fn cell_read(id: u64) {
    with_local(|tid, clock| {
        with_state(|s| {
            let cell = s.cells.entry(id).or_default();
            if let Some((wt, wc)) = cell.last_write {
                if clock.get(wt).copied().unwrap_or(0) < wc {
                    let race = describe(&s.names, id, "read", wt, "write");
                    push_race(&mut s.races, race);
                }
            }
            let cell = s.cells.entry(id).or_default();
            cell.reads.insert(tid, clock[tid]);
        });
    });
}

/// Reports a write of an audited cell.
pub(crate) fn cell_write(id: u64) {
    with_local(|tid, clock| {
        with_state(|s| {
            let cell = s.cells.entry(id).or_default().clone();
            if let Some((wt, wc)) = cell.last_write {
                if clock.get(wt).copied().unwrap_or(0) < wc {
                    let race = describe(&s.names, id, "write", wt, "write");
                    push_race(&mut s.races, race);
                }
            }
            for (&rt, &rc) in &cell.reads {
                if rt != tid && clock.get(rt).copied().unwrap_or(0) < rc {
                    let race = describe(&s.names, id, "write", rt, "read");
                    push_race(&mut s.races, race);
                }
            }
            let fresh = s.cells.entry(id).or_default();
            fresh.last_write = Some((tid, clock[tid]));
            fresh.reads.clear();
        });
    });
}

fn describe(
    names: &BTreeMap<u64, String>,
    id: u64,
    this: &str,
    other_tid: usize,
    other: &str,
) -> String {
    let name = names
        .get(&id)
        .cloned()
        .unwrap_or_else(|| format!("cell#{id}"));
    format!("unordered {this} of `{name}` races a prior {other} by thread {other_tid}")
}

fn push_race(races: &mut Vec<String>, race: String) {
    if !races.contains(&race) {
        races.push(race);
    }
}

/// Detected races so far (empty = every audited access pair is ordered
/// by instrumented synchronization).
pub fn races() -> Vec<String> {
    with_state(|s| s.races.clone())
}

/// Clears detector state: lock/channel clocks, cell histories, and
/// recorded races (cell names persist). Thread clocks keep running —
/// stale entries only *add* ordering for threads that already exist,
/// which cannot fabricate a race.
pub fn reset() {
    with_state(|s| {
        s.lock_clocks.clear();
        s.chan_clocks.clear();
        s.cells.clear();
        s.races.clear();
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Mutex, RaceCell};
    use std::sync::{Arc, OnceLock};

    /// Detector state is process-global; these tests serialize.
    fn serial() -> std::sync::MutexGuard<'static, ()> {
        static GUARD: OnceLock<StdMutex<()>> = OnceLock::new();
        GUARD
            .get_or_init(|| StdMutex::new(()))
            .lock()
            .unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn mutex_protected_accesses_are_ordered() {
        let _s = serial();
        reset();
        let cell = Arc::new(Mutex::new(RaceCell::new(0u64).named("rc-mutexed")));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let cell = cell.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..100 {
                    let mut guard = cell.lock();
                    let v = *guard.get();
                    guard.set(v + 1);
                }
            }));
        }
        for h in handles {
            h.join().expect("worker");
        }
        assert_eq!(*cell.lock().get(), 400);
        assert!(races().is_empty(), "{:?}", races());
    }

    #[test]
    fn fork_join_edges_order_scoped_writes() {
        let _s = serial();
        reset();
        let mut cell = RaceCell::new(0u64).named("rc-forkjoin");
        cell.set(1);
        let parent = fork();
        let (value, child_clock) = std::thread::spawn(move || {
            child_start(&parent);
            cell.set(2);
            (cell.into_inner(), child_finish())
        })
        .join()
        .expect("child");
        absorb_join(&child_clock);
        assert_eq!(value, 2);
        assert!(races().is_empty(), "{:?}", races());
    }

    #[test]
    fn unsynchronized_write_write_is_a_race() {
        let _s = serial();
        reset();
        // Two threads write the same audited cell with *no* instrumented
        // edge between them (std::thread::spawn records nothing). The
        // accesses are serialized at the Rust level via join, but the
        // detector — deliberately blind to uninstrumented sync — must
        // convict the pair.
        let cell = Arc::new(StdMutex::new(RaceCell::new(0u64).named("rc-naked")));
        let c2 = cell.clone();
        std::thread::spawn(move || {
            c2.lock().unwrap().set(1);
        })
        .join()
        .expect("t1");
        std::thread::spawn(move || {
            cell.lock().unwrap().set(2);
        })
        .join()
        .expect("t2");
        let found = races();
        assert!(
            found.iter().any(|r| r.contains("rc-naked")),
            "expected a race on rc-naked: {found:?}"
        );
    }

    #[test]
    fn channel_edges_order_send_recv() {
        let _s = serial();
        reset();
        // Hand a cell through an instrumented channel-style edge.
        let chan_id = 900_001;
        let mut cell = RaceCell::new(0u64).named("rc-channel");
        cell.set(7);
        channel_send(chan_id);
        let clock_after_send = fork();
        std::thread::spawn(move || {
            child_start(&clock_after_send);
            channel_recv(chan_id);
            assert_eq!(*cell.get(), 7);
        })
        .join()
        .expect("receiver");
        assert!(races().is_empty(), "{:?}", races());
    }
}
