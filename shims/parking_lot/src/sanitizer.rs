//! Runtime lock-order graph recorder and cycle detector.
//!
//! Every blocking acquisition records one edge per lock currently held
//! by the acquiring thread: `held → acquiring`. The resulting directed
//! graph accumulates across threads for the life of the process (or
//! until [`reset`]). A cycle — including a self-edge from re-acquiring
//! a non-reentrant lock — means two threads can order those
//! acquisitions against each other and deadlock.
//!
//! The recorder is deliberately *global and append-only*: chaos runs
//! spawn many short-lived stores and worker pools, and a cycle is a
//! property of the whole process's acquisition history, not of any one
//! object. Tests that assert on the graph must serialize among
//! themselves and call [`reset`] first.
//!
//! Edges are recorded **before** blocking, so a deadlock that actually
//! bites still leaves the incriminating cycle in the graph for a
//! watchdog or post-mortem to read.

use std::cell::RefCell;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex as StdMutex, OnceLock};

/// Next lock id to hand out; 0 means "unassigned".
static NEXT_ID: AtomicU64 = AtomicU64::new(1);

/// Lazily-assigned unique lock identity, const-constructible so
/// instrumented locks can still live in `static`s.
#[derive(Debug)]
pub struct LazyLockId {
    cell: AtomicU64,
}

impl LazyLockId {
    /// An unassigned id.
    pub const fn new() -> Self {
        LazyLockId {
            cell: AtomicU64::new(0),
        }
    }

    /// The lock's id, assigning one on first use.
    pub fn get(&self) -> u64 {
        let seen = self.cell.load(Ordering::Acquire);
        if seen != 0 {
            return seen;
        }
        let fresh = NEXT_ID.fetch_add(1, Ordering::Relaxed);
        match self
            .cell
            .compare_exchange(0, fresh, Ordering::AcqRel, Ordering::Acquire)
        {
            Ok(_) => fresh,
            Err(existing) => existing,
        }
    }
}

impl Default for LazyLockId {
    fn default() -> Self {
        LazyLockId::new()
    }
}

/// Marks a lock as held by the current thread for its lifetime; Drop
/// pops it from the thread's held stack.
#[derive(Debug)]
pub struct HeldToken {
    id: u64,
}

impl Drop for HeldToken {
    fn drop(&mut self) {
        // The guards declare this token before the inner std guard, so
        // this runs while the real lock is still held: the published
        // release clock covers everything done under the lock, and no
        // other thread can acquire before the publish lands.
        crate::racecheck::lock_released(self.id);
        HELD.with(|held| {
            let mut held = held.borrow_mut();
            if let Some(pos) = held.iter().rposition(|&h| h == self.id) {
                held.remove(pos);
            }
        });
    }
}

thread_local! {
    /// Locks held by this thread, in acquisition order.
    static HELD: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
}

/// Process-global graph state.
#[derive(Debug, Default)]
struct State {
    /// `held → acquiring` edges.
    edges: BTreeSet<(u64, u64)>,
    /// Lock id → registered name.
    names: BTreeMap<u64, String>,
}

fn state() -> &'static StdMutex<State> {
    static STATE: OnceLock<StdMutex<State>> = OnceLock::new();
    STATE.get_or_init(|| StdMutex::new(State::default()))
}

fn with_state<R>(f: impl FnOnce(&mut State) -> R) -> R {
    let mut guard = state().lock().unwrap_or_else(|e| e.into_inner());
    f(&mut guard)
}

/// Registers a human-readable name for a lock id.
pub(crate) fn register_name(id: u64, name: &'static str) {
    with_state(|s| {
        s.names.insert(id, name.to_string());
    });
}

/// Records edges from every held lock to `id` (called before blocking),
/// then marks `id` held.
pub(crate) fn enter(id: u64) -> HeldToken {
    HELD.with(|held| {
        let held_now = held.borrow().clone();
        if !held_now.is_empty() {
            with_state(|s| {
                for h in held_now {
                    s.edges.insert((h, id));
                }
            });
        }
        held.borrow_mut().push(id);
    });
    HeldToken { id }
}

/// Marks `id` held without recording edges — for `try_*` acquisitions,
/// which cannot block and therefore cannot close a deadlock cycle
/// themselves (but must still order later blocking acquisitions). The
/// caller already holds the real lock, so the happens-before acquire
/// join is recorded here too.
pub(crate) fn enter_quiet(id: u64) -> HeldToken {
    crate::racecheck::lock_acquired(id);
    HELD.with(|held| held.borrow_mut().push(id));
    HeldToken { id }
}

/// Clears recorded edges (names persist — they describe lock objects,
/// not history). Tests that assert on the graph call this first and
/// serialize among themselves: the graph is process-global.
pub fn reset() {
    with_state(|s| s.edges.clear());
}

/// Number of distinct recorded edges.
pub fn edge_count() -> usize {
    with_state(|s| s.edges.len())
}

/// The recorded edges, as lock names (ids without a registered name
/// render as `lock#<id>`).
pub fn edges() -> Vec<(String, String)> {
    with_state(|s| {
        s.edges
            .iter()
            .map(|&(a, b)| (display_name(&s.names, a), display_name(&s.names, b)))
            .collect()
    })
}

/// Every deadlock-capable cycle in the recorded graph, as sorted lists
/// of lock names: each strongly connected component with more than one
/// lock, plus each self-edge. Empty means the recorded acquisition
/// history admits a total lock order — no deadlock among these locks is
/// reachable by reordering threads.
pub fn cycles() -> Vec<Vec<String>> {
    with_state(|s| {
        let mut nodes: BTreeSet<u64> = BTreeSet::new();
        for &(a, b) in &s.edges {
            nodes.insert(a);
            nodes.insert(b);
        }
        let mut out = Vec::new();
        for component in strongly_connected(&nodes, &s.edges) {
            let is_cycle = component.len() > 1
                || component
                    .first()
                    .is_some_and(|&n| s.edges.contains(&(n, n)));
            if is_cycle {
                let mut names: Vec<String> = component
                    .iter()
                    .map(|&n| display_name(&s.names, n))
                    .collect();
                names.sort();
                out.push(names);
            }
        }
        out.sort();
        out
    })
}

fn display_name(names: &BTreeMap<u64, String>, id: u64) -> String {
    names
        .get(&id)
        .cloned()
        .unwrap_or_else(|| format!("lock#{id}"))
}

/// Kosaraju's algorithm, iterative — the graphs here are tiny (a
/// handful of named locks) but recursion depth should not depend on
/// edge shape.
fn strongly_connected(nodes: &BTreeSet<u64>, edges: &BTreeSet<(u64, u64)>) -> Vec<Vec<u64>> {
    let mut fwd: BTreeMap<u64, Vec<u64>> = BTreeMap::new();
    let mut rev: BTreeMap<u64, Vec<u64>> = BTreeMap::new();
    for &(a, b) in edges {
        fwd.entry(a).or_default().push(b);
        rev.entry(b).or_default().push(a);
    }

    // Pass 1: forward DFS, record finish order.
    let mut finish: Vec<u64> = Vec::new();
    let mut seen: BTreeSet<u64> = BTreeSet::new();
    for &start in nodes {
        if seen.contains(&start) {
            continue;
        }
        // Stack entries: (node, next-child index).
        let mut stack: Vec<(u64, usize)> = vec![(start, 0)];
        seen.insert(start);
        while let Some(&mut (node, ref mut next)) = stack.last_mut() {
            let children = fwd.get(&node).map(Vec::as_slice).unwrap_or(&[]);
            if let Some(&child) = children.get(*next) {
                *next += 1;
                if seen.insert(child) {
                    stack.push((child, 0));
                }
            } else {
                finish.push(node);
                stack.pop();
            }
        }
    }

    // Pass 2: reverse DFS in reverse finish order.
    let mut component_of: BTreeMap<u64, usize> = BTreeMap::new();
    let mut components: Vec<Vec<u64>> = Vec::new();
    for &start in finish.iter().rev() {
        if component_of.contains_key(&start) {
            continue;
        }
        let idx = components.len();
        let mut members = Vec::new();
        let mut stack = vec![start];
        component_of.insert(start, idx);
        while let Some(node) = stack.pop() {
            members.push(node);
            for &p in rev.get(&node).map(Vec::as_slice).unwrap_or(&[]) {
                if let std::collections::btree_map::Entry::Vacant(slot) = component_of.entry(p) {
                    slot.insert(idx);
                    stack.push(p);
                }
            }
        }
        members.sort_unstable();
        components.push(members);
    }
    components
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Mutex, RwLock};
    use std::sync::OnceLock;

    /// The graph is process-global; tests that assert on it must not
    /// interleave.
    fn serial() -> std::sync::MutexGuard<'static, ()> {
        static GUARD: OnceLock<StdMutex<()>> = OnceLock::new();
        GUARD
            .get_or_init(|| StdMutex::new(()))
            .lock()
            .unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn ordered_nesting_has_no_cycle() {
        let _s = serial();
        reset();
        let a = Mutex::new(()).named("san-a");
        let b = Mutex::new(()).named("san-b");
        for _ in 0..3 {
            let ga = a.lock();
            let gb = b.lock();
            drop(gb);
            drop(ga);
        }
        assert_eq!(edge_count(), 1);
        assert!(cycles().is_empty(), "{:?}", cycles());
    }

    #[test]
    fn inversion_is_a_cycle() {
        let _s = serial();
        reset();
        let a = Mutex::new(()).named("inv-a");
        let b = RwLock::new(()).named("inv-b");
        {
            let ga = a.lock();
            let gb = b.read();
            drop(gb);
            drop(ga);
        }
        {
            let gb = b.write();
            let ga = a.lock();
            drop(ga);
            drop(gb);
        }
        let found = cycles();
        assert_eq!(found.len(), 1, "{found:?}");
        assert_eq!(found[0], vec!["inv-a".to_string(), "inv-b".to_string()]);
    }

    #[test]
    fn self_reacquire_is_a_cycle() {
        let _s = serial();
        reset();
        let a = RwLock::new(()).named("self-a");
        let g1 = a.read();
        let g2 = a.read(); // legal for readers, but order-unsafe: a
        drop(g2); //            writer between them deadlocks both.
        drop(g1);
        assert_eq!(cycles(), vec![vec!["self-a".to_string()]]);
    }

    #[test]
    fn try_lock_records_no_edges() {
        let _s = serial();
        reset();
        let a = Mutex::new(()).named("try-a");
        let b = Mutex::new(()).named("try-b");
        let gb = b.lock();
        let ga = a.try_lock().expect("uncontended");
        drop(ga);
        drop(gb);
        assert_eq!(edge_count(), 0);
        // But a try-held lock still orders later blocking acquisitions.
        let ga = a.try_lock().expect("uncontended");
        let gb = b.lock();
        drop(gb);
        drop(ga);
        assert_eq!(edge_count(), 1);
        assert!(cycles().is_empty());
    }

    #[test]
    fn cross_thread_edges_merge() {
        let _s = serial();
        reset();
        let a = std::sync::Arc::new(Mutex::new(()).named("xt-a"));
        let b = std::sync::Arc::new(Mutex::new(()).named("xt-b"));
        let (a2, b2) = (a.clone(), b.clone());
        // Thread 1: a → b. Thread 2: b → a. Never concurrent — no real
        // deadlock occurs — yet the graph still convicts the ordering.
        std::thread::spawn(move || {
            let ga = a2.lock();
            let gb = b2.lock();
            drop(gb);
            drop(ga);
        })
        .join()
        .expect("thread 1");
        std::thread::spawn(move || {
            let gb = b.lock();
            let ga = a.lock();
            drop(ga);
            drop(gb);
        })
        .join()
        .expect("thread 2");
        assert_eq!(cycles().len(), 1);
    }
}
