//! Offline, deterministic subset of the `rand` 0.9 API.
//!
//! The build environment has no access to crates.io, so the workspace
//! patches `rand` with this shim (see `[patch.crates-io]` in the root
//! `Cargo.toml`). Only the surface this repository actually uses is
//! provided: [`RngCore`], [`SeedableRng`], the [`Rng`] extension trait
//! (`random`, `random_range`, `fill`), and [`rngs::StdRng`].
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — fast, well
//! distributed, and fully deterministic, which is all the simulator
//! requires (nothing here is used for real cryptography; key material in
//! `cia-crypto` is digest-based).

#![forbid(unsafe_code)]
// SplitMix64's conventional API names its step `next`; it is not an iterator.
#![allow(clippy::should_implement_trait)]

/// A low-level source of randomness.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator that can be instantiated from a seed.
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Creates a generator from a full-entropy seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64`, expanding it with SplitMix64
    /// exactly like upstream `rand`.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64 { state };
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// SplitMix64: seed expander (public within the shim so `rand_chacha`
/// can reuse it).
#[doc(hidden)]
pub struct SplitMix64 {
    /// Internal state.
    pub state: u64,
}

impl SplitMix64 {
    /// Next expanded value.
    pub fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Types samplable from the "standard" distribution (`Rng::random`).
pub trait StandardRandom {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty => $via:ident),*) => {$(
        impl StandardRandom for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.$via() as $t
            }
        }
    )*};
}
impl_standard_int!(u8 => next_u32, u16 => next_u32, u32 => next_u32,
                   i8 => next_u32, i16 => next_u32, i32 => next_u32,
                   u64 => next_u64, i64 => next_u64, usize => next_u64, isize => next_u64);

impl StandardRandom for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

impl StandardRandom for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardRandom for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges usable with [`Rng::random_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in random_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let value = (rng.next_u64() as u128) % span;
                (self.start as i128 + value as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range in random_range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let value = (rng.next_u64() as u128) % span;
                (start as i128 + value as i128) as $t
            }
        }
    )*};
}
impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Extension methods every [`RngCore`] gets (mirrors `rand::Rng`).
pub trait Rng: RngCore {
    /// Draws a value from the standard distribution.
    fn random<T: StandardRandom>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    fn random_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Fills a byte slice with random data.
    fn fill(&mut self, dest: &mut [u8])
    where
        Self: Sized,
    {
        self.fill_bytes(dest);
    }

    /// Bernoulli draw with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Bundled generators.
pub mod rngs {
    use super::{RngCore, SeedableRng, SplitMix64};

    /// The shim's standard generator: xoshiro256++.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        #[inline]
        fn rotl(x: u64, k: u32) -> u64 {
            x.rotate_left(k)
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let result = Self::rotl(self.s[0].wrapping_add(self.s[3]), 23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = Self::rotl(self.s[3], 45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().unwrap());
            }
            // A pathological all-zero state would be a fixed point;
            // re-expand through SplitMix64 in that case.
            if s.iter().all(|&w| w == 0) {
                let mut sm = SplitMix64 { state: 0xDEAD_BEEF };
                for w in &mut s {
                    *w = sm.next();
                }
            }
            StdRng { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 4];
        for _ in 0..200 {
            let v: usize = rng.random_range(0..4);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit: {seen:?}");
    }

    #[test]
    fn fill_covers_tail() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut buf = [0u8; 13];
        rng.fill(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
