//! Offline API-compatible subset of `serde`.
//!
//! The build environment cannot reach crates.io, so the workspace patches
//! `serde` with this shim. The model is a self-describing [`Value`] tree:
//! [`Serialize`] renders a type into a `Value`, [`Deserialize`] rebuilds
//! it, and `serde_json` (also shimmed) converts `Value` to and from real
//! JSON text. The derive macros in `serde_derive` generate the
//! externally-tagged encoding real serde uses (unit variants as strings,
//! newtype variants as one-entry objects, named fields as objects), so
//! wire shapes stay familiar even though the implementation is local.

#![forbid(unsafe_code)]

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// A self-describing serialized value (JSON data model).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// An unsigned integer.
    U64(u64),
    /// A signed integer (only used for negative values).
    I64(i64),
    /// A float.
    F64(f64),
    /// A string.
    Str(String),
    /// An array.
    Seq(Vec<Value>),
    /// An object; insertion order preserved.
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Looks up an object key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Map(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// A short human-readable type tag for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::U64(_) | Value::I64(_) | Value::F64(_) => "number",
            Value::Str(_) => "string",
            Value::Seq(_) => "array",
            Value::Map(_) => "object",
        }
    }
}

/// Deserialization failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError {
    /// What went wrong.
    pub message: String,
}

impl DeError {
    /// Creates an error.
    pub fn new(message: impl Into<String>) -> Self {
        DeError {
            message: message.into(),
        }
    }

    /// Type-mismatch helper.
    pub fn expected(what: &str, got: &Value) -> Self {
        DeError::new(format!("expected {what}, got {}", got.kind()))
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for DeError {}

/// Types renderable into a [`Value`].
pub trait Serialize {
    /// Renders `self`.
    fn to_value(&self) -> Value;
}

/// Types rebuildable from a [`Value`].
pub trait Deserialize: Sized {
    /// Rebuilds a value of this type.
    fn from_value(value: &Value) -> Result<Self, DeError>;
}

/// Deserialization traits namespace (API parity with real serde).
pub mod de {
    /// Owned deserialization (blanket over [`crate::Deserialize`]).
    pub trait DeserializeOwned: crate::Deserialize {}
    impl<T: crate::Deserialize> DeserializeOwned for T {}
}

/// Serialization traits namespace (API parity with real serde).
pub mod ser {
    pub use crate::Serialize;
}

// ---------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::U64(*self as u64) }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                match value {
                    Value::U64(n) => <$t>::try_from(*n)
                        .map_err(|_| DeError::new(format!("{n} out of range for {}", stringify!($t)))),
                    Value::I64(n) => <$t>::try_from(*n)
                        .map_err(|_| DeError::new(format!("{n} out of range for {}", stringify!($t)))),
                    other => Err(DeError::expected(stringify!($t), other)),
                }
            }
        }
    )*};
}
impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let v = *self as i64;
                if v >= 0 { Value::U64(v as u64) } else { Value::I64(v) }
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                match value {
                    Value::U64(n) => <$t>::try_from(*n)
                        .map_err(|_| DeError::new(format!("{n} out of range for {}", stringify!($t)))),
                    Value::I64(n) => <$t>::try_from(*n)
                        .map_err(|_| DeError::new(format!("{n} out of range for {}", stringify!($t)))),
                    other => Err(DeError::expected(stringify!($t), other)),
                }
            }
        }
    )*};
}
impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}
impl Deserialize for f64 {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::F64(x) => Ok(*x),
            Value::U64(n) => Ok(*n as f64),
            Value::I64(n) => Ok(*n as f64),
            other => Err(DeError::expected("f64", other)),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(*self as f64)
    }
}
impl Deserialize for f32 {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        f64::from_value(value).map(|x| x as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::expected("bool", other)),
        }
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}
impl Deserialize for char {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(DeError::expected("single-char string", other)),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}
impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::expected("string", other)),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError::expected("array", other)),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize + Copy + Default, const N: usize> Deserialize for [T; N] {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Seq(items) if items.len() == N => {
                let mut out = [T::default(); N];
                for (slot, item) in out.iter_mut().zip(items) {
                    *slot = T::from_value(item)?;
                }
                Ok(out)
            }
            Value::Seq(items) => Err(DeError::new(format!(
                "expected array of length {N}, got {}",
                items.len()
            ))),
            other => Err(DeError::expected("array", other)),
        }
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+)),+) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                match value {
                    Value::Seq(items) => {
                        let mut it = items.iter();
                        let out = ($(
                            $name::from_value(
                                it.next().ok_or_else(|| DeError::new("tuple too short"))?
                            )?,
                        )+);
                        if it.next().is_some() {
                            return Err(DeError::new("tuple too long"));
                        }
                        Ok(out)
                    }
                    other => Err(DeError::expected("tuple array", other)),
                }
            }
        }
    )+};
}
impl_tuple!((A: 0), (A: 0, B: 1), (A: 0, B: 1, C: 2), (A: 0, B: 1, C: 2, D: 3));

impl<K: Serialize + Ord, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        // String keys render as a JSON object; everything else as [k, v]
        // pairs. Round-trips through our own deserializer either way.
        let all_strings = self.keys().all(|k| matches!(k.to_value(), Value::Str(_)));
        if all_strings {
            Value::Map(
                self.iter()
                    .map(|(k, v)| {
                        let Value::Str(key) = k.to_value() else {
                            unreachable!()
                        };
                        (key, v.to_value())
                    })
                    .collect(),
            )
        } else {
            Value::Seq(
                self.iter()
                    .map(|(k, v)| Value::Seq(vec![k.to_value(), v.to_value()]))
                    .collect(),
            )
        }
    }
}
impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        let mut out = BTreeMap::new();
        match value {
            Value::Map(entries) => {
                for (k, v) in entries {
                    out.insert(K::from_value(&Value::Str(k.clone()))?, V::from_value(v)?);
                }
                Ok(out)
            }
            Value::Seq(items) => {
                for item in items {
                    let (k, v) = <(K, V)>::from_value(item)?;
                    out.insert(k, v);
                }
                Ok(out)
            }
            other => Err(DeError::expected("map", other)),
        }
    }
}

impl<K, V, S> Serialize for std::collections::HashMap<K, V, S>
where
    K: Serialize,
    V: Serialize,
{
    fn to_value(&self) -> Value {
        // Same encoding as BTreeMap, but hash iteration order is
        // nondeterministic, so entries are sorted on the rendered key to
        // keep serialized output stable across runs.
        let mut entries: Vec<(Value, Value)> = self
            .iter()
            .map(|(k, v)| (k.to_value(), v.to_value()))
            .collect();
        entries.sort_by(|a, b| format!("{:?}", a.0).cmp(&format!("{:?}", b.0)));
        let all_strings = entries.iter().all(|(k, _)| matches!(k, Value::Str(_)));
        if all_strings {
            Value::Map(
                entries
                    .into_iter()
                    .map(|(k, v)| match k {
                        Value::Str(s) => (s, v),
                        _ => unreachable!(),
                    })
                    .collect(),
            )
        } else {
            Value::Seq(
                entries
                    .into_iter()
                    .map(|(k, v)| Value::Seq(vec![k, v]))
                    .collect(),
            )
        }
    }
}
impl<K, V, S> Deserialize for std::collections::HashMap<K, V, S>
where
    K: Deserialize + Eq + std::hash::Hash,
    V: Deserialize,
    S: std::hash::BuildHasher + Default,
{
    fn from_value(value: &Value) -> Result<Self, DeError> {
        let mut out = Self::default();
        match value {
            Value::Map(entries) => {
                for (k, v) in entries {
                    out.insert(K::from_value(&Value::Str(k.clone()))?, V::from_value(v)?);
                }
                Ok(out)
            }
            Value::Seq(items) => {
                for item in items {
                    let (k, v) = <(K, V)>::from_value(item)?;
                    out.insert(k, v);
                }
                Ok(out)
            }
            other => Err(DeError::expected("map", other)),
        }
    }
}

impl<T, S> Serialize for std::collections::HashSet<T, S>
where
    T: Serialize,
{
    fn to_value(&self) -> Value {
        let mut items: Vec<Value> = self.iter().map(Serialize::to_value).collect();
        items.sort_by(|a, b| format!("{a:?}").cmp(&format!("{b:?}")));
        Value::Seq(items)
    }
}
impl<T, S> Deserialize for std::collections::HashSet<T, S>
where
    T: Deserialize + Eq + std::hash::Hash,
    S: std::hash::BuildHasher + Default,
{
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError::expected("array", other)),
        }
    }
}

impl<T: Serialize + Ord> Serialize for BTreeSet<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize + Ord> Deserialize for BTreeSet<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError::expected("array", other)),
        }
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}
impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        T::from_value(value).map(Box::new)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert_eq!(i32::from_value(&(-7i32).to_value()).unwrap(), -7);
        assert_eq!(String::from_value(&"hi".to_value()).unwrap(), "hi");
        assert_eq!(
            Vec::<u8>::from_value(&vec![1u8, 2, 3].to_value()).unwrap(),
            vec![1, 2, 3]
        );
        assert_eq!(Option::<u8>::from_value(&Value::Null).unwrap(), None);
    }

    #[test]
    fn maps_roundtrip() {
        let mut m = BTreeMap::new();
        m.insert("a".to_string(), 1u32);
        m.insert("b".to_string(), 2u32);
        let v = m.to_value();
        assert!(matches!(v, Value::Map(_)));
        assert_eq!(BTreeMap::<String, u32>::from_value(&v).unwrap(), m);

        let mut n = BTreeMap::new();
        n.insert(3u64, "x".to_string());
        let v = n.to_value();
        assert!(matches!(v, Value::Seq(_)));
        assert_eq!(BTreeMap::<u64, String>::from_value(&v).unwrap(), n);
    }

    #[test]
    fn arrays_roundtrip() {
        let a = [7u8; 32];
        assert_eq!(<[u8; 32]>::from_value(&a.to_value()).unwrap(), a);
        assert!(<[u8; 32]>::from_value(&vec![1u8].to_value()).is_err());
    }
}
