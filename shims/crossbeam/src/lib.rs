//! Offline subset of `crossbeam`.
//!
//! Provides the multi-producer **multi-consumer** [`channel`] the fleet
//! scheduler's worker pool uses as its shared job queue (std's `mpsc` is
//! single-consumer, so this is implemented directly over a
//! `Mutex<VecDeque>` + `Condvar`), plus a [`thread`] module re-exporting
//! std's scoped threads under crossbeam's names.
//!
//! With the `lock-sanitizer` feature, both primitives additionally
//! record **happens-before edges** into the parking_lot shim's
//! vector-clock race detector: every `send` publishes the sender's
//! clock to the channel and every `recv` inherits it, and the scoped
//! [`thread`] wrappers record fork edges at `spawn` and join edges at
//! `join()`/scope exit. Together with the instrumented locks this lets
//! `racecheck::races()` prove that audited shared state is ordered by
//! synchronization the shims can actually see.

#![forbid(unsafe_code)]

/// MPMC channels.
pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};

    struct Shared<T> {
        queue: Mutex<VecDeque<T>>,
        ready: Condvar,
        /// Senders blocked on a full bounded channel wait here; every
        /// pop (and receiver disconnect) signals it.
        space: Condvar,
        /// `None` = unbounded; `Some(n)` = at most `n` queued values.
        capacity: Option<usize>,
        senders: AtomicUsize,
        receivers: AtomicUsize,
        /// Happens-before identity for the race detector's channel clock.
        #[cfg(feature = "lock-sanitizer")]
        hb: parking_lot::sanitizer::LazyLockId,
    }

    fn make<T>(capacity: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            space: Condvar::new(),
            capacity,
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
            #[cfg(feature = "lock-sanitizer")]
            hb: parking_lot::sanitizer::LazyLockId::new(),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    /// Creates an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        make(None)
    }

    /// Creates a bounded MPMC channel: `send` blocks while `cap` values
    /// are queued, which is the backpressure the pipelined scheduler
    /// relies on. A zero `cap` is promoted to 1 (this shim has no
    /// rendezvous mode).
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        make(Some(cap.max(1)))
    }

    /// The sending half; cloneable.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half; cloneable (work-sharing consumers).
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Send failed: every receiver is gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    /// Receive failed: channel empty and every sender is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty, disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    /// Non-blocking receive failure.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// Channel currently empty.
        Empty,
        /// Channel empty and all senders dropped.
        Disconnected,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.senders.fetch_add(1, Ordering::SeqCst);
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.shared.senders.fetch_sub(1, Ordering::SeqCst) == 1 {
                // Last sender: wake blocked receivers so they observe
                // disconnection.
                self.shared.ready.notify_all();
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.receivers.fetch_add(1, Ordering::SeqCst);
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            if self.shared.receivers.fetch_sub(1, Ordering::SeqCst) == 1 {
                // Last receiver: wake senders blocked on a full bounded
                // channel so they observe disconnection.
                self.shared.space.notify_all();
            }
        }
    }

    impl<T> Sender<T> {
        /// Enqueues `value`; fails only when all receivers are dropped.
        /// On a bounded channel, blocks while the queue is at capacity.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            if self.shared.receivers.load(Ordering::SeqCst) == 0 {
                return Err(SendError(value));
            }
            let mut queue = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            if let Some(cap) = self.shared.capacity {
                while queue.len() >= cap {
                    if self.shared.receivers.load(Ordering::SeqCst) == 0 {
                        return Err(SendError(value));
                    }
                    queue = self
                        .shared
                        .space
                        .wait(queue)
                        .unwrap_or_else(|e| e.into_inner());
                }
            }
            // Recorded under the queue lock so a receiver that pops this
            // value (also under the lock) observes the send's clock.
            #[cfg(feature = "lock-sanitizer")]
            parking_lot::racecheck::channel_send(self.shared.hb.get());
            queue.push_back(value);
            drop(queue);
            self.shared.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a value arrives or all senders are gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut queue = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(value) = queue.pop_front() {
                    #[cfg(feature = "lock-sanitizer")]
                    parking_lot::racecheck::channel_recv(self.shared.hb.get());
                    drop(queue);
                    self.shared.space.notify_one();
                    return Ok(value);
                }
                if self.shared.senders.load(Ordering::SeqCst) == 0 {
                    return Err(RecvError);
                }
                queue = self
                    .shared
                    .ready
                    .wait(queue)
                    .unwrap_or_else(|e| e.into_inner());
            }
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut queue = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            if let Some(value) = queue.pop_front() {
                #[cfg(feature = "lock-sanitizer")]
                parking_lot::racecheck::channel_recv(self.shared.hb.get());
                drop(queue);
                self.shared.space.notify_one();
                return Ok(value);
            }
            if self.shared.senders.load(Ordering::SeqCst) == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        /// Draining iterator: yields until disconnected.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { receiver: self }
        }
    }

    /// See [`Receiver::iter`].
    pub struct Iter<'a, T> {
        receiver: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.receiver.recv().ok()
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn mpmc_fan_out() {
            let (tx, rx) = unbounded::<u32>();
            for i in 0..100 {
                tx.send(i).unwrap();
            }
            drop(tx);
            let rx2 = rx.clone();
            let h = std::thread::spawn(move || rx2.iter().count());
            let local = rx.iter().count();
            let remote = h.join().unwrap();
            assert_eq!(local + remote, 100);
        }

        #[test]
        fn recv_disconnects() {
            let (tx, rx) = unbounded::<u8>();
            drop(tx);
            assert_eq!(rx.recv(), Err(RecvError));
        }

        #[test]
        fn bounded_send_blocks_until_a_pop() {
            let (tx, rx) = bounded::<u32>(2);
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            // Third send must block until the consumer drains one slot.
            let h = std::thread::spawn(move || tx.send(3).unwrap());
            assert_eq!(rx.recv(), Ok(1));
            h.join().unwrap();
            assert_eq!(rx.recv(), Ok(2));
            assert_eq!(rx.recv(), Ok(3));
        }

        #[test]
        fn bounded_send_fails_when_receivers_die() {
            let (tx, rx) = bounded::<u8>(1);
            tx.send(9).unwrap();
            drop(rx);
            assert_eq!(tx.send(10), Err(SendError(10)));
        }
    }
}

/// Scoped threads (std re-exports under crossbeam's names).
#[cfg(not(feature = "lock-sanitizer"))]
pub mod thread {
    pub use std::thread::{scope, Scope, ScopedJoinHandle};
}

/// Scoped threads with fork/join happens-before instrumentation.
///
/// Same shape as `std::thread::scope`, but every `spawn` snapshots the
/// parent's vector clock into the child and every `join()` — explicit
/// on the handle or implicit at scope exit — merges the child's final
/// clock back into the joiner. The race detector thus sees the real
/// structured-concurrency ordering: anything a child wrote is ordered
/// before everything the parent does after the scope closes.
#[cfg(feature = "lock-sanitizer")]
pub mod thread {
    use parking_lot::racecheck::{self, Clock};
    use std::sync::{Arc, Mutex as StdMutex};

    /// Instrumented stand-in for `std::thread::Scope`.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
        /// Final clocks of every child, absorbed at scope exit for
        /// handles that were never explicitly joined. A std mutex, not
        /// the shim's: bookkeeping must not record lock edges itself.
        /// (`Arc`, not a borrow — the higher-ranked closure bound on
        /// `std::thread::scope` would otherwise force the borrow out to
        /// `'env`.)
        pending: Arc<StdMutex<Vec<Clock>>>,
    }

    /// Instrumented stand-in for `std::thread::ScopedJoinHandle`.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, (T, Clock)>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread with a fork edge from the spawner.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce() -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let parent = racecheck::fork();
            let pending = Arc::clone(&self.pending);
            let inner = self.inner.spawn(move || {
                racecheck::child_start(&parent);
                let out = f();
                let clock = racecheck::child_finish();
                pending
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .push(clock.clone());
                (out, clock)
            });
            ScopedJoinHandle { inner }
        }
    }

    impl<T> ScopedJoinHandle<'_, T> {
        /// Joins the child, absorbing its final clock (a panic in the
        /// child left its clock in the scope's pending list, absorbed
        /// at scope exit).
        pub fn join(self) -> std::thread::Result<T> {
            match self.inner.join() {
                Ok((out, clock)) => {
                    racecheck::absorb_join(&clock);
                    Ok(out)
                }
                Err(payload) => Err(payload),
            }
        }

        /// Whether the child has finished running.
        pub fn is_finished(&self) -> bool {
            self.inner.is_finished()
        }

        /// The underlying thread.
        pub fn thread(&self) -> &std::thread::Thread {
            self.inner.thread()
        }
    }

    /// Instrumented stand-in for `std::thread::scope`.
    pub fn scope<'env, F, T>(f: F) -> T
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> T,
    {
        let pending = Arc::new(StdMutex::new(Vec::new()));
        let out = std::thread::scope(|s| {
            f(&Scope {
                inner: s,
                pending: Arc::clone(&pending),
            })
        });
        // Implicit joins: std::thread::scope has joined every child by
        // now, so absorbing their clocks here is the matching
        // happens-before edge. Double-absorb after an explicit join()
        // is harmless — clock join is idempotent.
        let mut clocks = pending.lock().unwrap_or_else(|e| e.into_inner());
        for clock in clocks.drain(..) {
            racecheck::absorb_join(&clock);
        }
        out
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use parking_lot::RaceCell;

        #[test]
        fn scope_exit_orders_unjoined_children() {
            racecheck::reset();
            let mut cells: Vec<RaceCell<u64>> = (0..4).map(RaceCell::new).collect();
            scope(|s| {
                for cell in cells.iter_mut() {
                    s.spawn(move || cell.set(cell.get() + 1));
                }
            });
            // Parent reads after the scope: ordered via implicit joins.
            let total: u64 = cells.iter().map(|c| *c.get()).sum();
            assert_eq!(total, 1 + 2 + 3 + 4);
            assert!(racecheck::races().is_empty(), "{:?}", racecheck::races());
        }

        #[test]
        fn explicit_join_orders_the_result_path() {
            racecheck::reset();
            let mut cell = RaceCell::new(0u64);
            let doubled = scope(|s| {
                let h = s.spawn(|| {
                    cell.set(21);
                    *cell.get()
                });
                h.join().expect("child") * 2
            });
            assert_eq!(doubled, 42);
            assert!(racecheck::races().is_empty(), "{:?}", racecheck::races());
        }
    }
}
