//! Offline subset of `crossbeam`.
//!
//! Provides the multi-producer **multi-consumer** [`channel`] the fleet
//! scheduler's worker pool uses as its shared job queue (std's `mpsc` is
//! single-consumer, so this is implemented directly over a
//! `Mutex<VecDeque>` + `Condvar`), plus a [`thread`] module re-exporting
//! std's scoped threads under crossbeam's names.

#![forbid(unsafe_code)]

/// MPMC channels.
pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};

    struct Shared<T> {
        queue: Mutex<VecDeque<T>>,
        ready: Condvar,
        /// Senders blocked on a full bounded channel wait here; every
        /// pop (and receiver disconnect) signals it.
        space: Condvar,
        /// `None` = unbounded; `Some(n)` = at most `n` queued values.
        capacity: Option<usize>,
        senders: AtomicUsize,
        receivers: AtomicUsize,
    }

    fn make<T>(capacity: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            space: Condvar::new(),
            capacity,
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    /// Creates an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        make(None)
    }

    /// Creates a bounded MPMC channel: `send` blocks while `cap` values
    /// are queued, which is the backpressure the pipelined scheduler
    /// relies on. A zero `cap` is promoted to 1 (this shim has no
    /// rendezvous mode).
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        make(Some(cap.max(1)))
    }

    /// The sending half; cloneable.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half; cloneable (work-sharing consumers).
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Send failed: every receiver is gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    /// Receive failed: channel empty and every sender is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty, disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    /// Non-blocking receive failure.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// Channel currently empty.
        Empty,
        /// Channel empty and all senders dropped.
        Disconnected,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.senders.fetch_add(1, Ordering::SeqCst);
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.shared.senders.fetch_sub(1, Ordering::SeqCst) == 1 {
                // Last sender: wake blocked receivers so they observe
                // disconnection.
                self.shared.ready.notify_all();
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.receivers.fetch_add(1, Ordering::SeqCst);
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            if self.shared.receivers.fetch_sub(1, Ordering::SeqCst) == 1 {
                // Last receiver: wake senders blocked on a full bounded
                // channel so they observe disconnection.
                self.shared.space.notify_all();
            }
        }
    }

    impl<T> Sender<T> {
        /// Enqueues `value`; fails only when all receivers are dropped.
        /// On a bounded channel, blocks while the queue is at capacity.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            if self.shared.receivers.load(Ordering::SeqCst) == 0 {
                return Err(SendError(value));
            }
            let mut queue = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            if let Some(cap) = self.shared.capacity {
                while queue.len() >= cap {
                    if self.shared.receivers.load(Ordering::SeqCst) == 0 {
                        return Err(SendError(value));
                    }
                    queue = self
                        .shared
                        .space
                        .wait(queue)
                        .unwrap_or_else(|e| e.into_inner());
                }
            }
            queue.push_back(value);
            drop(queue);
            self.shared.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a value arrives or all senders are gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut queue = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(value) = queue.pop_front() {
                    drop(queue);
                    self.shared.space.notify_one();
                    return Ok(value);
                }
                if self.shared.senders.load(Ordering::SeqCst) == 0 {
                    return Err(RecvError);
                }
                queue = self
                    .shared
                    .ready
                    .wait(queue)
                    .unwrap_or_else(|e| e.into_inner());
            }
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut queue = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            if let Some(value) = queue.pop_front() {
                drop(queue);
                self.shared.space.notify_one();
                return Ok(value);
            }
            if self.shared.senders.load(Ordering::SeqCst) == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        /// Draining iterator: yields until disconnected.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { receiver: self }
        }
    }

    /// See [`Receiver::iter`].
    pub struct Iter<'a, T> {
        receiver: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.receiver.recv().ok()
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn mpmc_fan_out() {
            let (tx, rx) = unbounded::<u32>();
            for i in 0..100 {
                tx.send(i).unwrap();
            }
            drop(tx);
            let rx2 = rx.clone();
            let h = std::thread::spawn(move || rx2.iter().count());
            let local = rx.iter().count();
            let remote = h.join().unwrap();
            assert_eq!(local + remote, 100);
        }

        #[test]
        fn recv_disconnects() {
            let (tx, rx) = unbounded::<u8>();
            drop(tx);
            assert_eq!(rx.recv(), Err(RecvError));
        }

        #[test]
        fn bounded_send_blocks_until_a_pop() {
            let (tx, rx) = bounded::<u32>(2);
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            // Third send must block until the consumer drains one slot.
            let h = std::thread::spawn(move || tx.send(3).unwrap());
            assert_eq!(rx.recv(), Ok(1));
            h.join().unwrap();
            assert_eq!(rx.recv(), Ok(2));
            assert_eq!(rx.recv(), Ok(3));
        }

        #[test]
        fn bounded_send_fails_when_receivers_die() {
            let (tx, rx) = bounded::<u8>(1);
            tx.send(9).unwrap();
            drop(rx);
            assert_eq!(tx.send(10), Err(SendError(10)));
        }
    }
}

/// Scoped threads (std re-exports under crossbeam's names).
pub mod thread {
    pub use std::thread::{scope, Scope, ScopedJoinHandle};
}
