//! # continuous-attestation
//!
//! A from-scratch Rust reproduction of *Towards Continuous Integrity
//! Attestation and Its Challenges in Practice: A Case Study of Keylime*
//! (DSN 2025): the Keylime attestation stack, its substrates (TPM 2.0,
//! Linux IMA, a virtual filesystem, an Ubuntu-like distribution), the
//! paper's **dynamic policy generation** contribution, the §IV attack
//! corpus, and the harnesses regenerating every table and figure.
//!
//! This crate is a façade that re-exports the workspace members:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`crypto`] | `cia-crypto` | SHA-1/SHA-256/HMAC, signing keys |
//! | [`vfs`] | `cia-vfs` | mounts, inodes, POSIX rename semantics |
//! | [`tpm`] | `cia-tpm` | PCR banks, quotes, EK/AK identity |
//! | [`ima`] | `cia-ima` | measurement policy/log/cache (P3–P5) |
//! | [`distro`] | `cia-distro` | packages, mirror, apt, SNAPs |
//! | [`os`] | `cia-os` | the machine simulator |
//! | [`keylime`] | `cia-keylime` | agent, registrar, verifier, tenant |
//! | [`policy`] | `cia-core` | dynamic policy generation + experiments |
//! | [`attacks`] | `cia-attacks` | Table II corpus and harness |
//!
//! # Quickstart
//!
//! ```
//! use continuous_attestation::prelude::*;
//!
//! // A one-machine Keylime deployment.
//! let mut cluster = Cluster::new(7, VerifierConfig::default());
//! let id = cluster.add_machine(MachineConfig::default(), RuntimePolicy::new())?;
//! assert!(cluster.attest(&id)?.is_verified());
//!
//! // An unexpected executable breaks attestation...
//! let machine = cluster.agent_mut(&id).unwrap().machine_mut();
//! let rogue = VfsPath::new("/usr/local/bin/rogue")?;
//! machine.write_executable(&rogue, b"unexpected")?;
//! machine.exec(&rogue, ExecMethod::Direct)?;
//! assert!(!cluster.attest(&id)?.is_verified());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! See `examples/` for larger scenarios and `crates/bench/src/bin/` for
//! the per-figure reproduction binaries.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use cia_attacks as attacks;
pub use cia_core as policy;
pub use cia_crypto as crypto;
pub use cia_distro as distro;
pub use cia_ima as ima;
pub use cia_keylime as keylime;
pub use cia_os as os;
pub use cia_tpm as tpm;
pub use cia_vfs as vfs;

/// The most commonly used types, importable in one line.
pub mod prelude {
    pub use cia_attacks::{attack_corpus, evaluate, DefenseConfig, PlanMode};
    pub use cia_core::experiments::{
        run_fleet, run_fp_week, run_hetero, run_longrun, FleetConfig, FpWeekConfig, HeteroConfig,
        LongRunConfig, UpdateCadence,
    };
    pub use cia_core::{CostModel, DynamicPolicyGenerator, GeneratorConfig};
    pub use cia_crypto::{Digest, HashAlgorithm};
    pub use cia_distro::{Mirror, ReleaseStream, Snap, StreamProfile};
    pub use cia_ima::{Ima, ImaConfig, ImaPolicy};
    pub use cia_keylime::{
        AgentHealth, AgentId, AgentStatus, AttestationOutcome, BackendKind, BackendSet,
        ChaosTransport, Cluster, ConfidentialVmConfig, FailureKind, FaultPlan, FaultTarget,
        FederatedRoundReport, Federation, FederationConfig, FleetScheduler, HashRing, HealthCounts,
        LossyTransport, MetricsSnapshot, PolicyDelta, PolicyEpoch, PolicyStore, ReliableTransport,
        ResumePlan, RoundOutcome, RoundReport, RuntimePolicy, SecureWorldConfig,
        ShardTransportKind, Tenant, Transport, VerifierConfig, VerifierJournal,
    };
    pub use cia_os::{ExecMethod, Machine, MachineConfig, SimClock};
    pub use cia_tpm::{Manufacturer, Tpm};
    pub use cia_vfs::{Mode, Vfs, VfsPath};
}
