//! Federation scenario corpus: sharded verifier rounds must be an
//! *observationally invisible* deployment choice.
//!
//! - a one-shard federation reproduces the plain cluster trace bit for
//!   bit;
//! - the fleet trace is identical across worker counts {1, 4, 8} ×
//!   shard counts {1, 2, 4} under chaos;
//! - a shard killed at round start rebalances mid-round onto the
//!   survivors (consistent hashing moves only its agents), the merged
//!   report conserves every enrolled agent, and the whole kill trace
//!   equals the no-kill trace;
//! - all shards adopt policy from one shared store: a delta publishes
//!   once fleet-wide and every shard converges on the same epoch;
//! - pipelined appraisal (`pipeline_depth > 0`) produces the identical
//!   trace to the classic inline path.

use continuous_attestation::crypto::Sha256;
use continuous_attestation::keylime::Agent;
use continuous_attestation::prelude::*;

type ChaosCluster = Cluster<ChaosTransport<ReliableTransport>>;

const NODES: u64 = 12;
const ROUNDS: u64 = 8;

fn corpus_config(workers: usize, pipeline_depth: usize) -> VerifierConfig {
    VerifierConfig::builder()
        .continue_on_failure(true)
        .quarantine_enabled(true)
        .degraded_after(1)
        .quarantine_after(2)
        .reprobe_backoff_rounds(1)
        .reprobe_backoff_max_rounds(4)
        .max_retries(2)
        .worker_count(workers)
        .pipeline_depth(pipeline_depth)
        .build()
        .unwrap()
}

fn sha256_hex(content: &[u8]) -> String {
    let mut h = Sha256::new();
    h.update(content);
    h.finalize().to_hex()
}

/// The corpus plan: a lane partition window plus background loss —
/// enough chaos that retries, quarantines and recoveries all happen.
fn corpus_plan() -> FaultPlan {
    FaultPlan::new(0xFED)
        .partition(2..5, FaultTarget::lanes([1, 7]))
        .loss(0..ROUNDS, FaultTarget::AllAgents, 0.2)
}

/// A fleet of [`NODES`] shared-store agents, each having run one
/// policy-approved tool, with the policy published at epoch 1.
fn fleet_cluster(workers: usize, pipeline_depth: usize) -> (ChaosCluster, Vec<AgentId>) {
    let tool = VfsPath::new("/usr/bin/service").unwrap();
    let content: &[u8] = b"federated service v1";
    let mut policy = RuntimePolicy::new();
    policy.allow(tool.as_str(), sha256_hex(content));
    policy.exclude("/tmp");

    let mut cluster = Cluster::with_transport(
        0xFED,
        corpus_config(workers, pipeline_depth),
        ChaosTransport::new(ReliableTransport::new(), corpus_plan()),
    );
    cluster.publish_policy(policy);
    let mut ids = Vec::new();
    for i in 0..NODES {
        let config = MachineConfig {
            hostname: format!("node-{i:02}"),
            seed: 800 + i,
            ..MachineConfig::default()
        };
        let mut machine = Machine::new(&cluster.manufacturer, config);
        machine.write_executable(&tool, content).unwrap();
        machine.exec(&tool, ExecMethod::Direct).unwrap();
        ids.push(cluster.add_agent_shared(Agent::new(machine)).unwrap());
    }
    ids.sort();
    (cluster, ids)
}

/// Runs the corpus federated: `shards` shards over the same fleet, with
/// shard `kill` (if any) dying at the start of its round. Returns the
/// fleet-level trace and the merged fleet metrics.
fn run_federated(
    workers: usize,
    pipeline_depth: usize,
    shards: u32,
    kill: Option<(u64, u32)>,
) -> (Vec<RoundReport>, MetricsSnapshot) {
    let (mut cluster, ids) = fleet_cluster(workers, pipeline_depth);
    let mut fed = Federation::from_verifier(
        &cluster.verifier,
        FederationConfig::new(shards, corpus_config(workers, pipeline_depth)),
    );
    assert_eq!(fed.agent_count(), ids.len());

    let mut trace = Vec::new();
    for round in 0..ROUNDS {
        cluster.transport.set_round(round);
        let (agents, transport) = cluster.federation_parts();
        let report = match kill {
            Some((kill_round, sid)) if kill_round == round => {
                let (report, migrated) = fed.run_round_with_kill(agents, transport, sid);
                assert!(!migrated.is_empty(), "the dead shard owned agents");
                assert!(!fed.shard_ids().contains(&sid), "dead shard left the ring");
                for id in &migrated {
                    assert_ne!(fed.placement(id), Some(sid), "migrated off the corpse");
                }
                report
            }
            _ => fed.run_round(agents, transport),
        };
        // Conservation: one result per enrolled agent, every round —
        // through the kill round included.
        assert_eq!(
            report.fleet.results.len(),
            ids.len(),
            "round {round}: fleet report lost agents"
        );
        let per_shard_total: usize = report.per_shard.iter().map(|(_, r)| r.results.len()).sum();
        assert_eq!(
            per_shard_total,
            ids.len(),
            "round {round}: shard split lost agents"
        );
        assert_eq!(report.fleet.health.total(), ids.len());
        trace.push(report.fleet);
    }

    let fleet = fed.fleet_metrics();
    assert!(fleet.is_conserved(), "fleet metrics identity: {fleet:?}");
    assert!(fleet.backends_consistent());
    (trace, strip_wall_clock(&fleet))
}

/// Runs the corpus on the plain (un-federated) cluster.
fn run_plain(workers: usize, pipeline_depth: usize) -> (Vec<RoundReport>, MetricsSnapshot) {
    let (mut cluster, _ids) = fleet_cluster(workers, pipeline_depth);
    let mut trace = Vec::new();
    for round in 0..ROUNDS {
        cluster.transport.set_round(round);
        trace.push(cluster.attest_fleet());
    }
    let snap = cluster.scheduler.snapshot();
    assert!(snap.is_conserved());
    (trace, strip_wall_clock(&snap))
}

/// Zeroes the wall-clock-dependent fields (the contract of
/// `cia_sim::deterministic_metrics`, plus `policy_push_ns`: the corpus
/// publishes through the cluster before federating, so only the plain
/// run's scheduler ever meters a push).
fn strip_wall_clock(snapshot: &MetricsSnapshot) -> MetricsSnapshot {
    MetricsSnapshot {
        timeouts: 0,
        policy_check_ns: 0,
        policy_push_ns: 0,
        latency_ns_buckets: Vec::new(),
        ..snapshot.clone()
    }
}

/// A one-shard federation is the plain cluster, observationally: same
/// per-round reports, same conserved counters.
#[test]
fn one_shard_federation_equals_plain_cluster_trace() {
    let (plain_trace, plain_metrics) = run_plain(4, 0);
    let (fed_trace, fed_metrics) = run_federated(4, 0, 1, None);
    assert_eq!(fed_trace, plain_trace);
    assert_eq!(fed_metrics, plain_metrics);
    // The corpus is non-trivial: the partition actually bit.
    assert!(plain_trace.iter().any(|r| r.unreachable_count() > 0));
    assert!(plain_trace.iter().any(|r| r.quarantine_skipped_count() > 0));
}

/// Acceptance criterion: the fleet trace is a pure function of
/// `(seed, plan, membership)` — bit-identical across every worker count
/// × shard count combination.
#[test]
fn fleet_trace_is_identical_across_worker_and_shard_counts() {
    let (baseline, _) = run_federated(1, 0, 1, None);
    for workers in [1usize, 4, 8] {
        for shards in [1u32, 2, 4] {
            if (workers, shards) == (1, 1) {
                continue;
            }
            let (trace, _) = run_federated(workers, 0, shards, None);
            assert_eq!(
                trace, baseline,
                "trace diverged at workers={workers} shards={shards}"
            );
        }
    }
}

/// Acceptance criterion: a shard killed at round start rebalances
/// mid-round onto the survivors and the merged trace — kill round
/// included — equals the no-kill trace, across worker counts {1,4,8} ×
/// shard counts {2,4}.
#[test]
fn shard_kill_trace_equals_no_kill_trace_across_the_matrix() {
    const KILL_ROUND: u64 = 3;
    let (baseline, _) = run_federated(1, 0, 1, None);
    for workers in [1usize, 4, 8] {
        for shards in [2u32, 4] {
            let (trace, _) = run_federated(workers, 0, shards, Some((KILL_ROUND, 0)));
            assert_eq!(
                trace, baseline,
                "kill trace diverged at workers={workers} shards={shards}"
            );
        }
    }
}

/// The kill moves *only* the dead shard's agents: everyone else keeps
/// their placement, and the survivors between them hold the whole fleet.
#[test]
fn shard_kill_moves_only_the_dead_shards_agents() {
    let (cluster, ids) = fleet_cluster(2, 0);
    let mut fed = Federation::from_verifier(
        &cluster.verifier,
        FederationConfig::new(4, corpus_config(2, 0)),
    );
    let before: Vec<(AgentId, u32)> = ids
        .iter()
        .map(|id| (id.clone(), fed.placement(id).unwrap()))
        .collect();
    let dead = before[0].1;
    let migrated = fed.kill_shard(dead);
    for (id, was) in &before {
        let now = fed.placement(id).expect("still placed");
        if *was == dead {
            assert!(migrated.contains(id), "{id} lived on the dead shard");
            assert_ne!(now, dead);
        } else {
            assert_eq!(now, *was, "{id} moved without living on the dead shard");
            assert!(!migrated.contains(id));
        }
    }
    assert_eq!(fed.shard_count(), 3);
    assert_eq!(fed.agent_count(), ids.len(), "no record lost in migration");
}

/// All shards adopt from one [`ConcurrentPolicyStore`]: a delta
/// publishes exactly once fleet-wide, every shard lands on the same
/// epoch, and after one round the store sees the whole fleet converged.
#[test]
fn federation_publishes_policy_once_and_every_shard_converges() {
    let maint = VfsPath::new("/usr/local/bin/maint").unwrap();
    let maint_content: &[u8] = b"federated maintenance";
    let (mut cluster, ids) = fleet_cluster(2, 0);
    let mut fed = Federation::from_verifier(
        &cluster.verifier,
        FederationConfig::new(3, corpus_config(2, 0)),
    );
    assert_eq!(
        fed.store().epoch().as_u64(),
        1,
        "seeded from the source epoch"
    );

    // Rounds 0-1 clean, then the operator lands a delta once.
    for round in 0..2u64 {
        cluster.transport.set_round(round);
        let (agents, transport) = cluster.federation_parts();
        fed.run_round(agents, transport);
    }
    let (epoch, applied) = fed.publish_delta(&PolicyDelta {
        added: vec![(maint.as_str().to_string(), sha256_hex(maint_content))],
        ..PolicyDelta::default()
    });
    assert_eq!(epoch.as_u64(), 2);
    assert_eq!(applied, 1, "the delta applied once, not once per shard");

    // The fleet runs the newly-approved tool; every shard appraises it
    // against the same adopted snapshot and verifies.
    for id in &ids {
        let m = cluster.agent_mut(id).unwrap().machine_mut();
        m.write_executable(&maint, maint_content).unwrap();
        m.exec(&maint, ExecMethod::Direct).unwrap();
    }
    cluster.transport.set_round(6); // past every fault window
    let (agents, transport) = cluster.federation_parts();
    let report = fed.run_round(agents, transport);
    assert_eq!(report.fleet.policy_epoch, epoch);
    for (sid, shard_report) in &report.per_shard {
        assert_eq!(
            shard_report.policy_epoch, epoch,
            "shard {sid} diverged from the store epoch"
        );
    }
    assert_eq!(report.fleet.verified_count(), ids.len());
    assert!(report.fleet.epoch_converged());
    assert!(fed.store().converged(), "pin sync reaches the store");
    assert!(fed.store().laggards().is_empty());
}

/// Tentpole equivalence: pipelined appraisal is a pure performance
/// lever. Plain and federated traces with `pipeline_depth > 0` equal
/// the inline traces exactly — verdicts, retries, health, counters.
#[test]
fn pipelined_rounds_produce_identical_traces() {
    let (inline_trace, inline_metrics) = run_plain(4, 0);
    let (piped_trace, piped_metrics) = run_plain(4, 8);
    assert_eq!(piped_trace, inline_trace);
    assert_eq!(piped_metrics, inline_metrics);

    let (fed_inline, _) = run_federated(4, 0, 2, None);
    let (fed_piped, _) = run_federated(4, 8, 2, None);
    assert_eq!(fed_piped, fed_inline);
    assert_eq!(fed_inline, inline_trace, "sharding and pipelining compose");
}
