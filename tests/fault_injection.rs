//! Fault injection: the attestation pipeline under message loss and
//! operational churn. Transport failures must never corrupt verifier
//! state — a dropped poll is indistinguishable from no poll.

use continuous_attestation::prelude::*;

fn one_node(seed: u64) -> (Cluster<LossyTransport>, AgentId) {
    // A zero-loss LossyTransport behaves like the reliable one while
    // letting each test dial the drop rate up and down mid-run.
    let mut cluster = Cluster::with_transport(
        seed,
        VerifierConfig::default(),
        LossyTransport::new(0.0, seed),
    );
    let id = cluster
        .add_machine(MachineConfig::default(), RuntimePolicy::new())
        .unwrap();
    (cluster, id)
}

#[test]
fn lossy_transport_never_corrupts_state() {
    let (mut cluster, id) = one_node(21);
    cluster.transport = LossyTransport::new(0.5, 7);

    let mut verified = 0;
    let mut transport_errors = 0;
    for round in 0..50 {
        // Keep the machine busy so there are always new entries in flight.
        if round % 5 == 0 {
            let m = cluster.agent_mut(&id).unwrap().machine_mut();
            let path = VfsPath::new(&format!("/usr/local/bin/job-{round}")).unwrap();
            m.write_executable(&path, format!("job {round}").as_bytes())
                .unwrap();
            // Not in policy: but /usr/local/bin jobs are intentionally
            // not executed — only written. Writes alone are unmeasured.
        }
        match cluster.attest(&id) {
            Ok(outcome) => {
                assert!(
                    outcome.is_verified(),
                    "clean machine must verify whenever the poll gets through: {outcome:?}"
                );
                verified += 1;
            }
            Err(_) => transport_errors += 1,
        }
    }
    assert!(verified > 5, "some polls must succeed ({verified})");
    assert!(
        transport_errors > 5,
        "loss must actually occur ({transport_errors})"
    );
    assert_eq!(cluster.status(&id).unwrap(), AgentStatus::Trusted);

    // Back on a reliable network, everything is consistent.
    cluster.transport = LossyTransport::new(0.0, 9);
    assert!(cluster.attest(&id).unwrap().is_verified());
}

#[test]
fn loss_during_incident_does_not_lose_the_alert() {
    let (mut cluster, id) = one_node(22);
    // The incident happens while the network is bad...
    {
        let m = cluster.agent_mut(&id).unwrap().machine_mut();
        let mal = VfsPath::new("/usr/sbin/backdoor").unwrap();
        m.write_executable(&mal, b"backdoor").unwrap();
        m.exec(&mal, ExecMethod::Direct).unwrap();
    }
    cluster.transport = LossyTransport::new(1.0, 3);
    for _ in 0..5 {
        assert!(cluster.attest(&id).is_err(), "total loss: no poll succeeds");
    }
    // ...the log is append-only, so the first successful poll sees it.
    cluster.transport = LossyTransport::new(0.0, 9);
    match cluster.attest(&id).unwrap() {
        AttestationOutcome::Failed { alerts } => {
            assert!(alerts
                .iter()
                .any(|a| format!("{:?}", a.kind).contains("backdoor")));
        }
        other => panic!("expected detection, got {other:?}"),
    }
}

#[test]
fn reboot_during_outage_is_handled_on_reconnect() {
    let (mut cluster, id) = one_node(23);
    assert!(cluster.attest(&id).unwrap().is_verified());

    // Network partition; the machine reboots and does fresh work.
    cluster.transport = LossyTransport::new(1.0, 5);
    assert!(cluster.attest(&id).is_err());
    cluster
        .agent_mut(&id)
        .unwrap()
        .machine_mut()
        .reboot()
        .unwrap();
    assert!(cluster.attest(&id).is_err());

    // On reconnect the verifier sees the boot-count change, resets its
    // log cursor, and re-verifies the fresh log from scratch.
    cluster.transport = LossyTransport::new(0.0, 9);
    match cluster.attest(&id).unwrap() {
        AttestationOutcome::Verified { new_entries } => assert_eq!(new_entries, 1),
        other => panic!("unexpected {other:?}"),
    }
}

#[test]
fn double_reboot_between_polls() {
    let (mut cluster, id) = one_node(24);
    assert!(cluster.attest(&id).unwrap().is_verified());
    // Two reboots with activity in between; the verifier only ever sees
    // the final boot's log and must still replay it exactly.
    for round in 0..2 {
        let m = cluster.agent_mut(&id).unwrap().machine_mut();
        m.reboot().unwrap();
        let path = VfsPath::new(&format!("/usr/bin/boot-{round}")).unwrap();
        m.write_executable(&path, format!("tool {round}").as_bytes())
            .unwrap();
        // Unexecuted: nothing beyond boot_aggregate gets measured.
    }
    match cluster.attest(&id).unwrap() {
        AttestationOutcome::Verified { new_entries } => assert_eq!(new_entries, 1),
        other => panic!("unexpected {other:?}"),
    }
}
