//! The chaos scenario corpus: scripted operational faults the paper's
//! 66-day deployment actually hit (§III-D), each replayable
//! bit-identically from its `(seed, FaultPlan)` alone.
//!
//! - partition during an update window → quarantine, then clean recovery
//!   with the backlog verified and zero alerts;
//! - registrar outage ("flap") blocking enrolment until it lifts;
//! - agent crash/restart mid-run with a TPM quote-counter reset;
//! - the March-27 shape: a misconfigured policy push raising fleet-wide
//!   false positives until the corrected policy lands;
//! - the acceptance check: a failing trace replays identically under a
//!   different worker count;
//! - quarantine economics: sustained partitions cost measurably fewer
//!   transport calls with the cheap-skip path on;
//! - a heterogeneous fleet (TPM+IMA, secure world, confidential VM in
//!   one round) under partition and attack, replay-equal across worker
//!   counts with consistent per-backend accounting;
//! - an env-gated 500-round long simulation (`CHAOS_LONG=1`).

use cia_sim::{SimConfig, SimRunner};
use continuous_attestation::crypto::Sha256;
use continuous_attestation::keylime::Agent;
use continuous_attestation::prelude::*;

type ChaosCluster = Cluster<ChaosTransport<ReliableTransport>>;

/// Engine posture for the corpus: P2 fix on, quick quarantine thresholds
/// so scenarios play out in few rounds.
fn corpus_config(workers: usize) -> VerifierConfig {
    VerifierConfig::builder()
        .continue_on_failure(true)
        .quarantine_enabled(true)
        .degraded_after(1)
        .quarantine_after(2)
        .reprobe_backoff_rounds(1)
        .reprobe_backoff_max_rounds(4)
        .max_retries(2)
        .worker_count(workers)
        .build()
        .unwrap()
}

fn chaos_cluster(seed: u64, plan: FaultPlan, workers: usize) -> ChaosCluster {
    Cluster::with_transport(
        seed,
        corpus_config(workers),
        ChaosTransport::new(ReliableTransport::new(), plan),
    )
}

fn sha256_hex(content: &[u8]) -> String {
    let mut h = Sha256::new();
    h.update(content);
    h.finalize().to_hex()
}

/// §III-D shape 1: an agent subset partitions across an update window.
/// The verifier must quarantine the unreachable agent (cheap skips, not
/// full retry burns), then — once the partition heals — verify the
/// update's measurement backlog with zero alerts and walk the agent back
/// to Healthy through Recovering.
#[test]
fn partition_during_update_quarantines_then_recovers_clean() {
    let tool = VfsPath::new("/usr/bin/service").unwrap();
    let v1: &[u8] = b"fleet service v1";
    let v2: &[u8] = b"fleet service v2 (update)";
    let plan = FaultPlan::new(27).partition(2..6, FaultTarget::lanes([1]));
    let mut cluster = chaos_cluster(27, plan, 3);

    let mut ids = Vec::new();
    for i in 0..4u64 {
        let config = MachineConfig {
            hostname: format!("node-{i:02}"),
            seed: 100 + i,
            ..MachineConfig::default()
        };
        let mut machine = Machine::new(&cluster.manufacturer, config);
        machine.write_executable(&tool, v1).unwrap();
        let mut policy = RuntimePolicy::new();
        policy.allow(tool.as_str(), sha256_hex(v1));
        policy.allow(tool.as_str(), sha256_hex(v2));
        policy.exclude("/tmp");
        ids.push(cluster.add_agent(Agent::new(machine), policy).unwrap());
    }
    let victim = ids[1].clone(); // lane 1 == sorted index 1

    for id in &ids {
        let m = cluster.agent_mut(id).unwrap().machine_mut();
        m.exec(&tool, ExecMethod::Direct).unwrap();
    }

    let mut reports = Vec::new();
    for round in 0..12u64 {
        if round == 3 {
            // The update lands *while the victim is partitioned*: the new
            // binary is measured locally, unseen by the verifier.
            let m = cluster.agent_mut(&victim).unwrap().machine_mut();
            m.write_executable(&tool, v2).unwrap();
            m.exec(&tool, ExecMethod::Direct).unwrap();
        }
        cluster.transport.set_round(round);
        reports.push(cluster.attest_fleet());
    }

    // The victim quarantined during the window and was skipped cheaply.
    let victim_outcomes: Vec<&RoundOutcome> = reports
        .iter()
        .map(|r| &r.results.iter().find(|x| x.id == victim).unwrap().outcome)
        .collect();
    assert!(
        victim_outcomes
            .iter()
            .any(|o| matches!(o, RoundOutcome::Unreachable { .. })),
        "partition must show as unreachable rounds"
    );
    assert!(
        victim_outcomes
            .iter()
            .any(|o| matches!(o, RoundOutcome::SkippedQuarantined { .. })),
        "quarantine must skip at least one round cheaply"
    );
    assert!(
        reports.iter().any(|r| r.health.quarantined == 1),
        "health counts must show the quarantine"
    );

    // Nobody else was disturbed, and the victim never *failed*: a
    // partition is a reachability event, not an integrity event.
    assert!(
        victim_outcomes
            .iter()
            .all(|o| !matches!(o, RoundOutcome::Failed { .. })),
        "no false integrity failures from the partition"
    );
    assert!(cluster.alerts(&victim).unwrap().is_empty());

    // Recovery: quarantine lifted through Recovering, backlog verified.
    assert_eq!(cluster.health(&victim).unwrap(), AgentHealth::Healthy);
    assert_eq!(cluster.status(&victim).unwrap(), AgentStatus::Trusted);
    let last = reports.last().unwrap();
    assert_eq!(last.verified_count(), 4);
    assert_eq!(last.health.healthy, 4);
    let metrics = cluster.scheduler.snapshot();
    assert!(metrics.is_conserved());
    assert!(metrics.to_quarantined >= 1 && metrics.to_recovering >= 1);
}

/// §III-D shape 2: the registrar flaps. Enrolment during the outage
/// fails (retries exhausted against a partitioned service) but succeeds
/// as soon as the window lifts — and the late joiner attests cleanly.
#[test]
fn registrar_flap_blocks_enrolment_until_window_lifts() {
    let plan = FaultPlan::new(3).registrar_outage(0..1);
    let mut cluster = chaos_cluster(3, plan, 2);

    let machine_config = |hostname: &str, seed: u64| MachineConfig {
        hostname: hostname.to_string(),
        seed,
        ..MachineConfig::default()
    };

    // Round 0: the registrar is down; enrolment fails after retries.
    cluster.transport.set_round(0);
    let err = cluster
        .add_machine(machine_config("node-00", 1), RuntimePolicy::new())
        .unwrap_err();
    assert!(
        err.to_string().contains("dropped"),
        "outage surfaces as dropped registration calls: {err}"
    );

    // Round 1: window lifted; the same enrolment goes through.
    cluster.transport.set_round(1);
    let id = cluster
        .add_machine(machine_config("node-00", 1), RuntimePolicy::new())
        .unwrap();
    let report = cluster.attest_fleet();
    assert_eq!(report.verified_count(), 1);
    assert_eq!(cluster.health(&id).unwrap(), AgentHealth::Healthy);
}

/// §III-D shape 3: a node crashes and restarts mid-run. The TPM reset
/// counter bumps and the IMA log restarts; the verifier must detect the
/// reboot, re-quote from entry zero, and verify — no false alert, no
/// quarantine, no stuck state.
#[test]
fn crash_restart_mid_round_resets_quote_counter_cleanly() {
    let plan = FaultPlan::new(11).crash(3, 1);
    let runner = SimRunner::new(SimConfig::new(3, 7, plan)).unwrap();
    let victim = runner.ids()[1].clone();
    let report = runner.run();

    for (round, round_report) in report.rounds.iter().enumerate() {
        let result = round_report
            .results
            .iter()
            .find(|r| r.id == victim)
            .unwrap();
        assert!(
            matches!(result.outcome, RoundOutcome::Verified { .. }),
            "round {round}: crash/restart must not break attestation: {:?}",
            result.outcome
        );
    }
    // The crash round re-measured boot: the verifier processed a fresh
    // log (boot_aggregate again), not an incremental empty poll.
    let crash_round = &report.rounds[3];
    let result = crash_round.results.iter().find(|r| r.id == victim).unwrap();
    assert!(
        matches!(result.outcome, RoundOutcome::Verified { new_entries } if new_entries > 0),
        "reboot must re-process the restarted log: {:?}",
        result.outcome
    );
    assert_eq!(report.final_health[&victim], AgentHealth::Healthy);
}

/// Builds the durable crash-restart fleet: three agents on the shared
/// store, one on a per-agent override, each having run one measured
/// tool. Used by the verifier-crash scenarios below.
fn durable_fleet(seed: u64, plan: FaultPlan, workers: usize) -> (ChaosCluster, Vec<AgentId>) {
    let tool = VfsPath::new("/usr/bin/service").unwrap();
    let content: &[u8] = b"fleet service v1";
    let mut policy = RuntimePolicy::new();
    policy.allow(tool.as_str(), sha256_hex(content));
    policy.exclude("/tmp");

    let mut cluster = chaos_cluster(seed, plan, workers);
    let mut ids = Vec::new();
    for i in 0..4u64 {
        let config = MachineConfig {
            hostname: format!("node-{i:02}"),
            seed: 900 + i,
            ..MachineConfig::default()
        };
        let mut machine = Machine::new(&cluster.manufacturer, config);
        machine.write_executable(&tool, content).unwrap();
        machine.exec(&tool, ExecMethod::Direct).unwrap();
        ids.push(if i == 3 {
            cluster
                .add_agent(Agent::new(machine), policy.clone())
                .unwrap()
        } else {
            cluster.add_agent_shared(Agent::new(machine)).unwrap()
        });
    }
    cluster.publish_policy(policy);
    (cluster, ids)
}

/// §III-D shape 3, verifier-side: the *verifier* crashes mid-round with
/// one agent's result already durably acked. Restart replays the journal,
/// resumes the interrupted round past the acked agent, and the merged
/// report is identical to a twin verifier that never crashed. The acked
/// agent is provably *not* re-attested: its machine is tampered between
/// crash and restart, and the resumed round still reports it Verified —
/// the tamper only surfaces one round later, when attestation genuinely
/// runs again.
#[test]
fn verifier_crash_mid_round_replays_journal_and_resumes() {
    let plan = || {
        FaultPlan::new(73)
            .loss(0..2, FaultTarget::AllAgents, 0.3)
            .partition(1..2, FaultTarget::lanes([2]))
    };
    let (mut twin, _) = durable_fleet(73, plan(), 3);
    let (mut subject, ids) = durable_fleet(73, plan(), 3);
    subject.enable_durability().unwrap();

    // Warm-up under faults: journaling must be observation-free.
    for round in 0..2u64 {
        twin.transport.set_round(round);
        subject.transport.set_round(round);
        assert_eq!(subject.attest_fleet(), twin.attest_fleet());
    }

    // The crash round. The twin completes it; the subject completes it
    // too, but its journal is then truncated to `started + one ack` (plus
    // a torn half-frame) — the crash landed mid-round, after exactly one
    // agent was durably acknowledged.
    twin.transport.set_round(2);
    let twin_report = twin.attest_fleet();
    let frames_before = subject.journal().unwrap().log().frame_count();
    subject.transport.set_round(2);
    let _lost = subject.attest_fleet();
    let image = subject
        .journal()
        .unwrap()
        .log()
        .crash_image(frames_before + 2, 3);

    // Between crash and restart, the acked agent's machine runs an
    // unapproved binary. If recovery re-attested it, this would fail it.
    let acked_agent = ids[0].clone();
    let rogue = VfsPath::new("/usr/local/bin/rogue").unwrap();
    let m = subject.agent_mut(&acked_agent).unwrap().machine_mut();
    m.write_executable(&rogue, b"not in any policy").unwrap();
    m.exec(&rogue, ExecMethod::Direct).unwrap();

    // Restart: replay the log, resume mid-round past the acked agent.
    let resume = subject.recover_from_image(image).unwrap();
    let plan = resume.expect("started mark and one ack survived the crash");
    assert_eq!(
        plan.acked_ids().into_iter().collect::<Vec<_>>(),
        vec![acked_agent.clone()],
        "exactly the first ack was durable"
    );
    subject.transport.set_round(2);
    let resumed_report = subject.attest_fleet_resume(&plan);

    // The merged report is what the never-crashed twin produced, the
    // acked agent's row came from the journal (no re-attestation, so no
    // alert despite the tamper), and the journal agrees with memory.
    assert_eq!(resumed_report, twin_report);
    assert!(subject.alerts(&acked_agent).unwrap().is_empty());
    subject.check_durable_equivalence().unwrap();
    assert!(subject.scheduler.snapshot().is_conserved());

    // One round later the skip is over: attestation genuinely runs again
    // and the tamper surfaces as a real integrity failure.
    subject.transport.set_round(3);
    let next = subject.attest_fleet();
    let row = next.results.iter().find(|r| r.id == acked_agent).unwrap();
    assert!(
        matches!(row.outcome, RoundOutcome::Failed { .. }),
        "post-resume rounds must re-attest: {:?}",
        row.outcome
    );
}

/// Acceptance criterion for the journal itself: the bytes on disk — not
/// just the reports — are identical whatever the worker count. Acks are
/// sequenced by agent id before appending, so the segment files of a
/// 1-worker, 4-worker and 8-worker run of the same fleet are equal.
#[test]
fn durable_journal_bytes_are_identical_across_worker_counts() {
    let run = |workers: usize| -> Vec<(String, Vec<u8>)> {
        let plan = FaultPlan::new(88)
            .loss(0..4, FaultTarget::AllAgents, 0.25)
            .partition(1..3, FaultTarget::lanes([1]));
        let (mut cluster, _) = durable_fleet(88, plan, workers);
        cluster.enable_durability().unwrap();
        for round in 0..4u64 {
            cluster.transport.set_round(round);
            cluster.attest_fleet();
        }
        let log = cluster.journal().unwrap().log();
        let mut files = log.vfs().list_dir(log.dir()).unwrap();
        files.sort();
        files
            .into_iter()
            .map(|p| {
                let bytes = log.vfs().read(&p).unwrap().to_vec();
                (p.as_str().to_string(), bytes)
            })
            .collect()
    };

    let sequential = run(1);
    assert!(!sequential.is_empty(), "journal must have segments");
    assert_eq!(sequential, run(4), "4 workers diverged from sequential");
    assert_eq!(sequential, run(8), "8 workers diverged from sequential");
}

/// The paper's March-27 incident shape: a policy update omits entries
/// for tooling that runs fleet-wide, so *every* agent raises a false
/// positive the same day; the corrected policy restores the fleet the
/// next round. With continue-on-failure on (the paper's P2 fix), the
/// fleet keeps attesting throughout — and revocation notices published
/// to a subscriber that is offline during the incident are queued, not
/// lost.
#[test]
fn march_27_misconfigured_policy_push_alerts_fleet_wide_then_restores() {
    const NODES: u64 = 3;
    const MISCONFIG_ROUND: u64 = 4;
    let mut cluster = chaos_cluster(327, FaultPlan::new(327), 3);

    let maint_path = |round: u64| format!("/usr/local/bin/maint-{round}");
    let maint_content = |round: u64| format!("maintenance job {round}").into_bytes();
    // The operator's policy for a given round: every maintenance tool up
    // to and including `through` is allowed — except that the misconfig
    // push forgets the current round's tool.
    let policy_through = |through: u64, forget: Option<u64>| {
        let mut policy = RuntimePolicy::new();
        policy.exclude("/tmp");
        for r in 0..=through {
            if forget == Some(r) {
                continue;
            }
            policy.allow(maint_path(r), sha256_hex(&maint_content(r)));
        }
        policy
    };

    let mut ids = Vec::new();
    for i in 0..NODES {
        let config = MachineConfig {
            hostname: format!("node-{i:02}"),
            seed: 500 + i,
            ..MachineConfig::default()
        };
        let machine = Machine::new(&cluster.manufacturer, config);
        ids.push(
            cluster
                .add_agent(Agent::new(machine), policy_through(0, None))
                .unwrap(),
        );
    }

    // A peer system subscribes to revocations but goes offline just
    // before the incident (e.g. it sits behind the same maintenance).
    let subscriber = cluster.revocation_bus.subscribe();

    let mut reports = Vec::new();
    for round in 0..7u64 {
        // The operator pushes this round's policy; on the misconfig
        // round it forgets the very tool the fleet is about to run.
        let forget = (round == MISCONFIG_ROUND).then_some(MISCONFIG_ROUND);
        for id in &ids {
            cluster
                .push_policy(id, policy_through(round, forget))
                .unwrap();
        }
        if round == MISCONFIG_ROUND {
            cluster.revocation_bus.set_online(subscriber, false);
        }
        // Fleet-wide maintenance runs every round on every node.
        for id in &ids {
            let m = cluster.agent_mut(id).unwrap().machine_mut();
            let path = VfsPath::new(&maint_path(round)).unwrap();
            m.write_executable(&path, &maint_content(round)).unwrap();
            m.exec(&path, ExecMethod::Direct).unwrap();
        }
        cluster.transport.set_round(round);
        reports.push(cluster.attest_fleet());
    }

    // The misconfig round: every agent false-positives at once.
    let incident = &reports[MISCONFIG_ROUND as usize];
    assert_eq!(incident.failed_count(), NODES as usize, "fleet-wide FP");
    for result in &incident.results {
        match &result.outcome {
            RoundOutcome::Failed { alerts } => {
                assert!(alerts.iter().any(|a| matches!(
                    &a.kind,
                    continuous_attestation::keylime::FailureKind::NotInPolicy { path, .. }
                        if path == &maint_path(MISCONFIG_ROUND)
                )));
            }
            other => panic!("expected Failed, got {other:?}"),
        }
    }

    // Every round before and after the misconfig verifies cleanly: P2's
    // continue-on-failure means the incident never pauses the fleet.
    for (round, report) in reports.iter().enumerate() {
        if round as u64 != MISCONFIG_ROUND {
            assert_eq!(
                report.verified_count(),
                NODES as usize,
                "round {round} should be clean"
            );
        }
    }
    for id in &ids {
        assert_eq!(cluster.status(id).unwrap(), AgentStatus::Trusted);
    }

    // The offline subscriber missed nothing: the incident's notices were
    // queued and flush on reconnect.
    assert_eq!(
        cluster.revocation_bus.pending_count(subscriber),
        Some(NODES as usize)
    );
    cluster.revocation_bus.set_online(subscriber, true);
    let view = cluster.revocation_bus.subscriber(subscriber).unwrap();
    for id in &ids {
        assert!(view.is_revoked(id), "queued revocation for {id} delivered");
    }
}

/// Acceptance criterion: a *failing* chaos trace replays bit-identically
/// from `(seed, FaultPlan)` alone. Capture the full RoundReport trace
/// under one worker count, re-run under another, assert equality.
#[test]
fn failing_trace_replays_bit_identically_across_worker_counts() {
    let plan = FaultPlan::new(0xDEAD)
        .partition(1..9, FaultTarget::lanes([0, 3]))
        .loss(0..10, FaultTarget::AllAgents, 0.25)
        .crash(5, 2);

    let captured = SimRunner::new(SimConfig::new(5, 10, plan.clone()).workers(1))
        .unwrap()
        .run();
    let replayed = SimRunner::new(SimConfig::new(5, 10, plan).workers(6))
        .unwrap()
        .run();

    // The trace is genuinely a failure trace...
    assert!(
        captured
            .rounds
            .iter()
            .any(|r| r.unreachable_count() > 0 || r.quarantine_skipped_count() > 0),
        "plan must actually produce failures"
    );
    // ...and replays exactly: reports, health, and protocol metrics.
    assert_eq!(captured.rounds, replayed.rounds);
    assert_eq!(captured.final_health, replayed.final_health);
    assert_eq!(captured.metrics, replayed.metrics);
}

/// Acceptance criterion: under a sustained partition, the quarantine
/// path spends measurably fewer transport calls than burning the full
/// retry budget on the same dead agents every round.
#[test]
fn quarantine_is_cheaper_than_full_retry_under_sustained_partition() {
    let plan = || FaultPlan::new(99).partition(0..20, FaultTarget::lanes([1, 4]));
    let with_quarantine = SimRunner::new(SimConfig::new(6, 20, plan()).quarantine(true))
        .unwrap()
        .run();
    let without = SimRunner::new(SimConfig::new(6, 20, plan()).quarantine(false))
        .unwrap()
        .run();

    assert!(
        with_quarantine.total_calls() < without.total_calls(),
        "quarantine on: {} calls, off: {} calls",
        with_quarantine.total_calls(),
        without.total_calls()
    );
    assert!(with_quarantine.metrics.quarantine_skips > 0);
    assert_eq!(without.metrics.quarantine_skips, 0);
    // The savings come from skipped rounds, not from losing track of the
    // agents: both runs report every agent every round.
    for report in with_quarantine.rounds.iter().chain(without.rounds.iter()) {
        assert_eq!(report.results.len(), 6);
    }
}

/// Nightly-style long simulation: 500 rounds of composite chaos with the
/// full invariant suite checked every round. Gated behind `CHAOS_LONG=1`
/// so the default test run stays fast; CI runs it in the chaos job.
#[test]
fn long_sim_500_rounds_env_gated() {
    if std::env::var("CHAOS_LONG").map(|v| v == "1") != Ok(true) {
        eprintln!("skipping long sim (set CHAOS_LONG=1 to run)");
        return;
    }
    // All fault windows end by round 440: the 60 clean tail rounds exceed
    // the maximum reprobe backoff (32), so every quarantined agent is
    // guaranteed a successful probe and full recovery before the run ends.
    let mut plan = FaultPlan::new(66)
        .loss(0..440, FaultTarget::AllAgents, 0.10)
        .partition(50..90, FaultTarget::lanes([0, 1]))
        .partition(200..260, FaultTarget::lanes([3]))
        .corrupt(300..310, FaultTarget::lanes([2]))
        .crash(120, 4)
        .crash(350, 0);
    // A rolling maintenance partition: one lane at a time, 25 rounds each.
    for (i, start) in (360..435).step_by(25).enumerate() {
        plan = plan.partition(start..start + 25, FaultTarget::lanes([i as u64]));
    }

    let report = SimRunner::new(SimConfig::new(5, 500, plan)).unwrap().run();
    assert_eq!(report.rounds.len(), 500);
    assert!(report.metrics.is_conserved());
    assert!(report.metrics.quarantine_skips > 0);
    assert!(report.metrics.to_healthy > 0, "recoveries happened");
    // The steady-state fleet ends reachable: the last partitions healed.
    assert!(report
        .final_health
        .values()
        .all(|&h| h == AgentHealth::Healthy));
}

/// Epoch skew under partition: policy pushes land *while an agent is
/// quarantined*. The shared-store contract says the quarantined agent
/// keeps appraising the last epoch it acknowledged — stale, but
/// observable in every round result — and converges to the newest epoch
/// on its first post-recovery round. This run makes one of the skipped
/// epochs a March-27-style misconfigured push (it forgets a fleet-wide
/// tool), so the reachable agents false-positive on that epoch while the
/// pinned victim, still appraising the pre-incident policy, stays clean.
///
/// Timeline (quarantine_after = 2 unreachable rounds): the partition
/// opens at round 2, so the victim is Degraded after round 2 and
/// Quarantined after round 3 — both pushes (rounds 4 and 5) land while
/// the victim is quarantined and therefore skipped by eager *and* lazy
/// adoption.
#[test]
fn partition_during_policy_push_pins_acked_epoch_then_converges() {
    const NODES: u64 = 4;
    let tool_v1 = VfsPath::new("/usr/bin/service").unwrap();
    let maint = VfsPath::new("/usr/local/bin/maint").unwrap();
    let maint_content: &[u8] = b"fleet-wide maintenance";
    let plan = FaultPlan::new(41).partition(2..7, FaultTarget::lanes([1]));
    let mut cluster = chaos_cluster(41, plan, 3);

    // One shared policy for everybody, published once at epoch 1.
    let mut base = RuntimePolicy::new();
    base.exclude("/tmp");
    base.allow(tool_v1.as_str(), sha256_hex(b"service v1"));
    cluster.publish_policy(base);

    let mut ids = Vec::new();
    for i in 0..NODES {
        let config = MachineConfig {
            hostname: format!("node-{i:02}"),
            seed: 700 + i,
            ..MachineConfig::default()
        };
        let mut machine = Machine::new(&cluster.manufacturer, config);
        machine.write_executable(&tool_v1, b"service v1").unwrap();
        machine.exec(&tool_v1, ExecMethod::Direct).unwrap();
        ids.push(cluster.add_agent_shared(Agent::new(machine)).unwrap());
    }
    let victim = ids[1].clone(); // lane 1 == sorted index 1
    let enrolment_epoch = cluster.policy_epoch();
    assert_eq!(enrolment_epoch.as_u64(), 1);

    let mut reports = Vec::new();
    for round in 0..12u64 {
        if round == 4 {
            // Misconfigured push lands mid-partition, after the victim
            // is quarantined: the operator's delta *forgets* the
            // maintenance tool the fleet runs.
            cluster.publish_delta(&PolicyDelta::default());
            // Reachable agents execute the tool the bad epoch omitted.
            for id in &ids {
                if id != &victim {
                    let m = cluster.agent_mut(id).unwrap().machine_mut();
                    m.write_executable(&maint, maint_content).unwrap();
                    m.exec(&maint, ExecMethod::Direct).unwrap();
                }
            }
        }
        if round == 5 {
            // The corrected delta allows the tool.
            cluster.publish_delta(&PolicyDelta {
                added: vec![(maint.as_str().to_string(), sha256_hex(maint_content))],
                ..PolicyDelta::default()
            });
        }
        cluster.transport.set_round(round);
        reports.push(cluster.attest_fleet());
    }

    // Pre-partition rounds: everyone converged on the enrolment epoch.
    assert!(reports[0].epoch_converged());
    assert_eq!(reports[0].policy_epoch, enrolment_epoch);

    // The misconfig epoch (round 4): every *reachable* agent FPs at
    // once; the partitioned victim is unreachable/quarantined, not
    // failed — and its result still carries the pre-incident epoch.
    let incident = &reports[4];
    assert_eq!(incident.policy_epoch.as_u64(), 2);
    let victim_result =
        |r: &RoundReport| r.results.iter().find(|x| x.id == victim).cloned().unwrap();
    for result in &incident.results {
        if result.id == victim {
            assert!(
                !matches!(result.outcome, RoundOutcome::Failed { .. }),
                "the pinned victim never saw the bad epoch"
            );
            assert_eq!(result.policy_epoch, enrolment_epoch, "stale, as acked");
        } else {
            assert!(
                matches!(result.outcome, RoundOutcome::Failed { .. }),
                "reachable agents FP on the misconfigured epoch: {:?}",
                result.outcome
            );
            assert_eq!(result.policy_epoch, incident.policy_epoch);
        }
    }
    assert!(!incident.epoch_converged(), "skew must be observable");

    // While quarantined, every skipped round still reports the victim
    // pinned to the epoch it last acknowledged.
    let skipped: Vec<_> = reports
        .iter()
        .map(victim_result)
        .filter(|r| matches!(r.outcome, RoundOutcome::SkippedQuarantined { .. }))
        .collect();
    assert!(!skipped.is_empty(), "quarantine must skip cheaply");
    for r in &skipped {
        assert_eq!(r.policy_epoch, enrolment_epoch);
    }

    // Recovery: the partition heals at round 7; the victim's first
    // post-heal rounds adopt the corrected epoch and verify cleanly.
    let last = reports.last().unwrap();
    assert_eq!(last.policy_epoch.as_u64(), 3);
    assert!(last.epoch_converged(), "fleet reconverges after the heal");
    assert_eq!(last.verified_count(), NODES as usize);
    assert_eq!(cluster.health(&victim).unwrap(), AgentHealth::Healthy);
    assert!(
        cluster.alerts(&victim).unwrap().is_empty(),
        "no FP on the victim"
    );
    assert_eq!(
        cluster.verifier.agent_policy_epoch(&victim).unwrap(),
        cluster.policy_epoch()
    );

    // The scheduler metrics carry the push telemetry and stay conserved.
    let metrics = cluster.scheduler.snapshot();
    assert_eq!(metrics.policy_epoch, 3);
    assert_eq!(metrics.delta_entries_applied, 1, "one corrective entry");
    assert!(metrics.is_conserved());
}

/// Scenario: a publish/adopt/pin storm on the thread-safe policy store.
/// Publishers race full and delta publishes against adopters stamping
/// pins and probing convergence — the interleaving pressure that a
/// lock-order inversion between the store's two locks would turn into a
/// deadlock. (Under `cargo test -p cia-sim --features lock-sanitizer`
/// the same storm also proves the recorded lock graph is cycle-free;
/// here the semantic contract is the assertion.)
#[test]
fn concurrent_store_storm_keeps_pins_coherent() {
    use continuous_attestation::keylime::{ConcurrentPolicyStore, PolicyDelta, RuntimePolicy};
    use std::sync::Arc;

    let store = Arc::new(ConcurrentPolicyStore::new());
    let mut founding = RuntimePolicy::new();
    founding.allow("/seed", "aa");
    store.publish(founding);

    let publisher = {
        let store = Arc::clone(&store);
        std::thread::spawn(move || {
            for i in 0..40u32 {
                store.publish_delta(&PolicyDelta {
                    added: vec![(format!("/p{i}"), "bb".into())],
                    ..PolicyDelta::default()
                });
                store.reclaim();
            }
        })
    };
    let adopters: Vec<_> = (0..3)
        .map(|lane| {
            let store = Arc::clone(&store);
            std::thread::spawn(move || {
                let id = AgentId::numbered("storm", lane);
                for _ in 0..40 {
                    let shared = store.adopt(&id);
                    // adopt stamps the pin under the same read guard it
                    // snapshots from: the pin can be bumped by a later
                    // adopt, never older than what we were handed.
                    assert!(store.pin_of(&id).expect("pinned") >= shared.epoch);
                }
            })
        })
        .collect();
    publisher.join().expect("publisher thread");
    for a in adopters {
        a.join().expect("adopter thread");
    }

    // Quiesced: 41 epochs published, one catch-up adoption converges.
    assert_eq!(store.epoch().as_u64(), 41);
    assert!(store.shared().snapshot.digests_for("/p39").is_some());
    for lane in 0..3 {
        store.adopt(&AgentId::numbered("storm", lane));
    }
    assert!(store.converged());
    assert!(store.laggards().is_empty());
}

/// Runs the heterogeneous chaos scenario: one fleet mixing all three
/// backend families, a partition window over the secure-world device's
/// lane, and a confidential-VM launch-image substitution mid-corpus.
fn run_hetero_chaos(workers: usize) -> (Vec<RoundReport>, MetricsSnapshot) {
    use continuous_attestation::keylime::BackendKind;

    let tool = VfsPath::new("/usr/bin/service").unwrap();
    let tool_bytes: &[u8] = b"fleet service v1";
    let ta_bytes: &[u8] = b"approved keymaster applet";
    let svc_bytes: &[u8] = b"confidential service daemon";

    let plan = FaultPlan::new(51).partition(2..6, FaultTarget::lanes([1]));
    let mut cluster = chaos_cluster(51, plan, workers);

    // Hostnames sort the lanes deterministically: the TPM machine is
    // lane 0, the secure-world device lane 1 (the partition target),
    // the confidential VM lane 2.
    let mut machine = Machine::new(
        &cluster.manufacturer,
        MachineConfig {
            hostname: "a-node-00".into(),
            seed: 510,
            ..MachineConfig::default()
        },
    );
    machine.write_executable(&tool, tool_bytes).unwrap();
    let mut tpm_policy = RuntimePolicy::new();
    tpm_policy.allow(tool.as_str(), sha256_hex(tool_bytes));
    tpm_policy.exclude("/tmp");
    let tpm_id = cluster.add_agent(Agent::new(machine), tpm_policy).unwrap();

    let mut sw_policy = RuntimePolicy::new();
    sw_policy.allow("/ta/keymaster", sha256_hex(ta_bytes));
    let sw_id = cluster
        .add_secure_world(SecureWorldConfig::new("b-edge-00", 511), sw_policy)
        .unwrap();

    let mut cvm_policy = RuntimePolicy::new();
    cvm_policy.allow("/opt/svc/agentd", sha256_hex(svc_bytes));
    let cvm_id = cluster
        .add_confidential_vm(ConfidentialVmConfig::new("c-cvm-00", 512), cvm_policy)
        .unwrap();

    let mut reports = Vec::new();
    for round in 0..12u64 {
        if round == 3 {
            // Backlog accumulates on the partitioned secure-world device:
            // an approved TA load the verifier cannot see yet.
            let sw = cluster
                .agent_mut(&sw_id)
                .unwrap()
                .backend_mut()
                .as_secure_world_mut()
                .unwrap();
            assert!(sw.load_trusted_app("/ta/keymaster", ta_bytes));
        }
        if round == 5 {
            // Attacks land while the fleet is degraded: benign activity
            // on the TPM machine, a launch-image substitution on the VM.
            let m = cluster.agent_mut(&tpm_id).unwrap().machine_mut();
            m.exec(&tool, ExecMethod::Direct).unwrap();
            let cvm = cluster
                .agent_mut(&cvm_id)
                .unwrap()
                .backend_mut()
                .as_confidential_vm_mut()
                .unwrap();
            cvm.exec_measured("/opt/svc/agentd", svc_bytes);
            cvm.relaunch_with_image(b"attacker image");
        }
        cluster.transport.set_round(round);
        reports.push(cluster.attest_fleet());
    }

    // The partition quarantined only the secure-world device, and its
    // backlog verified clean once the window lifted.
    assert_eq!(cluster.health(&sw_id).unwrap(), AgentHealth::Healthy);
    assert_eq!(cluster.status(&sw_id).unwrap(), AgentStatus::Trusted);
    assert!(cluster.alerts(&sw_id).unwrap().is_empty());

    // The launch substitution was detected and only the VM holds alerts.
    assert!(cluster
        .alerts(&cvm_id)
        .unwrap()
        .iter()
        .any(|a| matches!(a.kind, FailureKind::LaunchMeasurementMismatch)));
    assert!(cluster.alerts(&tpm_id).unwrap().is_empty());

    // Per-backend accounting stayed consistent with the aggregates.
    let metrics = cluster.scheduler.snapshot();
    assert!(metrics.is_conserved());
    assert!(metrics.backends_consistent());
    assert!(
        metrics
            .per_backend
            .for_kind(BackendKind::ConfidentialVm)
            .failed
            > 0
    );
    assert!(
        metrics
            .per_backend
            .for_kind(BackendKind::SecureWorld)
            .unreachable
            > 0
    );
    assert_eq!(metrics.per_backend.for_kind(BackendKind::TpmIma).failed, 0);

    (reports, metrics)
}

/// Scenario: all three backend families in one round, under partition
/// and attack. The trace — including which family failed, which
/// quarantined, and every per-backend counter — replays bit-identically
/// under a different worker count.
#[test]
fn heterogeneous_fleet_chaos_replays_across_worker_counts() {
    let (reports_seq, metrics_seq) = run_hetero_chaos(1);
    let (reports_par, metrics_par) = run_hetero_chaos(3);
    assert_eq!(reports_seq, reports_par);
    assert_eq!(metrics_seq.per_backend, metrics_par.per_backend);
    // The corpus is non-trivial: failures and unreachable rounds exist.
    assert!(reports_seq.iter().any(|r| r.failed_count() > 0));
    assert!(reports_seq.iter().any(|r| r.unreachable_count() > 0));
}
