//! The enforcement end-game: IMA-appraisal plus dynamic policies.
//!
//! Measurement-only IMA (the paper's setting) *detects* after the fact
//! and P1–P5 let adaptive attackers dodge even that. With appraisal
//! enforcement and signed package installs, the §IV attack corpus cannot
//! even execute its payloads — the preventive complement the paper's §V
//! signing discussion points toward.

use continuous_attestation::attacks::{attack_corpus, AttackStep, PlanMode};
use continuous_attestation::crypto::KeyPair;
use continuous_attestation::distro::{ReleaseStream, StreamProfile};
use continuous_attestation::ima::AppraisalKeyring;
use continuous_attestation::os::MachineError;
use continuous_attestation::prelude::*;
use continuous_attestation::tpm::Manufacturer;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn enforcing_machine(seed: u64) -> (Machine, KeyPair) {
    let mut rng = StdRng::seed_from_u64(seed);
    let manufacturer = Manufacturer::generate(&mut rng);
    let signer = KeyPair::generate(&mut rng);
    let mut keyring = AppraisalKeyring::new();
    keyring.trust(signer.verifying.clone());
    let machine = Machine::new(
        &manufacturer,
        MachineConfig {
            appraisal: Some(keyring),
            ..MachineConfig::default()
        },
    );
    (machine, signer)
}

#[test]
fn signed_system_operates_normally_under_enforcement() {
    let (mut machine, signer) = enforcing_machine(1);
    let (_, repo) = ReleaseStream::new(StreamProfile::small(1));

    // Install a slice of the archive with signatures, as a signing dpkg
    // hook would.
    let installed: Vec<_> = repo.packages().step_by(5).cloned().collect();
    for pkg in &installed {
        machine
            .apt
            .install_signed(&mut machine.vfs, pkg, &signer.signing)
            .unwrap();
    }
    machine.apt.take_latest_staged_kernel();

    // Every installed executable runs fine.
    let mut ran = 0;
    for pkg in installed.iter().filter(|p| !p.is_kernel).take(10) {
        let path = VfsPath::new(&pkg.files[0].install_path).unwrap();
        machine.exec(&path, ExecMethod::Direct).unwrap();
        ran += 1;
    }
    assert!(ran >= 5);
}

#[test]
fn attack_payloads_cannot_execute_under_enforcement() {
    // Replay every adaptive plan's executable payloads against an
    // enforcing machine: droppers, bots, userland tools — none run,
    // because nothing the attacker writes carries a trusted signature.
    for sample in attack_corpus() {
        let (mut machine, _) = enforcing_machine(2);
        let plan = match PlanMode::Adaptive {
            PlanMode::Adaptive => sample.adaptive_plan(),
            PlanMode::Basic => sample.basic_plan(),
        };
        let mut exec_attempts = 0;
        let mut denied = 0;
        for step in plan.steps.iter().chain(plan.on_boot.iter()) {
            match step {
                AttackStep::DropFile {
                    path,
                    content,
                    executable,
                } => {
                    let p = VfsPath::new(path).unwrap();
                    if let Some(parent) = p.parent() {
                        machine.vfs.mkdir_p(&parent).unwrap();
                    }
                    let mode = if *executable {
                        Mode::EXEC
                    } else {
                        Mode::REGULAR
                    };
                    let _ = machine.vfs.write_file(&p, content.clone(), mode);
                }
                AttackStep::Exec { path, method } => {
                    let p = VfsPath::new(path).unwrap();
                    if machine.vfs.is_file(&p) {
                        exec_attempts += 1;
                        match machine.exec(&p, method.clone()) {
                            Err(MachineError::AppraisalDenied { .. }) => denied += 1,
                            // Interpreter invocations run the (signed)
                            // interpreter; the script itself never
                            // becomes an exec target — P5 again, which
                            // appraisal alone does not close.
                            Ok(_) if matches!(method, ExecMethod::Interpreter { .. }) => {}
                            other => panic!(
                                "{}: unsigned payload must not run directly: {other:?}",
                                sample.name
                            ),
                        }
                    }
                }
                AttackStep::LoadModule { path } => {
                    let p = VfsPath::new(path).unwrap();
                    if machine.vfs.is_file(&p) {
                        exec_attempts += 1;
                        match machine.load_module(&p) {
                            Err(MachineError::AppraisalDenied { .. }) => denied += 1,
                            other => {
                                panic!("{}: unsigned module must not load: {other:?}", sample.name)
                            }
                        }
                    }
                }
                _ => {}
            }
        }
        // Every direct execution/module attempt (when the interpreter
        // binary is absent, interpreter execs fail on lookup instead and
        // are not counted) was denied by appraisal.
        assert!(
            exec_attempts == 0 || denied > 0 || sample.pure_interpreter,
            "{}: expected appraisal denials (attempts {exec_attempts}, denied {denied})",
            sample.name
        );
    }
}

#[test]
fn interpreter_gap_remains_under_enforcement() {
    // Appraisal, like measurement, is execve-scoped: a signed interpreter
    // fed an unsigned script is the residual gap (P5's shadow).
    let (mut machine, signer) = enforcing_machine(3);
    let python = VfsPath::new("/usr/bin/python3").unwrap();
    machine
        .write_executable(&python, b"python interpreter")
        .unwrap();
    continuous_attestation::ima::sign_file(&mut machine.vfs, &python, &signer.signing).unwrap();

    let script = VfsPath::new("/tmp/attack.py").unwrap();
    machine
        .vfs
        .write_file(&script, b"import socket".to_vec(), Mode::REGULAR)
        .unwrap();
    // The signed interpreter runs; the unsigned script rides along.
    machine
        .exec(
            &script,
            ExecMethod::Interpreter {
                interpreter: "/usr/bin/python3".to_string(),
                supports_exec_control: false,
            },
        )
        .unwrap();
}
